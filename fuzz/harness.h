// Fuzz harness entry points for the ingestion boundary.
//
// One function per untrusted-input parser: CSV records, NHC advisory
// bulletins, hazard catalog CSVs, and CLI argv. Each harness feeds the
// bytes through the ParseResult entry points and — when the parse
// succeeds — asserts the parser's round-trip/validity invariants with
// std::abort(), so a violation is a crash under both libFuzzer and the
// plain corpus-replay driver (replay_main.cpp). The contract either way:
// hostile bytes may be rejected with a diagnostic but must never raise an
// uncaught exception, trip a sanitizer, or allocate without bound.
//
// Build modes:
//  * fuzz_replay (always built): replay_main.cpp drives every corpus file
//    (plus deterministic Philox mutations of it) through these functions.
//  * RISKROUTE_FUZZ + a libFuzzer-capable compiler (clang): each harness
//    also compiles into a standalone fuzz_<name> target whose
//    LLVMFuzzerTestOneInput wraps the same function.
#pragma once

#include <cstddef>
#include <cstdint>

namespace riskroute::fuzz {

/// util::ParseCsvLineResult + util::ReadCsvResult, with a write→read
/// losslessness check on accepted rows.
int FuzzCsv(const std::uint8_t* data, std::size_t size);

/// forecast::ParseAdvisoryResult; accepted advisories must render and
/// re-parse, and their timestamps must survive civil-time arithmetic.
int FuzzAdvisory(const std::uint8_t* data, std::size_t size);

/// hazard::ReadCatalogsCsvResult, with a write→read round-trip check on
/// accepted catalogs.
int FuzzCatalog(const std::uint8_t* data, std::size_t size);

/// cli::Args::Parse over newline-separated argv tokens against a fixed
/// flag registry, plus the legacy lenient constructor.
int FuzzArgs(const std::uint8_t* data, std::size_t size);

/// core::RouteEngine::LoadSnapshot over the binary engine-snapshot
/// format. Accepted inputs must re-serialize byte-identically (the
/// format is canonical) and route consistently; rejected inputs must
/// carry a structured diagnostic.
int FuzzSnapshot(const std::uint8_t* data, std::size_t size);

/// server::wire::DecodeSingleFrame over the riskroute_serverd wire
/// protocol. Accepted frames must re-encode byte-identically (canonical
/// format), agree with chunked FrameAssembler reassembly, and rejected
/// inputs must carry a structured diagnostic.
int FuzzWire(const std::uint8_t* data, std::size_t size);

}  // namespace riskroute::fuzz
