#include <cstdlib>
#include <string_view>

#include "forecast/advisory.h"
#include "forecast/parser.h"
#include "forecast/writer.h"
#include "fuzz/harness.h"

namespace riskroute::fuzz {

int FuzzAdvisory(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  forecast::AdvisoryLimits limits;
  limits.max_bytes = 1 << 18;
  limits.max_tokens = 1 << 14;
  const auto result = forecast::ParseAdvisoryResult(text, limits);
  if (!result.ok()) return 0;
  const forecast::Advisory& advisory = result.value();

  // A parsed timestamp is valid-or-default, so civil-time arithmetic must
  // hold for any accepted bulletin (month-0 indexing was a real crash).
  if (!forecast::IsValidCivil(advisory.time)) std::abort();
  (void)advisory.time.DayOfWeek();
  (void)advisory.time.ToString();
  const int shift = size != 0 ? static_cast<int>(data[size / 2]) * 97 - 12000
                              : 24;
  const forecast::AdvisoryTime moved = advisory.time.PlusHours(shift);
  if (moved.PlusHours(-shift) != advisory.time) std::abort();

  // An accepted advisory must render to a bulletin that parses again and
  // names the same storm. The rendered text repeats the storm name, so
  // re-parse under the (larger) default limits, not the harness ones.
  const auto again =
      forecast::ParseAdvisoryResult(forecast::RenderAdvisory(advisory));
  if (!again.ok()) std::abort();
  if (again.value().storm_name != advisory.storm_name) std::abort();
  return 0;
}

}  // namespace riskroute::fuzz

#ifdef RISKROUTE_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return riskroute::fuzz::FuzzAdvisory(data, size);
}
#endif
