#include <cstdlib>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "tools/args.h"
#include "util/error.h"

namespace riskroute::fuzz {
namespace {

/// A registry shaped like the CLI's: a few value flags, a few booleans.
const cli::FlagRegistry& HarnessFlags() {
  static const cli::FlagRegistry flags = [] {
    cli::FlagRegistry f;
    f.Value("network").Value("seed").Value("metrics-out").Value("lambda-h");
    f.Bool("json").Bool("geojson");
    return f;
  }();
  return flags;
}

}  // namespace

int FuzzArgs(const std::uint8_t* data, std::size_t size) {
  // argv tokens are newline-separated input lines (bounded count/length).
  constexpr std::size_t kMaxTokens = 64;
  constexpr std::size_t kMaxTokenBytes = 4096;
  std::vector<std::string> tokens = {"riskroute"};
  std::string current;
  for (std::size_t i = 0; i < size && tokens.size() < kMaxTokens; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(current);
      current.clear();
    } else if (current.size() < kMaxTokenBytes && c != '\0') {
      current.push_back(c);
    }
  }
  if (!current.empty() && tokens.size() < kMaxTokens) {
    tokens.push_back(current);
  }
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& token : tokens) argv.push_back(token.data());
  const int argc = static_cast<int>(argv.size());

  const auto parsed = cli::Args::Parse(argc, argv.data(), 1, HarnessFlags());
  if (parsed.ok()) {
    const cli::Args& args = parsed.value();
    (void)args.Get("network");
    (void)args.GetOr("metrics-out", "");
    (void)args.Has("json");
    (void)args.positional();
    // Typed getters throw InvalidArgument on malformed numbers by
    // contract; anything else escaping is a harness failure.
    try {
      (void)args.GetDouble("lambda-h", 1.0);
    } catch (const InvalidArgument&) {
    }
    try {
      (void)args.GetSize("seed", 0);
    } catch (const InvalidArgument&) {
    }
  }

  // The legacy lenient constructor must accept anything without throwing.
  const cli::Args lenient(argc, argv.data(), 1);
  (void)lenient.positional();
  return 0;
}

}  // namespace riskroute::fuzz

#ifdef RISKROUTE_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return riskroute::fuzz::FuzzArgs(data, size);
}
#endif
