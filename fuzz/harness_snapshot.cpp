#include <cstdlib>
#include <cstring>
#include <span>
#include <string>

#include "core/route_engine.h"
#include "core/shortest_path.h"
#include "fuzz/harness.h"

namespace riskroute::fuzz {

int FuzzSnapshot(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  const auto loaded = core::RouteEngine::LoadSnapshot(bytes);
  if (!loaded.ok()) {
    // Rejections are the expected outcome for hostile bytes, but they
    // must come back as a structured diagnostic, never an exception or
    // sanitizer report. An empty message means a Reject path forgot its
    // explanation.
    if (loaded.error().message.empty()) std::abort();
    return 0;
  }

  // The format is canonical: the loader accepts only bytes the writer
  // could have produced, so an accepted input must re-serialize to the
  // exact same bytes.
  const core::RouteEngine& engine = loaded.value();
  const std::string round = engine.SnapshotBytes();
  if (round.size() != size ||
      (size != 0 && std::memcmp(round.data(), data, size) != 0)) {
    std::abort();
  }

  // Loaded engines must be routable: a targeted (ALT, when the snapshot
  // carries landmarks) sweep and a full Dijkstra sweep must agree on the
  // settled distance bitwise.
  const std::size_t n = engine.node_count();
  if (n != 0) {
    core::DijkstraWorkspace targeted;
    core::DijkstraWorkspace full;
    engine.Run(targeted, 0, 0.0, n - 1);
    engine.Run(full, 0, 0.0);
    const double a = targeted.DistanceTo(n - 1);
    const double b = full.DistanceTo(n - 1);
    if (std::memcmp(&a, &b, sizeof(double)) != 0) std::abort();
  }
  return 0;
}

}  // namespace riskroute::fuzz

#ifdef RISKROUTE_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return riskroute::fuzz::FuzzSnapshot(data, size);
}
#endif
