#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>

#include "fuzz/harness.h"
#include "server/wire.h"

namespace riskroute::fuzz {
namespace {

namespace wire = server::wire;

/// Streams `bytes` through a FrameAssembler in small chunks and returns
/// the first complete frame, or nullopt when the stream errors or
/// starves. Must never throw or crash regardless of input.
std::optional<wire::Frame> FirstAssembledFrame(const std::uint8_t* data,
                                               std::size_t size,
                                               const wire::WireLimits& limits) {
  wire::FrameAssembler assembler(limits);
  std::size_t offset = 0;
  while (true) {
    auto polled = assembler.Poll();
    if (!polled.ok()) {
      // Stream-level rejects must carry an explanation too.
      if (polled.error().message.empty()) std::abort();
      return std::nullopt;
    }
    if (polled.value().has_value()) return std::move(*polled.value());
    if (offset == size) return std::nullopt;  // starved
    const std::size_t chunk = std::min<std::size_t>(7, size - offset);
    assembler.Append(reinterpret_cast<const char*>(data) + offset, chunk);
    offset += chunk;
  }
}

}  // namespace

int FuzzWire(const std::uint8_t* data, std::size_t size) {
  const wire::WireLimits limits;  // request-side defensive defaults
  const std::span<const std::uint8_t> bytes(data, size);
  const auto decoded = wire::DecodeSingleFrame(bytes, limits);

  if (!decoded.ok()) {
    // Hostile bytes are rejected, never thrown on; every reject must
    // explain itself.
    if (decoded.error().message.empty()) std::abort();
    // The assembler must also survive the same bytes chunk by chunk.
    (void)FirstAssembledFrame(data, size, limits);
    return 0;
  }

  // Framing accepted: the incremental assembler must recover the exact
  // same frame from the same bytes split into arbitrary chunks.
  const wire::Frame& frame = decoded.value();
  const auto assembled = FirstAssembledFrame(data, size, limits);
  if (!assembled.has_value() || assembled->header.kind != frame.header.kind ||
      assembled->header.id != frame.header.id ||
      assembled->payload != frame.payload) {
    std::abort();
  }

  // Payload decode + re-encode: the format is canonical, so an accepted
  // frame must re-serialize to the exact input bytes.
  const std::span<const std::uint8_t> payload(
      reinterpret_cast<const std::uint8_t*>(frame.payload.data()),
      frame.payload.size());
  std::string reencoded;
  if (frame.header.kind == wire::FrameKind::kResponse) {
    const auto response =
        wire::DecodeResponsePayload(frame.header, payload, limits);
    if (!response.ok()) {
      if (response.error().message.empty()) std::abort();
      return 0;
    }
    reencoded = wire::EncodeResponse(response.value().id,
                                     response.value().status,
                                     response.value().body);
  } else {
    const auto request =
        wire::DecodeRequestPayload(frame.header, payload, limits);
    if (!request.ok()) {
      if (request.error().message.empty()) std::abort();
      return 0;
    }
    reencoded = wire::EncodeRequest(request.value());
  }
  if (reencoded.size() != size ||
      (size != 0 && std::memcmp(reencoded.data(), data, size) != 0)) {
    std::abort();
  }
  return 0;
}

}  // namespace riskroute::fuzz

#ifdef RISKROUTE_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return riskroute::fuzz::FuzzWire(data, size);
}
#endif
