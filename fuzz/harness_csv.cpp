#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "util/csv.h"

namespace riskroute::fuzz {
namespace {

/// Tight limits keep one fuzz iteration cheap; the write→read re-check
/// uses the (far larger) defaults so quoting overhead cannot trip it.
util::CsvLimits HarnessLimits() {
  util::CsvLimits limits;
  limits.max_field_bytes = 4096;
  limits.max_fields_per_row = 64;
  limits.max_record_bytes = 1 << 20;
  limits.max_rows = 4096;
  return limits;
}

}  // namespace

int FuzzCsv(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const util::CsvLimits limits = HarnessLimits();

  // Single-record path: a parsed record must survive escape → re-parse.
  if (const auto record = util::ParseCsvLineResult(text, limits);
      record.ok()) {
    std::string rewritten;
    for (std::size_t i = 0; i < record.value().size(); ++i) {
      if (i != 0) rewritten.push_back(',');
      rewritten += util::EscapeCsvField(record.value()[i]);
    }
    const auto again = util::ParseCsvLineResult(rewritten);
    if (!again.ok() || again.value() != record.value()) std::abort();
  }

  // Stream path: accepted rows must write back and read back losslessly.
  std::istringstream in(text);
  const auto rows = util::ReadCsvResult(in, limits);
  if (!rows.ok()) return 0;
  std::ostringstream out;
  util::CsvWriter writer(out);
  std::vector<util::CsvRow> expected;
  for (const util::CsvRow& row : rows.value()) {
    writer.WriteRow(row);
    // A row that is one empty field writes as a blank line, which the
    // reader (correctly) skips as a separator; exclude it from the oracle.
    if (!(row.size() == 1 && row[0].empty())) expected.push_back(row);
  }
  std::istringstream in2(out.str());
  const auto again = util::ReadCsvResult(in2);
  if (!again.ok() || again.value() != expected) std::abort();
  return 0;
}

}  // namespace riskroute::fuzz

#ifdef RISKROUTE_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return riskroute::fuzz::FuzzCsv(data, size);
}
#endif
