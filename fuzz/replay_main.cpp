// Deterministic corpus replay for the fuzz harnesses (the `fuzz_replay`
// ctest, label `sanitize`).
//
// Feeds every file under <corpus>/{csv,advisory,catalog,args}/ through the
// matching harness entry point, byte-for-byte, in filename order — so CI
// exercises the checked-in seed + crash corpus on every run without
// libFuzzer. With --mutate N it additionally runs N Philox-derived
// mutations of each seed (bit flips, inserts, erases, truncations); the
// mutation stream is keyed by (directory, file) index, so the run is
// bitwise reproducible on any machine and thread count.
//
//   fuzz_replay fuzz/corpus            # replay corpus byte-for-byte
//   fuzz_replay fuzz/corpus --mutate 256
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "util/philox.h"

namespace {

using Harness = int (*)(const std::uint8_t*, std::size_t);

struct HarnessDir {
  const char* name;
  Harness fn;
};

constexpr HarnessDir kHarnesses[] = {
    {"csv", riskroute::fuzz::FuzzCsv},
    {"advisory", riskroute::fuzz::FuzzAdvisory},
    {"catalog", riskroute::fuzz::FuzzCatalog},
    {"args", riskroute::fuzz::FuzzArgs},
    {"snapshot", riskroute::fuzz::FuzzSnapshot},
    {"wire", riskroute::fuzz::FuzzWire},
};

std::vector<std::uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// One deterministic mutation: flip, insert, erase, or truncate.
void MutateOnce(std::vector<std::uint8_t>& bytes,
                riskroute::util::PhiloxRng& rng) {
  const std::uint32_t op = rng.NextU32() % 4;
  if (bytes.empty()) {
    bytes.push_back(static_cast<std::uint8_t>(rng.NextU32()));
    return;
  }
  const std::size_t pos = rng.NextU32() % bytes.size();
  switch (op) {
    case 0:
      bytes[pos] ^= static_cast<std::uint8_t>(1u << (rng.NextU32() % 8));
      break;
    case 1:
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                   static_cast<std::uint8_t>(rng.NextU32()));
      break;
    case 2:
      bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(pos));
      break;
    default:
      bytes.resize(pos);
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path corpus = "fuzz/corpus";
  std::size_t mutate_rounds = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mutate") == 0 && i + 1 < argc) {
      mutate_rounds = static_cast<std::size_t>(std::strtoull(
          argv[++i], nullptr, 10));
    } else {
      corpus = argv[i];
    }
  }

  std::size_t files = 0, executions = 0;
  for (std::size_t h = 0; h < std::size(kHarnesses); ++h) {
    const HarnessDir& harness = kHarnesses[h];
    const std::filesystem::path dir = corpus / harness.name;
    if (!std::filesystem::is_directory(dir)) {
      std::fprintf(stderr, "fuzz_replay: missing corpus directory %s\n",
                   dir.string().c_str());
      return 1;
    }
    std::vector<std::filesystem::path> paths;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file()) paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (std::size_t f = 0; f < paths.size(); ++f) {
      const std::vector<std::uint8_t> seed = ReadFile(paths[f]);
      harness.fn(seed.data(), seed.size());
      ++files;
      ++executions;
      // Mutation stream keyed by (harness, file) index, not filesystem
      // order or clocks: byte-identical replay on every run.
      riskroute::util::PhiloxRng rng(0x5EEDF00Du,
                                     h * 1'000'000u + f);
      for (std::size_t round = 0; round < mutate_rounds; ++round) {
        std::vector<std::uint8_t> mutated = seed;
        const std::uint32_t stack = 1 + rng.NextU32() % 4;
        for (std::uint32_t m = 0; m < stack; ++m) MutateOnce(mutated, rng);
        harness.fn(mutated.data(), mutated.size());
        ++executions;
      }
    }
    if (paths.empty()) {
      std::fprintf(stderr, "fuzz_replay: empty corpus directory %s\n",
                   dir.string().c_str());
      return 1;
    }
  }
  std::printf("fuzz_replay: %zu corpus files, %zu executions, 0 crashes\n",
              files, executions);
  return 0;
}
