#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "fuzz/harness.h"
#include "hazard/catalog_io.h"

namespace riskroute::fuzz {

int FuzzCatalog(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  hazard::CatalogCsvLimits limits;
  limits.max_rows = 4096;
  std::istringstream in(text);
  const auto result = hazard::ReadCatalogsCsvResult(in, limits);
  if (!result.ok()) return 0;

  // Accepted catalogs must survive write → read: same grouping, same
  // years/months, coordinates within the writer's %.6f precision.
  std::istringstream in2(hazard::CatalogsToCsv(result.value()));
  const auto again = hazard::ReadCatalogsCsvResult(in2, limits);
  if (!again.ok()) std::abort();
  if (again.value().size() != result.value().size()) std::abort();
  for (std::size_t c = 0; c < again.value().size(); ++c) {
    const hazard::Catalog& a = result.value()[c];
    const hazard::Catalog& b = again.value()[c];
    if (a.type() != b.type() || a.size() != b.size()) std::abort();
    for (std::size_t e = 0; e < a.size(); ++e) {
      const hazard::Event& ea = a.events()[e];
      const hazard::Event& eb = b.events()[e];
      if (ea.year != eb.year || ea.month != eb.month) std::abort();
      if (std::fabs(ea.location.latitude() - eb.location.latitude()) > 1e-5 ||
          std::fabs(ea.location.longitude() - eb.location.longitude()) >
              1e-5) {
        std::abort();
      }
    }
  }
  return 0;
}

}  // namespace riskroute::fuzz

#ifdef RISKROUTE_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return riskroute::fuzz::FuzzCatalog(data, size);
}
#endif
