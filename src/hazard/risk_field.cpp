#include "hazard/risk_field.h"

#include <algorithm>
#include <bit>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::hazard {
namespace {

/// Cache accounting. Every consumer in the pipeline queries the cache
/// from one thread (Study warms it before the parallel sweeps run), so
/// hit/miss totals are a pure function of the query stream — stable.
struct CacheMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& hits = reg.GetCounter("hazard.risk_cache.hits");
  obs::Counter& misses = reg.GetCounter("hazard.risk_cache.misses");
  obs::Gauge& size = reg.GetGauge("hazard.risk_cache.size");

  static CacheMetrics& Get() {
    static CacheMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::vector<double> PaperBandwidths() {
  // Table 1 of the paper, in AllHazardTypes() order.
  return {71.56, 59.48, 24.38, 298.82, 3.59};
}

HistoricalRiskField::HistoricalRiskField(
    const std::vector<Catalog>& catalogs,
    const std::vector<double>& bandwidth_miles) {
  if (catalogs.empty()) {
    throw InvalidArgument("HistoricalRiskField: no catalogs");
  }
  if (catalogs.size() != bandwidth_miles.size()) {
    throw InvalidArgument(util::Format(
        "HistoricalRiskField: %zu catalogs but %zu bandwidths",
        catalogs.size(), bandwidth_miles.size()));
  }
  models_.reserve(catalogs.size());
  for (std::size_t i = 0; i < catalogs.size(); ++i) {
    models_.push_back(TypedModel{
        catalogs[i].type(),
        stats::KernelDensity2D(catalogs[i].Locations(), bandwidth_miles[i])});
  }
  type_weights_.assign(models_.size(), 1.0);
}

void HistoricalRiskField::SetTypeWeights(const std::vector<double>& weights) {
  if (weights.size() != models_.size()) {
    throw InvalidArgument(util::Format(
        "SetTypeWeights: %zu weights for %zu models", weights.size(),
        models_.size()));
  }
  for (const double w : weights) {
    if (w < 0.0) throw InvalidArgument("SetTypeWeights: negative weight");
  }
  type_weights_ = weights;
}

HistoricalRiskField HistoricalRiskField::TrainFromCatalogs(
    const std::vector<Catalog>& catalogs,
    const std::vector<double>& candidate_bandwidths,
    const stats::CrossValidationOptions& cv_options) {
  std::vector<double> bandwidths;
  bandwidths.reserve(catalogs.size());
  for (const Catalog& catalog : catalogs) {
    const stats::BandwidthSelection selection = stats::SelectBandwidth(
        catalog.Locations(), candidate_bandwidths, cv_options);
    bandwidths.push_back(selection.best_bandwidth_miles);
  }
  return HistoricalRiskField(catalogs, bandwidths);
}

void HistoricalRiskField::CalibrateTo(
    const std::vector<geo::GeoPoint>& reference, double target_mean) {
  if (reference.empty()) {
    throw InvalidArgument("CalibrateTo: empty reference set");
  }
  if (!(target_mean > 0.0)) {
    throw InvalidArgument("CalibrateTo: target mean must be positive");
  }
  scale_ = 1.0;
  const std::vector<double> risks = RisksAt(reference);
  double sum = 0.0;
  for (const double r : risks) sum += r;
  const double mean = sum / static_cast<double>(reference.size());
  if (mean <= 0.0) {
    throw InvalidArgument("CalibrateTo: reference set has zero mean risk");
  }
  scale_ = target_mean / mean;
}

double HistoricalRiskField::RiskAt(const geo::GeoPoint& p) const {
  double total = 0.0;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    total += type_weights_[i] * models_[i].kde.Evaluate(p);
  }
  return scale_ * total;
}

double HistoricalRiskField::RiskAt(const geo::GeoPoint& p,
                                   HazardType type) const {
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (models_[i].type == type) {
      return scale_ * type_weights_[i] * models_[i].kde.Evaluate(p);
    }
  }
  throw InvalidArgument("HistoricalRiskField: no model for hazard type");
}

void HistoricalRiskField::RisksAt(std::span<const geo::GeoPoint> points,
                                  std::span<double> out) const {
  if (points.size() != out.size()) {
    throw InvalidArgument("RisksAt: output span size mismatch");
  }
  // Accumulate w_t * p_t(y) in model order, then scale — the same
  // operation order as RiskAt, so results are bitwise equal.
  std::fill(out.begin(), out.end(), 0.0);
  std::vector<double> densities(points.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    models_[i].kde.EvaluateBatch(points, densities);
    const double w = type_weights_[i];
    for (std::size_t j = 0; j < out.size(); ++j) {
      out[j] += w * densities[j];
    }
  }
  for (double& r : out) r *= scale_;
}

std::vector<double> HistoricalRiskField::RisksAt(
    std::span<const geo::GeoPoint> points) const {
  std::vector<double> out(points.size());
  RisksAt(points, out);
  return out;
}

std::vector<double> HistoricalRiskField::PopRisks(
    const topology::Network& network) const {
  std::vector<geo::GeoPoint> locations;
  locations.reserve(network.pop_count());
  for (const topology::Pop& pop : network.pops()) {
    locations.push_back(pop.location);
  }
  return RisksAt(locations);
}

HazardType HistoricalRiskField::model_type(std::size_t i) const {
  if (i >= models_.size()) {
    throw InvalidArgument("HistoricalRiskField: model index out of range");
  }
  return models_[i].type;
}

const stats::KernelDensity2D& HistoricalRiskField::model(std::size_t i) const {
  if (i >= models_.size()) {
    throw InvalidArgument("HistoricalRiskField: model index out of range");
  }
  return models_[i].kde;
}

// ---------------------------------------------------------------------------
// RiskFieldCache

RiskFieldCache::RiskFieldCache(const HistoricalRiskField& field)
    : field_(&field) {}

RiskFieldCache::Key RiskFieldCache::KeyOf(const geo::GeoPoint& p) {
  return Key{std::bit_cast<std::uint64_t>(p.latitude()),
             std::bit_cast<std::uint64_t>(p.longitude())};
}

std::size_t RiskFieldCache::KeyHash::operator()(const Key& k) const noexcept {
  // Mix the two coordinate payloads (splitmix64 finalizer).
  std::uint64_t h = k.lat_bits + 0x9e3779b97f4a7c15ULL * k.lon_bits;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::size_t>(h);
}

double RiskFieldCache::RiskAt(const geo::GeoPoint& p) const {
  CacheMetrics& metrics = CacheMetrics::Get();
  const Key key = KeyOf(p);
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      metrics.hits.Add(1);
      return it->second;
    }
  }
  metrics.misses.Add(1);
  const double risk = field_->RiskAt(p);
  std::lock_guard lock(mutex_);
  cache_.emplace(key, risk);
  metrics.size.Set(static_cast<std::int64_t>(cache_.size()));
  return risk;
}

void RiskFieldCache::RisksAt(std::span<const geo::GeoPoint> points,
                             std::span<double> out) const {
  if (points.size() != out.size()) {
    throw InvalidArgument("RiskFieldCache::RisksAt: span size mismatch");
  }
  // Resolve hits and collect misses under the lock, evaluate the misses in
  // one batch outside it, then publish.
  std::vector<std::size_t> misses;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto it = cache_.find(KeyOf(points[i]));
      if (it != cache_.end()) {
        out[i] = it->second;
      } else {
        misses.push_back(i);
      }
    }
  }
  CacheMetrics& metrics = CacheMetrics::Get();
  metrics.hits.Add(points.size() - misses.size());
  metrics.misses.Add(misses.size());
  if (misses.empty()) return;
  std::vector<geo::GeoPoint> miss_points;
  miss_points.reserve(misses.size());
  for (const std::size_t i : misses) miss_points.push_back(points[i]);
  const std::vector<double> risks = field_->RisksAt(miss_points);
  std::lock_guard lock(mutex_);
  for (std::size_t m = 0; m < misses.size(); ++m) {
    out[misses[m]] = risks[m];
    cache_.emplace(KeyOf(miss_points[m]), risks[m]);
  }
  metrics.size.Set(static_cast<std::int64_t>(cache_.size()));
}

std::vector<double> RiskFieldCache::PopRisks(
    const topology::Network& network) const {
  std::vector<geo::GeoPoint> locations;
  locations.reserve(network.pop_count());
  for (const topology::Pop& pop : network.pops()) {
    locations.push_back(pop.location);
  }
  std::vector<double> out(locations.size());
  RisksAt(locations, out);
  return out;
}

void RiskFieldCache::Warm(std::span<const geo::GeoPoint> points) const {
  std::vector<double> scratch(points.size());
  RisksAt(points, scratch);
}

std::size_t RiskFieldCache::size() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

}  // namespace riskroute::hazard
