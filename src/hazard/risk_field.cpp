#include "hazard/risk_field.h"

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::hazard {

std::vector<double> PaperBandwidths() {
  // Table 1 of the paper, in AllHazardTypes() order.
  return {71.56, 59.48, 24.38, 298.82, 3.59};
}

HistoricalRiskField::HistoricalRiskField(
    const std::vector<Catalog>& catalogs,
    const std::vector<double>& bandwidth_miles) {
  if (catalogs.empty()) {
    throw InvalidArgument("HistoricalRiskField: no catalogs");
  }
  if (catalogs.size() != bandwidth_miles.size()) {
    throw InvalidArgument(util::Format(
        "HistoricalRiskField: %zu catalogs but %zu bandwidths",
        catalogs.size(), bandwidth_miles.size()));
  }
  models_.reserve(catalogs.size());
  for (std::size_t i = 0; i < catalogs.size(); ++i) {
    models_.push_back(TypedModel{
        catalogs[i].type(),
        stats::KernelDensity2D(catalogs[i].Locations(), bandwidth_miles[i])});
  }
  type_weights_.assign(models_.size(), 1.0);
}

void HistoricalRiskField::SetTypeWeights(const std::vector<double>& weights) {
  if (weights.size() != models_.size()) {
    throw InvalidArgument(util::Format(
        "SetTypeWeights: %zu weights for %zu models", weights.size(),
        models_.size()));
  }
  for (const double w : weights) {
    if (w < 0.0) throw InvalidArgument("SetTypeWeights: negative weight");
  }
  type_weights_ = weights;
}

HistoricalRiskField HistoricalRiskField::TrainFromCatalogs(
    const std::vector<Catalog>& catalogs,
    const std::vector<double>& candidate_bandwidths,
    const stats::CrossValidationOptions& cv_options) {
  std::vector<double> bandwidths;
  bandwidths.reserve(catalogs.size());
  for (const Catalog& catalog : catalogs) {
    const stats::BandwidthSelection selection = stats::SelectBandwidth(
        catalog.Locations(), candidate_bandwidths, cv_options);
    bandwidths.push_back(selection.best_bandwidth_miles);
  }
  return HistoricalRiskField(catalogs, bandwidths);
}

void HistoricalRiskField::CalibrateTo(
    const std::vector<geo::GeoPoint>& reference, double target_mean) {
  if (reference.empty()) {
    throw InvalidArgument("CalibrateTo: empty reference set");
  }
  if (!(target_mean > 0.0)) {
    throw InvalidArgument("CalibrateTo: target mean must be positive");
  }
  scale_ = 1.0;
  double sum = 0.0;
  for (const geo::GeoPoint& p : reference) sum += RiskAt(p);
  const double mean = sum / static_cast<double>(reference.size());
  if (mean <= 0.0) {
    throw InvalidArgument("CalibrateTo: reference set has zero mean risk");
  }
  scale_ = target_mean / mean;
}

double HistoricalRiskField::RiskAt(const geo::GeoPoint& p) const {
  double total = 0.0;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    total += type_weights_[i] * models_[i].kde.Evaluate(p);
  }
  return scale_ * total;
}

double HistoricalRiskField::RiskAt(const geo::GeoPoint& p,
                                   HazardType type) const {
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (models_[i].type == type) {
      return scale_ * type_weights_[i] * models_[i].kde.Evaluate(p);
    }
  }
  throw InvalidArgument("HistoricalRiskField: no model for hazard type");
}

std::vector<double> HistoricalRiskField::PopRisks(
    const topology::Network& network) const {
  std::vector<double> risks;
  risks.reserve(network.pop_count());
  for (const topology::Pop& pop : network.pops()) {
    risks.push_back(RiskAt(pop.location));
  }
  return risks;
}

HazardType HistoricalRiskField::model_type(std::size_t i) const {
  if (i >= models_.size()) {
    throw InvalidArgument("HistoricalRiskField: model index out of range");
  }
  return models_[i].type;
}

const stats::KernelDensity2D& HistoricalRiskField::model(std::size_t i) const {
  if (i >= models_.size()) {
    throw InvalidArgument("HistoricalRiskField: model index out of range");
  }
  return models_[i].kde;
}

}  // namespace riskroute::hazard
