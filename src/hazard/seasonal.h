// Seasonal historical risk (an extension the paper explicitly defers:
// "while we acknowledge that many of the disaster events have strong
// seasonal correlations (e.g., tornados, hurricanes), for simplicity,
// here we only consider a single outage probability distribution for each
// disaster event type" — Section 5.2).
//
// SeasonalRiskField trains one KDE per (hazard, season) from the
// season-filtered catalogs and weights each by the share of the type's
// events that fall in that season, so the average over the four seasons
// equals the static annual field. Routing against the current month makes
// Gulf-coast corridors expensive in September and cheap in February.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "hazard/catalog.h"
#include "hazard/risk_field.h"
#include "topology/network.h"

namespace riskroute::hazard {

/// Meteorological seasons.
enum class Season { kWinter, kSpring, kSummer, kFall };

[[nodiscard]] std::string_view ToString(Season season);

/// Season of a calendar month (1-12): Dec-Feb winter, Mar-May spring,
/// Jun-Aug summer, Sep-Nov fall. Throws on an invalid month.
[[nodiscard]] Season SeasonOfMonth(int month);

/// All four seasons, calendar order starting at winter.
[[nodiscard]] const std::vector<Season>& AllSeasons();

/// Per-season aggregate risk field.
class SeasonalRiskField {
 public:
  /// Builds four per-season fields from the catalogs. Each (type, season)
  /// KDE is weighted by 4 * (events in season) / (total events), so that
  /// mean_over_seasons(RiskAt) == the static annual field's RiskAt (up to
  /// the KDE's own season-conditioned shape). A (type, season) slice with
  /// too few events (< 8) contributes zero for that season.
  SeasonalRiskField(const std::vector<Catalog>& catalogs,
                    const std::vector<double>& bandwidth_miles);

  /// Risk at a location during a season.
  [[nodiscard]] double RiskAt(const geo::GeoPoint& p, Season season) const;

  /// Risk at a location during a calendar month.
  [[nodiscard]] double RiskAt(const geo::GeoPoint& p, int month) const;

  /// o_h for every PoP of a network, for one season.
  [[nodiscard]] std::vector<double> PopRisks(const topology::Network& network,
                                             Season season) const;

  /// Rescales all four fields by one factor so the mean over `reference`
  /// of the season-averaged risk equals `target_mean`.
  void CalibrateTo(const std::vector<geo::GeoPoint>& reference,
                   double target_mean = kDefaultMeanPopRisk);

  /// Ratio of a season's mean risk (over `reference`) to the annual mean:
  /// > 1 in the type's active season. Useful for reporting.
  [[nodiscard]] double SeasonalAmplification(
      const std::vector<geo::GeoPoint>& reference, Season season) const;

 private:
  struct SeasonSlice {
    // One weighted KDE per hazard type that had enough events; the weight
    // rescales the season-conditioned density to event-frequency terms.
    std::vector<double> weights;
    std::vector<std::unique_ptr<stats::KernelDensity2D>> models;
  };
  std::array<SeasonSlice, 4> slices_;
  double scale_ = 1.0;
};

}  // namespace riskroute::hazard
