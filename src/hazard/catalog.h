// Historical natural-disaster event catalogs (paper Section 4.3).
//
// The paper draws on FEMA emergency declarations (1970-2010, county-level)
// for severe storms, tornadoes and hurricanes, and NOAA records for wind
// damage and earthquakes. A catalog here is simply a typed list of
// geolocated, dated events.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "geo/geo_point.h"

namespace riskroute::hazard {

/// The five event classes the paper's risk analysis uses.
enum class HazardType {
  kFemaHurricane,
  kFemaTornado,
  kFemaStorm,
  kNoaaEarthquake,
  kNoaaWind,
};

/// All hazard types, in the paper's Table 1 order.
[[nodiscard]] const std::vector<HazardType>& AllHazardTypes();

[[nodiscard]] std::string_view ToString(HazardType type);
[[nodiscard]] std::optional<HazardType> ParseHazardType(std::string_view s);

/// The paper's event count for each catalog (Section 4.3 / Table 1).
[[nodiscard]] std::size_t PaperEventCount(HazardType type);

/// One historical event.
struct Event {
  geo::GeoPoint location;
  int year = 1970;
  int month = 6;  // 1-12
};

/// A typed event catalog.
class Catalog {
 public:
  Catalog(HazardType type, std::vector<Event> events);

  [[nodiscard]] HazardType type() const { return type_; }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Event locations only (the KDE input).
  [[nodiscard]] std::vector<geo::GeoPoint> Locations() const;

  /// Events within [first_year, last_year] inclusive.
  [[nodiscard]] Catalog FilterYears(int first_year, int last_year) const;

  /// Events whose month is in [first_month, last_month] inclusive
  /// (1-12; wrapping ranges like Nov-Feb are expressed as 11, 2).
  [[nodiscard]] Catalog FilterMonths(int first_month, int last_month) const;

 private:
  HazardType type_;
  std::vector<Event> events_;
};

}  // namespace riskroute::hazard
