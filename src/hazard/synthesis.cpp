#include "hazard/synthesis.h"

#include <array>
#include <cmath>

#include "geo/conus.h"
#include "geo/distance.h"
#include "topology/gazetteer.h"
#include "util/error.h"

namespace riskroute::hazard {
namespace {

/// Draws one point from a component (half-Gaussian radial profile),
/// re-drawing until it lands inside the continental US. A component whose
/// centre is barely onshore (coastal hurricanes) simply concentrates its
/// kept draws on the landward side, which is exactly the behaviour of
/// county-level FEMA declarations.
geo::GeoPoint SampleComponent(const MixtureComponent& component,
                              util::Rng& rng) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    const double bearing = rng.Uniform(0.0, 360.0);
    const double radius = std::fabs(rng.Gaussian(0.0, component.sigma_miles));
    const geo::GeoPoint p =
        geo::Destination(component.center, bearing, radius);
    if (geo::InConus(p)) return p;
  }
  // A component hugging the coastline can exhaust its draws; fall back to
  // its centre (county-level archives record such events onshore anyway).
  return component.center;
}

std::vector<MixtureComponent> HurricaneMixture() {
  // Gulf + Atlantic coastal band; weights fall northward along the
  // Atlantic, matching landfall climatology.
  return {
      {{25.9, -97.4}, 0.5, 144},   // south Texas coast
      {{27.9, -97.2}, 0.7, 144},   // Corpus Christi
      {{29.5, -95.0}, 1.1, 162},   // Houston/Galveston
      {{29.8, -93.3}, 0.9, 153},   // SW Louisiana
      {{29.9, -90.2}, 1.3, 162},   // New Orleans
      {{30.4, -88.6}, 1.1, 153},   // MS/AL coast
      {{30.3, -86.5}, 0.9, 153},   // FL panhandle
      {{27.9, -82.6}, 1.0, 162},   // Tampa
      {{25.9, -80.5}, 1.3, 171},   // Miami / south FL
      {{28.3, -80.7}, 0.8, 153},   // Cape Canaveral
      {{30.4, -81.7}, 0.6, 153},   // Jacksonville
      {{32.8, -79.9}, 0.7, 162},   // Charleston
      {{34.2, -77.9}, 0.8, 171},   // Wilmington NC
      {{35.3, -75.9}, 0.9, 180},  // Outer Banks
      {{36.9, -76.2}, 0.5, 171},   // Hampton Roads
      {{39.0, -74.9}, 0.4, 180},  // New Jersey shore
      {{40.8, -72.9}, 0.3, 198},  // Long Island
      {{41.6, -70.6}, 0.2, 198},  // New England coast
  };
}

std::vector<MixtureComponent> TornadoMixture() {
  // Tornado alley + Dixie alley.
  return {
      {{35.5, -97.5}, 1.5, 208},   // central Oklahoma
      {{37.7, -97.3}, 1.3, 208},   // Kansas
      {{32.9, -97.0}, 1.2, 224},   // north Texas
      {{36.1, -95.9}, 1.0, 192},   // Tulsa
      {{39.0, -94.6}, 0.9, 224},   // Kansas City / western MO
      {{41.0, -96.5}, 0.8, 240},   // Nebraska
      {{34.7, -92.3}, 0.9, 208},   // Arkansas
      {{33.5, -86.8}, 1.0, 208},   // Alabama (Dixie alley)
      {{32.3, -90.2}, 0.9, 192},   // Mississippi
      {{35.1, -90.0}, 0.8, 192},   // Memphis corridor
      {{39.8, -89.6}, 0.7, 240},   // Illinois
      {{41.6, -93.6}, 0.7, 224},   // Iowa
      {{38.0, -87.5}, 0.6, 208},   // lower Ohio valley
      {{31.2, -85.4}, 0.5, 192},   // SE Alabama / FL panhandle
  };
}

std::vector<MixtureComponent> StormMixture() {
  // Severe-storm declarations blanket the plains, midwest and southeast
  // with broad regional mass and lighter coverage toward both coasts.
  return {
      {{35.5, -97.5}, 1.2, 180},  // southern plains
      {{38.5, -98.0}, 1.1, 190},  // central plains
      {{41.5, -96.0}, 1.0, 190},  // northern plains
      {{44.5, -93.5}, 0.8, 180},  // upper midwest
      {{40.0, -89.0}, 1.1, 170},  // Illinois / Indiana
      {{39.0, -84.5}, 0.9, 160},  // Ohio valley
      {{35.5, -86.5}, 1.0, 160},  // Tennessee
      {{33.0, -87.0}, 0.9, 150},  // deep south
      {{32.5, -92.5}, 0.9, 150},  // Louisiana / Arkansas
      {{31.0, -97.5}, 0.9, 170},  // Texas
      {{34.0, -81.0}, 0.7, 150},  // Carolinas
      {{38.5, -78.5}, 0.7, 140},  // Virginia / mid-Atlantic
      {{41.5, -75.5}, 0.6, 140},  // Pennsylvania / New York
      {{43.5, -71.5}, 0.4, 140},  // New England
      {{46.5, -100.0}, 0.4, 200},  // Dakotas
      {{39.5, -104.5}, 0.15, 120}, // Colorado front range
  };
}

std::vector<MixtureComponent> EarthquakeMixture() {
  // West-coast dominated, with the New Madrid seismic zone and scattered
  // intermountain activity; the wide sigmas of the sparse interior
  // components drive the large CV bandwidth the paper reports (298.8 mi).
  return {
      {{34.1, -118.2}, 1.6, 209},  // southern California
      {{37.5, -121.9}, 1.4, 209},  // Bay Area
      {{40.5, -124.0}, 0.7, 228},  // Cape Mendocino
      {{47.5, -122.3}, 0.8, 266},  // Puget Sound
      {{44.0, -121.0}, 0.3, 418},  // Oregon interior
      {{39.5, -119.8}, 0.5, 380},  // Nevada
      {{40.7, -112.0}, 0.4, 418},  // Wasatch front
      {{44.5, -110.5}, 0.3, 456},  // Yellowstone
      {{35.3, -90.0}, 0.5, 380},   // New Madrid
      {{33.0, -115.5}, 0.6, 247},  // Imperial valley
      {{36.7, -105.9}, 0.2, 494},  // Rio Grande rift
      {{34.9, -106.5}, 0.2, 494},  // New Mexico scatter
  };
}

/// Regional storm-proneness factor at a location: the (unnormalized)
/// storm-mixture weight, used to modulate wind-report cluster placement.
double StormProneness(const geo::GeoPoint& p) {
  static const std::vector<MixtureComponent> storm = [] {
    std::vector<MixtureComponent> combined = StormMixture();
    // Convective wind damage also concentrates along the hurricane coasts.
    for (MixtureComponent c : HurricaneMixture()) {
      c.weight *= 0.8;
      combined.push_back(c);
    }
    return combined;
  }();
  double total = 0.0;
  for (const MixtureComponent& c : storm) {
    const double d = geo::ApproxMiles(p, c.center);
    total += c.weight * std::exp(-d * d / (2.0 * c.sigma_miles * c.sigma_miles));
  }
  return total;
}

/// Wind-damage cluster centres anchor near cities, weighted by population
/// and by storm-proneness. NOAA wind-damage reports are filed by local
/// spotters and stations, so the archive is strongly population-biased on
/// top of its meteorological gradient — reproducing that bias is what
/// gives PoPs (which also sit in cities) a systematic, regionally graded
/// wind-risk signal rather than uncorrelated spikes.
std::vector<MixtureComponent> WindClusterCenterMixture() {
  std::vector<MixtureComponent> mixture;
  for (const topology::City& city : topology::Cities()) {
    const geo::GeoPoint site = city.location();
    // Sub-linear population exponent: reporting density saturates in big
    // metros, so the regional (meteorological) gradient dominates.
    const double weight =
        std::pow(city.population, 0.3) * (0.03 + StormProneness(site));
    mixture.push_back(MixtureComponent{site, weight, 18.0});
  }
  return mixture;
}

}  // namespace

std::array<double, 12> SeasonalProfile(HazardType type) {
  //                    J    F    M    A    M    J    J    A    S    O    N    D
  switch (type) {
    case HazardType::kFemaHurricane:
      return {0.1, 0.1, 0.1, 0.1, 0.3, 1.5, 2.5, 6.0, 7.0, 3.0, 0.8, 0.1};
    case HazardType::kFemaTornado:
      return {0.5, 0.8, 2.0, 4.5, 5.5, 3.5, 1.8, 1.2, 1.0, 1.0, 1.2, 0.6};
    case HazardType::kFemaStorm:
      return {1.0, 1.2, 2.0, 3.0, 3.5, 3.0, 2.5, 2.0, 1.5, 1.2, 1.0, 1.0};
    case HazardType::kNoaaEarthquake:
      return {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
    case HazardType::kNoaaWind:
      return {0.8, 1.0, 1.8, 2.8, 3.5, 3.8, 3.2, 2.5, 1.5, 1.0, 0.9, 0.8};
  }
  throw InternalError("unknown HazardType");
}

std::vector<Event> SampleMixture(const std::vector<MixtureComponent>& mixture,
                                 std::size_t count, util::Rng& rng) {
  if (mixture.empty()) throw InvalidArgument("SampleMixture: empty mixture");
  std::vector<double> weights;
  weights.reserve(mixture.size());
  for (const MixtureComponent& c : mixture) weights.push_back(c.weight);
  std::vector<Event> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const MixtureComponent& component = mixture[rng.WeightedIndex(weights)];
    events.push_back(Event{SampleComponent(component, rng),
                           static_cast<int>(rng.UniformInt(1970, 2010)),
                           static_cast<int>(rng.UniformInt(1, 12))});
  }
  return events;
}

namespace {

/// Re-stamps event months according to the type's seasonal profile.
void ApplySeasonalMonths(HazardType type, std::vector<Event>& events,
                         util::Rng& rng) {
  const std::array<double, 12> profile = SeasonalProfile(type);
  const std::vector<double> weights(profile.begin(), profile.end());
  for (Event& event : events) {
    event.month = static_cast<int>(rng.WeightedIndex(weights)) + 1;
  }
}

}  // namespace

std::vector<MixtureComponent> MixtureFor(HazardType type) {
  switch (type) {
    case HazardType::kFemaHurricane:
      return HurricaneMixture();
    case HazardType::kFemaTornado:
      return TornadoMixture();
    case HazardType::kFemaStorm:
      return StormMixture();
    case HazardType::kNoaaEarthquake:
      return EarthquakeMixture();
    case HazardType::kNoaaWind:
      return WindClusterCenterMixture();
  }
  throw InternalError("unknown HazardType");
}

Catalog SynthesizeCatalog(HazardType type, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t count = PaperEventCount(type);

  if (type != HazardType::kNoaaWind) {
    std::vector<Event> events = SampleMixture(MixtureFor(type), count, rng);
    ApplySeasonalMonths(type, events, rng);
    return Catalog(type, std::move(events));
  }

  // Wind damage: two-level synthesis. Thousands of small clusters (each a
  // convective event producing many point reports within a few miles)
  // whose centres follow the coarse storm geography. The tight local
  // scatter is what drives wind's very small CV bandwidth (Table 1: 3.59).
  constexpr std::size_t kClusterCount = 6000;
  constexpr double kClusterSigmaMiles = 7.0;
  const std::vector<MixtureComponent> coarse = MixtureFor(type);
  std::vector<MixtureComponent> clusters;
  clusters.reserve(kClusterCount);
  std::vector<double> coarse_weights;
  for (const MixtureComponent& c : coarse) coarse_weights.push_back(c.weight);
  for (std::size_t i = 0; i < kClusterCount; ++i) {
    const MixtureComponent& base = coarse[rng.WeightedIndex(coarse_weights)];
    clusters.push_back(MixtureComponent{SampleComponent(base, rng),
                                        rng.Uniform(0.3, 1.7),
                                        kClusterSigmaMiles});
  }
  std::vector<Event> events = SampleMixture(clusters, count, rng);
  ApplySeasonalMonths(type, events, rng);
  return Catalog(type, std::move(events));
}

std::vector<Catalog> SynthesizeAllCatalogs(std::uint64_t seed) {
  util::Rng root(seed);
  std::vector<Catalog> catalogs;
  std::size_t stream = 1;
  for (const HazardType type : AllHazardTypes()) {
    util::Rng rng = root.Fork(stream++);
    catalogs.push_back(SynthesizeCatalog(type, rng.engine()()));
  }
  return catalogs;
}

}  // namespace riskroute::hazard
