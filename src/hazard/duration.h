// Outage-duration weighting.
//
// The paper notes operators could refine risk using "known ability to
// recover from outage (i.e., outage duration information)" (Section 5).
// A tornado and a hurricane may be equally likely at a PoP, but the
// hurricane's outage lasts days, not hours — so the expected *downtime*
// they contribute differs by an order of magnitude. This module provides
// per-hazard expected outage durations and turns a HistoricalRiskField
// into a downtime-weighted one via the per-type weight hook.
#pragma once

#include <vector>

#include "hazard/catalog.h"
#include "hazard/risk_field.h"

namespace riskroute::hazard {

/// Expected outage duration a hazard of this type inflicts on affected
/// infrastructure, in hours. Rough operational figures: hurricanes cause
/// multi-day outages (flooding, grid loss — Katrina's lasted weeks),
/// earthquakes days, severe storms most of a day, tornado/wind damage is
/// locally severe but repaired within hours.
[[nodiscard]] double ExpectedOutageHours(HazardType type);

/// Duration weights for a field's models, normalized so the mean weight
/// is 1 (keeping the field's calibration meaningful): w_t proportional to
/// ExpectedOutageHours(type_t).
[[nodiscard]] std::vector<double> DowntimeWeights(
    const HistoricalRiskField& field);

/// Applies DowntimeWeights to the field in place: afterwards RiskAt
/// returns expected-downtime-scaled risk. Idempotent only if the field's
/// weights were uniform before.
void ApplyDowntimeWeighting(HistoricalRiskField& field);

}  // namespace riskroute::hazard
