#include "hazard/catalog_io.h"

#include <map>
#include <sstream>
#include <utility>

#include "util/csv.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::hazard {
namespace {

constexpr std::string_view kSource = "catalog";

util::ParseResult<std::vector<Catalog>> Fail(util::ParseErrorKind kind,
                                             std::string message,
                                             std::size_t row = 0) {
  util::ingest::CountRejected(kSource, kind);
  return util::ParseResult<std::vector<Catalog>>::Failure(
      kind, std::move(message), 0, row);
}

}  // namespace

void WriteCatalogsCsv(const std::vector<Catalog>& catalogs,
                      std::ostream& out) {
  util::CsvWriter csv(out);
  csv.Write("type", "latitude", "longitude", "year", "month");
  for (const Catalog& catalog : catalogs) {
    const std::string type(ToString(catalog.type()));
    for (const Event& event : catalog.events()) {
      csv.Write(type, util::Format("%.6f", event.location.latitude()),
                util::Format("%.6f", event.location.longitude()), event.year,
                event.month);
    }
  }
}

std::string CatalogsToCsv(const std::vector<Catalog>& catalogs) {
  std::ostringstream os;
  WriteCatalogsCsv(catalogs, os);
  return os.str();
}

util::ParseResult<std::vector<Catalog>> ReadCatalogsCsvResult(
    std::istream& in, const CatalogCsvLimits& limits) {
  util::CsvLimits csv_limits;
  csv_limits.max_rows = limits.max_rows + 1;  // + header
  auto parsed = util::ReadCsvResult(in, csv_limits);
  if (!parsed.ok()) {
    util::ingest::CountRejected(kSource, parsed.error().kind);
    return parsed.error();
  }
  const std::vector<util::CsvRow>& rows = parsed.value();
  if (rows.empty()) {
    return Fail(util::ParseErrorKind::kEmptyInput, "catalog csv: empty input");
  }
  const util::CsvRow expected_header = {"type", "latitude", "longitude",
                                        "year", "month"};
  if (rows.front() != expected_header) {
    return Fail(util::ParseErrorKind::kBadHeader,
                "catalog csv: unexpected header", 1);
  }
  // Group events by type, preserving first-appearance order.
  std::vector<HazardType> order;
  std::map<HazardType, std::vector<Event>> grouped;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const util::CsvRow& row = rows[r];
    const std::size_t row_no = r + 1;
    if (row.size() != 5) {
      return Fail(util::ParseErrorKind::kBadSyntax,
                  util::Format("catalog csv row %zu: expected 5 fields, got "
                               "%zu",
                               row_no, row.size()),
                  row_no);
    }
    const auto type = ParseHazardType(row[0]);
    if (!type) {
      return Fail(util::ParseErrorKind::kBadValue,
                  util::Format("catalog csv row %zu: unknown hazard type "
                               "'%s'",
                               row_no, row[0].c_str()),
                  row_no);
    }
    const auto lat = util::ParseDouble(row[1]);
    const auto lon = util::ParseDouble(row[2]);
    const auto year = util::ParseInt(row[3]);
    const auto month = util::ParseInt(row[4]);
    if (!lat || !lon || !year || !month) {
      return Fail(util::ParseErrorKind::kBadNumber,
                  util::Format("catalog csv row %zu: malformed numeric "
                               "field",
                               row_no),
                  row_no);
    }
    if (!geo::IsValidLatLon(*lat, *lon)) {
      return Fail(util::ParseErrorKind::kBadValue,
                  util::Format("catalog csv row %zu: invalid coordinates "
                               "(%s, %s)",
                               row_no, row[1].c_str(), row[2].c_str()),
                  row_no);
    }
    // Validate the year window before narrowing to int: a raw cast used
    // to truncate absurd values (negative years, > 4-digit eras) silently.
    if (*year < limits.min_year || *year > limits.max_year) {
      return Fail(util::ParseErrorKind::kBadValue,
                  util::Format("catalog csv row %zu: year %lld outside "
                               "[%lld, %lld]",
                               row_no, *year, limits.min_year,
                               limits.max_year),
                  row_no);
    }
    if (*month < 1 || *month > 12) {
      return Fail(util::ParseErrorKind::kBadValue,
                  util::Format("catalog csv row %zu: month %lld outside "
                               "[1, 12]",
                               row_no, *month),
                  row_no);
    }
    if (!grouped.contains(*type)) order.push_back(*type);
    grouped[*type].push_back(Event{geo::GeoPoint(*lat, *lon),
                                   static_cast<int>(*year),
                                   static_cast<int>(*month)});
  }
  std::vector<Catalog> catalogs;
  catalogs.reserve(order.size());
  for (const HazardType type : order) {
    catalogs.emplace_back(type, std::move(grouped[type]));
  }
  util::ingest::CountAccepted(kSource, rows.size() - 1);
  return catalogs;
}

std::vector<Catalog> ReadCatalogsCsv(std::istream& in) {
  return ReadCatalogsCsvResult(in).ValueOrThrow();
}

std::vector<Catalog> CatalogsFromCsv(const std::string& text) {
  std::istringstream is(text);
  return ReadCatalogsCsv(is);
}

}  // namespace riskroute::hazard
