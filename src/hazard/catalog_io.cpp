#include "hazard/catalog_io.h"

#include <map>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::hazard {

void WriteCatalogsCsv(const std::vector<Catalog>& catalogs,
                      std::ostream& out) {
  util::CsvWriter csv(out);
  csv.Write("type", "latitude", "longitude", "year", "month");
  for (const Catalog& catalog : catalogs) {
    const std::string type(ToString(catalog.type()));
    for (const Event& event : catalog.events()) {
      csv.Write(type, util::Format("%.6f", event.location.latitude()),
                util::Format("%.6f", event.location.longitude()), event.year,
                event.month);
    }
  }
}

std::string CatalogsToCsv(const std::vector<Catalog>& catalogs) {
  std::ostringstream os;
  WriteCatalogsCsv(catalogs, os);
  return os.str();
}

std::vector<Catalog> ReadCatalogsCsv(std::istream& in) {
  const std::vector<util::CsvRow> rows = util::ReadCsv(in);
  if (rows.empty()) throw ParseError("catalog csv: empty input");
  const util::CsvRow expected_header = {"type", "latitude", "longitude",
                                        "year", "month"};
  if (rows.front() != expected_header) {
    throw ParseError("catalog csv: unexpected header");
  }
  // Group events by type, preserving first-appearance order.
  std::vector<HazardType> order;
  std::map<HazardType, std::vector<Event>> grouped;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const util::CsvRow& row = rows[r];
    if (row.size() != 5) {
      throw ParseError(util::Format("catalog csv row %zu: expected 5 fields",
                                    r + 1));
    }
    const auto type = ParseHazardType(row[0]);
    const auto lat = util::ParseDouble(row[1]);
    const auto lon = util::ParseDouble(row[2]);
    const auto year = util::ParseInt(row[3]);
    const auto month = util::ParseInt(row[4]);
    if (!type || !lat || !lon || !year || !month || *month < 1 ||
        *month > 12 || !geo::IsValidLatLon(*lat, *lon)) {
      throw ParseError(util::Format("catalog csv row %zu: malformed values",
                                    r + 1));
    }
    if (!grouped.contains(*type)) order.push_back(*type);
    grouped[*type].push_back(Event{geo::GeoPoint(*lat, *lon),
                                   static_cast<int>(*year),
                                   static_cast<int>(*month)});
  }
  std::vector<Catalog> catalogs;
  catalogs.reserve(order.size());
  for (const HazardType type : order) {
    catalogs.emplace_back(type, std::move(grouped[type]));
  }
  return catalogs;
}

std::vector<Catalog> CatalogsFromCsv(const std::string& text) {
  std::istringstream is(text);
  return ReadCatalogsCsv(is);
}

}  // namespace riskroute::hazard
