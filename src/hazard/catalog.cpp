#include "hazard/catalog.h"

#include "util/error.h"

namespace riskroute::hazard {

const std::vector<HazardType>& AllHazardTypes() {
  static const std::vector<HazardType> all = {
      HazardType::kFemaHurricane, HazardType::kFemaTornado,
      HazardType::kFemaStorm, HazardType::kNoaaEarthquake,
      HazardType::kNoaaWind};
  return all;
}

std::string_view ToString(HazardType type) {
  switch (type) {
    case HazardType::kFemaHurricane:
      return "FEMA Hurricane";
    case HazardType::kFemaTornado:
      return "FEMA Tornado";
    case HazardType::kFemaStorm:
      return "FEMA Storm";
    case HazardType::kNoaaEarthquake:
      return "NOAA Earthquake";
    case HazardType::kNoaaWind:
      return "NOAA Wind";
  }
  throw InternalError("unknown HazardType");
}

std::optional<HazardType> ParseHazardType(std::string_view s) {
  for (const HazardType type : AllHazardTypes()) {
    if (ToString(type) == s) return type;
  }
  return std::nullopt;
}

std::size_t PaperEventCount(HazardType type) {
  switch (type) {
    case HazardType::kFemaHurricane:
      return 2805;
    case HazardType::kFemaTornado:
      return 6437;
    case HazardType::kFemaStorm:
      return 20623;
    case HazardType::kNoaaEarthquake:
      return 2267;
    case HazardType::kNoaaWind:
      return 143847;
  }
  throw InternalError("unknown HazardType");
}

Catalog::Catalog(HazardType type, std::vector<Event> events)
    : type_(type), events_(std::move(events)) {
  if (events_.empty()) throw InvalidArgument("Catalog: no events");
}

std::vector<geo::GeoPoint> Catalog::Locations() const {
  std::vector<geo::GeoPoint> out;
  out.reserve(events_.size());
  for (const Event& e : events_) out.push_back(e.location);
  return out;
}

Catalog Catalog::FilterYears(int first_year, int last_year) const {
  std::vector<Event> kept;
  for (const Event& e : events_) {
    if (e.year >= first_year && e.year <= last_year) kept.push_back(e);
  }
  return Catalog(type_, std::move(kept));
}

Catalog Catalog::FilterMonths(int first_month, int last_month) const {
  if (first_month < 1 || first_month > 12 || last_month < 1 ||
      last_month > 12) {
    throw InvalidArgument("FilterMonths: months must be in 1..12");
  }
  std::vector<Event> kept;
  for (const Event& e : events_) {
    const bool inside = first_month <= last_month
                            ? (e.month >= first_month && e.month <= last_month)
                            : (e.month >= first_month || e.month <= last_month);
    if (inside) kept.push_back(e);
  }
  return Catalog(type_, std::move(kept));
}

}  // namespace riskroute::hazard
