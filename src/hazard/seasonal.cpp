#include "hazard/seasonal.h"

#include "util/error.h"

namespace riskroute::hazard {
namespace {

constexpr std::size_t kMinEventsPerSlice = 8;

int FirstMonth(Season season) {
  switch (season) {
    case Season::kWinter: return 12;
    case Season::kSpring: return 3;
    case Season::kSummer: return 6;
    case Season::kFall: return 9;
  }
  throw InternalError("unknown Season");
}

int LastMonth(Season season) {
  switch (season) {
    case Season::kWinter: return 2;
    case Season::kSpring: return 5;
    case Season::kSummer: return 8;
    case Season::kFall: return 11;
  }
  throw InternalError("unknown Season");
}

}  // namespace

std::string_view ToString(Season season) {
  switch (season) {
    case Season::kWinter: return "winter";
    case Season::kSpring: return "spring";
    case Season::kSummer: return "summer";
    case Season::kFall: return "fall";
  }
  throw InternalError("unknown Season");
}

Season SeasonOfMonth(int month) {
  switch (month) {
    case 12: case 1: case 2: return Season::kWinter;
    case 3: case 4: case 5: return Season::kSpring;
    case 6: case 7: case 8: return Season::kSummer;
    case 9: case 10: case 11: return Season::kFall;
    default:
      throw InvalidArgument("SeasonOfMonth: month must be in 1..12");
  }
}

const std::vector<Season>& AllSeasons() {
  static const std::vector<Season> all = {Season::kWinter, Season::kSpring,
                                          Season::kSummer, Season::kFall};
  return all;
}

SeasonalRiskField::SeasonalRiskField(const std::vector<Catalog>& catalogs,
                                     const std::vector<double>& bandwidth_miles) {
  if (catalogs.empty()) {
    throw InvalidArgument("SeasonalRiskField: no catalogs");
  }
  if (catalogs.size() != bandwidth_miles.size()) {
    throw InvalidArgument("SeasonalRiskField: catalog/bandwidth mismatch");
  }
  for (std::size_t s = 0; s < AllSeasons().size(); ++s) {
    const Season season = AllSeasons()[s];
    SeasonSlice& slice = slices_[s];
    for (std::size_t c = 0; c < catalogs.size(); ++c) {
      const Catalog seasonal =
          catalogs[c].size() > 0
              ? catalogs[c].FilterMonths(FirstMonth(season), LastMonth(season))
              : catalogs[c];
      if (seasonal.size() < kMinEventsPerSlice) {
        continue;  // too sparse to estimate; this type is out of season
      }
      // Season share: the fraction of the type's events in this season.
      // The KDE integrates to 1, so weighting by 4 * share makes the
      // season-average equal the annual event-frequency field.
      const double share = static_cast<double>(seasonal.size()) /
                           static_cast<double>(catalogs[c].size());
      slice.weights.push_back(4.0 * share);
      slice.models.push_back(std::make_unique<stats::KernelDensity2D>(
          seasonal.Locations(), bandwidth_miles[c]));
    }
  }
}

double SeasonalRiskField::RiskAt(const geo::GeoPoint& p, Season season) const {
  const SeasonSlice& slice = slices_[static_cast<std::size_t>(season)];
  double total = 0.0;
  for (std::size_t m = 0; m < slice.models.size(); ++m) {
    total += slice.weights[m] * slice.models[m]->Evaluate(p);
  }
  return scale_ * total;
}

double SeasonalRiskField::RiskAt(const geo::GeoPoint& p, int month) const {
  return RiskAt(p, SeasonOfMonth(month));
}

std::vector<double> SeasonalRiskField::PopRisks(
    const topology::Network& network, Season season) const {
  // Batch path: each model evaluates every PoP through its cell-blocked
  // KDE engine. Accumulation order matches RiskAt, so values are bitwise
  // equal to the per-PoP loop it replaces.
  std::vector<geo::GeoPoint> locations;
  locations.reserve(network.pop_count());
  for (const topology::Pop& pop : network.pops()) {
    locations.push_back(pop.location);
  }
  const SeasonSlice& slice = slices_[static_cast<std::size_t>(season)];
  std::vector<double> risks(locations.size(), 0.0);
  std::vector<double> densities(locations.size());
  for (std::size_t m = 0; m < slice.models.size(); ++m) {
    slice.models[m]->EvaluateBatch(locations, densities);
    for (std::size_t j = 0; j < risks.size(); ++j) {
      risks[j] += slice.weights[m] * densities[j];
    }
  }
  for (double& r : risks) r *= scale_;
  return risks;
}

void SeasonalRiskField::CalibrateTo(const std::vector<geo::GeoPoint>& reference,
                                    double target_mean) {
  if (reference.empty()) {
    throw InvalidArgument("SeasonalRiskField::CalibrateTo: empty reference");
  }
  if (!(target_mean > 0.0)) {
    throw InvalidArgument("SeasonalRiskField::CalibrateTo: bad target");
  }
  scale_ = 1.0;
  double sum = 0.0;
  for (const geo::GeoPoint& p : reference) {
    for (const Season season : AllSeasons()) {
      sum += RiskAt(p, season);
    }
  }
  const double mean =
      sum / (static_cast<double>(reference.size()) * AllSeasons().size());
  if (mean <= 0.0) {
    throw InvalidArgument("SeasonalRiskField::CalibrateTo: zero mean risk");
  }
  scale_ = target_mean / mean;
}

double SeasonalRiskField::SeasonalAmplification(
    const std::vector<geo::GeoPoint>& reference, Season season) const {
  if (reference.empty()) {
    throw InvalidArgument("SeasonalAmplification: empty reference");
  }
  double season_sum = 0.0;
  double annual_sum = 0.0;
  for (const geo::GeoPoint& p : reference) {
    season_sum += RiskAt(p, season);
    for (const Season s : AllSeasons()) annual_sum += RiskAt(p, s);
  }
  const double annual_mean = annual_sum / AllSeasons().size();
  if (annual_mean <= 0.0) return 0.0;
  return season_sum / annual_mean;
}

}  // namespace riskroute::hazard
