// CSV persistence for hazard catalogs.
//
// Lets users export the synthetic catalogs for inspection/plotting and —
// more importantly — load their own event archives (FEMA/NOAA extracts
// are naturally tabular) into the framework. Format:
//
//   type,latitude,longitude,year,month
//   FEMA Hurricane,29.9500,-90.0700,2005,8
//
// One file may mix types; ReadCatalogs splits them back out.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hazard/catalog.h"

namespace riskroute::hazard {

/// Writes catalogs as CSV with a header row.
void WriteCatalogsCsv(const std::vector<Catalog>& catalogs, std::ostream& out);
[[nodiscard]] std::string CatalogsToCsv(const std::vector<Catalog>& catalogs);

/// Parses the CSV format above (header required). Rows are grouped by
/// type, in order of first appearance. Throws ParseError on malformed
/// rows, unknown types, or invalid coordinates/months.
[[nodiscard]] std::vector<Catalog> ReadCatalogsCsv(std::istream& in);
[[nodiscard]] std::vector<Catalog> CatalogsFromCsv(const std::string& text);

}  // namespace riskroute::hazard
