// CSV persistence for hazard catalogs.
//
// Lets users export the synthetic catalogs for inspection/plotting and —
// more importantly — load their own event archives (FEMA/NOAA extracts
// are naturally tabular) into the framework. Format:
//
//   type,latitude,longitude,year,month
//   FEMA Hurricane,29.9500,-90.0700,2005,8
//
// One file may mix types; ReadCatalogs splits them back out. The reader
// treats the stream as untrusted: malformed rows, unknown types, invalid
// coordinates, out-of-range years/months and oversized inputs all yield
// row-numbered ParseResult diagnostics (ReadCatalogsCsv is the legacy
// throwing shim over ReadCatalogsCsvResult).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "hazard/catalog.h"
#include "util/parse_result.h"

namespace riskroute::hazard {

/// Writes catalogs as CSV with a header row.
void WriteCatalogsCsv(const std::vector<Catalog>& catalogs, std::ostream& out);
[[nodiscard]] std::string CatalogsToCsv(const std::vector<Catalog>& catalogs);

/// Defensive limits for untrusted catalog CSVs. The year window rejects
/// absurd values (negative years, five-digit "eras") that previously
/// truncated silently through a raw int cast; both digitized archives
/// (HURDAT reaches back to 1851) and projected futures fit comfortably.
struct CatalogCsvLimits {
  std::size_t max_rows = 1u << 21;  // ~2M events
  long long min_year = 1;
  long long max_year = 9999;
};

/// Parses the CSV format above (header required). Rows are grouped by
/// type, in order of first appearance. Diagnostics carry the 1-based CSV
/// row number in `line`; accepted rows / rejects are counted under
/// `ingest.catalog.*`.
[[nodiscard]] util::ParseResult<std::vector<Catalog>> ReadCatalogsCsvResult(
    std::istream& in, const CatalogCsvLimits& limits = {});

/// Legacy shims: throw ParseError on malformed rows, unknown types, or
/// invalid coordinates/months/years.
[[nodiscard]] std::vector<Catalog> ReadCatalogsCsv(std::istream& in);
[[nodiscard]] std::vector<Catalog> CatalogsFromCsv(const std::string& text);

}  // namespace riskroute::hazard
