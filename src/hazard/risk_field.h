// Historical outage risk field (paper Section 5.2).
//
// The historical outage risk o_h(i) of PoP i is the sum over all five
// hazard catalogs of the kernel-density disaster likelihood at the PoP's
// location, each KDE using its cross-validated bandwidth (Table 1).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "geo/geo_point.h"
#include "hazard/catalog.h"
#include "stats/bandwidth_cv.h"
#include "stats/kernel_density.h"
#include "topology/network.h"

namespace riskroute::hazard {

/// The paper's Table 1 trained bandwidths (miles), in AllHazardTypes()
/// order: hurricane 71.56, tornado 59.48, storm 24.38, earthquake 298.82,
/// wind 3.59. Used as defaults so callers need not re-run cross-validation;
/// bench_table1_bandwidths re-derives them from the synthetic catalogs.
[[nodiscard]] std::vector<double> PaperBandwidths();

/// Default calibration target for the mean aggregate PoP risk. The paper's
/// Eq 2 prefactor (1/(sigma N)) is dimensionally loose, so the absolute
/// density scale — and with it the meaning of the published lambda_h
/// operating points (1e4..1e6, Section 7) — is under-determined. We pin it
/// down explicitly: after CalibrateTo with this target, the paper's lambda
/// values land in the regime that reproduces Table 2's ratio magnitudes
/// (see DESIGN.md, "Known deviations").
inline constexpr double kDefaultMeanPopRisk = 0.15;

/// Immutable aggregate risk field over a set of trained per-hazard KDEs.
///
/// Thread safety: RiskAt/RisksAt/PopRisks are const, touch no mutable
/// state and may run concurrently from any number of threads. The mutating
/// calls (SetTypeWeights, CalibrateTo) must not race with readers.
class HistoricalRiskField {
 public:
  /// Builds one KDE per catalog with the given bandwidths (parallel
  /// arrays; throws on size mismatch or empty input).
  HistoricalRiskField(const std::vector<Catalog>& catalogs,
                      const std::vector<double>& bandwidth_miles);

  /// Trains each catalog's bandwidth by cross-validation before building.
  [[nodiscard]] static HistoricalRiskField TrainFromCatalogs(
      const std::vector<Catalog>& catalogs,
      const std::vector<double>& candidate_bandwidths,
      const stats::CrossValidationOptions& cv_options = {});

  /// Sets per-hazard emphasis weights (paper Section 5.2: "individual
  /// events that network operators find to be particularly disruptive ...
  /// could be emphasized using this risk metric calculation via
  /// user-defined weights"). One non-negative weight per model, in
  /// construction order; the aggregate becomes sum_t w_t * p_t. Resets any
  /// calibration scale interaction only through RiskAt (weights compose
  /// multiplicatively with the calibration).
  void SetTypeWeights(const std::vector<double>& weights);

  /// Current per-hazard weights (all 1.0 by default).
  [[nodiscard]] const std::vector<double>& type_weights() const {
    return type_weights_;
  }

  /// Rescales the field so the mean aggregate risk over `reference`
  /// (typically all corpus PoP locations) equals `target_mean`. Throws on
  /// an empty reference set.
  void CalibrateTo(const std::vector<geo::GeoPoint>& reference,
                   double target_mean = kDefaultMeanPopRisk);

  /// Current calibration multiplier (1.0 before CalibrateTo).
  [[nodiscard]] double scale() const { return scale_; }

  /// Aggregate historical risk o_h at a location: sum of all per-hazard
  /// kernel density likelihoods, times the calibration scale.
  [[nodiscard]] double RiskAt(const geo::GeoPoint& p) const;

  /// Single-hazard likelihood at a location.
  [[nodiscard]] double RiskAt(const geo::GeoPoint& p, HazardType type) const;

  /// Batch aggregate risk: out[i] = RiskAt(points[i]), bitwise. Each
  /// hazard model evaluates the whole batch through its cell-blocked KDE
  /// path, which is markedly faster than per-point RiskAt. Throws
  /// InvalidArgument if the span sizes differ.
  void RisksAt(std::span<const geo::GeoPoint> points,
               std::span<double> out) const;

  /// Convenience overload returning a new vector.
  [[nodiscard]] std::vector<double> RisksAt(
      std::span<const geo::GeoPoint> points) const;

  /// o_h for every PoP of a network (batch path).
  [[nodiscard]] std::vector<double> PopRisks(
      const topology::Network& network) const;

  [[nodiscard]] std::size_t model_count() const { return models_.size(); }
  [[nodiscard]] HazardType model_type(std::size_t i) const;
  [[nodiscard]] const stats::KernelDensity2D& model(std::size_t i) const;

 private:
  struct TypedModel {
    HazardType type;
    stats::KernelDensity2D kde;
  };
  std::vector<TypedModel> models_;
  std::vector<double> type_weights_;
  double scale_ = 1.0;
};

/// Memoizing read-through cache over a HistoricalRiskField.
///
/// Corpus-scale studies query the aggregate risk of the same ~800 PoP
/// locations once per network build (graph construction, merged graphs,
/// calibration, case studies). The cache keys on the exact coordinate bit
/// patterns, so a hit returns the bitwise-identical value RiskAt would
/// compute. Lookups are guarded by a mutex and therefore thread-safe;
/// values never depend on insertion order, so concurrent use stays
/// deterministic. The cache snapshots the field's current weights and
/// calibration — rebuild it if the underlying field is recalibrated.
class RiskFieldCache {
 public:
  /// Wraps `field`, which must outlive the cache.
  explicit RiskFieldCache(const HistoricalRiskField& field);

  /// Aggregate risk at `p`, memoized.
  [[nodiscard]] double RiskAt(const geo::GeoPoint& p) const;

  /// Batch lookup: misses are evaluated through the field's batch path in
  /// one pass, then cached.
  void RisksAt(std::span<const geo::GeoPoint> points,
               std::span<double> out) const;

  /// o_h for every PoP of a network, memoized.
  [[nodiscard]] std::vector<double> PopRisks(
      const topology::Network& network) const;

  /// Pre-populates the cache for `points` via one batch evaluation.
  void Warm(std::span<const geo::GeoPoint> points) const;

  /// Number of distinct locations cached so far.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const HistoricalRiskField& field() const { return *field_; }

 private:
  /// Bit-exact coordinate key (hashing the IEEE-754 payloads).
  struct Key {
    std::uint64_t lat_bits = 0;
    std::uint64_t lon_bits = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  [[nodiscard]] static Key KeyOf(const geo::GeoPoint& p);

  const HistoricalRiskField* field_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<Key, double, KeyHash> cache_;
};

}  // namespace riskroute::hazard
