#include "hazard/duration.h"

#include "util/error.h"

namespace riskroute::hazard {

double ExpectedOutageHours(HazardType type) {
  switch (type) {
    case HazardType::kFemaHurricane:
      return 96.0;  // multi-day grid and flooding outages
    case HazardType::kFemaTornado:
      return 8.0;   // narrow damage track, fast repair
    case HazardType::kFemaStorm:
      return 16.0;  // widespread but overnight-scale
    case HazardType::kNoaaEarthquake:
      return 48.0;  // structural damage, day-scale restoration
    case HazardType::kNoaaWind:
      return 4.0;   // localized, crew-hours to fix
  }
  throw InternalError("unknown HazardType");
}

std::vector<double> DowntimeWeights(const HistoricalRiskField& field) {
  std::vector<double> weights;
  weights.reserve(field.model_count());
  double sum = 0.0;
  for (std::size_t m = 0; m < field.model_count(); ++m) {
    weights.push_back(ExpectedOutageHours(field.model_type(m)));
    sum += weights.back();
  }
  if (sum <= 0.0) throw InternalError("DowntimeWeights: zero total");
  const double mean = sum / static_cast<double>(weights.size());
  for (double& w : weights) w /= mean;
  return weights;
}

void ApplyDowntimeWeighting(HistoricalRiskField& field) {
  field.SetTypeWeights(DowntimeWeights(field));
}

}  // namespace riskroute::hazard
