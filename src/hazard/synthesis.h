// Synthetic hazard catalog generators.
//
// The FEMA/NOAA archives the paper uses are not available offline, so each
// catalog is synthesized from a regional mixture model tuned to reproduce
// the qualitative geography the paper reports (Figure 4): hurricanes along
// the Gulf and Atlantic coasts, tornadoes in tornado alley, severe storms
// across the central plains and southeast, earthquakes dominated by the
// west coast (plus the New Madrid zone), and wind damage spread in many
// fine-grained local clusters. Event counts exactly match Section 4.3, so
// the count-driven bandwidth ordering of Table 1 is preserved.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geo/geo_point.h"
#include "hazard/catalog.h"
#include "util/rng.h"

namespace riskroute::hazard {

/// One Gaussian component of a regional mixture: events scatter around
/// `center` with a half-Gaussian radial profile of scale `sigma_miles`.
struct MixtureComponent {
  geo::GeoPoint center;
  double weight = 1.0;
  double sigma_miles = 100.0;
};

/// Draws `count` events (1970-2010, uniform years) from a mixture,
/// rejecting draws outside the continental US.
[[nodiscard]] std::vector<Event> SampleMixture(
    const std::vector<MixtureComponent>& mixture, std::size_t count,
    util::Rng& rng);

/// The regional mixture used for a hazard type.
[[nodiscard]] std::vector<MixtureComponent> MixtureFor(HazardType type);

/// Monthly occurrence weights (index 0 = January) for a hazard type: the
/// seasonal profile the paper acknowledges but averages away ("many of
/// the disaster events have strong seasonal correlations", Section 5.2).
/// Hurricanes peak Aug-Sep, tornadoes Apr-Jun, severe storms and wind in
/// the warm season, earthquakes are aseasonal.
[[nodiscard]] std::array<double, 12> SeasonalProfile(HazardType type);

/// Synthesizes one catalog with the paper's event count. Wind events use a
/// two-level process (storm-track cluster centres, then tight local
/// scatter) to reproduce their fine spatial grain.
[[nodiscard]] Catalog SynthesizeCatalog(HazardType type, std::uint64_t seed);

/// All five catalogs, paper-ordered, deterministically derived from `seed`.
[[nodiscard]] std::vector<Catalog> SynthesizeAllCatalogs(std::uint64_t seed = 11);

}  // namespace riskroute::hazard
