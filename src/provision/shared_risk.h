// Shared-risk analysis between two ISPs.
//
// Listed by the paper as future work ("assessing shared risk between
// multiple ISPs using RiskRoute", Section 8). Two networks share risk when
// one disaster can damage both — which defeats multihoming as a resilience
// strategy. This module quantifies it three ways: geographic co-location
// of infrastructure, the probability that a single historical-catalog
// event disables PoPs of both networks at once, and the phi correlation of
// the two networks' per-event outage indicators.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "hazard/catalog.h"
#include "topology/network.h"

namespace riskroute::provision {

/// Analysis knobs.
struct SharedRiskOptions {
  /// PoPs within this distance count as co-located infrastructure.
  double colocation_radius_miles = 25.0;
  /// Damage radius of a sampled event; <= 0 uses the per-type default of
  /// the outage simulator.
  double damage_radius_miles = 100.0;
  std::size_t trials = 4000;
  std::uint64_t seed = 77;
};

/// Result of AnalyzeSharedRisk.
struct SharedRiskReport {
  /// Fraction of A's PoPs with a B PoP within the co-location radius, and
  /// vice versa.
  double overlap_a_in_b = 0.0;
  double overlap_b_in_a = 0.0;
  /// Probability that one sampled disaster event disables at least one
  /// PoP of A (resp. B, resp. both simultaneously).
  double outage_probability_a = 0.0;
  double outage_probability_b = 0.0;
  double joint_outage_probability = 0.0;
  /// Phi (Matthews) correlation of the per-event outage indicators; 0 =
  /// independent fates, 1 = the networks always fail together.
  double outage_correlation = 0.0;
  std::size_t trials = 0;

  /// joint / (p_a * p_b): > 1 means failures co-occur more often than
  /// independence predicts (shared fate).
  [[nodiscard]] double JointLift() const;
};

/// Samples `trials` events from the catalogs (weighted by event count) and
/// measures the fate indicators. Trial t draws from a counter-based
/// Philox stream keyed (seed, t), so the report is a pure function of
/// (inputs, seed) — independent of trial evaluation order, matching the
/// determinism contract of the ensemble engine.
[[nodiscard]] SharedRiskReport AnalyzeSharedRisk(
    const topology::Network& a, const topology::Network& b,
    const std::vector<hazard::Catalog>& catalogs,
    const SharedRiskOptions& options = {});

}  // namespace riskroute::provision
