// Candidate-link enumeration for the robustness analysis
// (paper Section 6.3).
//
// E_C is the set of links that (a) do not currently exist, and (b) would
// cut the bit-miles between their endpoints by more than 50% versus the
// current shortest path — the paper's filter for "impractical
// cross-country links".
#pragma once

#include <cstddef>
#include <vector>

#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "util/thread_pool.h"

namespace riskroute::provision {

/// One candidate addition.
struct CandidateLink {
  std::size_t a = 0;
  std::size_t b = 0;
  double direct_miles = 0.0;        // line-of-sight length of the new link
  double current_path_miles = 0.0;  // today's shortest-path mileage
};

/// Enumeration options.
struct CandidateOptions {
  /// Minimum fractional bit-mile reduction (the paper's > 50%).
  double min_mile_reduction = 0.5;
  /// Keep at most this many candidates (largest absolute mile savings
  /// first); 0 = unlimited. Bounds the exact-objective sweep on large
  /// networks like Level3 (233 PoPs).
  std::size_t max_candidates = 0;
};

/// Enumerates E_C over a frozen engine (unordered pairs, a < b). Pairs in
/// different connected components are skipped. A thread pool parallelizes
/// the underlying all-pairs shortest-path sweep.
[[nodiscard]] std::vector<CandidateLink> EnumerateCandidateLinks(
    const core::RouteEngine& engine, const CandidateOptions& options = {},
    util::ThreadPool* pool = nullptr);

/// Convenience overload: freezes `graph` (distance plane only) first.
[[nodiscard]] std::vector<CandidateLink> EnumerateCandidateLinks(
    const core::RiskGraph& graph, const CandidateOptions& options = {},
    util::ThreadPool* pool = nullptr);

}  // namespace riskroute::provision
