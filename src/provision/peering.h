// New-peering recommendation (paper Section 6.3, Figure 11).
//
// In the multi-domain case a network cannot add links inside other
// networks; instead it can establish a new peering (or multihoming egress)
// where its PoPs are co-located with another network's. Candidate peers
// are networks with co-located PoPs but no existing AS peering; the best
// candidate minimizes the interdomain lower-bound bit-risk miles from the
// network's PoPs to all regional PoPs.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/interdomain.h"
#include "core/risk_params.h"
#include "core/route_engine.h"
#include "topology/corpus.h"
#include "util/thread_pool.h"

namespace riskroute::provision {

/// A co-located PoP pair that could realize a new peering.
struct ColocatedPair {
  std::size_t pop_a = 0;  // PoP index within network A
  std::size_t pop_b = 0;  // PoP index within network B
  double miles = 0.0;
};

/// One candidate peer network and its realizable interconnection points.
struct CandidatePeer {
  std::size_t network = 0;  // corpus index of the candidate peer
  std::vector<ColocatedPair> pairs;
};

/// Which networks qualify as candidate peers. The paper evaluates new
/// peering as an "additional multihoming egress point" toward transit
/// providers, and its Figure 11 recommendations are all Tier-1s — so the
/// Tier-1-only scope is the default; kAnyNetwork admits regional-regional
/// peering too.
enum class PeerScope { kTier1Only, kAnyNetwork };

/// Enumerates candidate peers of `network_index`: corpus networks within
/// scope with at least one PoP within `colocation_radius_miles` of one of
/// the network's PoPs and no existing AS peering.
[[nodiscard]] std::vector<CandidatePeer> EnumerateCandidatePeers(
    const topology::Corpus& corpus, std::size_t network_index,
    double colocation_radius_miles = 25.0,
    PeerScope scope = PeerScope::kTier1Only);

/// One evaluated candidate.
struct PeeringEvaluation {
  CandidatePeer peer;
  double objective = 0.0;  // lower-bound sum of min bit-risk miles
};

/// Recommendation result.
struct PeeringRecommendation {
  double baseline_objective = 0.0;         // without any new peering
  std::vector<PeeringEvaluation> evaluations;  // ascending objective
  /// Best candidate (evaluations.front()), if any candidate existed.
  [[nodiscard]] const PeeringEvaluation* best() const {
    return evaluations.empty() ? nullptr : &evaluations.front();
  }
};

/// Evaluates every candidate peer of `network_index` by layering its
/// co-location edges over the frozen merged graph as an EdgeOverlay and
/// recomputing the interdomain lower-bound objective (network PoPs -> all
/// regional PoPs). The merged graph is never copied or mutated.
[[nodiscard]] PeeringRecommendation RecommendPeering(
    const core::MergedGraph& merged, const topology::Corpus& corpus,
    std::size_t network_index, const core::RiskParams& params,
    double colocation_radius_miles = 25.0, util::ThreadPool* pool = nullptr,
    PeerScope scope = PeerScope::kTier1Only);

/// Same, against an engine already frozen from `merged.graph` under the
/// same params (saves the freeze when the caller holds one).
[[nodiscard]] PeeringRecommendation RecommendPeering(
    const core::RouteEngine& engine, const core::MergedGraph& merged,
    const topology::Corpus& corpus, std::size_t network_index,
    double colocation_radius_miles = 25.0, util::ThreadPool* pool = nullptr,
    PeerScope scope = PeerScope::kTier1Only);

}  // namespace riskroute::provision
