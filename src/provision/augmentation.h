// Greedy link augmentation (paper Section 6.3, Equation 4; Figures 9/10).
//
// The single best additional link is the candidate e in E_C minimizing the
// aggregate minimum bit-risk miles over all PoP pairs (Eq 4); for k > 1
// links the paper applies the same rule greedily against the network with
// the previously chosen links already added.
#pragma once

#include <cstddef>
#include <vector>

#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "provision/candidate_links.h"
#include "util/thread_pool.h"

namespace riskroute::provision {

/// One greedy step's outcome.
struct AugmentationStep {
  CandidateLink link;
  /// Eq 4 objective after adding this link (and all previous steps').
  double objective = 0.0;
  /// objective / original objective — the paper's Figure 10 y-axis
  /// ("fraction of original bit-risk miles").
  double fraction_of_original = 0.0;
};

/// Full greedy augmentation result.
struct AugmentationResult {
  double original_objective = 0.0;
  std::vector<AugmentationStep> steps;  // in greedy order (best first)
};

/// Augmentation options.
struct AugmentationOptions {
  std::size_t links_to_add = 1;
  CandidateOptions candidates;
};

/// Runs greedy augmentation. The graph is copied and mutated internally;
/// the caller's graph is unchanged. Stops early if candidates run out or
/// no candidate improves the objective.
[[nodiscard]] AugmentationResult GreedyAugment(
    const core::RiskGraph& graph, const core::RiskParams& params,
    const AugmentationOptions& options, util::ThreadPool* pool = nullptr);

}  // namespace riskroute::provision
