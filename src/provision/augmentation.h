// Greedy link augmentation (paper Section 6.3, Equation 4; Figures 9/10).
//
// The single best additional link is the candidate e in E_C minimizing the
// aggregate minimum bit-risk miles over all PoP pairs (Eq 4); for k > 1
// links the paper applies the same rule greedily against the network with
// the previously chosen links already added.
#pragma once

#include <cstddef>
#include <vector>

#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/route_engine.h"
#include "provision/candidate_links.h"
#include "util/thread_pool.h"

namespace riskroute::provision {

/// One greedy step's outcome.
struct AugmentationStep {
  CandidateLink link;
  /// Eq 4 objective after adding this link (and all previous steps'):
  /// the aggregate of per-pair bit_risk_miles, in the shared PathMetrics
  /// spelling.
  double bit_risk_miles = 0.0;
  /// bit_risk_miles / original — the paper's Figure 10 y-axis
  /// ("fraction of original bit-risk miles").
  double fraction_of_original = 0.0;

  /// Deprecated: pre-PathMetrics name; use bit_risk_miles.
  [[nodiscard]] double objective() const { return bit_risk_miles; }
};

/// Full greedy augmentation result.
struct AugmentationResult {
  /// Eq 4 aggregate bit_risk_miles of the unaugmented network.
  double original_bit_risk_miles = 0.0;
  std::vector<AugmentationStep> steps;  // in greedy order (best first)

  /// Deprecated: pre-PathMetrics name; use original_bit_risk_miles.
  [[nodiscard]] double original_objective() const {
    return original_bit_risk_miles;
  }
};

/// Augmentation options.
struct AugmentationOptions {
  std::size_t links_to_add = 1;
  CandidateOptions candidates;
};

/// Eq 4 objective of every candidate, each scored as if added alone on top
/// of the `accepted` overlay. Uses the exact single-edge incremental
/// identity — two full bit-risk sweeps per PoP pair, then every candidate
/// is d'(i,j) = min(d(i,j), via-candidate) in O(1) — instead of one
/// all-pairs sweep per candidate. Values match a full re-sweep up to
/// floating-point association order, so callers re-check near-ties with
/// the exact overlay objective before committing to a winner.
[[nodiscard]] std::vector<double> ScanCandidateObjectives(
    const core::RouteEngine& engine, const core::EdgeOverlay& accepted,
    const std::vector<CandidateLink>& candidates,
    util::ThreadPool* pool = nullptr);

/// Runs greedy augmentation against a frozen engine. Candidates are
/// evaluated as overlays — zero graph copies, zero mutations. Stops early
/// if candidates run out or no candidate improves the objective.
[[nodiscard]] AugmentationResult GreedyAugment(
    const core::RouteEngine& engine, const AugmentationOptions& options,
    util::ThreadPool* pool = nullptr);

/// Convenience overload: freezes `graph` under `params` first. The
/// caller's graph is never copied or mutated.
[[nodiscard]] AugmentationResult GreedyAugment(
    const core::RiskGraph& graph, const core::RiskParams& params,
    const AugmentationOptions& options, util::ThreadPool* pool = nullptr);

}  // namespace riskroute::provision
