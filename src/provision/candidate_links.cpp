#include "provision/candidate_links.h"

#include <algorithm>

#include "core/shortest_path.h"
#include "geo/distance.h"

namespace riskroute::provision {

std::vector<CandidateLink> EnumerateCandidateLinks(
    const core::RouteEngine& engine, const CandidateOptions& options,
    util::ThreadPool* pool) {
  const std::size_t n = engine.node_count();
  std::vector<std::vector<CandidateLink>> per_source(n);

  const auto body = [&](std::size_t i) {
    thread_local core::DijkstraWorkspace workspace;
    engine.RunDistance(workspace, i);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (engine.HasEdge(i, j) || !workspace.Reached(j)) continue;
      const double current = workspace.DistanceTo(j);
      const double direct =
          geo::GreatCircleMiles(engine.location(i), engine.location(j));
      if (direct < (1.0 - options.min_mile_reduction) * current) {
        per_source[i].push_back(CandidateLink{i, j, direct, current});
      }
    }
  };
  if (pool != nullptr) {
    util::ParallelFor(*pool, n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }

  std::vector<CandidateLink> candidates;
  for (const auto& local : per_source) {
    candidates.insert(candidates.end(), local.begin(), local.end());
  }
  if (options.max_candidates > 0 && candidates.size() > options.max_candidates) {
    // Keep the largest absolute mile savers; they dominate the Eq 4 gain.
    std::nth_element(candidates.begin(),
                     candidates.begin() +
                         static_cast<std::ptrdiff_t>(options.max_candidates),
                     candidates.end(),
                     [](const CandidateLink& x, const CandidateLink& y) {
                       return x.current_path_miles - x.direct_miles >
                              y.current_path_miles - y.direct_miles;
                     });
    candidates.resize(options.max_candidates);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CandidateLink& x, const CandidateLink& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return candidates;
}

std::vector<CandidateLink> EnumerateCandidateLinks(
    const core::RiskGraph& graph, const CandidateOptions& options,
    util::ThreadPool* pool) {
  // The enumeration only touches the distance plane, so any valid params
  // do; the freeze is O(N + E) against an O(N^2 log N) sweep.
  const core::RouteEngine engine(graph, core::RiskParams{});
  return EnumerateCandidateLinks(engine, options, pool);
}

}  // namespace riskroute::provision
