#include "provision/candidate_links.h"

#include <algorithm>

#include "core/shortest_path.h"
#include "geo/distance.h"

namespace riskroute::provision {

std::vector<CandidateLink> EnumerateCandidateLinks(
    const core::RiskGraph& graph, const CandidateOptions& options,
    util::ThreadPool* pool) {
  const std::size_t n = graph.node_count();
  std::vector<std::vector<CandidateLink>> per_source(n);

  const auto body = [&](std::size_t i) {
    core::DijkstraWorkspace workspace;
    workspace.Run(graph, i, core::DistanceWeight);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (graph.HasEdge(i, j) || !workspace.Reached(j)) continue;
      const double current = workspace.DistanceTo(j);
      const double direct =
          geo::GreatCircleMiles(graph.node(i).location, graph.node(j).location);
      if (direct < (1.0 - options.min_mile_reduction) * current) {
        per_source[i].push_back(CandidateLink{i, j, direct, current});
      }
    }
  };
  if (pool != nullptr) {
    util::ParallelFor(*pool, n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }

  std::vector<CandidateLink> candidates;
  for (const auto& local : per_source) {
    candidates.insert(candidates.end(), local.begin(), local.end());
  }
  if (options.max_candidates > 0 && candidates.size() > options.max_candidates) {
    // Keep the largest absolute mile savers; they dominate the Eq 4 gain.
    std::nth_element(candidates.begin(),
                     candidates.begin() +
                         static_cast<std::ptrdiff_t>(options.max_candidates),
                     candidates.end(),
                     [](const CandidateLink& x, const CandidateLink& y) {
                       return x.current_path_miles - x.direct_miles >
                              y.current_path_miles - y.direct_miles;
                     });
    candidates.resize(options.max_candidates);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CandidateLink& x, const CandidateLink& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return candidates;
}

}  // namespace riskroute::provision
