#include "provision/augmentation.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/error.h"

namespace riskroute::provision {
namespace {

/// Provisioning scan accounting. Call/candidate counts are fixed by the
/// greedy schedule (stable); the scan latency is wall-clock (volatile).
struct AugmentMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& scan_calls = reg.GetCounter("provision.augment.scan_calls");
  obs::Counter& scan_candidates =
      reg.GetCounter("provision.augment.scan_candidates");
  obs::Histogram& scan_ns = reg.GetTiming("provision.augment.scan_ns");
  obs::Counter& exact_rechecks =
      reg.GetCounter("provision.augment.exact_rechecks");

  static AugmentMetrics& Get() {
    static AugmentMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::vector<double> ScanCandidateObjectives(
    const core::RouteEngine& engine, const core::EdgeOverlay& accepted,
    const std::vector<CandidateLink>& candidates, util::ThreadPool* pool) {
  const std::size_t n = engine.node_count();
  const std::size_t c_count = candidates.size();
  AugmentMetrics& metrics = AugmentMetrics::Get();
  metrics.scan_calls.Add(1);
  metrics.scan_candidates.Add(c_count);
  obs::ScopedTimer scan_timer(metrics.scan_ns);
  const core::EdgeOverlay* overlay = accepted.empty() ? nullptr : &accepted;
  std::vector<std::vector<double>> per_source(n);

  const auto body = [&](std::size_t i) {
    thread_local core::DijkstraWorkspace from_i;
    thread_local core::DijkstraWorkspace from_j;
    std::vector<double>& sums = per_source[i];
    sums.assign(c_count, 0.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double alpha = engine.Alpha(i, j);
      engine.Run(from_i, i, alpha, std::nullopt, overlay);
      engine.Run(from_j, j, alpha, std::nullopt, overlay);
      const double d_ij = from_i.DistanceTo(j);
      const double score_j = engine.NodeScore(j);
      for (std::size_t c = 0; c < c_count; ++c) {
        const CandidateLink& link = candidates[c];
        const double score_a = engine.NodeScore(link.a);
        const double score_b = engine.NodeScore(link.b);
        // d'(i,j) = min(d(i,j),
        //               d(i,a) + [w + alpha*s(b)] + d(b,j),
        //               d(i,b) + [w + alpha*s(a)] + d(a,j)),
        // exact for a single added edge under non-negative weights. The
        // reverse legs come from the j-rooted sweep via the node-score
        // reversal identity d(x,j) = d(j,x) + alpha*(s(j) - s(x)).
        const double via_ab = from_i.DistanceTo(link.a) + link.direct_miles +
                              alpha * score_b + from_j.DistanceTo(link.b) +
                              alpha * (score_j - score_b);
        const double via_ba = from_i.DistanceTo(link.b) + link.direct_miles +
                              alpha * score_a + from_j.DistanceTo(link.a) +
                              alpha * (score_j - score_a);
        const double best = std::min({d_ij, via_ab, via_ba});
        // Candidates are intra-component, so a pair unreachable today
        // stays unreachable — skip it exactly as the Eq 4 sum does.
        if (std::isfinite(best)) sums[c] += best;
      }
    }
  };
  if (pool != nullptr) {
    util::ParallelFor(*pool, n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }

  std::vector<double> objectives(c_count, 0.0);
  for (const std::vector<double>& sums : per_source) {
    for (std::size_t c = 0; c < sums.size(); ++c) objectives[c] += sums[c];
  }
  return objectives;
}

AugmentationResult GreedyAugment(const core::RouteEngine& engine,
                                 const AugmentationOptions& options,
                                 util::ThreadPool* pool) {
  if (options.links_to_add == 0) {
    throw InvalidArgument("GreedyAugment: links_to_add must be positive");
  }
  AugmentationResult result;
  core::EdgeOverlay accepted;  // links chosen in earlier greedy steps
  result.original_bit_risk_miles = engine.AggregateMinBitRisk(pool);

  std::vector<CandidateLink> candidates =
      EnumerateCandidateLinks(engine, options.candidates, pool);

  for (std::size_t step = 0; step < options.links_to_add; ++step) {
    if (candidates.empty()) break;
    // Rank every candidate with the incremental scan, then settle the
    // winner by exact overlay evaluation over the scan's near-ties. The
    // slack is orders of magnitude above the scan's association-order
    // error, and ties in the exact objective fall to the lowest candidate
    // index — the legacy full-sweep evaluation order.
    const std::vector<double> scan =
        ScanCandidateObjectives(engine, accepted, candidates, pool);
    double best_scan = std::numeric_limits<double>::infinity();
    for (const double value : scan) best_scan = std::min(best_scan, value);
    const double slack = std::abs(best_scan) * 1e-6 + 1e-9;

    double best_objective = std::numeric_limits<double>::infinity();
    std::size_t best_index = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (scan[c] > best_scan + slack) continue;
      AugmentMetrics::Get().exact_rechecks.Add(1);
      core::EdgeOverlay trial = accepted;
      trial.AddEdge(candidates[c].a, candidates[c].b,
                    candidates[c].direct_miles);
      const double objective = engine.AggregateMinBitRisk(pool, &trial);
      if (objective < best_objective) {
        best_objective = objective;
        best_index = c;
      }
    }
    const double previous = result.steps.empty()
                                ? result.original_bit_risk_miles
                                : result.steps.back().bit_risk_miles;
    if (best_index == candidates.size() || best_objective >= previous) {
      break;  // no candidate helps any more
    }
    const CandidateLink chosen = candidates[best_index];
    accepted.AddEdge(chosen.a, chosen.b, chosen.direct_miles);
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(best_index));
    result.steps.push_back(AugmentationStep{
        chosen, best_objective,
        best_objective / result.original_bit_risk_miles});
  }
  return result;
}

AugmentationResult GreedyAugment(const core::RiskGraph& graph,
                                 const core::RiskParams& params,
                                 const AugmentationOptions& options,
                                 util::ThreadPool* pool) {
  const core::RouteEngine engine(graph, params);
  return GreedyAugment(engine, options, pool);
}

}  // namespace riskroute::provision
