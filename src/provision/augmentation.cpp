#include "provision/augmentation.h"

#include <algorithm>
#include <limits>

#include "core/riskroute.h"
#include "util/error.h"

namespace riskroute::provision {

AugmentationResult GreedyAugment(const core::RiskGraph& graph,
                                 const core::RiskParams& params,
                                 const AugmentationOptions& options,
                                 util::ThreadPool* pool) {
  if (options.links_to_add == 0) {
    throw InvalidArgument("GreedyAugment: links_to_add must be positive");
  }
  core::RiskGraph working = graph;
  AugmentationResult result;
  result.original_objective = core::AggregateMinBitRisk(working, params, pool);

  std::vector<CandidateLink> candidates =
      EnumerateCandidateLinks(working, options.candidates, pool);

  for (std::size_t step = 0; step < options.links_to_add; ++step) {
    double best_objective = std::numeric_limits<double>::infinity();
    std::size_t best_index = candidates.size();
    // Evaluate Eq 4 exactly for every remaining candidate. The inner
    // AggregateMinBitRisk is itself parallel over sources, so the sweep
    // stays sequential here to avoid nested pools.
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const CandidateLink& link = candidates[c];
      working.AddEdge(link.a, link.b, link.direct_miles);
      const double objective = core::AggregateMinBitRisk(working, params, pool);
      working.RemoveEdge(link.a, link.b);
      if (objective < best_objective) {
        best_objective = objective;
        best_index = c;
      }
    }
    const double previous = result.steps.empty()
                                ? result.original_objective
                                : result.steps.back().objective;
    if (best_index == candidates.size() || best_objective >= previous) {
      break;  // no candidate helps any more
    }
    const CandidateLink chosen = candidates[best_index];
    working.AddEdge(chosen.a, chosen.b, chosen.direct_miles);
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(best_index));
    result.steps.push_back(AugmentationStep{
        chosen, best_objective,
        best_objective / result.original_objective});
  }
  return result;
}

}  // namespace riskroute::provision
