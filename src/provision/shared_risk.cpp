#include "provision/shared_risk.h"

#include <algorithm>
#include <cmath>

#include "geo/distance.h"
#include "sim/outage_sim.h"
#include "util/error.h"
#include "util/philox.h"

namespace riskroute::provision {
namespace {

/// Fraction of `from`'s PoPs with a `to` PoP within `radius`.
double Overlap(const topology::Network& from, const topology::Network& to,
               double radius) {
  if (from.pop_count() == 0) return 0.0;
  std::size_t colocated = 0;
  for (const topology::Pop& pop : from.pops()) {
    const std::size_t nearest = to.NearestPop(pop.location);
    if (geo::GreatCircleMiles(pop.location, to.pop(nearest).location) <=
        radius) {
      ++colocated;
    }
  }
  return static_cast<double>(colocated) / static_cast<double>(from.pop_count());
}

bool EventHits(const topology::Network& network, const geo::GeoPoint& center,
               double radius) {
  for (const topology::Pop& pop : network.pops()) {
    if (geo::GreatCircleMiles(pop.location, center) <= radius) return true;
  }
  return false;
}

}  // namespace

double SharedRiskReport::JointLift() const {
  const double independent = outage_probability_a * outage_probability_b;
  if (independent <= 0.0) return joint_outage_probability > 0.0 ? 1e9 : 1.0;
  return joint_outage_probability / independent;
}

SharedRiskReport AnalyzeSharedRisk(const topology::Network& a,
                                   const topology::Network& b,
                                   const std::vector<hazard::Catalog>& catalogs,
                                   const SharedRiskOptions& options) {
  if (catalogs.empty()) {
    throw InvalidArgument("AnalyzeSharedRisk: no catalogs");
  }
  if (options.trials == 0) {
    throw InvalidArgument("AnalyzeSharedRisk: trials must be positive");
  }

  SharedRiskReport report;
  report.trials = options.trials;
  report.overlap_a_in_b = Overlap(a, b, options.colocation_radius_miles);
  report.overlap_b_in_a = Overlap(b, a, options.colocation_radius_miles);

  // Exact integer prefix sums over catalog sizes: the catalog pick is
  // one uniform event index bucketed against them, never a double CDF.
  std::vector<std::uint64_t> prefix;
  prefix.reserve(catalogs.size());
  std::uint64_t total_events = 0;
  for (const hazard::Catalog& c : catalogs) {
    total_events += static_cast<std::uint64_t>(c.size());
    prefix.push_back(total_events);
  }
  if (total_events == 0) {
    throw InvalidArgument("AnalyzeSharedRisk: catalogs hold no events");
  }

  std::size_t hits_a = 0, hits_b = 0, hits_both = 0;
  for (std::size_t t = 0; t < options.trials; ++t) {
    // One Philox stream per trial index: trial t's event is a pure
    // function of (seed, t), whatever order trials run in.
    util::PhiloxRng rng(options.seed, t);
    const std::uint64_t pick = rng.NextIndex(total_events);
    const std::size_t catalog_id = static_cast<std::size_t>(
        std::upper_bound(prefix.begin(), prefix.end(), pick) - prefix.begin());
    const hazard::Catalog& catalog = catalogs[catalog_id];
    const hazard::Event& event =
        catalog.events()[rng.NextIndex(catalog.size())];
    const double radius =
        options.damage_radius_miles > 0.0
            ? options.damage_radius_miles
            : sim::DefaultDamageRadiusMiles(catalog.type());
    const bool in_a = EventHits(a, event.location, radius);
    const bool in_b = EventHits(b, event.location, radius);
    if (in_a) ++hits_a;
    if (in_b) ++hits_b;
    if (in_a && in_b) ++hits_both;
  }

  const auto trials = static_cast<double>(options.trials);
  report.outage_probability_a = static_cast<double>(hits_a) / trials;
  report.outage_probability_b = static_cast<double>(hits_b) / trials;
  report.joint_outage_probability = static_cast<double>(hits_both) / trials;

  // Phi correlation of the two Bernoulli indicators.
  const double pa = report.outage_probability_a;
  const double pb = report.outage_probability_b;
  const double pab = report.joint_outage_probability;
  const double denom = std::sqrt(pa * (1 - pa) * pb * (1 - pb));
  report.outage_correlation = denom > 0.0 ? (pab - pa * pb) / denom : 0.0;
  return report;
}

}  // namespace riskroute::provision
