#include "provision/peering.h"

#include <algorithm>

#include "geo/distance.h"
#include "util/error.h"

namespace riskroute::provision {

std::vector<CandidatePeer> EnumerateCandidatePeers(
    const topology::Corpus& corpus, std::size_t network_index,
    double colocation_radius_miles, PeerScope scope) {
  if (network_index >= corpus.network_count()) {
    throw InvalidArgument("EnumerateCandidatePeers: network index out of range");
  }
  const topology::Network& self = corpus.network(network_index);
  std::vector<CandidatePeer> candidates;
  for (std::size_t other = 0; other < corpus.network_count(); ++other) {
    if (other == network_index || corpus.ArePeers(network_index, other)) {
      continue;
    }
    if (scope == PeerScope::kTier1Only &&
        corpus.network(other).kind() != topology::NetworkKind::kTier1) {
      continue;
    }
    const topology::Network& peer = corpus.network(other);
    CandidatePeer candidate;
    candidate.network = other;
    for (std::size_t pa = 0; pa < self.pop_count(); ++pa) {
      const std::size_t pb = peer.NearestPop(self.pop(pa).location);
      const double miles = geo::GreatCircleMiles(self.pop(pa).location,
                                                 peer.pop(pb).location);
      if (miles <= colocation_radius_miles) {
        candidate.pairs.push_back(ColocatedPair{pa, pb, miles});
      }
    }
    if (!candidate.pairs.empty()) candidates.push_back(std::move(candidate));
  }
  return candidates;
}

PeeringRecommendation RecommendPeering(const core::RouteEngine& engine,
                                       const core::MergedGraph& merged,
                                       const topology::Corpus& corpus,
                                       std::size_t network_index,
                                       double colocation_radius_miles,
                                       util::ThreadPool* pool,
                                       PeerScope scope) {
  const std::vector<std::size_t>& sources = merged.global_ids[network_index];
  const std::vector<std::size_t> targets =
      core::RegionalTargets(merged, corpus);

  PeeringRecommendation recommendation;
  recommendation.baseline_objective =
      engine.SumMinBitRisk(sources, targets, pool);

  for (CandidatePeer& candidate : EnumerateCandidatePeers(
           corpus, network_index, colocation_radius_miles, scope)) {
    // Realize the peering at every co-location point as an overlay on the
    // frozen graph — no mutation, no restore.
    core::EdgeOverlay overlay;
    for (const ColocatedPair& pair : candidate.pairs) {
      const std::size_t ga = merged.GlobalId(network_index, pair.pop_a);
      const std::size_t gb = merged.GlobalId(candidate.network, pair.pop_b);
      if (!engine.HasEdge(ga, gb) && !overlay.HasAddedEdge(ga, gb)) {
        overlay.AddEdge(ga, gb, pair.miles);
      }
    }
    const double objective = engine.SumMinBitRisk(
        sources, targets, pool, overlay.empty() ? nullptr : &overlay);
    recommendation.evaluations.push_back(
        PeeringEvaluation{std::move(candidate), objective});
  }
  std::stable_sort(recommendation.evaluations.begin(),
            recommendation.evaluations.end(),
            [](const PeeringEvaluation& x, const PeeringEvaluation& y) {
              return x.objective < y.objective;
            });
  return recommendation;
}

PeeringRecommendation RecommendPeering(const core::MergedGraph& merged,
                                       const topology::Corpus& corpus,
                                       std::size_t network_index,
                                       const core::RiskParams& params,
                                       double colocation_radius_miles,
                                       util::ThreadPool* pool,
                                       PeerScope scope) {
  const core::RouteEngine engine(merged.graph, params);
  return RecommendPeering(engine, merged, corpus, network_index,
                          colocation_radius_miles, pool, scope);
}

}  // namespace riskroute::provision
