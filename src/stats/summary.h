// Basic descriptive statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace riskroute::stats {

/// Summary of a sample: count, mean, sample variance, extrema.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // unbiased (n-1) sample variance; 0 when n < 2
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double stddev() const;
};

/// Computes a Summary; throws InvalidArgument on an empty sample.
[[nodiscard]] Summary Summarize(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]; throws on empty input or
/// out-of-range q.
[[nodiscard]] double Quantile(std::vector<double> values, double q);

}  // namespace riskroute::stats
