// Kernel bandwidth selection by k-fold cross-validation with a
// KL-divergence score (paper Section 5.2, Table 1).
//
// The paper selects each catalog's bandwidth by "5-way cross validation
// (where the best bandwidth is found from 80% of the observed events to
// fit the remaining 20%)" with KL divergence as the distance metric.
// KL(empirical || model) over a held-out fold equals the average negative
// log model density plus the (bandwidth-independent) entropy of the
// empirical distribution, so minimizing the average negative log-likelihood
// of held-out events minimizes the KL divergence. That is what we score.
//
// The (candidate x fold) sweep cells are independent, so SelectBandwidth
// runs them across a caller-supplied thread pool. Every cell computes an
// identical result on any thread, and the cross-fold/cross-candidate
// reductions happen serially in a fixed order afterwards, so the selected
// bandwidth and every score are bitwise identical for any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/geo_point.h"

namespace riskroute::util {
class ThreadPool;
}  // namespace riskroute::util

namespace riskroute::stats {

/// One scored candidate bandwidth.
struct BandwidthScore {
  double bandwidth_miles = 0.0;
  /// Mean negative log held-out density across folds (lower is better);
  /// equals KL(empirical || model) up to a bandwidth-independent constant.
  double kl_score = 0.0;
};

/// Cross-validation configuration.
struct CrossValidationOptions {
  std::size_t folds = 5;  // the paper's 5-way CV
  /// Deterministic shuffle seed for fold assignment.
  std::uint64_t seed = 0x5eed0001;
  /// Caps the events used to *fit* each fold's scoring model; the KDE of a
  /// uniform subsample is an unbiased estimator of the full KDE, and the
  /// cap bounds the cost of wide-bandwidth candidates on the 143,847-event
  /// wind catalog. No cap is applied to the final production model.
  std::size_t max_train_events = 20000;
  /// Caps the held-out events scored per fold (subsampled deterministically).
  std::size_t max_eval_events = 4000;
  /// Floor applied to model densities before taking logs so that held-out
  /// events beyond every kernel's truncation window yield a large-but-
  /// finite penalty instead of an infinite one.
  double density_floor = 1e-12;
  /// Optional worker pool: the (candidate x fold) sweep fans out across
  /// it. Null (or a single-thread pool) runs serially; results are
  /// bitwise identical either way.
  util::ThreadPool* pool = nullptr;
};

/// Result of a bandwidth sweep.
struct BandwidthSelection {
  double best_bandwidth_miles = 0.0;
  std::vector<BandwidthScore> scores;  // one per candidate, input order
};

/// Log-spaced candidate grid in [lo, hi]; count >= 2. The first and last
/// candidates are exactly `lo` and `hi` (no exp(log(...)) rounding) and
/// the grid is checked to be strictly increasing.
[[nodiscard]] std::vector<double> LogSpacedBandwidths(double lo, double hi,
                                                      std::size_t count);

/// Runs k-fold CV over `candidates` and returns the scored sweep. Throws
/// InvalidArgument if events.size() < folds or candidates is empty.
[[nodiscard]] BandwidthSelection SelectBandwidth(
    const std::vector<geo::GeoPoint>& events,
    const std::vector<double>& candidates,
    const CrossValidationOptions& options = {});

}  // namespace riskroute::stats
