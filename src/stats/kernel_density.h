// Two-dimensional Gaussian kernel density estimation over geographic
// events (paper Section 5.2, Equation 2).
//
// Given observed disaster events X = {x_1..x_N}, the estimated probability
// density of a disaster at location y is
//
//   p_hat(y) = 1/(N * 2*pi*sigma^2) * sum_i exp(-d(x_i, y)^2 / (2 sigma^2))
//
// with d in statute miles and the bandwidth sigma in miles, so densities
// are per square mile and integrate to ~1 over the plane.
//
// Note: the paper's Eq 2 writes the prefactor as 1/(sigma*N); the correct
// 2-D normalization is 1/(2*pi*sigma^2*N), which we use (see DESIGN.md,
// "Known deviations"). Bandwidth selection and every ratio result are
// unaffected because the discrepancy is a bandwidth-dependent constant
// factor that trades off against the lambda tuning parameters.
//
// Kernels are truncated at 5 sigma (relative error < 4e-6) and events are
// bucketed in a GridIndex, so evaluation cost scales with the number of
// events near the query instead of the catalog size.
//
// Evaluation is trig-free: events are projected to equirectangular plane
// coordinates once at construction (radians scaled by the Earth radius,
// with each event's cos(latitude) stored alongside), laid out as a
// structure of arrays in the grid's CSR cell order. A query projects once
// (one cos), then the inner loop over nearby events is pure multiply-add
// plus exp. The squared distance uses the mean of the two cosines for the
// longitude scale, which agrees with geo::ApproxMiles (cosine of the mean
// latitude) to second order in the latitude separation — well inside the
// equirectangular approximation's own error at kernel scales.
//
// EvaluateBatch and Evaluate compute each density with identical
// floating-point operations in an identical order, so their results are
// bitwise equal; parallel Raster is likewise bitwise independent of the
// thread count because every cell is an independent query.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/geo_point.h"
#include "spatial/grid_index.h"

namespace riskroute::util {
class ThreadPool;
}  // namespace riskroute::util

namespace riskroute::stats {

/// Immutable KDE model over a fixed event set. Evaluation methods are
/// const and touch no mutable state, so one model may be queried from
/// many threads concurrently.
class KernelDensity2D {
 public:
  /// Builds the model. Throws InvalidArgument if `events` is empty or
  /// `bandwidth_miles` is not strictly positive.
  KernelDensity2D(std::vector<geo::GeoPoint> events, double bandwidth_miles);

  /// Density at `y` in events per square mile (>= 0).
  [[nodiscard]] double Evaluate(const geo::GeoPoint& y) const;

  /// Batch evaluation: densities for `ys` written to `out` (same index).
  /// Queries are processed blocked by grid cell so consecutive queries
  /// stream the same event ranges (cache locality); each density is
  /// bitwise equal to Evaluate(ys[i]). Throws InvalidArgument if the span
  /// sizes differ.
  void EvaluateBatch(std::span<const geo::GeoPoint> ys,
                     std::span<double> out) const;

  /// Convenience overload returning a new vector.
  [[nodiscard]] std::vector<double> EvaluateBatch(
      std::span<const geo::GeoPoint> ys) const;

  /// Mean of Evaluate over a set of points (used by cross-validation).
  [[nodiscard]] double MeanDensity(const std::vector<geo::GeoPoint>& ys) const;

  /// Rasterizes the density over `bounds` into a row-major rows x cols
  /// grid (row 0 = min latitude). Cell value is the density at the cell
  /// centre. This backs the paper's Figure 4 surfaces. When `pool` is
  /// non-null the rows are evaluated in parallel; cell values are bitwise
  /// identical for any thread count (including serial).
  [[nodiscard]] std::vector<double> Raster(
      const geo::BoundingBox& bounds, std::size_t rows, std::size_t cols,
      util::ThreadPool* pool = nullptr) const;

  [[nodiscard]] double bandwidth_miles() const { return bandwidth_miles_; }
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] const std::vector<geo::GeoPoint>& events() const {
    return events_;
  }

 private:
  /// Projected query coordinates (plane miles) and cos(latitude).
  struct Projected {
    double x = 0.0;
    double y = 0.0;
    double cos_lat = 0.0;
  };

  [[nodiscard]] Projected Project(const geo::GeoPoint& p) const;

  /// Kernel sum at one projected query (density before normalization).
  [[nodiscard]] double KernelSum(const geo::GeoPoint& y,
                                 const Projected& q) const;

  std::vector<geo::GeoPoint> events_;
  double bandwidth_miles_;
  double truncation_miles_;
  double norm_;            // 1 / (N * 2 pi sigma^2)
  double inv_two_sigma2_;  // 1 / (2 sigma^2)
  std::unique_ptr<spatial::GridIndex> index_;
  // Structure-of-arrays event coordinates in the grid's CSR slot order:
  // ex_/ey_ are equirectangular plane miles (R * lon_rad, R * lat_rad),
  // ecos_ the per-event cos(latitude) folded in at construction.
  std::vector<double> ex_;
  std::vector<double> ey_;
  std::vector<double> ecos_;
};

}  // namespace riskroute::stats
