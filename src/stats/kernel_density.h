// Two-dimensional Gaussian kernel density estimation over geographic
// events (paper Section 5.2, Equation 2).
//
// Given observed disaster events X = {x_1..x_N}, the estimated probability
// density of a disaster at location y is
//
//   p_hat(y) = 1/(N * 2*pi*sigma^2) * sum_i exp(-d(x_i, y)^2 / (2 sigma^2))
//
// with d in statute miles and the bandwidth sigma in miles, so densities
// are per square mile and integrate to ~1 over the plane.
//
// Note: the paper's Eq 2 writes the prefactor as 1/(sigma*N); the correct
// 2-D normalization is 1/(2*pi*sigma^2*N), which we use (see DESIGN.md,
// "Known deviations"). Bandwidth selection and every ratio result are
// unaffected because the discrepancy is a bandwidth-dependent constant
// factor that trades off against the lambda tuning parameters.
//
// Kernels are truncated at 5 sigma (relative error < 4e-6) and events are
// bucketed in a GridIndex, so evaluation cost scales with the number of
// events near the query instead of the catalog size.
#pragma once

#include <memory>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/geo_point.h"
#include "spatial/grid_index.h"

namespace riskroute::stats {

/// Immutable KDE model over a fixed event set.
class KernelDensity2D {
 public:
  /// Builds the model. Throws InvalidArgument if `events` is empty or
  /// `bandwidth_miles` is not strictly positive.
  KernelDensity2D(std::vector<geo::GeoPoint> events, double bandwidth_miles);

  /// Density at `y` in events per square mile (>= 0).
  [[nodiscard]] double Evaluate(const geo::GeoPoint& y) const;

  /// Mean of Evaluate over a set of points (used by cross-validation).
  [[nodiscard]] double MeanDensity(const std::vector<geo::GeoPoint>& ys) const;

  /// Rasterizes the density over `bounds` into a row-major rows x cols
  /// grid (row 0 = min latitude). Cell value is the density at the cell
  /// centre. This backs the paper's Figure 4 surfaces.
  [[nodiscard]] std::vector<double> Raster(const geo::BoundingBox& bounds,
                                           std::size_t rows,
                                           std::size_t cols) const;

  [[nodiscard]] double bandwidth_miles() const { return bandwidth_miles_; }
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] const std::vector<geo::GeoPoint>& events() const {
    return events_;
  }

 private:
  std::vector<geo::GeoPoint> events_;
  double bandwidth_miles_;
  double truncation_miles_;
  double norm_;  // 1 / (N * 2 pi sigma^2)
  std::unique_ptr<spatial::GridIndex> index_;
};

}  // namespace riskroute::stats
