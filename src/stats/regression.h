// Ordinary least squares in one variable, plus the coefficient of
// determination (R^2) used in the paper's Table 3 to relate regional
// network characteristics to RiskRoute's ratio results.
#pragma once

#include <vector>

namespace riskroute::stats {

/// y ~= slope * x + intercept, with goodness of fit.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  [[nodiscard]] double Predict(double x) const { return slope * x + intercept; }
};

/// Fits OLS y ~ x. Requires xs.size() == ys.size() >= 2 and non-constant
/// xs; throws InvalidArgument otherwise. If ys is constant, r_squared is 1
/// (the fit is exact).
[[nodiscard]] LinearFit FitLinear(const std::vector<double>& xs,
                                  const std::vector<double>& ys);

/// R^2 of the OLS fit between x and y (Table 3's statistic).
[[nodiscard]] double RSquared(const std::vector<double>& xs,
                              const std::vector<double>& ys);

/// Pearson correlation coefficient; R^2 == r * r for simple OLS.
[[nodiscard]] double PearsonCorrelation(const std::vector<double>& xs,
                                        const std::vector<double>& ys);

}  // namespace riskroute::stats
