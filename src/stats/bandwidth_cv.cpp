#include "stats/bandwidth_cv.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/kernel_density.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute::stats {
namespace {

/// Deterministically selects at most `cap` elements of `items` (uniformly,
/// via a seeded shuffle of indices) preserving no particular order.
std::vector<geo::GeoPoint> Subsample(const std::vector<geo::GeoPoint>& items,
                                     std::size_t cap, std::uint64_t seed) {
  if (items.size() <= cap) return items;
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<geo::GeoPoint> out;
  out.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) out.push_back(items[order[i]]);
  return out;
}

/// Mean negative log held-out density of one (candidate, fold) cell.
double FoldScore(const std::vector<geo::GeoPoint>& train,
                 const std::vector<geo::GeoPoint>& eval, double bandwidth,
                 double density_floor) {
  const KernelDensity2D model(train, bandwidth);
  const std::vector<double> densities = model.EvaluateBatch(eval);
  double nll = 0.0;
  for (const double density : densities) {
    nll -= std::log(std::max(density_floor, density));
  }
  return nll / static_cast<double>(eval.size());
}

}  // namespace

std::vector<double> LogSpacedBandwidths(double lo, double hi,
                                        std::size_t count) {
  if (!(lo > 0.0) || !(hi > lo) || count < 2) {
    throw InvalidArgument("LogSpacedBandwidths: need 0 < lo < hi, count >= 2");
  }
  std::vector<double> out(count);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(count - 1);
    out[i] = std::exp(log_lo + t * (log_hi - log_lo));
  }
  // exp(log(...)) rounding can land the endpoints a few ulps off `lo`/`hi`
  // (and on pathological inputs even out of order); pin them exactly.
  out.front() = lo;
  out.back() = hi;
  for (std::size_t i = 1; i < count; ++i) {
    if (!(out[i] > out[i - 1])) {
      throw InternalError("LogSpacedBandwidths: grid is not increasing");
    }
  }
  return out;
}

BandwidthSelection SelectBandwidth(const std::vector<geo::GeoPoint>& events,
                                   const std::vector<double>& candidates,
                                   const CrossValidationOptions& options) {
  if (candidates.empty()) {
    throw InvalidArgument("SelectBandwidth: no candidate bandwidths");
  }
  if (options.folds < 2 || events.size() < options.folds) {
    throw InvalidArgument("SelectBandwidth: need at least `folds` events");
  }

  // Deterministic fold assignment.
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(options.seed);
  std::shuffle(order.begin(), order.end(), rng.engine());

  // Pre-split folds once; reused for every candidate bandwidth so scores
  // are comparable.
  std::vector<std::vector<geo::GeoPoint>> train(options.folds);
  std::vector<std::vector<geo::GeoPoint>> eval(options.folds);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t fold = rank % options.folds;
    for (std::size_t f = 0; f < options.folds; ++f) {
      if (f == fold) {
        eval[f].push_back(events[order[rank]]);
      } else {
        train[f].push_back(events[order[rank]]);
      }
    }
  }
  for (std::size_t f = 0; f < options.folds; ++f) {
    train[f] = Subsample(train[f], options.max_train_events,
                         options.seed ^ (0x77A1 + f));
    eval[f] = Subsample(eval[f], options.max_eval_events,
                        options.seed ^ (0xE7A1 + f));
  }

  // Every (candidate, fold) cell is independent; fan them out across the
  // pool. Each cell's score does not depend on which thread ran it, and
  // the reductions below run serially in fixed order, so the sweep is
  // deterministic for any thread count.
  const std::size_t cells = candidates.size() * options.folds;
  std::vector<double> cell_scores(cells, 0.0);
  const auto score_cell = [&](std::size_t t) {
    const std::size_t cand = t / options.folds;
    const std::size_t fold = t % options.folds;
    cell_scores[t] = FoldScore(train[fold], eval[fold], candidates[cand],
                               options.density_floor);
  };
  if (options.pool != nullptr && options.pool->thread_count() > 1 &&
      cells > 1) {
    util::ParallelFor(*options.pool, cells, score_cell);
  } else {
    for (std::size_t t = 0; t < cells; ++t) score_cell(t);
  }

  BandwidthSelection selection;
  selection.scores.reserve(candidates.size());
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t cand = 0; cand < candidates.size(); ++cand) {
    double fold_sum = 0.0;
    for (std::size_t f = 0; f < options.folds; ++f) {
      fold_sum += cell_scores[cand * options.folds + f];
    }
    const double score = fold_sum / static_cast<double>(options.folds);
    selection.scores.push_back(BandwidthScore{candidates[cand], score});
    if (score < best_score) {
      best_score = score;
      selection.best_bandwidth_miles = candidates[cand];
    }
  }
  return selection;
}

}  // namespace riskroute::stats
