#include "stats/bandwidth_cv.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/kernel_density.h"
#include "util/error.h"
#include "util/rng.h"

namespace riskroute::stats {
namespace {

/// Deterministically selects at most `cap` elements of `items` (uniformly,
/// via a seeded shuffle of indices) preserving no particular order.
std::vector<geo::GeoPoint> Subsample(const std::vector<geo::GeoPoint>& items,
                                     std::size_t cap, std::uint64_t seed) {
  if (items.size() <= cap) return items;
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<geo::GeoPoint> out;
  out.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) out.push_back(items[order[i]]);
  return out;
}

}  // namespace

std::vector<double> LogSpacedBandwidths(double lo, double hi,
                                        std::size_t count) {
  if (!(lo > 0.0) || !(hi > lo) || count < 2) {
    throw InvalidArgument("LogSpacedBandwidths: need 0 < lo < hi, count >= 2");
  }
  std::vector<double> out(count);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(count - 1);
    out[i] = std::exp(log_lo + t * (log_hi - log_lo));
  }
  return out;
}

BandwidthSelection SelectBandwidth(const std::vector<geo::GeoPoint>& events,
                                   const std::vector<double>& candidates,
                                   const CrossValidationOptions& options) {
  if (candidates.empty()) {
    throw InvalidArgument("SelectBandwidth: no candidate bandwidths");
  }
  if (options.folds < 2 || events.size() < options.folds) {
    throw InvalidArgument("SelectBandwidth: need at least `folds` events");
  }

  // Deterministic fold assignment.
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(options.seed);
  std::shuffle(order.begin(), order.end(), rng.engine());

  // Pre-split folds once; reused for every candidate bandwidth so scores
  // are comparable.
  std::vector<std::vector<geo::GeoPoint>> train(options.folds);
  std::vector<std::vector<geo::GeoPoint>> eval(options.folds);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t fold = rank % options.folds;
    for (std::size_t f = 0; f < options.folds; ++f) {
      if (f == fold) {
        eval[f].push_back(events[order[rank]]);
      } else {
        train[f].push_back(events[order[rank]]);
      }
    }
  }
  for (std::size_t f = 0; f < options.folds; ++f) {
    train[f] = Subsample(train[f], options.max_train_events,
                         options.seed ^ (0x77A1 + f));
    eval[f] = Subsample(eval[f], options.max_eval_events,
                        options.seed ^ (0xE7A1 + f));
  }

  BandwidthSelection selection;
  selection.scores.reserve(candidates.size());
  double best_score = std::numeric_limits<double>::infinity();
  for (const double bandwidth : candidates) {
    double fold_sum = 0.0;
    for (std::size_t f = 0; f < options.folds; ++f) {
      const KernelDensity2D model(train[f], bandwidth);
      double nll = 0.0;
      for (const auto& y : eval[f]) {
        const double density =
            std::max(options.density_floor, model.Evaluate(y));
        nll -= std::log(density);
      }
      fold_sum += nll / static_cast<double>(eval[f].size());
    }
    const double score = fold_sum / static_cast<double>(options.folds);
    selection.scores.push_back(BandwidthScore{bandwidth, score});
    if (score < best_score) {
      best_score = score;
      selection.best_bandwidth_miles = bandwidth;
    }
  }
  return selection;
}

}  // namespace riskroute::stats
