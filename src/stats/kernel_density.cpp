#include "stats/kernel_density.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geo/distance.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace riskroute::stats {
namespace {
constexpr double kTwoPi = 6.28318530717958647692;
constexpr double kTruncationSigmas = 5.0;

/// KDE metrics, one registry lookup per process. Work counters (points,
/// cells) are per-call properties independent of scheduling, so stable;
/// wall-clock timings are volatile. Raster dispatches each row through
/// EvaluateBatch, so a Raster call also advances the batch counters.
struct KdeMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& builds = reg.GetCounter("stats.kde.builds");
  obs::Histogram& build_ns = reg.GetTiming("stats.kde.build_ns");
  obs::Counter& point_evals = reg.GetCounter("stats.kde.point_evals");
  obs::Counter& batch_calls = reg.GetCounter("stats.kde.batch_calls");
  obs::Counter& batch_points = reg.GetCounter("stats.kde.batch_points");
  obs::Histogram& batch_ns = reg.GetTiming("stats.kde.batch_ns");
  obs::Counter& raster_calls = reg.GetCounter("stats.kde.raster_calls");
  obs::Counter& raster_cells = reg.GetCounter("stats.kde.raster_cells");
  obs::Histogram& raster_ns = reg.GetTiming("stats.kde.raster_ns");

  static KdeMetrics& Get() {
    static KdeMetrics metrics;
    return metrics;
  }
};
}  // namespace

KernelDensity2D::KernelDensity2D(std::vector<geo::GeoPoint> events,
                                 double bandwidth_miles)
    : events_(std::move(events)),
      bandwidth_miles_(bandwidth_miles),
      truncation_miles_(kTruncationSigmas * bandwidth_miles),
      norm_(0.0),
      inv_two_sigma2_(0.0) {
  KdeMetrics& metrics = KdeMetrics::Get();
  metrics.builds.Add(1);
  obs::ScopedTimer build_timer(metrics.build_ns);
  if (events_.empty()) {
    throw InvalidArgument("KernelDensity2D: empty event set");
  }
  if (!(bandwidth_miles > 0.0)) {
    throw InvalidArgument("KernelDensity2D: bandwidth must be positive");
  }
  norm_ = 1.0 / (static_cast<double>(events_.size()) * kTwoPi *
                 bandwidth_miles_ * bandwidth_miles_);
  inv_two_sigma2_ = 1.0 / (2.0 * bandwidth_miles_ * bandwidth_miles_);
  // Cell size on the order of the truncation window keeps the visited-cell
  // count small while the per-cell point lists stay proportional to local
  // event density.
  const geo::BoundingBox bounds =
      geo::BoundingBox::Around(events_).Padded(0.5);
  const double cell = std::max(2.0, truncation_miles_ / 2.0);
  index_ = std::make_unique<spatial::GridIndex>(events_, bounds, cell);
  // Project every event once, in the grid's CSR slot order so a cell's
  // events occupy a contiguous range of the arrays.
  const std::vector<std::size_t>& order = index_->OrderedIndices();
  ex_.resize(order.size());
  ey_.resize(order.size());
  ecos_.resize(order.size());
  for (std::size_t slot = 0; slot < order.size(); ++slot) {
    const Projected p = Project(events_[order[slot]]);
    ex_[slot] = p.x;
    ey_[slot] = p.y;
    ecos_[slot] = p.cos_lat;
  }
}

KernelDensity2D::Projected KernelDensity2D::Project(
    const geo::GeoPoint& p) const {
  const double lat_rad = geo::DegToRad(p.latitude());
  Projected out;
  out.x = geo::kEarthRadiusMiles * geo::DegToRad(p.longitude());
  out.y = geo::kEarthRadiusMiles * lat_rad;
  out.cos_lat = std::cos(lat_rad);
  return out;
}

double KernelDensity2D::KernelSum(const geo::GeoPoint& y,
                                  const Projected& q) const {
  const double trunc2 = truncation_miles_ * truncation_miles_;
  const spatial::CellRect rect = index_->RectNear(y, truncation_miles_);
  double sum = 0.0;
  for (std::size_t r = rect.r0; r <= rect.r1; ++r) {
    // Cells [c0, c1] of one grid row are contiguous in the CSR layout, so
    // the whole row is a single dense range: no per-cell bookkeeping and
    // an autovectorizable multiply-add body.
    const std::size_t first = index_->CellSlotRange(r, rect.c0).first;
    const std::size_t last = index_->CellSlotRange(r, rect.c1).second;
    const double* const ex = ex_.data();
    const double* const ey = ey_.data();
    const double* const ecos = ecos_.data();
    // Branchless ternary so the compiler can emit a masked vectorized exp
    // (libmvec) over the whole range; truncated lanes contribute exact 0.
    for (std::size_t k = first; k < last; ++k) {
      const double dy = ey[k] - q.y;
      const double cmid = 0.5 * (ecos[k] + q.cos_lat);
      const double dx = (ex[k] - q.x) * cmid;
      const double d2 = dy * dy + dx * dx;
      sum += d2 <= trunc2 ? std::exp(-d2 * inv_two_sigma2_) : 0.0;
    }
  }
  return sum;
}

double KernelDensity2D::Evaluate(const geo::GeoPoint& y) const {
  KdeMetrics::Get().point_evals.Add(1);
  return norm_ * KernelSum(y, Project(y));
}

void KernelDensity2D::EvaluateBatch(std::span<const geo::GeoPoint> ys,
                                    std::span<double> out) const {
  if (ys.size() != out.size()) {
    throw InvalidArgument("EvaluateBatch: output span size mismatch");
  }
  KdeMetrics& metrics = KdeMetrics::Get();
  metrics.batch_calls.Add(1);
  metrics.batch_points.Add(ys.size());
  obs::ScopedTimer batch_timer(metrics.batch_ns);
  // Process queries grouped by grid cell: consecutive queries then stream
  // the same event ranges, which keeps the SoA slices hot in cache. The
  // per-query arithmetic is identical to Evaluate, so out[i] is bitwise
  // Evaluate(ys[i]) regardless of the processing order.
  std::vector<std::size_t> queries(ys.size());
  std::iota(queries.begin(), queries.end(), 0);
  std::vector<std::size_t> cell(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    cell[i] = index_->CellIdOf(ys[i]);
  }
  std::stable_sort(queries.begin(), queries.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cell[a] < cell[b];
                   });
  for (const std::size_t i : queries) {
    out[i] = norm_ * KernelSum(ys[i], Project(ys[i]));
  }
}

std::vector<double> KernelDensity2D::EvaluateBatch(
    std::span<const geo::GeoPoint> ys) const {
  std::vector<double> out(ys.size());
  EvaluateBatch(ys, out);
  return out;
}

double KernelDensity2D::MeanDensity(
    const std::vector<geo::GeoPoint>& ys) const {
  if (ys.empty()) throw InvalidArgument("MeanDensity: empty query set");
  const std::vector<double> densities = EvaluateBatch(ys);
  double sum = 0.0;
  for (const double d : densities) sum += d;
  return sum / static_cast<double>(ys.size());
}

std::vector<double> KernelDensity2D::Raster(const geo::BoundingBox& bounds,
                                            std::size_t rows,
                                            std::size_t cols,
                                            util::ThreadPool* pool) const {
  if (rows == 0 || cols == 0) {
    throw InvalidArgument("Raster: rows and cols must be positive");
  }
  KdeMetrics& metrics = KdeMetrics::Get();
  metrics.raster_calls.Add(1);
  metrics.raster_cells.Add(rows * cols);
  obs::ScopedTimer raster_timer(metrics.raster_ns);
  std::vector<double> grid(rows * cols, 0.0);
  const double lat_step = (bounds.max_lat() - bounds.min_lat()) /
                          static_cast<double>(rows);
  const double lon_step = (bounds.max_lon() - bounds.min_lon()) /
                          static_cast<double>(cols);
  const auto evaluate_row = [&](std::size_t r) {
    const double lat = bounds.min_lat() + (static_cast<double>(r) + 0.5) * lat_step;
    std::vector<geo::GeoPoint> centers;
    centers.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      const double lon =
          bounds.min_lon() + (static_cast<double>(c) + 0.5) * lon_step;
      centers.emplace_back(lat, lon);
    }
    EvaluateBatch(centers, std::span<double>(grid.data() + r * cols, cols));
  };
  if (pool != nullptr && pool->thread_count() > 1 && rows > 1) {
    // Each row writes a disjoint slice and every cell is an independent
    // query, so the result is bitwise identical for any thread count.
    util::ParallelFor(*pool, rows, evaluate_row);
  } else {
    for (std::size_t r = 0; r < rows; ++r) evaluate_row(r);
  }
  return grid;
}

}  // namespace riskroute::stats
