#include "stats/kernel_density.h"

#include <cmath>

#include "geo/distance.h"
#include "util/error.h"

namespace riskroute::stats {
namespace {
constexpr double kTwoPi = 6.28318530717958647692;
constexpr double kTruncationSigmas = 5.0;
}  // namespace

KernelDensity2D::KernelDensity2D(std::vector<geo::GeoPoint> events,
                                 double bandwidth_miles)
    : events_(std::move(events)),
      bandwidth_miles_(bandwidth_miles),
      truncation_miles_(kTruncationSigmas * bandwidth_miles),
      norm_(0.0) {
  if (events_.empty()) {
    throw InvalidArgument("KernelDensity2D: empty event set");
  }
  if (!(bandwidth_miles > 0.0)) {
    throw InvalidArgument("KernelDensity2D: bandwidth must be positive");
  }
  norm_ = 1.0 / (static_cast<double>(events_.size()) * kTwoPi *
                 bandwidth_miles_ * bandwidth_miles_);
  // Cell size on the order of the truncation window keeps the visited-cell
  // count small while the per-cell point lists stay proportional to local
  // event density.
  const geo::BoundingBox bounds =
      geo::BoundingBox::Around(events_).Padded(0.5);
  const double cell = std::max(2.0, truncation_miles_ / 2.0);
  index_ = std::make_unique<spatial::GridIndex>(events_, bounds, cell);
}

double KernelDensity2D::Evaluate(const geo::GeoPoint& y) const {
  const double inv_two_sigma2 =
      1.0 / (2.0 * bandwidth_miles_ * bandwidth_miles_);
  double sum = 0.0;
  index_->VisitNear(y, truncation_miles_, [&](std::size_t i) {
    const double d = geo::ApproxMiles(y, events_[i]);
    if (d <= truncation_miles_) {
      sum += std::exp(-d * d * inv_two_sigma2);
    }
  });
  return norm_ * sum;
}

double KernelDensity2D::MeanDensity(
    const std::vector<geo::GeoPoint>& ys) const {
  if (ys.empty()) throw InvalidArgument("MeanDensity: empty query set");
  double sum = 0.0;
  for (const auto& y : ys) sum += Evaluate(y);
  return sum / static_cast<double>(ys.size());
}

std::vector<double> KernelDensity2D::Raster(const geo::BoundingBox& bounds,
                                            std::size_t rows,
                                            std::size_t cols) const {
  if (rows == 0 || cols == 0) {
    throw InvalidArgument("Raster: rows and cols must be positive");
  }
  std::vector<double> grid(rows * cols, 0.0);
  const double lat_step = (bounds.max_lat() - bounds.min_lat()) /
                          static_cast<double>(rows);
  const double lon_step = (bounds.max_lon() - bounds.min_lon()) /
                          static_cast<double>(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const double lat = bounds.min_lat() + (static_cast<double>(r) + 0.5) * lat_step;
    for (std::size_t c = 0; c < cols; ++c) {
      const double lon =
          bounds.min_lon() + (static_cast<double>(c) + 0.5) * lon_step;
      grid[r * cols + c] = Evaluate(geo::GeoPoint(lat, lon));
    }
  }
  return grid;
}

}  // namespace riskroute::stats
