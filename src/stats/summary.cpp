#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace riskroute::stats {

double Summary::stddev() const { return std::sqrt(variance); }

Summary Summarize(const std::vector<double>& values) {
  if (values.empty()) throw InvalidArgument("Summarize: empty sample");
  Summary s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count >= 2) {
    double ss = 0.0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.variance = ss / static_cast<double>(s.count - 1);
  }
  return s;
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) throw InvalidArgument("Quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw InvalidArgument("Quantile: q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace riskroute::stats
