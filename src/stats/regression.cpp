#include "stats/regression.h"

#include <cmath>

#include "util/error.h"

namespace riskroute::stats {
namespace {

struct Moments {
  double mean_x = 0.0, mean_y = 0.0;
  double ss_xx = 0.0, ss_yy = 0.0, ss_xy = 0.0;
};

Moments ComputeMoments(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw InvalidArgument("regression: mismatched sample sizes");
  }
  if (xs.size() < 2) {
    throw InvalidArgument("regression: need at least two samples");
  }
  Moments m;
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    m.mean_x += xs[i];
    m.mean_y += ys[i];
  }
  m.mean_x /= n;
  m.mean_y /= n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - m.mean_x;
    const double dy = ys[i] - m.mean_y;
    m.ss_xx += dx * dx;
    m.ss_yy += dy * dy;
    m.ss_xy += dx * dy;
  }
  return m;
}

}  // namespace

LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  const Moments m = ComputeMoments(xs, ys);
  if (m.ss_xx <= 0.0) {
    throw InvalidArgument("regression: constant predictor");
  }
  LinearFit fit;
  fit.slope = m.ss_xy / m.ss_xx;
  fit.intercept = m.mean_y - fit.slope * m.mean_x;
  if (m.ss_yy <= 0.0) {
    fit.r_squared = 1.0;  // constant response fitted exactly
  } else {
    fit.r_squared = (m.ss_xy * m.ss_xy) / (m.ss_xx * m.ss_yy);
  }
  return fit;
}

double RSquared(const std::vector<double>& xs, const std::vector<double>& ys) {
  return FitLinear(xs, ys).r_squared;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  const Moments m = ComputeMoments(xs, ys);
  const double denom = std::sqrt(m.ss_xx * m.ss_yy);
  if (denom <= 0.0) return 0.0;
  return m.ss_xy / denom;
}

}  // namespace riskroute::stats
