#include "geo/distance.h"

#include <algorithm>
#include <cmath>

namespace riskroute::geo {
namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double DegToRad(double deg) { return deg * kPi / 180.0; }
double RadToDeg(double rad) { return rad * 180.0 / kPi; }

double GreatCircleMiles(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = DegToRad(a.latitude());
  const double lat2 = DegToRad(b.latitude());
  const double dlat = lat2 - lat1;
  const double dlon = DegToRad(b.longitude() - a.longitude());
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  const double c = 2.0 * std::asin(std::min(1.0, std::sqrt(h)));
  return kEarthRadiusMiles * c;
}

double ApproxMiles(const GeoPoint& a, const GeoPoint& b) {
  const double mean_lat = DegToRad((a.latitude() + b.latitude()) / 2.0);
  const double dx = DegToRad(b.longitude() - a.longitude()) * std::cos(mean_lat);
  const double dy = DegToRad(b.latitude() - a.latitude());
  return kEarthRadiusMiles * std::sqrt(dx * dx + dy * dy);
}

double InitialBearingDeg(const GeoPoint& from, const GeoPoint& to) {
  const double lat1 = DegToRad(from.latitude());
  const double lat2 = DegToRad(to.latitude());
  const double dlon = DegToRad(to.longitude() - from.longitude());
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  const double bearing = RadToDeg(std::atan2(y, x));
  return std::fmod(bearing + 360.0, 360.0);
}

GeoPoint Destination(const GeoPoint& origin, double bearing_deg, double miles) {
  const double delta = miles / kEarthRadiusMiles;
  const double theta = DegToRad(bearing_deg);
  const double lat1 = DegToRad(origin.latitude());
  const double lon1 = DegToRad(origin.longitude());
  const double lat2 = std::asin(std::sin(lat1) * std::cos(delta) +
                                std::cos(lat1) * std::sin(delta) * std::cos(theta));
  const double lon2 =
      lon1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(lat1),
                        std::cos(delta) - std::sin(lat1) * std::sin(lat2));
  double lon_deg = RadToDeg(lon2);
  // Normalize longitude into [-180, 180].
  while (lon_deg > 180.0) lon_deg -= 360.0;
  while (lon_deg < -180.0) lon_deg += 360.0;
  return GeoPoint(std::clamp(RadToDeg(lat2), -90.0, 90.0), lon_deg);
}

UnitVec3 ToUnitVec(const GeoPoint& p) {
  const double lat = DegToRad(p.latitude());
  const double lon = DegToRad(p.longitude());
  const double cos_lat = std::cos(lat);
  return UnitVec3{cos_lat * std::cos(lon), cos_lat * std::sin(lon),
                  std::sin(lat)};
}

double CosArcMiles(double miles) {
  return std::cos(std::min(miles / kEarthRadiusMiles, kPi));
}

GeoPoint Interpolate(const GeoPoint& a, const GeoPoint& b, double t) {
  if (t <= 0.0) return a;
  if (t >= 1.0) return b;
  const double total = GreatCircleMiles(a, b);
  if (total < 1e-9) return a;
  const double bearing = InitialBearingDeg(a, b);
  return Destination(a, bearing, total * t);
}

}  // namespace riskroute::geo
