// Coarse continental-United-States land test.
//
// The hazard and census synthesizers draw points from regional
// distributions and must reject draws that land in the ocean, the Gulf of
// Mexico, Canada or Mexico — otherwise the kernel density surfaces (paper
// Fig 4) would smear probability mass over water. A ~40-vertex polygon
// traced around the CONUS border is plenty at the 10s-of-miles resolution
// the paper's analysis operates at.
#pragma once

#include <span>
#include <vector>

#include "geo/geo_point.h"

namespace riskroute::geo {

/// Vertices of the coarse CONUS boundary polygon (counter-clockwise).
[[nodiscard]] std::span<const GeoPoint> ConusPolygon();

/// Even-odd point-in-polygon test against ConusPolygon().
[[nodiscard]] bool InConus(const GeoPoint& p);

/// Generic even-odd point-in-polygon test (treats lat/lon as planar, which
/// is adequate for a polygon that never nears the poles or antimeridian).
[[nodiscard]] bool PointInPolygon(const GeoPoint& p,
                                  std::span<const GeoPoint> polygon);

}  // namespace riskroute::geo
