#include "geo/conus.h"

#include <array>

namespace riskroute::geo {
namespace {

// Counter-clockwise trace of the continental US border, starting at the
// Washington coast and running down the Pacific, along the Mexican border,
// around the Gulf coast and Florida, up the Atlantic seaboard, and back
// west along the Canadian border. Accurate to roughly +/- 40 miles, which
// is finer than any kernel bandwidth the evaluation trains (Table 1).
const std::array<GeoPoint, 42> kConus = {{
    {48.4, -124.7},  // Cape Flattery, WA
    {46.2, -124.0},  // Oregon coast
    {42.0, -124.4},  // CA/OR border coast
    {38.9, -123.7},  // Point Arena, CA
    {36.5, -121.9},  // Monterey, CA
    {34.4, -120.5},  // Point Conception, CA
    {32.6, -117.2},  // San Diego, CA
    {32.7, -114.7},  // Yuma, AZ
    {31.3, -111.0},  // AZ/Sonora border
    {31.8, -106.5},  // El Paso, TX
    {29.5, -104.3},  // Big Bend, TX
    {25.9, -97.5},   // Brownsville, TX
    {27.8, -97.1},   // Corpus Christi, TX
    {29.3, -94.8},   // Galveston, TX
    {29.1, -90.9},   // Louisiana delta
    {30.2, -88.0},   // Mobile Bay, AL
    {29.9, -84.3},   // Apalachee Bay, FL
    {28.0, -82.8},   // Tampa, FL
    {24.4, -82.0},   // Florida Keys (Key West)
    {25.6, -80.0},   // Miami, FL
    {28.5, -80.5},   // Cape Canaveral, FL
    {30.7, -81.4},   // FL/GA coast
    {32.8, -79.9},   // Charleston, SC
    {34.0, -77.9},   // Wilmington, NC
    {35.2, -75.5},   // Cape Hatteras, NC
    {37.0, -76.0},   // Chesapeake mouth, VA
    {38.9, -74.9},   // Cape May, NJ
    {40.5, -73.9},   // New York Bight
    {41.3, -70.0},   // Nantucket, MA
    {42.5, -70.8},   // Cape Ann, MA
    {43.8, -69.5},   // Maine coast
    {44.8, -66.9},   // Eastport, ME
    {47.3, -68.0},   // Maine/NB corner
    {45.3, -71.1},   // NH/Quebec border
    {45.0, -74.7},   // St. Lawrence corner
    {43.6, -79.0},   // Niagara / Lake Ontario
    {42.3, -82.9},   // Detroit, MI
    {46.5, -84.4},   // Sault Ste. Marie, MI
    {48.0, -89.5},   // Lake Superior north shore
    {49.0, -95.2},   // Northwest Angle, MN
    {49.0, -122.8},  // BC/WA border
    {48.4, -124.7},  // back to Cape Flattery (explicit closure vertex)
}};

}  // namespace

std::span<const GeoPoint> ConusPolygon() {
  return {kConus.data(), kConus.size()};
}

bool PointInPolygon(const GeoPoint& p, std::span<const GeoPoint> polygon) {
  // Even-odd rule ray cast toward +longitude.
  bool inside = false;
  const double y = p.latitude();
  const double x = p.longitude();
  for (std::size_t i = 0, j = polygon.size() - 1; i < polygon.size(); j = i++) {
    const double yi = polygon[i].latitude(), xi = polygon[i].longitude();
    const double yj = polygon[j].latitude(), xj = polygon[j].longitude();
    const bool crosses = (yi > y) != (yj > y);
    if (crosses) {
      const double x_at_y = xi + (xj - xi) * (y - yi) / (yj - yi);
      if (x < x_at_y) inside = !inside;
    }
  }
  return inside;
}

bool InConus(const GeoPoint& p) { return PointInPolygon(p, ConusPolygon()); }

}  // namespace riskroute::geo
