// Great-circle geometry in statute miles.
#pragma once

#include "geo/geo_point.h"

namespace riskroute::geo {

/// Mean Earth radius in statute miles.
inline constexpr double kEarthRadiusMiles = 3958.7613;

/// Statute miles per kilometre (used by the advisory parser, which reads
/// radii reported in both units).
inline constexpr double kMilesPerKm = 0.621371;

[[nodiscard]] double DegToRad(double deg);
[[nodiscard]] double RadToDeg(double rad);

/// Great-circle (haversine) distance between two points, statute miles.
/// This is the paper's "air miles" / bit-miles distance.
[[nodiscard]] double GreatCircleMiles(const GeoPoint& a, const GeoPoint& b);

/// Fast equirectangular approximation; within ~0.5% of haversine at CONUS
/// scales. Used inside the KDE inner loop where millions of pairwise
/// distances are evaluated.
[[nodiscard]] double ApproxMiles(const GeoPoint& a, const GeoPoint& b);

/// Initial bearing from `from` toward `to`, degrees clockwise from north
/// in [0, 360).
[[nodiscard]] double InitialBearingDeg(const GeoPoint& from, const GeoPoint& to);

/// Point reached travelling `miles` from `origin` along `bearing_deg`.
[[nodiscard]] GeoPoint Destination(const GeoPoint& origin, double bearing_deg,
                                   double miles);

/// Linear interpolation along the great circle: t=0 -> a, t=1 -> b.
[[nodiscard]] GeoPoint Interpolate(const GeoPoint& a, const GeoPoint& b,
                                   double t);

/// Unit direction vector of a point on the sphere. Dot(u, v) is the
/// cosine of the central angle between the two points, so radius tests
/// against a precomputed set of vectors need one multiply-add triple per
/// point instead of a haversine evaluation — the hot-loop form used by
/// the ensemble footprint scans.
struct UnitVec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

[[nodiscard]] UnitVec3 ToUnitVec(const GeoPoint& p);

[[nodiscard]] inline double Dot(const UnitVec3& a, const UnitVec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

/// Cosine of the central angle subtended by `miles` of great-circle arc,
/// clamped to pi so "Dot(u, center) >= CosArcMiles(r)" is equivalent to
/// "central angle <= r of arc" for any non-negative radius (beyond half
/// the circumference everything is inside).
[[nodiscard]] double CosArcMiles(double miles);

}  // namespace riskroute::geo
