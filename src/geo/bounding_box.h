// Axis-aligned latitude/longitude boxes.
#pragma once

#include <algorithm>
#include <iterator>

#include "geo/geo_point.h"
#include "util/error.h"

namespace riskroute::geo {

/// Closed lat/lon rectangle. Does not handle antimeridian wrapping; all
/// geography in this library lives in the continental United States.
class BoundingBox {
 public:
  /// Throws InvalidArgument unless min <= max on both axes and all four
  /// bounds are valid coordinates.
  BoundingBox(double min_lat, double min_lon, double max_lat, double max_lon);

  [[nodiscard]] double min_lat() const { return min_lat_; }
  [[nodiscard]] double min_lon() const { return min_lon_; }
  [[nodiscard]] double max_lat() const { return max_lat_; }
  [[nodiscard]] double max_lon() const { return max_lon_; }

  [[nodiscard]] bool Contains(const GeoPoint& p) const;

  /// Smallest box containing this box and `p`.
  [[nodiscard]] BoundingBox ExpandedToInclude(const GeoPoint& p) const;

  /// Box grown by `margin_deg` degrees on every side (clamped to valid
  /// coordinate ranges).
  [[nodiscard]] BoundingBox Padded(double margin_deg) const;

  [[nodiscard]] GeoPoint Center() const;

  /// Diagonal extent in miles; used as the "geographic footprint" scale.
  [[nodiscard]] double DiagonalMiles() const;

  /// Tightest box around a non-empty set of points; throws on empty input.
  template <typename Range>
  [[nodiscard]] static BoundingBox Around(const Range& points);

 private:
  double min_lat_, min_lon_, max_lat_, max_lon_;
};

/// Bounding box of the continental United States (with a small margin);
/// the domain of every synthetic data set in this reproduction.
[[nodiscard]] const BoundingBox& ConusBounds();

template <typename Range>
BoundingBox BoundingBox::Around(const Range& points) {
  auto it = std::begin(points);
  auto end = std::end(points);
  if (it == end) {
    throw riskroute::InvalidArgument("BoundingBox::Around: empty point set");
  }
  double min_lat = it->latitude(), max_lat = it->latitude();
  double min_lon = it->longitude(), max_lon = it->longitude();
  for (++it; it != end; ++it) {
    min_lat = std::min(min_lat, it->latitude());
    max_lat = std::max(max_lat, it->latitude());
    min_lon = std::min(min_lon, it->longitude());
    max_lon = std::max(max_lon, it->longitude());
  }
  return BoundingBox(min_lat, min_lon, max_lat, max_lon);
}

}  // namespace riskroute::geo
