// Geographic coordinates.
//
// All RiskRoute geography is expressed as WGS84-style latitude/longitude in
// decimal degrees; distances are statute ("air") miles to match the paper's
// bit-miles definition ("the number of air miles ... carries Internet
// traffic", Level 3 traffic exchange policy, Section 1 of the paper).
#pragma once

#include <iosfwd>
#include <string>

namespace riskroute::geo {

/// A validated latitude/longitude pair in decimal degrees.
/// Latitude in [-90, 90], longitude in [-180, 180].
class GeoPoint {
 public:
  /// Default-constructs the (0, 0) point (Gulf of Guinea; harmless).
  constexpr GeoPoint() = default;

  /// Throws InvalidArgument if either coordinate is out of range or NaN.
  GeoPoint(double latitude_deg, double longitude_deg);

  [[nodiscard]] constexpr double latitude() const { return latitude_deg_; }
  [[nodiscard]] constexpr double longitude() const { return longitude_deg_; }

  [[nodiscard]] bool operator==(const GeoPoint& other) const = default;

  /// "35.2000N 76.4000W" — the hemisphere-suffixed form NOAA advisories use.
  [[nodiscard]] std::string ToString() const;

 private:
  double latitude_deg_ = 0.0;
  double longitude_deg_ = 0.0;
};

std::ostream& operator<<(std::ostream& out, const GeoPoint& p);

/// True iff both coordinates are finite and in range; the non-throwing
/// counterpart of the validating constructor.
[[nodiscard]] bool IsValidLatLon(double latitude_deg, double longitude_deg);

}  // namespace riskroute::geo
