#include "geo/geo_point.h"

#include <cmath>
#include <ostream>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::geo {

bool IsValidLatLon(double latitude_deg, double longitude_deg) {
  return std::isfinite(latitude_deg) && std::isfinite(longitude_deg) &&
         latitude_deg >= -90.0 && latitude_deg <= 90.0 &&
         longitude_deg >= -180.0 && longitude_deg <= 180.0;
}

GeoPoint::GeoPoint(double latitude_deg, double longitude_deg)
    : latitude_deg_(latitude_deg), longitude_deg_(longitude_deg) {
  if (!IsValidLatLon(latitude_deg, longitude_deg)) {
    throw InvalidArgument(util::Format(
        "invalid coordinates (%.4f, %.4f)", latitude_deg, longitude_deg));
  }
}

std::string GeoPoint::ToString() const {
  const char ns = latitude_deg_ >= 0 ? 'N' : 'S';
  const char ew = longitude_deg_ >= 0 ? 'E' : 'W';
  return util::Format("%.4f%c %.4f%c", std::fabs(latitude_deg_), ns,
                      std::fabs(longitude_deg_), ew);
}

std::ostream& operator<<(std::ostream& out, const GeoPoint& p) {
  return out << p.ToString();
}

}  // namespace riskroute::geo
