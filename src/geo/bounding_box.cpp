#include "geo/bounding_box.h"

#include <algorithm>

#include "geo/distance.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::geo {

BoundingBox::BoundingBox(double min_lat, double min_lon, double max_lat,
                         double max_lon)
    : min_lat_(min_lat), min_lon_(min_lon), max_lat_(max_lat), max_lon_(max_lon) {
  if (!IsValidLatLon(min_lat, min_lon) || !IsValidLatLon(max_lat, max_lon) ||
      min_lat > max_lat || min_lon > max_lon) {
    throw InvalidArgument(util::Format(
        "invalid bounding box [%.4f, %.4f] x [%.4f, %.4f]", min_lat, max_lat,
        min_lon, max_lon));
  }
}

bool BoundingBox::Contains(const GeoPoint& p) const {
  return p.latitude() >= min_lat_ && p.latitude() <= max_lat_ &&
         p.longitude() >= min_lon_ && p.longitude() <= max_lon_;
}

BoundingBox BoundingBox::ExpandedToInclude(const GeoPoint& p) const {
  return BoundingBox(std::min(min_lat_, p.latitude()),
                     std::min(min_lon_, p.longitude()),
                     std::max(max_lat_, p.latitude()),
                     std::max(max_lon_, p.longitude()));
}

BoundingBox BoundingBox::Padded(double margin_deg) const {
  return BoundingBox(std::max(-90.0, min_lat_ - margin_deg),
                     std::max(-180.0, min_lon_ - margin_deg),
                     std::min(90.0, max_lat_ + margin_deg),
                     std::min(180.0, max_lon_ + margin_deg));
}

GeoPoint BoundingBox::Center() const {
  return GeoPoint((min_lat_ + max_lat_) / 2.0, (min_lon_ + max_lon_) / 2.0);
}

double BoundingBox::DiagonalMiles() const {
  return GreatCircleMiles(GeoPoint(min_lat_, min_lon_),
                          GeoPoint(max_lat_, max_lon_));
}

const BoundingBox& ConusBounds() {
  static const BoundingBox bounds(24.3, -125.0, 49.5, -66.5);
  return bounds;
}

}  // namespace riskroute::geo
