#include "population/assignment.h"

#include <algorithm>

#include "spatial/kd_tree.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::population {

std::string StateOfPopName(std::string_view name) {
  // PoP names look like "Houston, TX" or "Jackson, MS Metro 3": the state
  // is the two-letter token following the last ", ".
  const std::size_t comma = name.rfind(", ");
  if (comma == std::string_view::npos || comma + 4 > name.size()) return {};
  const std::string_view code = name.substr(comma + 2, 2);
  const bool is_upper_alpha =
      code.size() == 2 && code[0] >= 'A' && code[0] <= 'Z' &&
      code[1] >= 'A' && code[1] <= 'Z';
  if (!is_upper_alpha) return {};
  // Either end-of-string or a following space ("... MS Metro 3").
  if (comma + 4 < name.size() && name[comma + 4] != ' ') return {};
  return std::string(code);
}

std::vector<std::string> NetworkStates(const topology::Network& network) {
  std::vector<std::string> states;
  for (const topology::Pop& pop : network.pops()) {
    std::string state = StateOfPopName(pop.name);
    if (!state.empty() &&
        std::find(states.begin(), states.end(), state) == states.end()) {
      states.push_back(std::move(state));
    }
  }
  std::sort(states.begin(), states.end());
  return states;
}

ImpactModel::ImpactModel(std::vector<double> served, double considered)
    : served_(std::move(served)), considered_population_(considered) {
  fractions_.resize(served_.size(), 0.0);
  if (considered_population_ > 0.0) {
    for (std::size_t i = 0; i < served_.size(); ++i) {
      fractions_[i] = served_[i] / considered_population_;
    }
  }
}

ImpactModel ImpactModel::Build(const topology::Network& network,
                               const CensusModel& census) {
  if (network.pop_count() == 0) {
    throw InvalidArgument("ImpactModel: network has no PoPs");
  }
  std::vector<geo::GeoPoint> sites;
  sites.reserve(network.pop_count());
  for (const topology::Pop& pop : network.pops()) sites.push_back(pop.location);
  const spatial::KdTree index(sites);

  // Paper Section 5.1: regional networks only consider population in their
  // own states.
  std::vector<std::string> states;
  if (network.kind() == topology::NetworkKind::kRegional) {
    states = NetworkStates(network);
  }

  std::vector<double> served(network.pop_count(), 0.0);
  double considered = 0.0;
  for (const CensusBlock& block : census.blocks()) {
    if (!states.empty() &&
        !std::binary_search(states.begin(), states.end(), block.state)) {
      continue;
    }
    const auto nearest = index.Nearest(block.centroid);
    served[nearest->index] += block.population;
    considered += block.population;
  }
  return ImpactModel(std::move(served), considered);
}

double ImpactModel::fraction(std::size_t pop_index) const {
  if (pop_index >= fractions_.size()) {
    throw InvalidArgument(
        util::Format("ImpactModel: PoP index %zu out of range", pop_index));
  }
  return fractions_[pop_index];
}

double ImpactModel::served_population(std::size_t pop_index) const {
  if (pop_index >= served_.size()) {
    throw InvalidArgument(
        util::Format("ImpactModel: PoP index %zu out of range", pop_index));
  }
  return served_[pop_index];
}

double ImpactModel::Alpha(std::size_t i, std::size_t j) const {
  return fraction(i) + fraction(j);
}

}  // namespace riskroute::population
