#include "population/census_io.h"

#include <sstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::population {

void WriteCensusCsv(const CensusModel& census, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.Write("latitude", "longitude", "population", "state");
  for (const CensusBlock& block : census.blocks()) {
    csv.Write(util::Format("%.6f", block.centroid.latitude()),
              util::Format("%.6f", block.centroid.longitude()),
              util::Format("%.4f", block.population), block.state);
  }
}

std::string CensusToCsv(const CensusModel& census) {
  std::ostringstream os;
  WriteCensusCsv(census, os);
  return os.str();
}

CensusModel ReadCensusCsv(std::istream& in) {
  const std::vector<util::CsvRow> rows = util::ReadCsv(in);
  if (rows.empty()) throw ParseError("census csv: empty input");
  const util::CsvRow expected_header = {"latitude", "longitude", "population",
                                        "state"};
  if (rows.front() != expected_header) {
    throw ParseError("census csv: unexpected header");
  }
  std::vector<CensusBlock> blocks;
  blocks.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const util::CsvRow& row = rows[r];
    if (row.size() != 4) {
      throw ParseError(util::Format("census csv row %zu: expected 4 fields",
                                    r + 1));
    }
    const auto lat = util::ParseDouble(row[0]);
    const auto lon = util::ParseDouble(row[1]);
    const auto pop = util::ParseDouble(row[2]);
    if (!lat || !lon || !pop || !geo::IsValidLatLon(*lat, *lon) ||
        !(*pop > 0.0)) {
      throw ParseError(util::Format("census csv row %zu: malformed values",
                                    r + 1));
    }
    blocks.push_back(CensusBlock{geo::GeoPoint(*lat, *lon), *pop, row[3]});
  }
  if (blocks.empty()) throw ParseError("census csv: no data rows");
  return CensusModel(std::move(blocks));
}

CensusModel CensusFromCsv(const std::string& text) {
  std::istringstream is(text);
  return ReadCensusCsv(is);
}

}  // namespace riskroute::population
