// CSV persistence for census blocks.
//
// Real census extracts are tabular; this reader lets users feed actual
// block/tract centroids into the impact model instead of the synthetic
// census. Format:
//
//   latitude,longitude,population,state
//   29.950000,-90.070000,1523.5,LA
#pragma once

#include <iosfwd>
#include <string>

#include "population/census.h"

namespace riskroute::population {

/// Writes the model's blocks as CSV with a header row.
void WriteCensusCsv(const CensusModel& census, std::ostream& out);
[[nodiscard]] std::string CensusToCsv(const CensusModel& census);

/// Parses the CSV format above (header required). Throws ParseError on
/// malformed rows, invalid coordinates, or non-positive populations.
[[nodiscard]] CensusModel ReadCensusCsv(std::istream& in);
[[nodiscard]] CensusModel CensusFromCsv(const std::string& text);

}  // namespace riskroute::population
