#include "population/census.h"

#include <algorithm>
#include <cmath>

#include "geo/bounding_box.h"
#include "geo/conus.h"
#include "geo/distance.h"
#include "spatial/kd_tree.h"
#include "topology/gazetteer.h"
#include "util/error.h"
#include "util/rng.h"

namespace riskroute::population {
namespace {

using topology::City;

/// Spatial spread of a city's blocks grows sub-linearly with population
/// (big metros sprawl, small towns are compact).
double CitySpreadMiles(double city_population) {
  return 4.0 + std::sqrt(city_population) / 120.0;
}

}  // namespace

CensusModel::CensusModel(std::vector<CensusBlock> blocks)
    : blocks_(std::move(blocks)) {
  if (blocks_.empty()) throw InvalidArgument("CensusModel: no blocks");
  for (const CensusBlock& b : blocks_) total_population_ += b.population;
}

CensusModel CensusModel::Synthesize(const CensusOptions& options) {
  if (options.block_count == 0) {
    throw InvalidArgument("CensusModel: block_count must be positive");
  }
  util::Rng rng(options.seed);
  const auto cities = topology::Cities();

  std::vector<double> city_weights;
  city_weights.reserve(cities.size());
  std::vector<geo::GeoPoint> city_points;
  city_points.reserve(cities.size());
  for (const City& city : cities) {
    city_weights.push_back(city.population);
    city_points.push_back(city.location());
  }
  // Used to attach a state to rural blocks (nearest city's state).
  const spatial::KdTree city_index(city_points);

  std::vector<CensusBlock> blocks;
  blocks.reserve(options.block_count);
  const geo::BoundingBox& conus = geo::ConusBounds();

  // Raw (unnormalized) block masses; scaled afterwards so the total
  // matches the configured continental population.
  double raw_total = 0.0;
  while (blocks.size() < options.block_count) {
    CensusBlock block;
    if (rng.Chance(options.urban_fraction)) {
      const std::size_t pick = rng.WeightedIndex(city_weights);
      const City& city = cities[pick];
      const double spread = CitySpreadMiles(city.population);
      const double bearing = rng.Uniform(0.0, 360.0);
      // Half-Gaussian radial profile around the city centre.
      const double radius = std::fabs(rng.Gaussian(0.0, spread));
      const geo::GeoPoint site =
          geo::Destination(city.location(), bearing, radius);
      if (!geo::InConus(site)) continue;  // re-draw coastal spillover
      block.centroid = site;
      block.state = std::string(city.state);
      // Urban blocks carry a broad range of masses (apartment blocks to
      // suburban tracts); lognormal-ish via exp(Gaussian).
      block.population = std::exp(rng.Gaussian(5.2, 0.9));
    } else {
      const geo::GeoPoint site(rng.Uniform(conus.min_lat(), conus.max_lat()),
                               rng.Uniform(conus.min_lon(), conus.max_lon()));
      if (!geo::InConus(site)) continue;
      block.centroid = site;
      const auto nearest = city_index.Nearest(site);
      block.state = std::string(cities[nearest->index].state);
      block.population = std::exp(rng.Gaussian(3.6, 0.8));
    }
    raw_total += block.population;
    blocks.push_back(std::move(block));
  }

  const double scale = options.total_population / raw_total;
  for (CensusBlock& block : blocks) block.population *= scale;
  return CensusModel(std::move(blocks));
}

double CensusModel::PopulationInStates(
    const std::vector<std::string>& states) const {
  if (states.empty()) return total_population_;
  double total = 0.0;
  for (const CensusBlock& block : blocks_) {
    if (std::find(states.begin(), states.end(), block.state) != states.end()) {
      total += block.population;
    }
  }
  return total;
}

}  // namespace riskroute::population
