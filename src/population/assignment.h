// Outage impact via nearest-neighbour population assignment
// (paper Section 5.1).
//
// Every census block is assigned to the geographically nearest PoP of the
// network under study; c_i is then the fraction of the considered
// population served by PoP i, and the estimated impact of an outage
// between PoPs i and j is alpha_ij = c_i + c_j. For geographically
// constrained regional networks the paper confines the population to the
// states where the network has infrastructure; we do the same, deriving
// the state set from the network's PoP names.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "population/census.h"
#include "topology/network.h"

namespace riskroute::population {

/// Extracts the USPS state code from a PoP name of the form
/// "City, ST" or "City, ST Metro 3"; empty string if no state is present.
[[nodiscard]] std::string StateOfPopName(std::string_view name);

/// The distinct states a network has PoPs in (from PoP names).
[[nodiscard]] std::vector<std::string> NetworkStates(
    const topology::Network& network);

/// Immutable per-network impact model.
class ImpactModel {
 public:
  /// Assigns census blocks to the network's PoPs. Regional networks are
  /// confined to their own states (the paper's rule); Tier-1 networks use
  /// the full continental population.
  [[nodiscard]] static ImpactModel Build(const topology::Network& network,
                                         const CensusModel& census);

  /// Fraction of considered population served by PoP i (sums to 1 over
  /// all PoPs, up to blocks outside every state filter).
  [[nodiscard]] double fraction(std::size_t pop_index) const;

  /// Absolute population served by PoP i.
  [[nodiscard]] double served_population(std::size_t pop_index) const;

  /// alpha_ij = c_i + c_j, the paper's outage impact between two PoPs.
  [[nodiscard]] double Alpha(std::size_t i, std::size_t j) const;

  [[nodiscard]] const std::vector<double>& fractions() const {
    return fractions_;
  }
  [[nodiscard]] double considered_population() const {
    return considered_population_;
  }

 private:
  ImpactModel(std::vector<double> served, double considered);

  std::vector<double> served_;
  std::vector<double> fractions_;
  double considered_population_ = 0.0;
};

}  // namespace riskroute::population
