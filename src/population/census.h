// Synthetic census-block population model.
//
// The paper uses US Census data at census-block resolution: 215,932
// geographic partitions of the continental US, each with a population
// count (Section 4.2). That data set is replaced here by a deterministic
// synthesizer that reproduces its structure: blocks cluster around real
// cities (mass proportional to metro population, spatial spread growing
// with city size) over a sparse rural background, and the total population
// matches the 2010 continental-US total. RiskRoute only consumes the
// resulting density field through nearest-neighbour assignment, so
// matching the density gradients is what matters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geo_point.h"

namespace riskroute::population {

/// One census block: centroid, population mass, and USPS state code
/// (inherited from the nearest gazetteer city; used for the paper's
/// state-confined regional analysis).
struct CensusBlock {
  geo::GeoPoint centroid;
  double population = 0.0;
  std::string state;
};

/// Synthesis parameters.
struct CensusOptions {
  /// The paper's block count for the continental US.
  std::size_t block_count = 215932;
  /// 2010 continental-US population (approximate).
  double total_population = 306e6;
  /// Fraction of blocks attached to cities (rest are rural background).
  double urban_fraction = 0.82;
  std::uint64_t seed = 7;
};

/// Immutable synthetic census.
class CensusModel {
 public:
  /// Builds the synthetic block set; deterministic in `options.seed`.
  [[nodiscard]] static CensusModel Synthesize(const CensusOptions& options = {});

  /// Wraps externally supplied blocks (e.g. real census data a user loads).
  explicit CensusModel(std::vector<CensusBlock> blocks);

  [[nodiscard]] const std::vector<CensusBlock>& blocks() const { return blocks_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] double total_population() const { return total_population_; }

  /// Total population in the given states (empty = everything).
  [[nodiscard]] double PopulationInStates(
      const std::vector<std::string>& states) const;

 private:
  std::vector<CensusBlock> blocks_;
  double total_population_ = 0.0;
};

}  // namespace riskroute::population
