// Interdomain fast restoration under disaster failures.
//
// The paper (Section 3.1): "over shorter time scales, RiskRoute could be
// used in conjunction with the proposed BGP 'add paths' option as the
// basis for inter-domain fast path restoration". This module measures how
// much that buys: given a set of disaster-disabled ASes, every surviving
// (source, destination) pair is classified by the cheapest machinery that
// keeps it connected — the primary route still works, an add-paths
// alternate (pre-installed, sub-second switchover) works, full BGP
// reconvergence finds a route, or nothing does.
#pragma once

#include <cstddef>
#include <vector>

#include "bgp/path_vector.h"
#include "forecast/forecast_risk.h"
#include "topology/corpus.h"

namespace riskroute::bgp {

/// Outcome classification for one (source, destination) pair.
enum class FailoverOutcome {
  kPrimarySurvives,
  kRestoredByAddPaths,
  kRestoredByReconvergence,
  kUnreachable,
};

/// Aggregate over all ordered pairs of surviving ASes.
struct RestorationSummary {
  std::size_t pairs = 0;
  std::size_t primary_ok = 0;
  std::size_t add_paths = 0;
  std::size_t reconverged = 0;
  std::size_t lost = 0;

  [[nodiscard]] double PrimarySurvival() const;
  /// Fraction of failure-hit pairs rescued by pre-installed alternates
  /// (the add-paths payoff).
  [[nodiscard]] double AddPathsRescueRate() const;
  [[nodiscard]] double FinalReachability() const;
};

/// Classifies every ordered pair of surviving ASes under the failure set.
/// `max_alternates` is the add-paths retention depth.
[[nodiscard]] RestorationSummary AssessFailover(
    const RelationshipGraph& graph, const std::vector<bool>& as_failed,
    std::size_t max_alternates = 3);

/// Derives the failed-AS set from a storm scope: an AS fails when more
/// than `failure_threshold` of its PoPs saw hurricane-force winds.
[[nodiscard]] std::vector<bool> FailedAsesFromStorm(
    const topology::Corpus& corpus, const forecast::StormScope& scope,
    double failure_threshold = 0.5);

}  // namespace riskroute::bgp
