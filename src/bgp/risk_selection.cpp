#include "bgp/risk_selection.h"

#include <algorithm>

#include "util/error.h"

namespace riskroute::bgp {
namespace {

int ClassRank(NeighborRole role) {
  switch (role) {
    case NeighborRole::kCustomer:
      return 0;
    case NeighborRole::kPeer:
      return 1;
    case NeighborRole::kProvider:
      return 2;
  }
  throw InternalError("unknown NeighborRole");
}

}  // namespace

std::vector<double> AsRiskScores(const topology::Corpus& corpus,
                                 const hazard::HistoricalRiskField& field) {
  std::vector<double> scores;
  scores.reserve(corpus.network_count());
  for (const topology::Network& network : corpus.networks()) {
    // Batch evaluation: one trig-free KDE pass over the network's PoPs
    // (bitwise equal to per-PoP RiskAt calls).
    const std::vector<double> risks = field.PopRisks(network);
    double sum = 0.0;
    for (const double risk : risks) sum += risk;
    scores.push_back(network.pop_count() > 0
                         ? sum / static_cast<double>(network.pop_count())
                         : 0.0);
  }
  return scores;
}

double RouteRisk(const Route& route, const std::vector<double>& as_risk) {
  double total = 0.0;
  for (std::size_t i = 1; i < route.as_path.size(); ++i) {
    const std::size_t as = route.as_path[i];
    if (as >= as_risk.size()) {
      throw InvalidArgument("RouteRisk: AS path references unknown AS");
    }
    total += as_risk[as];
  }
  return total;
}

void RankAlternatesByRisk(std::vector<Route>& alternates,
                          const std::vector<double>& as_risk) {
  std::stable_sort(alternates.begin(), alternates.end(),
                   [&](const Route& a, const Route& b) {
                     const int ca = ClassRank(a.learned_from);
                     const int cb = ClassRank(b.learned_from);
                     if (ca != cb) return ca < cb;  // policy class dominates
                     const double risk_a = RouteRisk(a, as_risk);
                     const double risk_b = RouteRisk(b, as_risk);
                     if (risk_a != risk_b) return risk_a < risk_b;
                     return a.length() < b.length();
                   });
}

std::size_t ApplyRiskAwareSelection(RoutingState& state,
                                    const std::vector<double>& as_risk) {
  std::size_t changed = 0;
  for (std::size_t as = 0; as < state.as_count(); ++as) {
    RibEntry& rib = state.mutable_rib(as);
    if (rib.alternates.size() < 2) continue;
    const std::vector<std::size_t> old_best = rib.alternates.front().as_path;
    RankAlternatesByRisk(rib.alternates, as_risk);
    rib.best = rib.alternates.front();
    if (rib.best->as_path != old_best) ++changed;
  }
  return changed;
}

}  // namespace riskroute::bgp
