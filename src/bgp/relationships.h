// AS business relationships.
//
// The paper's interdomain discussion builds on BGP practice: Gao et al.'s
// inherently safe backup routing (its ref [35]) and the Gao-Rexford
// stability conditions rest on classifying each AS adjacency as
// customer->provider or peer<->peer. The corpus gives us the adjacencies
// (Figure 2); the tiers imply the business roles: Tier-1 <-> Tier-1 links
// are settlement-free peering, regional <-> Tier-1 links are
// customer-provider (the regional buys transit), and regional <-> regional
// links are peering.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/corpus.h"

namespace riskroute::bgp {

/// Role of a neighbour from the local AS's point of view.
enum class NeighborRole { kCustomer, kPeer, kProvider };

/// One AS's classified adjacency lists (indices into the corpus).
struct AsNeighbors {
  std::vector<std::size_t> customers;
  std::vector<std::size_t> peers;
  std::vector<std::size_t> providers;
};

/// Relationship graph over the corpus's ASes.
class RelationshipGraph {
 public:
  /// Classifies every corpus peering by tier as described above.
  [[nodiscard]] static RelationshipGraph FromCorpus(
      const topology::Corpus& corpus);

  [[nodiscard]] std::size_t as_count() const { return neighbors_.size(); }
  [[nodiscard]] const AsNeighbors& neighbors(std::size_t as) const;

  /// Role of `neighbor` from `as`'s point of view; throws if they are not
  /// adjacent.
  [[nodiscard]] NeighborRole RoleOf(std::size_t as, std::size_t neighbor) const;

  [[nodiscard]] bool AreAdjacent(std::size_t a, std::size_t b) const;

  /// Copy with every adjacency involving a removed AS dropped (the AS
  /// index space is preserved; removed ASes keep empty adjacency lists).
  /// Used to model disaster-disabled ASes for reconvergence analysis.
  [[nodiscard]] RelationshipGraph WithoutAses(
      const std::vector<bool>& removed) const;

 private:
  std::vector<AsNeighbors> neighbors_;
};

}  // namespace riskroute::bgp
