// Risk-aware BGP route selection.
//
// Paper Section 3.1: "the RiskRoute metric can be used to identify
// service providers that may be able to offer additional connectivity
// options" and, with add-paths, as "the basis for inter-domain fast path
// restoration". Operationally that means: when BGP policy leaves several
// equally preferred candidate routes, break the tie by disaster exposure
// of the ASes the route traverses. This module scores AS paths with
// per-AS aggregate risk and re-ranks a RIB's alternates accordingly.
#pragma once

#include <cstddef>
#include <vector>

#include "bgp/path_vector.h"
#include "hazard/risk_field.h"
#include "topology/corpus.h"

namespace riskroute::bgp {

/// Mean historical PoP risk of every corpus AS — the AS-level risk score.
[[nodiscard]] std::vector<double> AsRiskScores(
    const topology::Corpus& corpus, const hazard::HistoricalRiskField& field);

/// Summed risk of the ASes a route traverses (excluding the first hop's
/// owner, whose risk is unavoidable).
[[nodiscard]] double RouteRisk(const Route& route,
                               const std::vector<double>& as_risk);

/// Re-sorts `alternates` risk-aware: Gao-Rexford class still dominates
/// (never prefer a provider route over a customer route — that would
/// break policy safety), but within a class the lowest-RouteRisk
/// candidate wins, then shorter paths. Returns the new best index 0.
void RankAlternatesByRisk(std::vector<Route>& alternates,
                          const std::vector<double>& as_risk);

/// Applies RankAlternatesByRisk to every RIB of a routing state and
/// returns how many ASes changed their best route — the deployment
/// footprint of risk-aware selection.
[[nodiscard]] std::size_t ApplyRiskAwareSelection(
    RoutingState& state, const std::vector<double>& as_risk);

}  // namespace riskroute::bgp
