// Policy-constrained path-vector routing (BGP-lite).
//
// The paper defers interdomain deployment to BGP machinery: backup routes
// must be "inherently safe" under Gao et al.'s model (its ref [35]) and
// fast restoration can ride the BGP add-paths option (its ref [40],
// Section 3.1). This module implements that substrate: Gao-Rexford route
// selection (customer > peer > provider, then shortest AS path) with the
// matching export rules (customer routes go to everyone; peer/provider
// routes only to customers), iterated to the unique stable solution, and
// an add-paths table retaining every distinct policy-compliant route for
// failover. All resulting paths are valley-free by construction.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "bgp/relationships.h"

namespace riskroute::bgp {

/// A route to the destination AS: the AS-level path starting at the
/// owning AS and ending at the destination, plus how it was learned.
struct Route {
  std::vector<std::size_t> as_path;  // front() = self, back() = destination
  NeighborRole learned_from = NeighborRole::kCustomer;

  [[nodiscard]] std::size_t next_hop() const { return as_path[1]; }
  [[nodiscard]] std::size_t length() const { return as_path.size() - 1; }
};

/// Gao-Rexford preference: customer routes beat peer routes beat provider
/// routes; ties break on shorter AS path, then lower next-hop index
/// (a deterministic surrogate for router-id tie-breaking).
[[nodiscard]] bool RoutePreferred(const Route& a, const Route& b);

/// Per-AS routing state toward one destination.
struct RibEntry {
  /// Best route (nullopt when the destination is unreachable under policy).
  std::optional<Route> best;
  /// All distinct policy-learned routes, best first — the add-paths set.
  std::vector<Route> alternates;
};

/// Routing toward one destination for every AS.
class RoutingState {
 public:
  /// Computes the stable Gao-Rexford solution toward `destination`.
  /// `max_alternates` bounds each AS's add-paths retention (distinct
  /// next-hops; 0 keeps only the best route).
  [[nodiscard]] static RoutingState Compute(const RelationshipGraph& graph,
                                            std::size_t destination,
                                            std::size_t max_alternates = 3);

  /// Same fixed point with the flagged ASes failed in place: a failed AS
  /// originates nothing, learns nothing, and offers nothing. Equivalent to
  /// Compute(graph.WithoutAses(as_failed), ...) without materializing the
  /// degraded copy — the per-scenario path of the reconvergence analysis.
  [[nodiscard]] static RoutingState Compute(const RelationshipGraph& graph,
                                            std::size_t destination,
                                            std::size_t max_alternates,
                                            const std::vector<bool>& as_failed);

  [[nodiscard]] const RibEntry& rib(std::size_t as) const;
  /// Mutable access for post-processing (e.g. risk-aware re-ranking).
  [[nodiscard]] RibEntry& mutable_rib(std::size_t as);
  [[nodiscard]] std::size_t destination() const { return destination_; }
  [[nodiscard]] std::size_t as_count() const { return ribs_.size(); }

  /// Fraction of ASes (excluding the destination) with a best route.
  [[nodiscard]] double Reachability() const;

  /// Fraction of routed ASes holding at least one alternate with a
  /// different next hop — BGP add-paths failover coverage.
  [[nodiscard]] double BackupCoverage() const;

 private:
  [[nodiscard]] static RoutingState ComputeImpl(const RelationshipGraph& graph,
                                                std::size_t destination,
                                                std::size_t max_alternates,
                                                const std::vector<bool>* failed);

  std::vector<RibEntry> ribs_;
  std::size_t destination_ = 0;
};

/// True when the AS path never goes "down" (toward a customer or across a
/// peer) and later "up" or across again — the Gao-Rexford safety shape.
[[nodiscard]] bool IsValleyFree(const RelationshipGraph& graph,
                                const std::vector<std::size_t>& as_path);

}  // namespace riskroute::bgp
