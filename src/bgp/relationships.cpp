#include "bgp/relationships.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::bgp {

RelationshipGraph RelationshipGraph::FromCorpus(
    const topology::Corpus& corpus) {
  RelationshipGraph graph;
  graph.neighbors_.resize(corpus.network_count());
  for (const topology::Peering& peering : corpus.peerings()) {
    const bool a_tier1 = corpus.network(peering.a).kind() ==
                         topology::NetworkKind::kTier1;
    const bool b_tier1 = corpus.network(peering.b).kind() ==
                         topology::NetworkKind::kTier1;
    if (a_tier1 == b_tier1) {
      // Same tier: settlement-free peering.
      graph.neighbors_[peering.a].peers.push_back(peering.b);
      graph.neighbors_[peering.b].peers.push_back(peering.a);
    } else if (a_tier1) {
      // a provides transit to b.
      graph.neighbors_[peering.a].customers.push_back(peering.b);
      graph.neighbors_[peering.b].providers.push_back(peering.a);
    } else {
      graph.neighbors_[peering.b].customers.push_back(peering.a);
      graph.neighbors_[peering.a].providers.push_back(peering.b);
    }
  }
  for (AsNeighbors& n : graph.neighbors_) {
    std::sort(n.customers.begin(), n.customers.end());
    std::sort(n.peers.begin(), n.peers.end());
    std::sort(n.providers.begin(), n.providers.end());
  }
  return graph;
}

const AsNeighbors& RelationshipGraph::neighbors(std::size_t as) const {
  if (as >= neighbors_.size()) {
    throw InvalidArgument(util::Format("RelationshipGraph: AS %zu out of range", as));
  }
  return neighbors_[as];
}

NeighborRole RelationshipGraph::RoleOf(std::size_t as,
                                       std::size_t neighbor) const {
  const AsNeighbors& n = neighbors(as);
  if (std::binary_search(n.customers.begin(), n.customers.end(), neighbor)) {
    return NeighborRole::kCustomer;
  }
  if (std::binary_search(n.peers.begin(), n.peers.end(), neighbor)) {
    return NeighborRole::kPeer;
  }
  if (std::binary_search(n.providers.begin(), n.providers.end(), neighbor)) {
    return NeighborRole::kProvider;
  }
  throw InvalidArgument(
      util::Format("RelationshipGraph: AS %zu and %zu are not adjacent", as,
                   neighbor));
}

RelationshipGraph RelationshipGraph::WithoutAses(
    const std::vector<bool>& removed) const {
  if (removed.size() != neighbors_.size()) {
    throw InvalidArgument("WithoutAses: flag vector size mismatch");
  }
  RelationshipGraph filtered;
  filtered.neighbors_.resize(neighbors_.size());
  const auto keep = [&](const std::vector<std::size_t>& from,
                        std::vector<std::size_t>& to) {
    for (const std::size_t v : from) {
      if (!removed[v]) to.push_back(v);
    }
  };
  for (std::size_t u = 0; u < neighbors_.size(); ++u) {
    if (removed[u]) continue;
    keep(neighbors_[u].customers, filtered.neighbors_[u].customers);
    keep(neighbors_[u].peers, filtered.neighbors_[u].peers);
    keep(neighbors_[u].providers, filtered.neighbors_[u].providers);
  }
  return filtered;
}

bool RelationshipGraph::AreAdjacent(std::size_t a, std::size_t b) const {
  const AsNeighbors& n = neighbors(a);
  return std::binary_search(n.customers.begin(), n.customers.end(), b) ||
         std::binary_search(n.peers.begin(), n.peers.end(), b) ||
         std::binary_search(n.providers.begin(), n.providers.end(), b);
}

}  // namespace riskroute::bgp
