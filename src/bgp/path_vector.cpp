#include "bgp/path_vector.h"

#include <algorithm>

#include "util/error.h"

namespace riskroute::bgp {
namespace {

int ClassRank(NeighborRole role) {
  switch (role) {
    case NeighborRole::kCustomer:
      return 0;  // most preferred
    case NeighborRole::kPeer:
      return 1;
    case NeighborRole::kProvider:
      return 2;
  }
  throw InternalError("unknown NeighborRole");
}

bool ContainsAs(const std::vector<std::size_t>& path, std::size_t as) {
  return std::find(path.begin(), path.end(), as) != path.end();
}

/// Standard BGP export rule: a route learned from a customer (or
/// originated) is exported to everyone; routes learned from peers or
/// providers are exported only to customers.
bool Exports(NeighborRole route_learned_from, NeighborRole receiver_role) {
  if (receiver_role == NeighborRole::kCustomer) return true;
  return route_learned_from == NeighborRole::kCustomer;
}

}  // namespace

bool RoutePreferred(const Route& a, const Route& b) {
  const int ra = ClassRank(a.learned_from);
  const int rb = ClassRank(b.learned_from);
  if (ra != rb) return ra < rb;
  if (a.length() != b.length()) return a.length() < b.length();
  return a.next_hop() < b.next_hop();
}

RoutingState RoutingState::Compute(const RelationshipGraph& graph,
                                   std::size_t destination,
                                   std::size_t max_alternates) {
  return ComputeImpl(graph, destination, max_alternates, nullptr);
}

RoutingState RoutingState::Compute(const RelationshipGraph& graph,
                                   std::size_t destination,
                                   std::size_t max_alternates,
                                   const std::vector<bool>& as_failed) {
  if (as_failed.size() != graph.as_count()) {
    throw InvalidArgument("RoutingState: failure flag vector size mismatch");
  }
  return ComputeImpl(graph, destination, max_alternates, &as_failed);
}

RoutingState RoutingState::ComputeImpl(const RelationshipGraph& graph,
                                       std::size_t destination,
                                       std::size_t max_alternates,
                                       const std::vector<bool>* failed) {
  const std::size_t n = graph.as_count();
  if (destination >= n) {
    throw InvalidArgument("RoutingState: destination out of range");
  }
  const auto is_failed = [failed](std::size_t as) {
    return failed != nullptr && (*failed)[as];
  };
  RoutingState state;
  state.destination_ = destination;
  state.ribs_.resize(n);

  // The destination originates; its "route" is the trivial path. We model
  // it implicitly: neighbours of the destination always have the direct
  // candidate.
  std::vector<std::optional<Route>> best(n);

  // Synchronous iteration to the (unique, Gao-Rexford-guaranteed) fixed
  // point; 2n rounds is a safe upper bound on convergence.
  for (std::size_t round = 0; round < 2 * n + 2; ++round) {
    bool changed = false;
    std::vector<std::optional<Route>> next = best;
    for (std::size_t u = 0; u < n; ++u) {
      if (u == destination || is_failed(u)) continue;
      std::optional<Route> chosen;
      const auto consider = [&](std::size_t v, NeighborRole v_role_of_u) {
        if (is_failed(v)) return;
        // v's role of u decides exportability; u learns the route with the
        // role *v plays for u*.
        const NeighborRole u_learns_as = graph.RoleOf(u, v);
        std::optional<Route> offer;
        if (v == destination) {
          offer = Route{{u, destination}, u_learns_as};
        } else if (best[v] && Exports(best[v]->learned_from, v_role_of_u) &&
                   !ContainsAs(best[v]->as_path, u)) {
          Route r;
          r.as_path.reserve(best[v]->as_path.size() + 1);
          r.as_path.push_back(u);
          r.as_path.insert(r.as_path.end(), best[v]->as_path.begin(),
                           best[v]->as_path.end());
          r.learned_from = u_learns_as;
          offer = std::move(r);
        }
        if (offer && (!chosen || RoutePreferred(*offer, *chosen))) {
          chosen = std::move(offer);
        }
      };
      const AsNeighbors& adj = graph.neighbors(u);
      for (const std::size_t v : adj.customers) {
        consider(v, NeighborRole::kProvider);  // u is v's provider
      }
      for (const std::size_t v : adj.peers) consider(v, NeighborRole::kPeer);
      for (const std::size_t v : adj.providers) {
        consider(v, NeighborRole::kCustomer);  // u is v's customer
      }
      const bool differs =
          chosen.has_value() != best[u].has_value() ||
          (chosen && best[u] && chosen->as_path != best[u]->as_path);
      if (differs) changed = true;
      next[u] = std::move(chosen);
    }
    best = std::move(next);
    if (!changed) break;
  }

  // Fill RIBs: best route plus the add-paths alternates (every exportable
  // neighbour offer with a distinct next hop, preference order).
  for (std::size_t u = 0; u < n; ++u) {
    if (u == destination) {
      state.ribs_[u].best = Route{{destination}, NeighborRole::kCustomer};
      continue;
    }
    if (is_failed(u)) continue;  // a failed AS holds no routes
    std::vector<Route> candidates;
    const auto offer_from = [&](std::size_t v, NeighborRole v_role_of_u) {
      if (is_failed(v)) return;
      const NeighborRole u_learns_as = graph.RoleOf(u, v);
      if (v == destination) {
        candidates.push_back(Route{{u, destination}, u_learns_as});
        return;
      }
      if (best[v] && Exports(best[v]->learned_from, v_role_of_u) &&
          !ContainsAs(best[v]->as_path, u)) {
        Route r;
        r.as_path.push_back(u);
        r.as_path.insert(r.as_path.end(), best[v]->as_path.begin(),
                         best[v]->as_path.end());
        r.learned_from = u_learns_as;
        candidates.push_back(std::move(r));
      }
    };
    const AsNeighbors& adj = graph.neighbors(u);
    for (const std::size_t v : adj.customers) {
      offer_from(v, NeighborRole::kProvider);
    }
    for (const std::size_t v : adj.peers) offer_from(v, NeighborRole::kPeer);
    for (const std::size_t v : adj.providers) {
      offer_from(v, NeighborRole::kCustomer);
    }
    std::sort(candidates.begin(), candidates.end(), RoutePreferred);
    RibEntry& rib = state.ribs_[u];
    for (Route& route : candidates) {
      const bool duplicate_next_hop = std::any_of(
          rib.alternates.begin(), rib.alternates.end(),
          [&](const Route& kept) { return kept.next_hop() == route.next_hop(); });
      if (duplicate_next_hop) continue;
      if (rib.alternates.size() > max_alternates) break;
      rib.alternates.push_back(std::move(route));
    }
    if (!rib.alternates.empty()) rib.best = rib.alternates.front();
  }
  return state;
}

const RibEntry& RoutingState::rib(std::size_t as) const {
  if (as >= ribs_.size()) {
    throw InvalidArgument("RoutingState: AS out of range");
  }
  return ribs_[as];
}

RibEntry& RoutingState::mutable_rib(std::size_t as) {
  if (as >= ribs_.size()) {
    throw InvalidArgument("RoutingState: AS out of range");
  }
  return ribs_[as];
}

double RoutingState::Reachability() const {
  std::size_t routed = 0;
  for (std::size_t u = 0; u < ribs_.size(); ++u) {
    if (u != destination_ && ribs_[u].best) ++routed;
  }
  if (ribs_.size() <= 1) return 1.0;
  return static_cast<double>(routed) / static_cast<double>(ribs_.size() - 1);
}

double RoutingState::BackupCoverage() const {
  std::size_t routed = 0, covered = 0;
  for (std::size_t u = 0; u < ribs_.size(); ++u) {
    if (u == destination_ || !ribs_[u].best) continue;
    ++routed;
    if (ribs_[u].alternates.size() >= 2) ++covered;
  }
  if (routed == 0) return 0.0;
  return static_cast<double>(covered) / static_cast<double>(routed);
}

bool IsValleyFree(const RelationshipGraph& graph,
                  const std::vector<std::size_t>& as_path) {
  if (as_path.size() < 2) return true;
  // Phase 0: ascending (toward providers). Phase 1: one peer crossing.
  // Phase 2: descending (toward customers). No transition backwards.
  int phase = 0;
  bool crossed_peer = false;
  for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
    const NeighborRole role = graph.RoleOf(as_path[i], as_path[i + 1]);
    switch (role) {
      case NeighborRole::kProvider:  // going up
        if (phase != 0) return false;
        break;
      case NeighborRole::kPeer:  // one lateral step allowed
        if (phase != 0 || crossed_peer) return false;
        crossed_peer = true;
        phase = 1;
        break;
      case NeighborRole::kCustomer:  // going down
        phase = 2;
        break;
    }
  }
  return true;
}

}  // namespace riskroute::bgp
