#include "bgp/restoration.h"

#include <algorithm>

#include "util/error.h"

namespace riskroute::bgp {
namespace {

bool PathSurvives(const std::vector<std::size_t>& as_path,
                  const std::vector<bool>& failed) {
  return std::none_of(as_path.begin(), as_path.end(),
                      [&](std::size_t as) { return failed[as]; });
}

}  // namespace

double RestorationSummary::PrimarySurvival() const {
  if (pairs == 0) return 1.0;
  return static_cast<double>(primary_ok) / static_cast<double>(pairs);
}

double RestorationSummary::AddPathsRescueRate() const {
  const std::size_t hit = pairs - primary_ok;
  if (hit == 0) return 1.0;
  return static_cast<double>(add_paths) / static_cast<double>(hit);
}

double RestorationSummary::FinalReachability() const {
  if (pairs == 0) return 1.0;
  return static_cast<double>(primary_ok + add_paths + reconverged) /
         static_cast<double>(pairs);
}

RestorationSummary AssessFailover(const RelationshipGraph& graph,
                                  const std::vector<bool>& as_failed,
                                  std::size_t max_alternates) {
  const std::size_t n = graph.as_count();
  if (as_failed.size() != n) {
    throw InvalidArgument("AssessFailover: flag vector size mismatch");
  }

  RestorationSummary summary;
  for (std::size_t dst = 0; dst < n; ++dst) {
    if (as_failed[dst]) continue;
    const RoutingState healthy =
        RoutingState::Compute(graph, dst, max_alternates);
    // Failed ASes are masked in place — no degraded graph copy.
    const RoutingState reconverged =
        RoutingState::Compute(graph, dst, 0, as_failed);
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst || as_failed[src]) continue;
      const RibEntry& rib = healthy.rib(src);
      if (!rib.best) continue;  // never reachable: not a routed pair
      ++summary.pairs;
      if (PathSurvives(rib.best->as_path, as_failed)) {
        ++summary.primary_ok;
        continue;
      }
      const bool rescued = std::any_of(
          rib.alternates.begin(), rib.alternates.end(), [&](const Route& r) {
            return PathSurvives(r.as_path, as_failed);
          });
      if (rescued) {
        ++summary.add_paths;
      } else if (reconverged.rib(src).best) {
        ++summary.reconverged;
      } else {
        ++summary.lost;
      }
    }
  }
  return summary;
}

std::vector<bool> FailedAsesFromStorm(const topology::Corpus& corpus,
                                      const forecast::StormScope& scope,
                                      double failure_threshold) {
  std::vector<bool> failed(corpus.network_count(), false);
  for (std::size_t n = 0; n < corpus.network_count(); ++n) {
    const double fraction = scope.FractionPopsInZone(
        corpus.network(n), forecast::WindZone::kHurricane);
    failed[n] = fraction > failure_threshold;
  }
  return failed;
}

}  // namespace riskroute::bgp
