#include "forecast/parser.h"

#include <array>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "geo/geo_point.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::forecast {
namespace {

constexpr std::string_view kSource = "advisory";

/// Splits bulletin text into upper-case word tokens. Ellipsis runs ("..."
/// or longer) act as separators; a single trailing period is stripped from
/// sentence-final tokens while decimal numbers ("35.2") stay intact.
std::vector<std::string> Tokenize(std::string_view text) {
  std::string upper = util::ToUpper(text);
  std::string spaced;
  spaced.reserve(upper.size());
  for (std::size_t i = 0; i < upper.size();) {
    if (upper[i] == '.' && i + 1 < upper.size() && upper[i + 1] == '.') {
      spaced.push_back(' ');
      while (i < upper.size() && upper[i] == '.') ++i;
    } else {
      spaced.push_back(upper[i]);
      ++i;
    }
  }
  std::vector<std::string> tokens = util::SplitWhitespace(spaced);
  for (std::string& token : tokens) {
    while (!token.empty() && (token.back() == '.' || token.back() == ',')) {
      token.pop_back();
    }
  }
  std::erase_if(tokens, [](const std::string& t) { return t.empty(); });
  return tokens;
}

/// Finite-only numeric lookup: "NAN" and "INF" parse as doubles but must
/// never enter the risk model (a NaN radius poisons every downstream
/// comparison), so they read as "not a number here".
std::optional<double> NumberAt(const std::vector<std::string>& tokens,
                               std::size_t i) {
  if (i >= tokens.size()) return std::nullopt;
  const auto value = util::ParseDouble(tokens[i]);
  if (value && !std::isfinite(*value)) return std::nullopt;
  return value;
}

bool Matches(const std::vector<std::string>& tokens, std::size_t i,
             std::initializer_list<const char*> phrase) {
  std::size_t k = i;
  for (const char* word : phrase) {
    if (k >= tokens.size() || tokens[k] != word) return false;
    ++k;
  }
  return true;
}

int MonthFromToken(const std::string& token) {
  static constexpr std::array<const char*, 12> months = {
      "JAN", "FEB", "MAR", "APR", "MAY", "JUN",
      "JUL", "AUG", "SEP", "OCT", "NOV", "DEC"};
  for (std::size_t m = 0; m < months.size(); ++m) {
    if (token.rfind(months[m], 0) == 0) return static_cast<int>(m) + 1;
  }
  return 0;
}

bool IsWeekday(const std::string& token) {
  static constexpr std::array<const char*, 7> days = {
      "SUN", "MON", "TUE", "WED", "THU", "FRI", "SAT"};
  for (const char* d : days) {
    if (token.rfind(d, 0) == 0) return true;
  }
  return false;
}

util::ParseResult<Advisory> Fail(util::ParseErrorKind kind,
                                 std::string message) {
  util::ingest::CountRejected(kSource, kind);
  return util::ParseResult<Advisory>::Failure(kind, std::move(message));
}

}  // namespace

util::ParseResult<Advisory> ParseAdvisoryResult(std::string_view text,
                                                const AdvisoryLimits& limits) {
  if (text.size() > limits.max_bytes) {
    return Fail(util::ParseErrorKind::kLimitExceeded,
                util::Format("advisory: %zu-byte bulletin exceeds the "
                             "%zu-byte limit",
                             text.size(), limits.max_bytes));
  }
  const std::vector<std::string> tokens = Tokenize(text);
  if (tokens.size() > limits.max_tokens) {
    return Fail(util::ParseErrorKind::kLimitExceeded,
                util::Format("advisory: %zu tokens exceed the %zu-token limit",
                             tokens.size(), limits.max_tokens));
  }
  Advisory advisory;
  bool have_name = false, have_lat = false, have_lon = false;
  bool have_tropical = false;
  double lat = 0.0, lon = 0.0;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // "HURRICANE IRENE ADVISORY NUMBER 23" / "TROPICAL STORM SANDY ADVISORY..."
    if (!have_name && i + 3 < tokens.size() &&
        (tokens[i] == "HURRICANE" ||
         (tokens[i] == "STORM" && i > 0 && tokens[i - 1] == "TROPICAL")) &&
        tokens[i + 2] == "ADVISORY" && tokens[i + 3] == "NUMBER") {
      advisory.storm_name = tokens[i + 1];
      have_name = true;
      // The float->int cast is UB outside int's range, so gate it to a
      // plausible advisory-number window first.
      if (const auto number = NumberAt(tokens, i + 4);
          number && *number >= 0.0 && *number <= 1e6) {
        advisory.number = static_cast<int>(*number);
      }
    }
    // "LATITUDE 35.2 NORTH"
    if (tokens[i] == "LATITUDE") {
      if (const auto value = NumberAt(tokens, i + 1)) {
        const bool south = i + 2 < tokens.size() && tokens[i + 2] == "SOUTH";
        lat = south ? -*value : *value;
        have_lat = true;
      }
    }
    // "LONGITUDE 76.4 WEST"
    if (tokens[i] == "LONGITUDE") {
      if (const auto value = NumberAt(tokens, i + 1)) {
        const bool west = i + 2 < tokens.size() && tokens[i + 2] == "WEST";
        lon = west ? -*value : *value;
        have_lon = true;
      }
    }
    // "MOVING TOWARD THE NORTH-NORTHEAST NEAR 15 MPH"
    if (Matches(tokens, i, {"MOVING", "TOWARD", "THE"}) &&
        i + 5 < tokens.size() && tokens[i + 4] == "NEAR") {
      advisory.motion_direction = tokens[i + 3];
      if (const auto speed = NumberAt(tokens, i + 5)) {
        advisory.motion_mph = *speed;
      }
    }
    // "MAXIMUM SUSTAINED WINDS ARE NEAR 85 MPH"
    if (Matches(tokens, i, {"MAXIMUM", "SUSTAINED", "WINDS", "ARE", "NEAR"})) {
      if (const auto wind = NumberAt(tokens, i + 5)) {
        advisory.max_wind_mph = *wind;
      }
    }
    // "HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO 90 MILES"
    if (tokens[i] == "HURRICANE-FORCE" &&
        Matches(tokens, i + 1, {"WINDS", "EXTEND", "OUTWARD", "UP", "TO"})) {
      if (const auto radius = NumberAt(tokens, i + 6);
          radius && i + 7 < tokens.size() && tokens[i + 7] == "MILES") {
        advisory.hurricane_wind_radius_miles = *radius;
      }
    }
    // "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO 260 MILES"
    if (tokens[i] == "TROPICAL-STORM-FORCE" &&
        Matches(tokens, i + 1, {"WINDS", "EXTEND", "OUTWARD", "UP", "TO"})) {
      if (const auto radius = NumberAt(tokens, i + 6);
          radius && i + 7 < tokens.size() && tokens[i + 7] == "MILES") {
        advisory.tropical_wind_radius_miles = *radius;
        have_tropical = true;
      }
    }
    // Timestamp: "<hhmm> AM|PM <TZ> <DOW> <MON> <day> <year>"
    if (i + 6 < tokens.size() && (tokens[i + 1] == "AM" || tokens[i + 1] == "PM") &&
        IsWeekday(tokens[i + 3]) && MonthFromToken(tokens[i + 4]) != 0) {
      const auto clock = util::ParseInt(tokens[i]);
      const auto day = util::ParseInt(tokens[i + 5]);
      const auto year = util::ParseInt(tokens[i + 6]);
      // Range-check before narrowing: an implausible clock/day/year is
      // ignored (the advisory keeps the default timestamp) instead of
      // storing a civil time that PlusHours/ToString would reject.
      if (clock && day && year && *clock >= 100 && *clock <= 1259 &&
          *clock % 100 < 60 && *day >= 1 && *day <= 31 && *year >= 1 &&
          *year <= 9999) {
        int hour = static_cast<int>(*clock / 100);
        if (hour == 12) hour = 0;
        if (tokens[i + 1] == "PM") hour += 12;
        AdvisoryTime time;
        time.hour = hour;
        time.timezone = tokens[i + 2];
        time.month = MonthFromToken(tokens[i + 4]);
        time.day = static_cast<int>(*day);
        time.year = static_cast<int>(*year);
        if (IsValidCivil(time)) advisory.time = std::move(time);
      }
    }
  }

  if (!have_name) {
    return Fail(util::ParseErrorKind::kMissingField,
                "advisory: storm name not found");
  }
  if (!have_lat || !have_lon) {
    return Fail(util::ParseErrorKind::kMissingField,
                "advisory: centre coordinates not found");
  }
  if (!have_tropical) {
    return Fail(util::ParseErrorKind::kMissingField,
                "advisory: tropical-storm wind radius not found");
  }
  if (!geo::IsValidLatLon(lat, lon)) {
    return Fail(util::ParseErrorKind::kBadValue,
                util::Format("advisory: centre (%g, %g) is not a valid "
                             "latitude/longitude",
                             lat, lon));
  }
  advisory.center = geo::GeoPoint(lat, lon);
  util::ingest::CountAccepted(kSource);
  return advisory;
}

Advisory ParseAdvisory(std::string_view text) {
  return ParseAdvisoryResult(text).ValueOrThrow();
}

}  // namespace riskroute::forecast
