#include "forecast/advisory.h"

#include <array>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::forecast {
namespace {

constexpr std::array<const char*, 12> kMonths = {
    "JAN", "FEB", "MAR", "APR", "MAY", "JUN",
    "JUL", "AUG", "SEP", "OCT", "NOV", "DEC"};
constexpr std::array<const char*, 7> kWeekdays = {"SUN", "MON", "TUE", "WED",
                                                  "THU", "FRI", "SAT"};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr std::array<int, 12> days = {31, 28, 31, 30, 31, 30,
                                               31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return days[static_cast<std::size_t>(month - 1)];
}

}  // namespace

AdvisoryTime AdvisoryTime::PlusHours(int hours) const {
  AdvisoryTime t = *this;
  int total = t.hour + hours;
  while (total >= 24) {
    total -= 24;
    ++t.day;
    if (t.day > DaysInMonth(t.year, t.month)) {
      t.day = 1;
      ++t.month;
      if (t.month > 12) {
        t.month = 1;
        ++t.year;
      }
    }
  }
  while (total < 0) {
    total += 24;
    --t.day;
    if (t.day < 1) {
      --t.month;
      if (t.month < 1) {
        t.month = 12;
        --t.year;
      }
      t.day = DaysInMonth(t.year, t.month);
    }
  }
  t.hour = total;
  return t;
}

int AdvisoryTime::DayOfWeek() const {
  // Sakamoto's algorithm.
  static constexpr std::array<int, 12> offsets = {0, 3, 2, 5, 0, 3,
                                                  5, 1, 4, 6, 2, 4};
  int y = year;
  if (month < 3) y -= 1;
  return (y + y / 4 - y / 100 + y / 400 +
          offsets[static_cast<std::size_t>(month - 1)] + day) % 7;
}

std::string AdvisoryTime::ToString() const {
  if (month < 1 || month > 12 || day < 1 || day > DaysInMonth(year, month) ||
      hour < 0 || hour > 23) {
    throw InvalidArgument("AdvisoryTime: invalid civil time");
  }
  const int hour12 = hour % 12 == 0 ? 12 : hour % 12;
  const char* ampm = hour < 12 ? "AM" : "PM";
  return util::Format("%d00 %s %s %s %s %d %d", hour12, ampm,
                      timezone.c_str(),
                      kWeekdays[static_cast<std::size_t>(DayOfWeek())],
                      kMonths[static_cast<std::size_t>(month - 1)], day, year);
}

}  // namespace riskroute::forecast
