#include "forecast/advisory.h"

#include <array>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::forecast {
namespace {

constexpr std::array<const char*, 12> kMonths = {
    "JAN", "FEB", "MAR", "APR", "MAY", "JUN",
    "JUL", "AUG", "SEP", "OCT", "NOV", "DEC"};
constexpr std::array<const char*, 7> kWeekdays = {"SUN", "MON", "TUE", "WED",
                                                  "THU", "FRI", "SAT"};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr std::array<int, 12> days = {31, 28, 31, 30, 31, 30,
                                               31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return days[static_cast<std::size_t>(month - 1)];
}

/// Every civil-time method validates up front: a hand-built or parsed
/// AdvisoryTime with month 0 (or day 40, hour 99) must throw, not index
/// arrays out of bounds. Fuzz-found; see tests/ingest_robustness_test.cpp.
void RequireValidCivil(const AdvisoryTime& t, const char* method) {
  if (!IsValidCivil(t)) {
    throw InvalidArgument(util::Format(
        "AdvisoryTime::%s: invalid civil time %04d-%02d-%02d %02d:00", method,
        t.year, t.month, t.day, t.hour));
  }
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian). The
/// standard era-based O(1) conversion; exact for any year, including
/// negatives, so PlusHours never loops and never overflows.
long long DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const long long era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = static_cast<unsigned>(
      (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<long long>(doe) - 719468;
}

struct CivilDate {
  int year, month, day;
};

/// Inverse of DaysFromCivil.
CivilDate CivilFromDays(long long z) {
  z += 719468;
  const long long era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long long y = static_cast<long long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

}  // namespace

bool IsValidCivil(const AdvisoryTime& t) {
  return t.month >= 1 && t.month <= 12 && t.day >= 1 &&
         t.day <= DaysInMonth(t.year, t.month) && t.hour >= 0 && t.hour <= 23;
}

AdvisoryTime AdvisoryTime::PlusHours(int hours) const {
  RequireValidCivil(*this, "PlusHours");
  // 64-bit total: hour + INT_MAX must not overflow, and the day shift is
  // O(1) civil-date arithmetic rather than a per-day loop.
  const long long total =
      DaysFromCivil(year, month, day) * 24 + hour + static_cast<long long>(hours);
  long long days = total / 24;
  int h = static_cast<int>(total % 24);
  if (h < 0) {
    h += 24;
    --days;
  }
  const CivilDate date = CivilFromDays(days);
  AdvisoryTime t = *this;
  t.year = date.year;
  t.month = date.month;
  t.day = date.day;
  t.hour = h;
  return t;
}

int AdvisoryTime::DayOfWeek() const {
  RequireValidCivil(*this, "DayOfWeek");
  // 1970-01-01 (day 0) was a Thursday (4); the double mod keeps the
  // result in [0, 6] for dates before the epoch.
  const long long z = DaysFromCivil(year, month, day);
  return static_cast<int>(((z + 4) % 7 + 7) % 7);
}

std::string AdvisoryTime::ToString() const {
  RequireValidCivil(*this, "ToString");
  const int hour12 = hour % 12 == 0 ? 12 : hour % 12;
  const char* ampm = hour < 12 ? "AM" : "PM";
  return util::Format("%d00 %s %s %s %s %d %d", hour12, ampm,
                      timezone.c_str(),
                      kWeekdays[static_cast<std::size_t>(DayOfWeek())],
                      kMonths[static_cast<std::size_t>(month - 1)], day, year);
}

}  // namespace riskroute::forecast
