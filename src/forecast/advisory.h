// Hurricane advisory model (paper Section 4.4).
//
// Each National Hurricane Center public advisory carries a timestamp, the
// storm's current centre, and the radii of tropical-storm-force and
// hurricane-force winds. The paper parses these from the advisory text;
// this struct is the parsed form, and writer.h / parser.h convert to and
// from the NHC text format.
#pragma once

#include <string>

#include "geo/geo_point.h"

namespace riskroute::forecast {

/// Civil timestamp in the storm's local timezone, as advisories print it
/// ("1100 AM EDT FRI AUG 26 2011").
struct AdvisoryTime {
  int year = 2000;
  int month = 1;   // 1-12
  int day = 1;     // 1-31
  int hour = 0;    // 0-23
  std::string timezone = "EDT";

  /// Advances by whole hours, rolling days/months/years correctly
  /// (Gregorian, leap years included).
  [[nodiscard]] AdvisoryTime PlusHours(int hours) const;

  /// "1100 PM EDT MON OCT 29 2012" (NHC style).
  [[nodiscard]] std::string ToString() const;

  /// Day of week, 0 = Sunday.
  [[nodiscard]] int DayOfWeek() const;

  [[nodiscard]] bool operator==(const AdvisoryTime&) const = default;
};

/// True when the timestamp is a real civil time: month 1-12, day within
/// the month (leap years included), hour 0-23. PlusHours / DayOfWeek /
/// ToString throw InvalidArgument when this does not hold, so callers
/// assembling an AdvisoryTime from untrusted input should check first.
[[nodiscard]] bool IsValidCivil(const AdvisoryTime& t);

/// One parsed public advisory.
struct Advisory {
  std::string storm_name;  // upper case, e.g. "IRENE"
  int number = 1;          // advisory number
  AdvisoryTime time;
  geo::GeoPoint center;
  double max_wind_mph = 0.0;
  /// Radius of hurricane-force winds in statute miles; 0 when the storm
  /// has no hurricane-force wind field (tropical-storm stage).
  double hurricane_wind_radius_miles = 0.0;
  /// Radius of tropical-storm-force winds in statute miles.
  double tropical_wind_radius_miles = 0.0;
  /// Storm motion: compass direction label + speed.
  std::string motion_direction = "NORTH";
  double motion_mph = 0.0;

  /// True when max winds reach hurricane strength (>= 74 mph).
  [[nodiscard]] bool IsHurricane() const { return max_wind_mph >= 74.0; }
};

}  // namespace riskroute::forecast
