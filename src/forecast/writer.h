// Renders an Advisory as National-Hurricane-Center-style public advisory
// text — the same format the paper's natural-language parsing consumes
// (Section 4.4). Used by the track library to materialize the synthetic
// advisory corpus and by tests to exercise parser round-trips.
#pragma once

#include <string>

#include "forecast/advisory.h"

namespace riskroute::forecast {

/// Full advisory bulletin text (upper-case, "..."-delimited NHC style).
[[nodiscard]] std::string RenderAdvisory(const Advisory& advisory);

}  // namespace riskroute::forecast
