#include "forecast/writer.h"

#include <cmath>
#include <sstream>

#include "geo/distance.h"
#include "util/strings.h"

namespace riskroute::forecast {
namespace {

/// NHC reports radii in both statute miles and kilometres.
std::string MilesAndKm(double miles) {
  const double km = miles / geo::kMilesPerKm;
  return util::Format("%.0f MILES...%.0f KM", miles, km);
}

}  // namespace

std::string RenderAdvisory(const Advisory& advisory) {
  const char* status = advisory.IsHurricane() ? "HURRICANE" : "TROPICAL STORM";
  std::ostringstream out;
  out << "BULLETIN\n";
  out << status << ' ' << advisory.storm_name << " ADVISORY NUMBER  "
      << advisory.number << '\n';
  out << "NWS NATIONAL HURRICANE CENTER MIAMI FL\n";
  out << advisory.time.ToString() << "\n\n";

  const double lat = advisory.center.latitude();
  const double lon = advisory.center.longitude();
  out << "...THE CENTER OF " << status << ' ' << advisory.storm_name
      << " WAS LOCATED NEAR LATITUDE "
      << util::Format("%.1f", std::fabs(lat))
      << (lat >= 0 ? " NORTH" : " SOUTH") << "...LONGITUDE "
      << util::Format("%.1f", std::fabs(lon))
      << (lon >= 0 ? " EAST" : " WEST") << ".\n";

  out << advisory.storm_name << " IS MOVING TOWARD THE "
      << advisory.motion_direction << " NEAR "
      << util::Format("%.0f", advisory.motion_mph) << " MPH.\n";

  out << "MAXIMUM SUSTAINED WINDS ARE NEAR "
      << util::Format("%.0f", advisory.max_wind_mph) << " MPH..."
      << util::Format("%.0f", advisory.max_wind_mph * 1.609) << " KM/H.\n";

  if (advisory.hurricane_wind_radius_miles > 0.0) {
    out << "HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO "
        << MilesAndKm(advisory.hurricane_wind_radius_miles)
        << "...FROM THE CENTER...AND TROPICAL-STORM-FORCE WINDS EXTEND "
           "OUTWARD UP TO "
        << MilesAndKm(advisory.tropical_wind_radius_miles) << "...\n";
  } else {
    out << "TROPICAL-STORM-FORCE WINDS EXTEND OUTWARD UP TO "
        << MilesAndKm(advisory.tropical_wind_radius_miles)
        << "...FROM THE CENTER...\n";
  }
  out << "$$\n";
  return out.str();
}

}  // namespace riskroute::forecast
