// Streaming forecast mode: incremental advisory re-route (paper
// Section 7.3, run online).
//
// The paper's headline scenario is inherently streaming — a new NHC
// advisory arrives every six hours and routes must shift ahead of
// landfall — yet a naive implementation rebuilds the whole study per
// advisory. StreamingReroute instead keeps ONE frozen baseline
// RouteEngine (forecast plane all-zero) for the life of the session and,
// per advisory:
//
//  1. recomputes the forecast-risk raster only inside the advisory's
//     wind footprint (a kd-tree radius query over the PoP set, then an
//     exact ForecastRiskField::RiskAt per candidate);
//  2. lowers the footprint onto link weights as an EdgeOverlay
//     node-score override: baseline scores outside the footprint,
//     RouteEngine::ScoreWithForecast values inside it, so an overlay
//     sweep is bitwise identical to re-freezing the engine at that
//     advisory (same weights, same heap evolution — no refreeze);
//  3. re-routes only the pairs whose current answer can change: a pair
//     whose settled baseline path avoids every footprint node keeps its
//     baseline answer exactly (forecast deltas are non-negative, so
//     they can only raise the cost of alternatives while leaving the
//     baseline path's cost untouched) — those pairs are cache hits;
//  4. emits a structured RouteDiff: which pairs moved, per-pair
//     bit-risk-mile deltas, and a source tag ("live" after a parsed
//     advisory, "static-fallback" after reverting to the baseline
//     plane, mirroring the live-feed -> resolve-risk -> static-fallback
//     pattern of the reference mitigation pipeline).
//
// Correctness contract: every incremental answer (bit-risk-miles and
// path digest per pair) is bitwise identical to a from-scratch rebuild
// of the engine at that advisory, for any thread count. Parent chains
// carry the engine's standing caveat: they can differ from a rebuilt
// sweep only on exact floating-point ties.
//
// Sequencing: advisory numbers must be strictly increasing within a
// session. Out-of-order or duplicate numbers are rejected with a
// ParseResult diagnostic and leave the session state untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/edge_overlay.h"
#include "core/route_engine.h"
#include "forecast/advisory.h"
#include "forecast/forecast_risk.h"
#include "spatial/kd_tree.h"
#include "util/parse_result.h"

namespace riskroute::util {
class ThreadPool;
}  // namespace riskroute::util

namespace riskroute::forecast {

/// Session knobs. The pool is borrowed (may be nullptr for serial);
/// results are bitwise identical for any thread count.
struct StreamOptions {
  ForecastRiskParams risk;
  std::size_t top_moves = 3;  // moves rendered per diff body
  util::ThreadPool* pool = nullptr;
};

/// One pair whose answer changed between consecutive session states.
/// Digests are FNV-1a 64 over the path's node ids (0 = unreachable).
struct PairMove {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double before_bit_risk_miles = 0.0;
  double after_bit_risk_miles = 0.0;
  std::uint64_t before_digest = 0;
  std::uint64_t after_digest = 0;

  [[nodiscard]] double Delta() const {
    return after_bit_risk_miles - before_bit_risk_miles;
  }
  [[nodiscard]] bool operator==(const PairMove&) const = default;
};

/// Structured routing diff between two consecutive session states.
struct RouteDiff {
  int advisory_number = 0;     // 0 for a static-fallback transition
  std::string advisory_time;   // "-" when not tied to an advisory
  std::string source = "live"; // "live" | "static-fallback"
  std::size_t pops_in_scope = 0;
  std::size_t pairs_tracked = 0;
  std::size_t pairs_recomputed = 0;
  std::size_t pairs_moved = 0;
  double total_abs_delta = 0.0;          // sum of |Delta()| over moves
  std::vector<PairMove> moves;           // ascending (src, dst)

  [[nodiscard]] bool empty() const { return moves.empty(); }
};

/// Current answer for one tracked pair (ascending (src, dst) order in
/// StreamingReroute::Answers). Unreachable pairs carry +inf / digest 0.
struct PairAnswer {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double bit_risk_miles = 0.0;
  std::uint64_t digest = 0;

  [[nodiscard]] bool operator==(const PairAnswer&) const = default;
};

/// Composes two consecutive diffs (state A->B, then B->C) into the
/// endpoint diff A->C: per pair, `before` comes from the first diff that
/// mentions it and `after` from the last; pairs whose endpoints agree
/// drop out. Metadata (advisory number/time, source, scope) follows the
/// second diff; pairs_recomputed accumulates.
[[nodiscard]] RouteDiff Compose(const RouteDiff& first,
                                const RouteDiff& second);

/// Renders the deterministic per-advisory text block served by the API
/// and printed by `riskroute stream`: one header line, then the top
/// `top_moves` moves by |delta| (ties broken by ascending pair).
[[nodiscard]] std::string RenderRouteDiff(const RouteDiff& diff,
                                          const core::RouteEngine& engine,
                                          std::size_t top_moves);

/// FNV-1a 64 digest over a path's node ids (empty path -> 0).
[[nodiscard]] std::uint64_t PathDigest(const core::Path& path);

/// A rolling re-route session over one frozen baseline engine.
class StreamingReroute {
 public:
  /// The engine must be a baseline freeze: its forecast plane all-zero
  /// (throws InvalidArgument otherwise) — the session owns the forecast
  /// dimension from here on. Landmarks may be prepared; sweeps then run
  /// goal-directed. Seeds the per-pair baseline table (one targeted
  /// sweep per PoP pair, parallel over sources).
  explicit StreamingReroute(const core::RouteEngine& engine,
                            StreamOptions options = {});

  /// Parses one bulletin and ingests it. Parser diagnostics pass
  /// through verbatim; the session state is untouched on failure.
  [[nodiscard]] util::ParseResult<RouteDiff> IngestText(
      std::string_view bulletin);

  /// Ingests one parsed advisory: recomputes the footprint raster,
  /// re-routes affected pairs against the overlay, and returns the diff
  /// (source "live"). Rejects non-increasing advisory numbers with a
  /// kBadValue diagnostic, leaving the state untouched.
  [[nodiscard]] util::ParseResult<RouteDiff> Ingest(const Advisory& advisory);

  /// Reverts every answer to the static baseline plane and returns the
  /// transition diff tagged "static-fallback". The advisory sequence
  /// position is kept, so the live feed can resume where it left off.
  RouteDiff FallbackToStatic();

  [[nodiscard]] const core::RouteEngine& engine() const { return engine_; }
  [[nodiscard]] std::size_t pair_count() const { return pair_count_; }
  [[nodiscard]] std::size_t advisory_count() const { return advisory_count_; }
  [[nodiscard]] int last_advisory_number() const { return last_number_; }
  /// Overlay applied by the most recent ingest (empty after fallback or
  /// an empty-footprint advisory).
  [[nodiscard]] const core::EdgeOverlay& overlay() const { return overlay_; }

  /// Current answers for all tracked pairs, ascending (src, dst).
  [[nodiscard]] std::vector<PairAnswer> Answers() const;
  /// Current settled path for one pair (src < dst; empty if unreachable).
  [[nodiscard]] const core::Path& CurrentPath(std::size_t src,
                                              std::size_t dst) const;
  [[nodiscard]] double CurrentBitRiskMiles(std::size_t src,
                                           std::size_t dst) const;

  /// Renders a diff with this session's engine and top-moves setting.
  [[nodiscard]] std::string Render(const RouteDiff& diff) const;

 private:
  [[nodiscard]] std::size_t PairIndex(std::size_t src, std::size_t dst) const;
  /// Re-routes against a footprint (node ids with forecast risk > 0 and
  /// their o_f values); an empty scope reverts to the baseline plane.
  RouteDiff ApplyScope(std::span<const std::size_t> scope,
                       std::span<const double> forecast);

  const core::RouteEngine& engine_;
  StreamOptions options_;
  spatial::KdTree index_;
  std::size_t pair_count_ = 0;
  std::size_t mask_words_ = 0;

  // Baseline answers, seeded once: per pair, the settled path, its
  // bit-risk-miles, its digest, and a node bitmask used for the
  // footprint-intersection skip test.
  std::vector<double> base_brm_;
  std::vector<std::uint64_t> base_digest_;
  std::vector<core::Path> base_path_;
  std::vector<std::uint64_t> base_mask_;  // pair_count_ * mask_words_

  // Current answers (== baseline until an advisory diverges a pair).
  std::vector<double> cur_brm_;
  std::vector<std::uint64_t> cur_digest_;
  std::vector<core::Path> cur_path_;
  std::vector<std::uint32_t> diverged_;  // sorted pair ids != baseline

  core::EdgeOverlay overlay_;
  int last_number_ = 0;
  std::size_t advisory_count_ = 0;
};

}  // namespace riskroute::forecast
