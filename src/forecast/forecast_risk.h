// Forecasted (immediate) outage risk o_f (paper Section 5.3).
//
// Given the current advisory, a location under hurricane-force winds
// carries forecast risk rho_h, a location under tropical-storm-force winds
// rho_t, and anywhere else zero; the paper uses rho_t = 50 and rho_h = 100
// with the probability ordering rho_h > rho_t.
#pragma once

#include <cstddef>
#include <vector>

#include "forecast/advisory.h"
#include "topology/network.h"

namespace riskroute::forecast {

/// Wind-zone risk levels (paper Section 5.3 values).
struct ForecastRiskParams {
  double rho_tropical = 50.0;
  double rho_hurricane = 100.0;
};

/// Wind zone of a location under one advisory.
enum class WindZone { kNone, kTropical, kHurricane };

/// Zone of `p` for a single advisory snapshot.
[[nodiscard]] WindZone ZoneAt(const Advisory& advisory, const geo::GeoPoint& p);

/// Point-in-time forecast risk field derived from one advisory.
class ForecastRiskField {
 public:
  ForecastRiskField(const Advisory& advisory,
                    const ForecastRiskParams& params = {});

  /// o_f at a location: rho_h / rho_t / 0 by wind zone.
  [[nodiscard]] double RiskAt(const geo::GeoPoint& p) const;

  /// o_f for every PoP of a network.
  [[nodiscard]] std::vector<double> PopRisks(
      const topology::Network& network) const;

  [[nodiscard]] const Advisory& advisory() const { return advisory_; }
  [[nodiscard]] const ForecastRiskParams& params() const { return params_; }

 private:
  Advisory advisory_;
  ForecastRiskParams params_;
};

/// Accumulated geographic scope of a whole storm (paper Figures 5/6): the
/// union over all advisories of each wind zone's disc. Used for the
/// "PoPs in the path of the storm" counts of Section 7.3.
class StormScope {
 public:
  StormScope() = default;
  explicit StormScope(const std::vector<Advisory>& advisories);

  void Add(const Advisory& advisory);

  /// Strongest zone the location ever experienced during the storm.
  [[nodiscard]] WindZone MaxZoneAt(const geo::GeoPoint& p) const;

  /// Count of network PoPs whose MaxZone is at least `zone`.
  [[nodiscard]] std::size_t CountPopsInZone(const topology::Network& network,
                                            WindZone zone) const;

  /// Fraction of network PoPs whose MaxZone is at least `zone`.
  [[nodiscard]] double FractionPopsInZone(const topology::Network& network,
                                          WindZone zone) const;

  [[nodiscard]] std::size_t advisory_count() const { return advisories_.size(); }

 private:
  std::vector<Advisory> advisories_;
};

}  // namespace riskroute::forecast
