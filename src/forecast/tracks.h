// Embedded storm tracks for the paper's three case studies
// (Section 4.4 / 7.3): Hurricanes Katrina (2005), Irene (2011) and
// Sandy (2012).
//
// The NOAA advisory archives are not available offline, so each storm is
// represented by waypoints along its (public-record) track — position,
// intensity and wind radii versus time — from which the library
// materializes the paper's advisory counts (Katrina 61, Irene 70,
// Sandy 60) as genuine NHC-format bulletin text covering the same time
// windows the paper uses (its footnote 4). The case-study pipeline then
// *parses* that text, exercising the same NLP path as the paper.
#pragma once

#include <string>
#include <vector>

#include "forecast/advisory.h"

namespace riskroute::forecast {

/// One track waypoint.
struct TrackPoint {
  double hours_from_start = 0.0;
  double latitude = 0.0;
  double longitude = 0.0;
  double max_wind_mph = 0.0;
  double hurricane_wind_radius_miles = 0.0;  // 0 = no hurricane-force field
  double tropical_wind_radius_miles = 0.0;
};

/// A storm's full track plus advisory-series metadata.
struct StormTrack {
  std::string name;           // "KATRINA"
  AdvisoryTime start;         // first advisory time (paper footnote 4)
  std::size_t advisory_count; // paper's advisory count for this storm
  std::vector<TrackPoint> waypoints;  // ascending hours_from_start

  /// Track duration in hours (last waypoint offset).
  [[nodiscard]] double DurationHours() const;

  /// Storm state at an arbitrary offset (linear interpolation between
  /// waypoints; clamped at the ends).
  [[nodiscard]] TrackPoint At(double hours) const;
};

/// The three embedded case-study storms.
[[nodiscard]] const StormTrack& KatrinaTrack();
[[nodiscard]] const StormTrack& IreneTrack();
[[nodiscard]] const StormTrack& SandyTrack();
[[nodiscard]] std::vector<const StormTrack*> AllTracks();

/// Materializes the storm's advisory series: `track.advisory_count`
/// advisories evenly spaced over the track duration, numbered from 1.
[[nodiscard]] std::vector<Advisory> GenerateAdvisories(const StormTrack& track);

/// Same series rendered as NHC bulletin text (one string per advisory).
[[nodiscard]] std::vector<std::string> GenerateAdvisoryTexts(
    const StormTrack& track);

}  // namespace riskroute::forecast
