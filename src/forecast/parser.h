// Natural-language parsing of NHC public advisory text (paper Section 4.4).
//
// The paper extracts, from each advisory's prose, the storm centre and the
// radii of tropical-storm-force and hurricane-force winds ("...THE CENTER
// OF HURRICANE IRENE WAS LOCATED NEAR LATITUDE 35.2 NORTH...LONGITUDE 76.4
// WEST... HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO 90 MILES...").
// This parser tokenizes the ellipsis-delimited bulletin text and recovers
// the full Advisory struct. It is deliberately lenient about layout (real
// advisories vary) but strict about the fields the risk model needs, and
// it is hardened against hostile input: oversized bulletins, non-finite
// numbers, out-of-range coordinates and impossible timestamps all surface
// as structured ParseResult diagnostics (never UB or a foreign exception
// type). ParseAdvisory is the legacy throwing shim.
#pragma once

#include <cstddef>
#include <string_view>

#include "forecast/advisory.h"
#include "util/parse_result.h"

namespace riskroute::forecast {

/// Defensive limits for untrusted bulletin text. Real NHC advisories are
/// a few KiB; the defaults leave two orders of magnitude of headroom
/// while keeping tokenization allocations bounded.
struct AdvisoryLimits {
  std::size_t max_bytes = 1 << 20;   // 1 MiB of bulletin text
  std::size_t max_tokens = 1 << 16;  // parsed word tokens
};

/// Parses one bulletin. Fails with kLimitExceeded past AdvisoryLimits,
/// kMissingField when a required field (storm name, centre coordinates,
/// tropical wind radius) is absent, and kBadValue when the centre is not
/// a valid latitude/longitude. Numeric side fields (advisory number,
/// motion, winds, timestamp) stay lenient: a malformed or implausible
/// value leaves the struct's default rather than failing the bulletin,
/// but never produces a non-finite number or an invalid civil time.
[[nodiscard]] util::ParseResult<Advisory> ParseAdvisoryResult(
    std::string_view text, const AdvisoryLimits& limits = {});

/// Legacy shim over ParseAdvisoryResult: throws riskroute::ParseError
/// with the rendered diagnostic on failure.
[[nodiscard]] Advisory ParseAdvisory(std::string_view text);

}  // namespace riskroute::forecast
