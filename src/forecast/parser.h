// Natural-language parsing of NHC public advisory text (paper Section 4.4).
//
// The paper extracts, from each advisory's prose, the storm centre and the
// radii of tropical-storm-force and hurricane-force winds ("...THE CENTER
// OF HURRICANE IRENE WAS LOCATED NEAR LATITUDE 35.2 NORTH...LONGITUDE 76.4
// WEST... HURRICANE-FORCE WINDS EXTEND OUTWARD UP TO 90 MILES...").
// This parser tokenizes the ellipsis-delimited bulletin text and recovers
// the full Advisory struct. It is deliberately lenient about layout (real
// advisories vary) but strict about the fields the risk model needs:
// missing centre coordinates or wind radii raise ParseError.
#pragma once

#include <string_view>

#include "forecast/advisory.h"

namespace riskroute::forecast {

/// Parses one bulletin. Throws riskroute::ParseError when a required field
/// (storm name, centre latitude/longitude, tropical wind radius) is absent
/// or malformed.
[[nodiscard]] Advisory ParseAdvisory(std::string_view text);

}  // namespace riskroute::forecast
