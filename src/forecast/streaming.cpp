#include "forecast/streaming.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <utility>

#include "core/shortest_path.h"
#include "forecast/parser.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace riskroute::forecast {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Slack added to the kd-tree footprint query so conversion rounding in
// the chord-distance index can never exclude a node whose exact
// great-circle distance is within the wind radius. RiskAt is then
// evaluated exactly per candidate, so the slack only costs a few extra
// zero-risk evaluations.
constexpr double kFootprintSlackMiles = 0.5;

/// Streaming metrics. Everything here is a pure function of the engine
/// and the advisory sequence (per-pair work is fixed and reductions are
/// serial), so all counters are Stability::kStable.
struct StreamMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& sessions = reg.GetCounter("stream.sessions");
  obs::Counter& advisories = reg.GetCounter("stream.advisories");
  obs::Counter& rejects_sequence =
      reg.GetCounter("stream.rejects.sequence");
  obs::Counter& fallbacks = reg.GetCounter("stream.fallbacks");
  obs::Counter& pairs_recomputed =
      reg.GetCounter("stream.pairs.recomputed");
  obs::Counter& cache_hits = reg.GetCounter("stream.cache.hits");
  obs::Counter& pairs_moved = reg.GetCounter("stream.pairs.moved");
  obs::Counter& scope_pops = reg.GetCounter("stream.scope.pops");

  static StreamMetrics& Get() {
    static StreamMetrics metrics;
    return metrics;
  }
};

void Dispatch(util::ThreadPool* pool, std::size_t count,
              const std::function<void(std::size_t)>& body) {
  if (pool != nullptr && pool->thread_count() > 1 && count > 1) {
    util::ParallelFor(*pool, count, body);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }
}

std::vector<geo::GeoPoint> EngineLocations(const core::RouteEngine& engine) {
  std::vector<geo::GeoPoint> points;
  points.reserve(engine.node_count());
  for (std::size_t v = 0; v < engine.node_count(); ++v) {
    points.push_back(engine.location(v));
  }
  return points;
}

bool MasksIntersect(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) {
    if ((a[w] & b[w]) != 0) return true;
  }
  return false;
}

std::string PopLabel(const core::RouteEngine& engine, std::size_t v) {
  const std::string& name = engine.node_name(v);
  if (!name.empty()) return name;
  return util::Format("pop-%zu", v);
}

}  // namespace

std::uint64_t PathDigest(const core::Path& path) {
  if (path.empty()) return 0;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::size_t node : path) {
    std::uint64_t id = node;
    for (int byte = 0; byte < 8; ++byte) {
      h ^= id & 0xffULL;
      h *= 0x100000001b3ULL;
      id >>= 8;
    }
  }
  return h;
}

RouteDiff Compose(const RouteDiff& first, const RouteDiff& second) {
  // Keyed map keeps the result in ascending (src, dst) order.
  std::map<std::pair<std::uint32_t, std::uint32_t>, PairMove> merged;
  for (const PairMove& m : first.moves) {
    merged.emplace(std::make_pair(m.src, m.dst), m);
  }
  for (const PairMove& m : second.moves) {
    auto [it, inserted] = merged.emplace(std::make_pair(m.src, m.dst), m);
    if (!inserted) {
      it->second.after_bit_risk_miles = m.after_bit_risk_miles;
      it->second.after_digest = m.after_digest;
    }
  }

  RouteDiff out;
  out.advisory_number = second.advisory_number;
  out.advisory_time = second.advisory_time;
  out.source = second.source;
  out.pops_in_scope = second.pops_in_scope;
  out.pairs_tracked = second.pairs_tracked;
  out.pairs_recomputed = first.pairs_recomputed + second.pairs_recomputed;
  for (auto& [key, move] : merged) {
    if (move.before_bit_risk_miles == move.after_bit_risk_miles &&
        move.before_digest == move.after_digest) {
      continue;  // endpoints agree: the pair round-tripped
    }
    out.total_abs_delta += std::abs(move.Delta());
    out.moves.push_back(move);
  }
  out.pairs_moved = out.moves.size();
  return out;
}

std::string RenderRouteDiff(const RouteDiff& diff,
                            const core::RouteEngine& engine,
                            std::size_t top_moves) {
  const std::string number = diff.advisory_number > 0
                                 ? util::Format("%d", diff.advisory_number)
                                 : std::string("-");
  const std::string time =
      diff.advisory_time.empty() ? std::string("-") : diff.advisory_time;
  std::string out = util::Format(
      "advisory %s | %s | %s | in scope %zu | recomputed %zu/%zu | "
      "moved %zu | delta-sum %.6f\n",
      number.c_str(), time.c_str(), diff.source.c_str(), diff.pops_in_scope,
      diff.pairs_recomputed, diff.pairs_tracked, diff.pairs_moved,
      diff.total_abs_delta);

  // Top moves by |delta|; exact-double ties break to the ascending pair,
  // so the rendering is deterministic.
  std::vector<PairMove> ranked = diff.moves;
  std::sort(ranked.begin(), ranked.end(),
            [](const PairMove& a, const PairMove& b) {
              const double da = std::abs(a.Delta());
              const double db = std::abs(b.Delta());
              if (da != db) return da > db;
              return std::pair{a.src, a.dst} < std::pair{b.src, b.dst};
            });
  if (ranked.size() > top_moves) ranked.resize(top_moves);
  for (const PairMove& m : ranked) {
    out += util::Format(
        "  %s <-> %s : %.6f -> %.6f bit-risk-miles (%+.6f)\n",
        PopLabel(engine, m.src).c_str(), PopLabel(engine, m.dst).c_str(),
        m.before_bit_risk_miles, m.after_bit_risk_miles, m.Delta());
  }
  return out;
}

StreamingReroute::StreamingReroute(const core::RouteEngine& engine,
                                   StreamOptions options)
    : engine_(engine),
      options_(options),
      index_(EngineLocations(engine)) {
  const std::size_t n = engine_.node_count();
  for (std::size_t v = 0; v < n; ++v) {
    if (engine_.forecast_risk(v) != 0.0) {
      throw InvalidArgument(
          "StreamingReroute: engine must be a baseline freeze with a "
          "zero forecast plane (the session owns the forecast dimension)");
    }
  }
  pair_count_ = n >= 2 ? n * (n - 1) / 2 : 0;
  mask_words_ = (n + 63) / 64;

  base_brm_.assign(pair_count_, kInf);
  base_digest_.assign(pair_count_, 0);
  base_path_.assign(pair_count_, core::Path{});
  base_mask_.assign(pair_count_ * mask_words_, 0);

  // Baseline seed: one targeted sweep per pair — the same sweep flavor
  // (goal-directed iff landmarks are prepared) every later recompute and
  // every from-scratch rebuild uses, so skipped pairs replay bitwise the
  // answer a rebuild would settle. Sources write disjoint slices; the
  // result is bitwise identical for any thread count.
  const auto seed_source = [&](std::size_t i) {
    thread_local core::DijkstraWorkspace ws;
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t p = PairIndex(i, j);
      engine_.Run(ws, i, engine_.Alpha(i, j), j);
      if (!ws.Reached(j)) continue;
      base_brm_[p] = ws.DistanceTo(j);
      base_path_[p] = ws.PathTo(j);
      base_digest_[p] = PathDigest(base_path_[p]);
      std::uint64_t* const mask = base_mask_.data() + p * mask_words_;
      for (const std::size_t v : base_path_[p]) {
        mask[v / 64] |= 1ULL << (v % 64);
      }
    }
  };
  Dispatch(options_.pool, n >= 1 ? n - 1 : 0, seed_source);

  cur_brm_ = base_brm_;
  cur_digest_ = base_digest_;
  cur_path_ = base_path_;

  if (obs::Enabled()) StreamMetrics::Get().sessions.Add(1);
}

std::size_t StreamingReroute::PairIndex(std::size_t src,
                                        std::size_t dst) const {
  const std::size_t n = engine_.node_count();
  if (src >= dst || dst >= n) {
    throw InvalidArgument(
        util::Format("StreamingReroute: bad pair (%zu, %zu)", src, dst));
  }
  return src * (2 * n - src - 1) / 2 + (dst - src - 1);
}

util::ParseResult<RouteDiff> StreamingReroute::IngestText(
    std::string_view bulletin) {
  util::ParseResult<Advisory> parsed = ParseAdvisoryResult(bulletin);
  if (!parsed.ok()) return parsed.error();
  return Ingest(parsed.value());
}

util::ParseResult<RouteDiff> StreamingReroute::Ingest(
    const Advisory& advisory) {
  if (advisory.number <= last_number_) {
    if (obs::Enabled()) StreamMetrics::Get().rejects_sequence.Add(1);
    const char* const why =
        advisory.number == last_number_ ? "duplicate" : "out-of-order";
    return util::ParseResult<RouteDiff>::Failure(
        util::ParseErrorKind::kBadValue,
        util::Format("%s advisory number %d (session already at %d)", why,
                     advisory.number, last_number_));
  }

  const std::size_t n = engine_.node_count();
  const double radius = std::max(advisory.tropical_wind_radius_miles,
                                 advisory.hurricane_wind_radius_miles);
  std::vector<double> forecast(n, 0.0);
  std::vector<std::size_t> scope;
  if (radius > 0.0) {
    const ForecastRiskField field(advisory, options_.risk);
    std::vector<spatial::Neighbor> nearby =
        index_.WithinRadius(advisory.center, radius + kFootprintSlackMiles);
    std::vector<std::size_t> candidates;
    candidates.reserve(nearby.size());
    for (const spatial::Neighbor& hit : nearby) {
      candidates.push_back(hit.index);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const std::size_t v : candidates) {
      // Exact per-node evaluation: the kd query only prefilters, so the
      // raster matches a full-plane RiskAt pass bit for bit.
      const double risk = field.RiskAt(engine_.location(v));
      if (risk > 0.0) {
        forecast[v] = risk;
        scope.push_back(v);
      }
    }
  }

  RouteDiff diff = ApplyScope(scope, forecast);
  diff.advisory_number = advisory.number;
  diff.advisory_time =
      IsValidCivil(advisory.time) ? advisory.time.ToString() : "-";
  diff.source = "live";
  last_number_ = advisory.number;
  ++advisory_count_;
  if (obs::Enabled()) {
    StreamMetrics& metrics = StreamMetrics::Get();
    metrics.advisories.Add(1);
    metrics.scope_pops.Add(scope.size());
  }
  return diff;
}

RouteDiff StreamingReroute::FallbackToStatic() {
  RouteDiff diff = ApplyScope({}, {});
  diff.advisory_number = 0;
  diff.advisory_time = "-";
  diff.source = "static-fallback";
  if (obs::Enabled()) StreamMetrics::Get().fallbacks.Add(1);
  return diff;
}

RouteDiff StreamingReroute::ApplyScope(std::span<const std::size_t> scope,
                                       std::span<const double> forecast) {
  const std::size_t n = engine_.node_count();
  overlay_.Clear();
  std::vector<std::uint64_t> scope_mask(mask_words_, 0);
  if (!scope.empty()) {
    // Override plane: the engine's own baseline scores outside the
    // footprint (bitwise what a refreeze computes at forecast 0) and
    // ScoreWithForecast — the RebuildRiskPlane expression in the
    // engine's translation unit — inside it.
    std::vector<double> scores(n);
    for (std::size_t v = 0; v < n; ++v) scores[v] = engine_.NodeScore(v);
    for (const std::size_t v : scope) {
      scores[v] = engine_.ScoreWithForecast(v, forecast[v]);
      scope_mask[v / 64] |= 1ULL << (v % 64);
    }
    overlay_.SetNodeScoreOverride(std::move(scores));
  }
  const core::EdgeOverlay* const overlay =
      scope.empty() ? nullptr : &overlay_;

  // Affected pairs: those whose baseline path crosses the footprint
  // (must be re-routed against the overlay) plus those currently
  // diverged from baseline (must be re-routed or reset). Everything
  // else keeps its answer — those are the cache hits.
  std::vector<std::uint32_t> affected;
  std::vector<char> recompute;  // parallel to `affected`
  std::size_t next_diverged = 0;
  for (std::size_t p = 0; p < pair_count_; ++p) {
    const bool hits_scope =
        !scope.empty() &&
        MasksIntersect(base_mask_.data() + p * mask_words_,
                       scope_mask.data(), mask_words_);
    bool was_diverged = false;
    if (next_diverged < diverged_.size() && diverged_[next_diverged] == p) {
      was_diverged = true;
      ++next_diverged;
    }
    if (hits_scope || was_diverged) {
      affected.push_back(static_cast<std::uint32_t>(p));
      recompute.push_back(hits_scope ? 1 : 0);
    }
  }

  // Snapshot the outgoing answers before overwriting them.
  std::vector<double> old_brm(affected.size());
  std::vector<std::uint64_t> old_digest(affected.size());
  for (std::size_t k = 0; k < affected.size(); ++k) {
    old_brm[k] = cur_brm_[affected[k]];
    old_digest[k] = cur_digest_[affected[k]];
  }

  // Pair -> (src, dst) recovery for the sweep loop.
  const auto pair_nodes = [n](std::size_t p) {
    std::size_t i = 0;
    std::size_t row = n - 1;
    while (p >= row) {
      p -= row;
      --row;
      ++i;
    }
    return std::pair<std::size_t, std::size_t>{i, i + 1 + p};
  };

  // Disjoint writes per affected pair: bitwise identical results for
  // any thread count.
  const auto reroute = [&](std::size_t k) {
    const std::size_t p = affected[k];
    if (recompute[k] == 0) {
      // The footprint released this pair: its optimum is the baseline
      // answer again (non-negative deltas never cheapen alternatives).
      cur_brm_[p] = base_brm_[p];
      cur_digest_[p] = base_digest_[p];
      cur_path_[p] = base_path_[p];
      return;
    }
    thread_local core::DijkstraWorkspace ws;
    const auto [src, dst] = pair_nodes(p);
    engine_.Run(ws, src, engine_.Alpha(src, dst), dst, overlay);
    if (!ws.Reached(dst)) {
      cur_brm_[p] = kInf;
      cur_digest_[p] = 0;
      cur_path_[p].clear();
      return;
    }
    cur_brm_[p] = ws.DistanceTo(dst);
    cur_path_[p] = ws.PathTo(dst);
    cur_digest_[p] = PathDigest(cur_path_[p]);
  };
  Dispatch(options_.pool, affected.size(), reroute);

  // Serial diff + divergence rebuild in ascending pair order.
  RouteDiff diff;
  diff.pairs_tracked = pair_count_;
  std::size_t recomputed = 0;
  std::vector<std::uint32_t> diverged;
  for (std::size_t k = 0; k < affected.size(); ++k) {
    const std::size_t p = affected[k];
    if (recompute[k] != 0) ++recomputed;
    if (cur_brm_[p] != base_brm_[p] || cur_digest_[p] != base_digest_[p]) {
      diverged.push_back(affected[k]);
    }
    if (cur_brm_[p] != old_brm[k] || cur_digest_[p] != old_digest[k]) {
      const auto [src, dst] = pair_nodes(p);
      PairMove move;
      move.src = static_cast<std::uint32_t>(src);
      move.dst = static_cast<std::uint32_t>(dst);
      move.before_bit_risk_miles = old_brm[k];
      move.after_bit_risk_miles = cur_brm_[p];
      move.before_digest = old_digest[k];
      move.after_digest = cur_digest_[p];
      diff.total_abs_delta += std::abs(move.Delta());
      diff.moves.push_back(move);
    }
  }
  diverged_ = std::move(diverged);
  diff.pops_in_scope = scope.size();
  diff.pairs_recomputed = recomputed;
  diff.pairs_moved = diff.moves.size();
  if (obs::Enabled()) {
    StreamMetrics& metrics = StreamMetrics::Get();
    metrics.pairs_recomputed.Add(recomputed);
    metrics.cache_hits.Add(pair_count_ - recomputed);
    metrics.pairs_moved.Add(diff.moves.size());
  }
  return diff;
}

std::vector<PairAnswer> StreamingReroute::Answers() const {
  std::vector<PairAnswer> out;
  out.reserve(pair_count_);
  const std::size_t n = engine_.node_count();
  std::size_t p = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++p) {
      PairAnswer answer;
      answer.src = static_cast<std::uint32_t>(i);
      answer.dst = static_cast<std::uint32_t>(j);
      answer.bit_risk_miles = cur_brm_[p];
      answer.digest = cur_digest_[p];
      out.push_back(answer);
    }
  }
  return out;
}

const core::Path& StreamingReroute::CurrentPath(std::size_t src,
                                                std::size_t dst) const {
  return cur_path_[PairIndex(src, dst)];
}

double StreamingReroute::CurrentBitRiskMiles(std::size_t src,
                                             std::size_t dst) const {
  return cur_brm_[PairIndex(src, dst)];
}

std::string StreamingReroute::Render(const RouteDiff& diff) const {
  return RenderRouteDiff(diff, engine_, options_.top_moves);
}

}  // namespace riskroute::forecast
