// Storm-motion projection: forward-looking forecast risk.
//
// Each NHC advisory reports the storm's current motion ("IRENE IS MOVING
// TOWARD THE NORTH-NORTHEAST NEAR 15 MPH"). The paper's o_f uses the
// current wind field only; projecting the centre along the reported
// motion gives the genuinely *forecast* component of "immediately
// forecasted outage threats" (Section 1) — where the storm will be when a
// reroute takes effect. Track-forecast uncertainty is modeled the way NHC
// draws its cone: the wind radii grow with lead time at a fixed error
// rate (~11.5 mi/h corresponds to the classic 2-day, ~550-mile cone).
#pragma once

#include <vector>

#include "forecast/advisory.h"
#include "forecast/forecast_risk.h"

namespace riskroute::forecast {

/// Projection knobs.
struct ProjectionOptions {
  /// Added to both wind radii per hour of lead time (track uncertainty).
  double uncertainty_miles_per_hour = 11.5;
  /// Motion decay: real storms rarely hold a straight line; the projected
  /// displacement is scaled by decay^hours (1.0 = pure dead reckoning).
  double motion_decay_per_hour = 1.0;
};

/// Dead-reckons the advisory `lead_hours` ahead along its reported motion,
/// inflating the wind radii by the uncertainty growth. lead_hours == 0
/// returns the advisory unchanged. Throws on negative lead.
[[nodiscard]] Advisory ProjectAdvisory(const Advisory& advisory,
                                       double lead_hours,
                                       const ProjectionOptions& options = {});

/// Forward-looking risk field: the maximum zone risk over projections at
/// each horizon in `lead_hours` (typically {0, 12, 24}). A PoP that the
/// storm has not reached yet but will plausibly cross picks up forecast
/// risk now — enabling the preemptive reroutes the paper motivates.
class ConeRiskField {
 public:
  ConeRiskField(const Advisory& advisory, std::vector<double> lead_hours,
                const ForecastRiskParams& params = {},
                const ProjectionOptions& options = {});

  /// Max over all projected horizons of the zone risk at `p`.
  [[nodiscard]] double RiskAt(const geo::GeoPoint& p) const;

  [[nodiscard]] const std::vector<Advisory>& projections() const {
    return projections_;
  }

 private:
  std::vector<Advisory> projections_;
  ForecastRiskParams params_;
};

}  // namespace riskroute::forecast
