#include "forecast/tracks.h"

#include <algorithm>
#include <cmath>

#include "forecast/writer.h"
#include "geo/distance.h"
#include "util/error.h"

namespace riskroute::forecast {
namespace {

/// 16-point compass name for a bearing, NHC spelling.
std::string CompassName(double bearing_deg) {
  static const char* kNames[16] = {
      "NORTH",           "NORTH-NORTHEAST", "NORTHEAST", "EAST-NORTHEAST",
      "EAST",            "EAST-SOUTHEAST",  "SOUTHEAST", "SOUTH-SOUTHEAST",
      "SOUTH",           "SOUTH-SOUTHWEST", "SOUTHWEST", "WEST-SOUTHWEST",
      "WEST",            "WEST-NORTHWEST",  "NORTHWEST", "NORTH-NORTHWEST"};
  const int sector =
      static_cast<int>(std::fmod(bearing_deg + 11.25, 360.0) / 22.5);
  return kNames[sector % 16];
}

double Lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace

double StormTrack::DurationHours() const {
  if (waypoints.empty()) return 0.0;
  return waypoints.back().hours_from_start;
}

TrackPoint StormTrack::At(double hours) const {
  if (waypoints.empty()) throw InvalidArgument("StormTrack: no waypoints");
  if (hours <= waypoints.front().hours_from_start) return waypoints.front();
  if (hours >= waypoints.back().hours_from_start) return waypoints.back();
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    const TrackPoint& lo = waypoints[i - 1];
    const TrackPoint& hi = waypoints[i];
    if (hours <= hi.hours_from_start) {
      const double span = hi.hours_from_start - lo.hours_from_start;
      const double t = span > 0 ? (hours - lo.hours_from_start) / span : 0.0;
      TrackPoint p;
      p.hours_from_start = hours;
      p.latitude = Lerp(lo.latitude, hi.latitude, t);
      p.longitude = Lerp(lo.longitude, hi.longitude, t);
      p.max_wind_mph = Lerp(lo.max_wind_mph, hi.max_wind_mph, t);
      p.hurricane_wind_radius_miles = Lerp(lo.hurricane_wind_radius_miles,
                                           hi.hurricane_wind_radius_miles, t);
      p.tropical_wind_radius_miles = Lerp(lo.tropical_wind_radius_miles,
                                          hi.tropical_wind_radius_miles, t);
      return p;
    }
  }
  return waypoints.back();
}

const StormTrack& KatrinaTrack() {
  // First advisory 5 PM EDT Tue Aug 23 2005; last 10 AM CDT Tue Aug 30
  // (11 AM EDT) -- 162 hours, 61 advisories (paper footnote 4).
  static const StormTrack track = {
      "KATRINA",
      AdvisoryTime{2005, 8, 23, 17, "EDT"},
      61,
      {
          {0, 23.2, -75.6, 35, 0, 45},     // forms over the Bahamas
          {12, 24.0, -76.4, 40, 0, 60},
          {24, 25.2, -77.2, 50, 0, 85},
          {36, 25.9, -78.4, 65, 0, 105},
          {44, 25.9, -79.6, 75, 15, 115},
          {49, 25.9, -80.3, 80, 20, 120},  // south Florida landfall
          {58, 25.2, -81.5, 75, 20, 130},
          {68, 24.8, -83.0, 95, 30, 150},  // into the Gulf, intensifying
          {80, 24.9, -84.7, 110, 40, 175},
          {92, 25.4, -86.2, 125, 55, 185},
          {104, 26.0, -87.5, 145, 80, 205},
          {116, 26.9, -88.6, 160, 105, 230},  // category 5 peak
          {126, 28.0, -89.4, 155, 105, 230},
          {134, 29.3, -89.6, 125, 105, 230},  // Louisiana landfall
          {146, 31.5, -89.4, 75, 30, 175},    // inland Mississippi
          {154, 33.8, -88.9, 45, 0, 120},
          {162, 36.5, -88.0, 30, 0, 80},      // weakening over Tennessee
      }};
  return track;
}

const StormTrack& IreneTrack() {
  // 7 PM EDT Sat Aug 20 2011 to 11 PM EDT Sun Aug 28 -- 196 hours,
  // 70 advisories.
  static const StormTrack track = {
      "IRENE",
      AdvisoryTime{2011, 8, 20, 19, "EDT"},
      70,
      {
          {0, 15.0, -59.0, 35, 0, 45},     // east of the Lesser Antilles
          {24, 17.0, -63.5, 50, 0, 70},
          {48, 19.0, -68.5, 80, 25, 150},  // Hispaniola
          {64, 21.0, -71.5, 100, 40, 180},
          {80, 22.8, -74.0, 115, 60, 220}, // Bahamas peak
          {96, 24.5, -75.9, 110, 70, 240},
          {112, 26.5, -77.2, 105, 75, 255},
          {128, 29.0, -77.6, 100, 80, 260},
          {144, 31.8, -77.6, 95, 85, 260},
          {157, 34.7, -76.6, 85, 90, 260},  // Outer Banks landfall
          {168, 36.5, -75.9, 80, 85, 290},
          {178, 39.4, -74.4, 75, 70, 290},  // New Jersey landfall
          {182, 40.6, -74.0, 65, 40, 320},  // over New York City
          {190, 42.6, -73.0, 50, 0, 320},
          {196, 44.5, -72.0, 40, 0, 280},   // New England dissipation
      }};
  return track;
}

const StormTrack& SandyTrack() {
  // 11 AM EDT Mon Oct 22 2012 to 11 PM EDT Mon Oct 29 -- 180 hours,
  // 60 advisories. Note the enormous tropical-storm wind field.
  static const StormTrack track = {
      "SANDY",
      AdvisoryTime{2012, 10, 22, 11, "EDT"},
      60,
      {
          {0, 13.5, -78.0, 35, 0, 50},     // southern Caribbean
          {24, 14.5, -77.8, 45, 0, 80},
          {48, 16.8, -77.2, 70, 0, 125},
          {56, 18.0, -76.8, 85, 25, 140},  // Jamaica landfall
          {66, 20.0, -76.0, 105, 35, 175}, // Cuba landfall
          {80, 23.0, -76.0, 90, 45, 230},  // Bahamas
          {96, 25.8, -77.1, 75, 50, 275},
          {112, 28.0, -77.0, 70, 0, 315},
          {128, 30.5, -76.0, 70, 0, 380},  // paralleling the southeast coast
          // Sandy's hurricane-force wind field was exceptionally large —
          // NHC advisories reported hurricane-force winds out to ~175
          // miles as it approached the mid-Atlantic coast.
          {144, 33.5, -74.0, 75, 100, 450},
          {156, 36.0, -72.0, 80, 140, 485}, // wind field at maximum extent
          {168, 38.2, -71.9, 85, 175, 485},
          {174, 38.8, -73.2, 90, 175, 485}, // westward turn toward the coast
          {178, 39.4, -74.4, 80, 170, 485}, // New Jersey landfall
          {180, 39.8, -75.4, 70, 140, 450},
      }};
  return track;
}

std::vector<const StormTrack*> AllTracks() {
  return {&IreneTrack(), &KatrinaTrack(), &SandyTrack()};
}

std::vector<Advisory> GenerateAdvisories(const StormTrack& track) {
  if (track.advisory_count < 2) {
    throw InvalidArgument("StormTrack: need at least two advisories");
  }
  if (track.waypoints.size() < 2) {
    throw InvalidArgument("StormTrack: need at least two waypoints");
  }
  std::vector<Advisory> advisories;
  advisories.reserve(track.advisory_count);
  const double duration = track.DurationHours();
  const double step =
      duration / static_cast<double>(track.advisory_count - 1);
  for (std::size_t k = 0; k < track.advisory_count; ++k) {
    const double hours = step * static_cast<double>(k);
    const TrackPoint now = track.At(hours);
    // Motion from the position change over the next few hours.
    const TrackPoint next = track.At(std::min(duration, hours + 6.0));
    const geo::GeoPoint here(now.latitude, now.longitude);
    const geo::GeoPoint there(next.latitude, next.longitude);
    const double moved = geo::GreatCircleMiles(here, there);
    Advisory advisory;
    advisory.storm_name = track.name;
    advisory.number = static_cast<int>(k) + 1;
    advisory.time = track.start.PlusHours(static_cast<int>(std::lround(hours)));
    advisory.center = here;
    advisory.max_wind_mph = now.max_wind_mph;
    advisory.hurricane_wind_radius_miles = now.hurricane_wind_radius_miles;
    advisory.tropical_wind_radius_miles = now.tropical_wind_radius_miles;
    advisory.motion_mph = moved / 6.0;
    advisory.motion_direction =
        moved > 1.0 ? CompassName(geo::InitialBearingDeg(here, there))
                    : "NORTH";
    advisories.push_back(std::move(advisory));
  }
  return advisories;
}

std::vector<std::string> GenerateAdvisoryTexts(const StormTrack& track) {
  std::vector<std::string> texts;
  const std::vector<Advisory> advisories = GenerateAdvisories(track);
  texts.reserve(advisories.size());
  for (const Advisory& advisory : advisories) {
    texts.push_back(RenderAdvisory(advisory));
  }
  return texts;
}

}  // namespace riskroute::forecast
