#include "forecast/forecast_risk.h"

#include "geo/distance.h"
#include "util/error.h"

namespace riskroute::forecast {

WindZone ZoneAt(const Advisory& advisory, const geo::GeoPoint& p) {
  const double miles = geo::GreatCircleMiles(advisory.center, p);
  if (advisory.hurricane_wind_radius_miles > 0.0 &&
      miles <= advisory.hurricane_wind_radius_miles) {
    return WindZone::kHurricane;
  }
  if (advisory.tropical_wind_radius_miles > 0.0 &&
      miles <= advisory.tropical_wind_radius_miles) {
    return WindZone::kTropical;
  }
  return WindZone::kNone;
}

ForecastRiskField::ForecastRiskField(const Advisory& advisory,
                                     const ForecastRiskParams& params)
    : advisory_(advisory), params_(params) {
  if (params.rho_hurricane < params.rho_tropical) {
    throw InvalidArgument(
        "ForecastRiskParams: rho_hurricane must be >= rho_tropical "
        "(paper Section 5.3)");
  }
}

double ForecastRiskField::RiskAt(const geo::GeoPoint& p) const {
  switch (ZoneAt(advisory_, p)) {
    case WindZone::kHurricane:
      return params_.rho_hurricane;
    case WindZone::kTropical:
      return params_.rho_tropical;
    case WindZone::kNone:
      return 0.0;
  }
  throw InternalError("unknown WindZone");
}

std::vector<double> ForecastRiskField::PopRisks(
    const topology::Network& network) const {
  std::vector<double> risks;
  risks.reserve(network.pop_count());
  for (const topology::Pop& pop : network.pops()) {
    risks.push_back(RiskAt(pop.location));
  }
  return risks;
}

StormScope::StormScope(const std::vector<Advisory>& advisories)
    : advisories_(advisories) {}

void StormScope::Add(const Advisory& advisory) {
  advisories_.push_back(advisory);
}

WindZone StormScope::MaxZoneAt(const geo::GeoPoint& p) const {
  WindZone best = WindZone::kNone;
  for (const Advisory& advisory : advisories_) {
    const WindZone zone = ZoneAt(advisory, p);
    if (zone == WindZone::kHurricane) return WindZone::kHurricane;
    if (zone == WindZone::kTropical) best = WindZone::kTropical;
  }
  return best;
}

std::size_t StormScope::CountPopsInZone(const topology::Network& network,
                                        WindZone zone) const {
  if (zone == WindZone::kNone) return network.pop_count();
  std::size_t count = 0;
  for (const topology::Pop& pop : network.pops()) {
    const WindZone max_zone = MaxZoneAt(pop.location);
    if (max_zone == WindZone::kHurricane ||
        (zone == WindZone::kTropical && max_zone == WindZone::kTropical)) {
      ++count;
    }
  }
  return count;
}

double StormScope::FractionPopsInZone(const topology::Network& network,
                                      WindZone zone) const {
  if (network.pop_count() == 0) return 0.0;
  return static_cast<double>(CountPopsInZone(network, zone)) /
         static_cast<double>(network.pop_count());
}

}  // namespace riskroute::forecast
