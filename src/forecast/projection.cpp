#include "forecast/projection.h"

#include <algorithm>
#include <cmath>

#include "geo/distance.h"
#include "util/error.h"

namespace riskroute::forecast {
namespace {

/// Compass label -> bearing degrees (16-point NHC names).
double BearingFromCompass(const std::string& name) {
  static const std::pair<const char*, double> kPoints[] = {
      {"NORTH", 0},           {"NORTH-NORTHEAST", 22.5},
      {"NORTHEAST", 45},      {"EAST-NORTHEAST", 67.5},
      {"EAST", 90},           {"EAST-SOUTHEAST", 112.5},
      {"SOUTHEAST", 135},     {"SOUTH-SOUTHEAST", 157.5},
      {"SOUTH", 180},         {"SOUTH-SOUTHWEST", 202.5},
      {"SOUTHWEST", 225},     {"WEST-SOUTHWEST", 247.5},
      {"WEST", 270},          {"WEST-NORTHWEST", 292.5},
      {"NORTHWEST", 315},     {"NORTH-NORTHWEST", 337.5}};
  for (const auto& [label, bearing] : kPoints) {
    if (name == label) return bearing;
  }
  return 0.0;  // unknown label: treat as stationary-northward
}

}  // namespace

Advisory ProjectAdvisory(const Advisory& advisory, double lead_hours,
                         const ProjectionOptions& options) {
  if (lead_hours < 0.0) {
    throw InvalidArgument("ProjectAdvisory: negative lead time");
  }
  if (lead_hours == 0.0) return advisory;
  Advisory projected = advisory;
  // Displacement with optional decay: integral of v * decay^t dt.
  double displacement_miles;
  if (options.motion_decay_per_hour >= 1.0 - 1e-12) {
    displacement_miles = advisory.motion_mph * lead_hours;
  } else {
    const double k = std::log(options.motion_decay_per_hour);
    displacement_miles =
        advisory.motion_mph * (std::exp(k * lead_hours) - 1.0) / k;
  }
  projected.center =
      geo::Destination(advisory.center,
                       BearingFromCompass(advisory.motion_direction),
                       displacement_miles);
  const double growth = options.uncertainty_miles_per_hour * lead_hours;
  if (projected.hurricane_wind_radius_miles > 0.0) {
    projected.hurricane_wind_radius_miles += growth;
  }
  projected.tropical_wind_radius_miles += growth;
  projected.time = advisory.time.PlusHours(
      static_cast<int>(std::lround(lead_hours)));
  return projected;
}

ConeRiskField::ConeRiskField(const Advisory& advisory,
                             std::vector<double> lead_hours,
                             const ForecastRiskParams& params,
                             const ProjectionOptions& options)
    : params_(params) {
  if (lead_hours.empty()) {
    throw InvalidArgument("ConeRiskField: need at least one horizon");
  }
  if (params.rho_hurricane < params.rho_tropical) {
    throw InvalidArgument("ConeRiskField: rho_hurricane < rho_tropical");
  }
  std::sort(lead_hours.begin(), lead_hours.end());
  projections_.reserve(lead_hours.size());
  for (const double lead : lead_hours) {
    projections_.push_back(ProjectAdvisory(advisory, lead, options));
  }
}

double ConeRiskField::RiskAt(const geo::GeoPoint& p) const {
  double best = 0.0;
  for (const Advisory& projection : projections_) {
    switch (ZoneAt(projection, p)) {
      case WindZone::kHurricane:
        return params_.rho_hurricane;  // cannot be beaten
      case WindZone::kTropical:
        best = std::max(best, params_.rho_tropical);
        break;
      case WindZone::kNone:
        break;
    }
  }
  return best;
}

}  // namespace riskroute::forecast
