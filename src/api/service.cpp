#include "api/service.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "forecast/parser.h"
#include "hazard/synthesis.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

namespace riskroute::api {
namespace {

/// Resolves a PoP name against the frozen engine; same lookup and same
/// error message as the CLI's require_pop.
std::size_t RequirePop(const core::RouteEngine& engine,
                       const std::string& name) {
  for (std::size_t i = 0; i < engine.node_count(); ++i) {
    if (engine.node_name(i) == name) return i;
  }
  throw InvalidArgument("no PoP named '" + name + "' in this network");
}

/// "<label>: M mi, B bit-risk mi\n  A -> B -> C\n" — byte-identical to
/// the CLI's print_route.
std::string RenderRouteLine(const core::RouteEngine& engine,
                            const char* label, const core::Path& path,
                            double miles, double brm) {
  std::string out = util::Format("%s: %.0f mi, %.0f bit-risk mi\n  ", label,
                                 miles, brm);
  for (std::size_t i = 0; i < path.size(); ++i) {
    out += engine.node_name(path[i]);
    out += i + 1 == path.size() ? "\n" : " -> ";
  }
  return out;
}

/// The per-hop Eq 1 decomposition table of the chosen route.
std::string RenderHopTable(const core::RouteEngine& engine,
                           const core::Path& path, double alpha) {
  std::string out =
      util::Format("\nper-hop bit-risk miles (alpha_ij = %.4g):\n", alpha);
  out += util::Format("  %-44s %10s %12s %12s %12s\n", "hop", "miles",
                      "risk term", "hop total", "cumulative");
  double cumulative = 0.0;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t u = path[k - 1];
    const std::size_t v = path[k];
    double hop_miles = 0.0;
    for (std::size_t e = engine.EdgeBegin(u); e < engine.EdgeEnd(u); ++e) {
      if (engine.EdgeHead(e) == v) {
        hop_miles = engine.EdgeMiles(e);
        break;
      }
    }
    const double risk_term = alpha * engine.NodeScore(v);
    cumulative += hop_miles + risk_term;
    const std::string hop = engine.node_name(u) + " -> " + engine.node_name(v);
    out += util::Format("  %-44s %10.1f %12.1f %12.1f %12.1f\n", hop.c_str(),
                        hop_miles, risk_term, hop_miles + risk_term,
                        cumulative);
  }
  return out;
}

/// The ensemble human summary (the CLI's non---json output).
std::string RenderEnsembleText(const core::RouteEngine& engine,
                               const sim::EnsembleReport& report) {
  std::string out = util::Format(
      "scenarios %zu (seed %zu) | baseline %.6g bit-risk mi over "
      "%zu pairs\n",
      report.scenarios, static_cast<std::size_t>(report.seed),
      report.baseline_bit_risk_miles, report.baseline_pairs);
  out += util::Format(
      "delta bit-risk mi: mean %.6g sd %.6g | p5 %.6g p50 %.6g "
      "p95 %.6g | max %.6g\n",
      report.delta_mean, std::sqrt(report.delta_variance), report.delta_p5,
      report.delta_p50, report.delta_p95, report.delta_max);
  out += util::Format(
      "per scenario: %.2f failed PoPs, %.2f severed links, "
      "%.2f dead-endpoint pairs, %.2f stranded pairs\n",
      report.mean_failed_pops, report.mean_severed_links,
      report.mean_endpoint_pairs, report.mean_disconnected_pairs);
  out += "\nmost critical links (by summed damage when out of service):\n";
  out += util::Format("  %-44s %8s %9s %14s\n", "link", "miles", "failures",
                      "mean delta");
  for (const auto& link : report.criticality) {
    const std::string name =
        engine.node_name(link.a) + " <-> " + engine.node_name(link.b);
    out += util::Format("  %-44s %8.0f %9zu %14.6g\n", name.c_str(),
                        link.miles, static_cast<std::size_t>(link.failures),
                        link.MeanDelta(report.scenarios));
  }
  return out;
}

/// The triaged-ensemble human summary: the estimate in the same shape as
/// the exact summary, plus the triage accounting and the audit-lane
/// calibration line.
std::string RenderTriagedText(const core::RouteEngine& engine,
                              const sim::TriagedReport& report) {
  std::string out = RenderEnsembleText(engine, report.estimate);
  out += util::Format(
      "\ntriage: %zu exact of %zu (%.1f%%) | pilot %zu, audit %zu, "
      "flagged %zu, sampled %zu, skipped %zu, empty %zu | %zu strata, "
      "weight sum %.6g\n",
      report.exact_evaluations, report.universe,
      100.0 * report.exact_fraction, report.pilot_exact, report.audit_exact,
      report.flagged_exact, report.sampled_exact, report.skipped,
      report.empty_scenarios, report.strata, report.weight_sum);
  out += util::Format(
      "calibration (%zu audits): mae %.6g rmse %.6g max %.6g bias %.6g | "
      "pilot residual sd %.6g r2 %.3f\n",
      report.calibration.audits, report.calibration.mean_abs_error,
      report.calibration.rmse, report.calibration.max_abs_error,
      report.calibration.bias, report.calibration.pilot_residual_sd,
      report.calibration.pilot_r2);
  return out;
}

obs::Counter& RequestCounter(const char* kind) {
  std::string name = "api.requests.";
  name += kind;
  return obs::MetricsRegistry::Global().GetCounter(name);
}

/// Whether two option sets build the same EnsembleEngine (every field
/// feeds construction: the baseline sweep, the seasonal slices, or the
/// per-scenario draw parameters the engine snapshots).
bool SameEnsembleOptions(const sim::EnsembleOptions& a,
                         const sim::EnsembleOptions& b) {
  return a.scenarios == b.scenarios && a.seed == b.seed &&
         a.month == b.month &&
         a.damage_radius_scale == b.damage_radius_scale &&
         a.center_jitter == b.center_jitter &&
         a.fringe_factor == b.fringe_factor &&
         a.fringe_fail_scale == b.fringe_fail_scale &&
         a.link_cut_prob == b.link_cut_prob &&
         a.criticality_top == b.criticality_top;
}

}  // namespace

Service::Service(core::RouteEngine engine, const ServiceOptions& options)
    : engine_(std::move(engine)),
      pool_threads_(options.threads),
      borrowed_pool_(options.pool) {}

util::ParseResult<Service> Service::FromSnapshotFile(
    const std::string& path, const ServiceOptions& options) {
  auto loaded = core::RouteEngine::LoadSnapshotFile(path);
  if (!loaded.ok()) return loaded.error();
  return Service(std::move(loaded.value()), options);
}

util::ThreadPool& Service::pool() const {
  if (borrowed_pool_ != nullptr) return *borrowed_pool_;
  std::call_once(lazy_->pool_once, [this] {
    lazy_->pool = std::make_unique<util::ThreadPool>(pool_threads_);
  });
  return *lazy_->pool;
}

const std::vector<hazard::Catalog>& Service::Catalogs() const {
  std::call_once(lazy_->catalogs_once, [this] {
    lazy_->catalogs = hazard::SynthesizeAllCatalogs();
  });
  return lazy_->catalogs;
}

RouteResponse Service::Route(const RouteRequest& request) const {
  static obs::TraceScope scope(obs::MetricsRegistry::Global(), "api.route");
  obs::TraceSpan span(scope);
  RequestCounter("route").Add();

  const std::size_t src = RequirePop(engine_, request.from);
  const std::size_t dst = RequirePop(engine_, request.to);

  RouteResponse response;
  response.alpha = engine_.Alpha(src, dst);
  const auto shortest_path = engine_.FindPath(src, dst, 0.0);
  const auto risky_path = engine_.FindPath(src, dst, response.alpha);
  if (!shortest_path || !risky_path) return response;

  response.connected = true;
  response.shortest_path = *shortest_path;
  response.riskroute_path = *risky_path;
  response.shortest = engine_.Measure(*shortest_path);
  response.riskroute = engine_.Measure(*risky_path);
  response.body =
      RenderRouteLine(engine_, "shortest ", *shortest_path,
                      response.shortest.miles,
                      response.shortest.bit_risk_miles) +
      RenderRouteLine(engine_, "riskroute", *risky_path,
                      response.riskroute.miles,
                      response.riskroute.bit_risk_miles) +
      RenderHopTable(engine_, *risky_path, response.alpha);
  return response;
}

RatiosResponse Service::Ratios(const RatiosRequest& request) const {
  static obs::TraceScope scope(obs::MetricsRegistry::Global(), "api.ratios");
  obs::TraceSpan span(scope);
  RequestCounter("ratios").Add();

  std::vector<std::size_t> all(engine_.node_count());
  std::iota(all.begin(), all.end(), std::size_t{0});

  RatiosResponse response;
  response.report = engine_.ComputeRatios(all, all, &pool());
  response.pops = engine_.node_count();
  util::Table table(
      {"Network", "# PoPs", "Risk Reduction", "Distance Increase"});
  table.Add(request.label, response.pops,
            response.report.risk_reduction_ratio,
            response.report.distance_increase_ratio);
  response.body = table.ToString();
  return response;
}

EnsembleResponse Service::Ensemble(const EnsembleRequest& request) const {
  static obs::TraceScope scope(obs::MetricsRegistry::Global(), "api.ensemble");
  obs::TraceSpan span(scope);
  RequestCounter("ensemble").Add();

  sim::EnsembleOptions options;
  options.scenarios = request.scenarios;
  options.seed = request.seed;
  options.month = request.month;
  options.criticality_top = request.top;

  const std::shared_ptr<const sim::EnsembleEngine> ensemble =
      EnsembleFor(options);
  EnsembleResponse response;
  if (request.triage) {
    sim::TriageOptions triage;
    triage.pilot = request.pilot;
    triage.audit_stride = request.audit_stride;
    triage.base_rate = static_cast<double>(request.base_rate_ppm) / 1e6;
    triage.min_rate = std::min(triage.min_rate, triage.base_rate);
    const sim::TriagedEnsemble triaged(*ensemble, triage);
    response.triaged = triaged.Run(&pool());
    response.report = response.triaged->estimate;
    response.body = request.json
                        ? response.triaged->ToJson()
                        : RenderTriagedText(engine_, *response.triaged);
  } else {
    response.report = ensemble->Run(&pool());
    response.body = request.json
                        ? response.report.ToJson()
                        : RenderEnsembleText(engine_, response.report);
  }
  return response;
}

std::shared_ptr<const sim::EnsembleEngine> Service::EnsembleFor(
    const sim::EnsembleOptions& options) const {
  std::lock_guard<std::mutex> lock(lazy_->ensemble_mutex);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (lazy_->ensemble != nullptr &&
      SameEnsembleOptions(lazy_->ensemble_options, options)) {
    reg.GetCounter("api.ensemble.engine_reuses").Add(1);
    return lazy_->ensemble;
  }
  reg.GetCounter("api.ensemble.engine_builds").Add(1);
  lazy_->ensemble = std::make_shared<const sim::EnsembleEngine>(
      engine_, Catalogs(), options, &pool());
  lazy_->ensemble_options = options;
  return lazy_->ensemble;
}

RouteDiffResponse Service::StreamAdvisory(
    const StreamAdvisoryRequest& request) const {
  static obs::TraceScope scope(obs::MetricsRegistry::Global(), "api.stream");
  obs::TraceSpan span(scope);
  RequestCounter("stream").Add();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(lazy_->stream_mutex);
  if (request.reset) lazy_->stream.reset();
  if (lazy_->stream == nullptr) {
    forecast::StreamOptions options;
    options.top_moves = request.top;
    options.pool = &pool();
    lazy_->stream =
        std::make_unique<forecast::StreamingReroute>(engine_, options);
    reg.GetCounter("api.stream.sessions").Add(1);
  } else {
    reg.GetCounter("api.stream.session_reuses").Add(1);
  }

  RouteDiffResponse response;
  util::ParseResult<forecast::Advisory> parsed =
      forecast::ParseAdvisoryResult(request.bulletin);
  if (!parsed.ok()) {
    // The live feed turned unreadable: revert to the static plane and
    // keep answering, tagged so the caller knows what it is getting.
    response.diff = lazy_->stream->FallbackToStatic();
    response.body = "advisory rejected: " + parsed.error().Render() + "\n" +
                    forecast::RenderRouteDiff(response.diff, engine_,
                                              request.top);
    return response;
  }
  util::ParseResult<forecast::RouteDiff> diff =
      lazy_->stream->Ingest(parsed.value());
  if (!diff.ok()) throw InvalidArgument(diff.error().Render());
  response.diff = std::move(diff.value());
  response.body =
      forecast::RenderRouteDiff(response.diff, engine_, request.top);
  return response;
}

ProvisionResponse Service::Provision(const ProvisionRequest& request) const {
  static obs::TraceScope scope(obs::MetricsRegistry::Global(), "api.provision");
  obs::TraceSpan span(scope);
  RequestCounter("provision").Add();

  if (request.links == 0) {
    throw InvalidArgument("provision needs links >= 1");
  }
  provision::AugmentationOptions options;
  options.links_to_add = request.links;
  options.candidates.max_candidates = engine_.node_count() > 100 ? 120 : 400;

  ProvisionResponse response;
  response.result = provision::GreedyAugment(engine_, options, &pool());
  response.body = util::Format("aggregate bit-risk today: %.4g\n",
                               response.result.original_bit_risk_miles);
  for (std::size_t s = 0; s < response.result.steps.size(); ++s) {
    const auto& step = response.result.steps[s];
    response.body += util::Format(
        "%zu. %s <-> %s (%.0f mi) -> %.2f%% of original\n", s + 1,
        engine_.node_name(step.link.a).c_str(),
        engine_.node_name(step.link.b).c_str(), step.link.direct_miles,
        100 * step.fraction_of_original);
  }
  return response;
}

}  // namespace riskroute::api
