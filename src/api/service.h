// riskroute::api — the typed request/response layer of the library.
//
// Service owns one frozen core::RouteEngine (plus the worker pool and the
// lazily synthesized hazard catalogs an ensemble run needs) and answers
// the four query families the riskroute CLI exposes: route, ratios,
// ensemble, provision. Each query takes a small request struct and
// returns a response struct carrying both the structured result and
// `body` — the exact stdout bytes the equivalent CLI subcommand prints.
// The CLI subcommands and the riskroute_serverd handlers are both thin
// adapters over this one layer, which is what makes the serverd
// correctness contract ("a served response body is byte-identical to the
// CLI's output against the same snapshot") hold by construction rather
// than by parallel maintenance of two formatters.
//
// Thread safety: every query method is const and safe to call
// concurrently from multiple threads. The underlying engine sweeps are
// bitwise thread-count independent (the PR 2 contract), so a response
// body is a pure function of (engine, request) regardless of the pool
// size or concurrent callers.
//
// Metrics: each query increments `api.requests.<kind>` (stable) and
// records an `api.<kind>` trace span (volatile wall clock).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/risk_params.h"
#include "core/route_engine.h"
#include "core/riskroute.h"
#include "forecast/streaming.h"
#include "hazard/catalog.h"
#include "provision/augmentation.h"
#include "sim/ensemble.h"
#include "sim/triage.h"
#include "util/parse_result.h"
#include "util/thread_pool.h"

namespace riskroute::api {

/// Service construction options.
struct ServiceOptions {
  /// Worker count for the owned pool (0 = hardware concurrency). Ignored
  /// when `pool` is set.
  std::size_t threads = 0;
  /// Borrowed worker pool; must outlive the Service. When null the
  /// Service lazily creates its own pool on the first query that
  /// parallelizes (route queries never pay the spawn cost).
  util::ThreadPool* pool = nullptr;
};

/// One point-to-point route query (CLI: `riskroute route`).
struct RouteRequest {
  std::string from = "Houston, TX";
  std::string to = "Boston, MA";
};

/// Route result: both paths, their shared metrics, and the CLI body
/// (route lines + the per-hop Eq 1 decomposition table).
struct RouteResponse {
  /// False when the PoPs share no path; every other field is then empty
  /// (the CLI prints "PoPs are not connected" to stderr and exits 1).
  bool connected = false;
  double alpha = 0.0;  // alpha_ij of the endpoints
  core::Path shortest_path;
  core::Path riskroute_path;
  core::PathMetrics shortest;
  core::PathMetrics riskroute;
  std::string body;
};

/// Eq 5/6 ratio sweep over every frozen PoP pair (CLI: `riskroute
/// ratios`). `label` is the table's network column (the CLI passes the
/// network name, or "snapshot" for snapshot boots).
struct RatiosRequest {
  std::string label = "snapshot";
};

struct RatiosResponse {
  core::RatioReport report;
  std::size_t pops = 0;
  std::string body;  // the rendered single-row table
};

/// Monte Carlo outage ensemble (CLI: `riskroute ensemble`). Defaults
/// mirror the CLI flag defaults the golden fixtures pin.
///
/// With `triage` set, the run goes through sim::TriagedEnsemble: exact
/// engine work only for pilot/audit/flagged/sampled scenarios, the rest
/// carried by Horvitz-Thompson reweighting. The knobs are integers
/// (rate in parts-per-million) so the wire codec, the CLI and the
/// service quantize identically and served bodies stay byte-equal to
/// CLI stdout.
struct EnsembleRequest {
  std::size_t scenarios = 256;
  std::uint64_t seed = 2026;
  int month = 0;  // 0 = annual archive, 1-12 = season filter
  std::size_t top = 10;
  bool json = false;  // body = ToJson() instead of the human summary
  bool triage = false;
  std::size_t pilot = 96;         // exact pilot batch (surrogate fit)
  std::size_t audit_stride = 64;  // calibration lane: ids % stride == 0
  std::uint32_t base_rate_ppm = 50000;  // sampled-lane keep rate, ppm
};

struct EnsembleResponse {
  /// Plain run: the exact report. Triaged run: the HT-weighted estimate
  /// (triage accounting lives in `triaged`).
  sim::EnsembleReport report;
  /// Engaged iff the request asked for triage.
  std::optional<sim::TriagedReport> triaged;
  std::string body;
};

/// One advisory bulletin pushed into the rolling re-route session
/// (CLI: `riskroute stream`; serverd frame kind kStreamAdvisory). The
/// session is created on the first request and reused across requests —
/// one frozen engine, one baseline pair table — until `reset` starts a
/// fresh session.
struct StreamAdvisoryRequest {
  std::string bulletin;
  bool reset = false;
  std::size_t top = 3;  // moves rendered in the body
};

/// The structured routing diff plus the rendered body. A parseable
/// bulletin answers with source "live"; an unreadable one reverts the
/// session to the static baseline plane and answers with source
/// "static-fallback" (the live-feed mitigation pattern) rather than
/// failing the request. Sequencing violations (duplicate or
/// out-of-order advisory numbers) DO throw InvalidArgument: the feed is
/// readable but the caller replayed it wrong.
struct RouteDiffResponse {
  forecast::RouteDiff diff;
  std::string body;
};

/// Greedy link augmentation (CLI: `riskroute augment`).
struct ProvisionRequest {
  std::size_t links = 5;
};

struct ProvisionResponse {
  provision::AugmentationResult result;
  std::string body;
};

/// The query service: one frozen engine, four query families.
class Service {
 public:
  /// Takes ownership of a prepared engine (ALT landmarks and forecast
  /// risks included — Service never mutates it).
  explicit Service(core::RouteEngine engine, const ServiceOptions& options = {});

  /// Boots from an engine-snapshot file (the `riskroute freeze` output).
  /// Hostile bytes surface as the loader's ParseDiagnostic.
  [[nodiscard]] static util::ParseResult<Service> FromSnapshotFile(
      const std::string& path, const ServiceOptions& options = {});

  Service(Service&&) = default;
  Service& operator=(Service&&) = default;
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Throws InvalidArgument when a PoP name does not exist in the frozen
  /// network (same message as the CLI). A connected=false response is not
  /// an error — disconnected PoPs are a property of the topology.
  [[nodiscard]] RouteResponse Route(const RouteRequest& request) const;

  [[nodiscard]] RatiosResponse Ratios(const RatiosRequest& request) const;

  /// Throws InvalidArgument on zero scenarios, a month outside 0-12, or
  /// a season filter with no eligible events (EnsembleEngine contract).
  [[nodiscard]] EnsembleResponse Ensemble(const EnsembleRequest& request) const;

  /// Throws InvalidArgument when links == 0.
  [[nodiscard]] ProvisionResponse Provision(const ProvisionRequest& request) const;

  /// Rolling incremental re-route; see StreamAdvisoryRequest. Requests
  /// serialize on the session (concurrent callers queue briefly).
  [[nodiscard]] RouteDiffResponse StreamAdvisory(
      const StreamAdvisoryRequest& request) const;

  [[nodiscard]] const core::RouteEngine& engine() const { return engine_; }
  /// The worker pool (borrowed or owned; spawned on first use).
  [[nodiscard]] util::ThreadPool& pool() const;

 private:
  /// Lazily synthesized hazard catalogs for ensemble runs. The vector is
  /// a stable member: EnsembleEngine keeps a pointer into it.
  [[nodiscard]] const std::vector<hazard::Catalog>& Catalogs() const;

  /// Cached EnsembleEngine for `options`, rebuilt only when the
  /// construction-relevant options change. Returned shared so a
  /// concurrent request with different options cannot dangle a caller
  /// mid-run. Fixes the latent per-request rebuild: repeated identical
  /// ensemble queries (the serverd steady state) reuse one prepared
  /// engine — baseline sweep, seasonal slices and all.
  [[nodiscard]] std::shared_ptr<const sim::EnsembleEngine> EnsembleFor(
      const sim::EnsembleOptions& options) const;

  core::RouteEngine engine_;
  std::size_t pool_threads_ = 0;
  util::ThreadPool* borrowed_pool_ = nullptr;

  // Lazy state lives behind a pointer so Service stays movable
  // (std::once_flag and std::mutex are not).
  struct Lazy {
    std::once_flag pool_once;
    std::once_flag catalogs_once;
    std::unique_ptr<util::ThreadPool> pool;
    std::vector<hazard::Catalog> catalogs;
    std::mutex stream_mutex;
    std::unique_ptr<forecast::StreamingReroute> stream;
    std::mutex ensemble_mutex;
    std::shared_ptr<const sim::EnsembleEngine> ensemble;
    sim::EnsembleOptions ensemble_options;  // valid iff ensemble != null
  };
  std::unique_ptr<Lazy> lazy_ = std::make_unique<Lazy>();
};

}  // namespace riskroute::api
