// <riskroute/api.h> — the single public umbrella of the RiskRoute
// library, installed for applications.
//
// The typed surface is riskroute::api (api/service.h): a Service that
// owns a frozen engine and answers route / ratios / ensemble / provision
// requests with structured responses whose `body` is byte-identical to
// the CLI's output. Everything else re-exported here is the supporting
// cast applications commonly need around a Service: assembling a study,
// freezing/loading engines, hazard + forecast risk models, provisioning,
// simulation, geometry helpers, and the obs:: metrics registry. Anything
// not exported here is library-internal and may change without notice.
//
// The stable spine:
//
//   api::Service         — typed query layer (route/ratios/ensemble/provision)
//   core::Study          — synthesized corpus + census + hazard fields
//   core::RouteEngine    — frozen CSR graph; every routing query; snapshots
//   core::PathMetrics    — the shared {miles, bit_risk_miles} result base
//   provision::GreedyAugment / RecommendPeering
//   obs::MetricsRegistry — process-wide counters/histograms + DumpJson
#pragma once

// The typed request/response layer.
#include "api/service.h"

// Core: graph substrate, frozen engine, routers, result types.
#include "core/backup_paths.h"
#include "core/disjoint_paths.h"
#include "core/edge_overlay.h"
#include "core/interdomain.h"
#include "core/k_shortest.h"
#include "core/multi_objective.h"
#include "core/ospf_export.h"
#include "core/path_metrics.h"
#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/riskroute.h"
#include "core/route_engine.h"
#include "core/study.h"

// Hazard + forecast risk models feeding the engine.
#include "forecast/forecast_risk.h"
#include "forecast/parser.h"
#include "forecast/tracks.h"
#include "hazard/risk_field.h"
#include "hazard/synthesis.h"

// Provisioning: link augmentation and peering recommendation.
#include "provision/augmentation.h"
#include "provision/peering.h"

// Outage simulation + Monte Carlo ensemble.
#include "sim/ensemble.h"
#include "sim/outage_sim.h"
#include "sim/traffic.h"

// Observability: metrics registry, scoped timers, JSON export.
#include "obs/metrics.h"

// Geometry + shared utilities applications commonly need alongside.
#include "geo/bounding_box.h"
#include "geo/distance.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace riskroute {

/// Serializes every metric recorded so far by the process-wide registry
/// (see obs::MetricsRegistry::DumpJson for the schema).
[[nodiscard]] inline std::string DumpMetricsJson(bool include_volatile = true) {
  return obs::MetricsRegistry::Global().DumpJson(include_volatile);
}

}  // namespace riskroute
