// Topology Zoo GraphML import.
//
// The paper's ground-truth maps come from the Internet Topology Zoo,
// which distributes GraphML files whose nodes carry Latitude / Longitude /
// label attributes. This importer parses that format (a self-contained
// XML subset reader — no external dependencies) so users can run the
// framework on the real maps instead of the synthetic corpus:
//
//   auto network = topology::ParseGraphml(zoo_file_text,
//                                         {"Abilene", NetworkKind::kRegional});
//
// Supported GraphML subset: <key> declarations binding attr.name -> id
// for nodes, <node> elements with <data> children, undirected <edge>
// elements with source/target attributes. Nodes without usable
// coordinates are dropped (Topology Zoo marks some as "hyper nodes");
// edges referencing dropped or unknown nodes are skipped.
#pragma once

#include <string>
#include <string_view>

#include "topology/network.h"

namespace riskroute::topology {

/// Import options.
struct GraphmlOptions {
  std::string network_name = "imported";
  NetworkKind kind = NetworkKind::kRegional;
  /// Attribute names carrying the node geometry/label (Topology Zoo's).
  std::string latitude_attr = "Latitude";
  std::string longitude_attr = "Longitude";
  std::string label_attr = "label";
};

/// Parses GraphML text into a Network. Throws ParseError on malformed XML
/// or when no node carries coordinates.
[[nodiscard]] Network ParseGraphml(std::string_view text,
                                   const GraphmlOptions& options = {});

/// Exports a Network as Topology Zoo-style GraphML — exactly the subset
/// ParseGraphml consumes, with coordinates printed at 17 significant
/// digits, so Write -> Parse round-trips PoP names, locations and links
/// losslessly (pass the same attribute names in `options` on both sides).
[[nodiscard]] std::string WriteGraphml(const Network& network,
                                       const GraphmlOptions& options = {});

}  // namespace riskroute::topology
