// Embedded gazetteer of continental-US cities.
//
// The paper builds on ground-truth PoP locations from the Internet Topology
// Zoo / Internet Atlas. Those maps are not redistributable, so the corpus
// generator places synthetic PoPs at real city locations drawn from this
// embedded gazetteer (~400 cities: every major metro plus state-level
// coverage for the regional ISPs' footprints). Coordinates are accurate to
// a few miles and populations are approximate 2010 city populations — both
// well within the tolerance of an analysis whose kernel bandwidths are
// tens to hundreds of miles (paper Table 1).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geo_point.h"

namespace riskroute::topology {

/// One gazetteer entry.
struct City {
  std::string_view name;
  std::string_view state;  // two-letter USPS code
  double latitude;
  double longitude;
  double population;  // approximate city population

  [[nodiscard]] geo::GeoPoint location() const {
    return geo::GeoPoint(latitude, longitude);
  }
};

/// All embedded cities (stable order; continental US only).
[[nodiscard]] std::span<const City> Cities();

/// Cities in any of `states` (two-letter codes). An empty list means all.
[[nodiscard]] std::vector<const City*> CitiesInStates(
    const std::vector<std::string>& states);

/// Looks up a city by "Name, ST" (exact match); nullptr if absent.
[[nodiscard]] const City* FindCity(std::string_view name,
                                   std::string_view state);

/// Total population over all embedded cities.
[[nodiscard]] double TotalGazetteerPopulation();

}  // namespace riskroute::topology
