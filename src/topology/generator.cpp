#include "topology/generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <tuple>

#include "geo/distance.h"
#include "topology/gazetteer.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::topology {
namespace {

/// Chooses `count` PoP sites for a spec: required cities first, then a
/// population-weighted sample without replacement from the allowed states,
/// then synthesized satellite towns if the gazetteer runs dry.
std::vector<Pop> ChoosePopSites(const NetworkSpec& spec, util::Rng& rng) {
  std::vector<Pop> pops;
  std::set<const City*> used;

  for (const auto& [name, state] : spec.required_cities) {
    const City* city = FindCity(name, state);
    if (city == nullptr) {
      throw InvalidArgument("required city not in gazetteer: " + name + ", " +
                            state);
    }
    used.insert(city);
    pops.push_back(Pop{name + ", " + state, city->location()});
  }
  if (pops.size() > spec.pop_count) {
    throw InvalidArgument("more required cities than PoPs for " + spec.name);
  }

  std::vector<const City*> candidates = CitiesInStates(spec.states);
  std::erase_if(candidates, [&](const City* c) { return used.contains(c); });

  while (pops.size() < spec.pop_count && !candidates.empty()) {
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (const City* c : candidates) {
      weights.push_back(std::pow(c->population, spec.population_bias));
    }
    const std::size_t pick = rng.WeightedIndex(weights);
    const City* city = candidates[pick];
    pops.push_back(Pop{std::string(city->name) + ", " + std::string(city->state),
                       city->location()});
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  // Satellite synthesis: secondary towns 15-55 miles from a random chosen
  // anchor, emulating the metro-area PoPs of geographically dense ISPs.
  std::size_t satellite = 1;
  while (pops.size() < spec.pop_count) {
    const std::size_t anchor =
        static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(pops.size()) - 1));
    const double bearing = rng.Uniform(0.0, 360.0);
    const double miles = rng.Uniform(15.0, 55.0);
    const geo::GeoPoint site =
        geo::Destination(pops[anchor].location, bearing, miles);
    pops.push_back(Pop{util::Format("%s Metro %zu", pops[anchor].name.c_str(),
                                    satellite++),
                       site});
  }
  return pops;
}

/// Prim's MST over great-circle distances; returns the selected edges.
std::vector<Link> MinimumSpanningTree(const std::vector<Pop>& pops) {
  const std::size_t n = pops.size();
  std::vector<Link> edges;
  if (n <= 1) return edges;
  std::vector<bool> in_tree(n, false);
  std::vector<double> best_cost(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> best_from(n, 0);
  in_tree[0] = true;
  for (std::size_t v = 1; v < n; ++v) {
    best_cost[v] = geo::GreatCircleMiles(pops[0].location, pops[v].location);
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    double pick_cost = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best_cost[v] < pick_cost) {
        pick_cost = best_cost[v];
        pick = v;
      }
    }
    in_tree[pick] = true;
    edges.push_back(Link{best_from[pick], pick});
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v]) {
        const double miles =
            geo::GreatCircleMiles(pops[pick].location, pops[v].location);
        if (miles < best_cost[v]) {
          best_cost[v] = miles;
          best_from[v] = pick;
        }
      }
    }
  }
  return edges;
}

/// Adds nearest-neighbour shortcut links until the average degree reaches
/// the spec target. Candidates are each node's closest non-neighbours,
/// picked with probability decaying in distance.
void Densify(Network& network, const NetworkSpec& spec, util::Rng& rng) {
  const std::size_t n = network.pop_count();
  if (n < 3) return;
  const auto target_links = static_cast<std::size_t>(
      spec.degree_target * static_cast<double>(n) / 2.0);
  constexpr std::size_t kNeighborRanks = 6;

  struct Candidate {
    std::size_t a, b;
    double miles;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    // Collect this node's nearest kNeighborRanks non-linked nodes.
    std::vector<Candidate> local;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || network.HasLink(i, j)) continue;
      local.push_back(Candidate{std::min(i, j), std::max(i, j),
                                geo::GreatCircleMiles(network.pop(i).location,
                                                      network.pop(j).location)});
    }
    std::sort(local.begin(), local.end(),
              [](const Candidate& x, const Candidate& y) { return x.miles < y.miles; });
    if (local.size() > kNeighborRanks) local.resize(kNeighborRanks);
    candidates.insert(candidates.end(), local.begin(), local.end());
  }
  // Deduplicate (i,j) pairs produced from both endpoints.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return std::tie(x.a, x.b) < std::tie(y.a, y.b);
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const Candidate& x, const Candidate& y) {
                                 return x.a == y.a && x.b == y.b;
                               }),
                   candidates.end());

  while (network.link_count() < target_links && !candidates.empty()) {
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (const Candidate& c : candidates) {
      weights.push_back(1.0 / (1.0 + c.miles * c.miles / 1e4));
    }
    const std::size_t pick = rng.WeightedIndex(weights);
    network.AddLink(candidates[pick].a, candidates[pick].b);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  }
}

/// Adds a ring backbone over a network's hub PoPs: hubs are ordered by
/// angle around their centroid and chained into a closed ring, with a few
/// random chords. Carrier backbones — especially the compact national
/// footprints of overseas Tier-1s and regional metro networks — are built
/// as rings (e.g. a northern arc through Chicago/Denver and a southern arc
/// through Atlanta/Dallas), and the two arcs are precisely what gives
/// RiskRoute a genuinely divergent, risk-avoiding alternative: a tree plus
/// local triangles has none.
void AddRingBackbone(Network& network, std::size_t hub_count, util::Rng& rng) {
  const std::size_t n = network.pop_count();
  if (n < 3) return;
  hub_count = std::min(std::max<std::size_t>(3, hub_count), n);
  // Hubs = first PoPs (required / most-weighted cities come first).
  std::vector<std::size_t> hubs(hub_count);
  for (std::size_t i = 0; i < hub_count; ++i) hubs[i] = i;

  double centroid_lat = 0.0;
  double centroid_lon = 0.0;
  for (const std::size_t h : hubs) {
    centroid_lat += network.pop(h).location.latitude();
    centroid_lon += network.pop(h).location.longitude();
  }
  centroid_lat /= static_cast<double>(hubs.size());
  centroid_lon /= static_cast<double>(hubs.size());
  const double cos_lat = std::cos(geo::DegToRad(centroid_lat));
  std::sort(hubs.begin(), hubs.end(), [&](std::size_t a, std::size_t b) {
    const auto angle = [&](std::size_t h) {
      const geo::GeoPoint& p = network.pop(h).location;
      return std::atan2(p.latitude() - centroid_lat,
                        (p.longitude() - centroid_lon) * cos_lat);
    };
    return angle(a) < angle(b);
  });
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    network.AddLink(hubs[i], hubs[(i + 1) % hubs.size()]);
  }
  // Random chords crossing the ring make moderate reroutes cheap.
  const std::size_t chords = hubs.size() / 4;
  for (std::size_t c = 0; c < chords; ++c) {
    const auto i = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(hubs.size()) - 1));
    const auto j = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(hubs.size()) - 1));
    if (i != j) network.AddLink(hubs[i], hubs[j]);
  }
}

}  // namespace

Network GenerateNetwork(const NetworkSpec& spec, util::Rng& rng) {
  if (spec.pop_count == 0) {
    throw InvalidArgument("network spec needs at least one PoP: " + spec.name);
  }
  Network network(spec.name, spec.kind);
  for (Pop& pop : ChoosePopSites(spec, rng)) {
    network.AddPop(std::move(pop));
  }
  // Compact networks are pure rings plus chords (the classic carrier
  // backbone); larger ones get feeder links (MST) under a hub ring.
  // Tier-1s ring all their PoPs up to a larger size — national carriers
  // with a few dozen PoPs are ring networks end to end.
  const std::size_t n = network.pop_count();
  const std::size_t full_ring_limit =
      spec.kind == NetworkKind::kTier1 ? 40 : 16;
  if (n <= full_ring_limit) {
    AddRingBackbone(network, n, rng);
  } else {
    for (const Link& edge : MinimumSpanningTree(network.pops())) {
      network.AddLink(edge.a, edge.b);
    }
    const std::size_t hub_count =
        spec.kind == NetworkKind::kTier1
            ? std::max<std::size_t>(8, n / 5)
            : std::max<std::size_t>(6, n / 3);
    AddRingBackbone(network, hub_count, rng);
  }
  Densify(network, spec, rng);
  return network;
}

std::vector<NetworkSpec> PaperNetworkSpecs() {
  using Kind = NetworkKind;
  std::vector<NetworkSpec> specs;

  // --- Tier-1 networks: 354 PoPs total (Table 2 PoP counts). ---
  NetworkSpec level3{"Level3", Kind::kTier1, 233, {}, {}, 3.2, 0.55};
  level3.required_cities = {{"Houston", "TX"},   {"Boston", "MA"},
                            {"New York", "NY"},  {"Los Angeles", "CA"},
                            {"Chicago", "IL"},   {"Denver", "CO"},
                            {"Dallas", "TX"},    {"Atlanta", "GA"},
                            {"Miami", "FL"},     {"Seattle", "WA"},
                            {"San Francisco", "CA"}, {"Washington", "DC"},
                            {"Kansas City", "MO"},   {"St. Louis", "MO"},
                            {"Phoenix", "AZ"},   {"Minneapolis", "MN"}};
  specs.push_back(std::move(level3));

  NetworkSpec att{"ATT", Kind::kTier1, 25, {}, {}, 2.8, 0.65};
  att.required_cities = {{"New York", "NY"}, {"Chicago", "IL"},
                         {"Dallas", "TX"},   {"Los Angeles", "CA"},
                         {"Atlanta", "GA"},  {"Washington", "DC"}};
  specs.push_back(std::move(att));

  NetworkSpec dt{"Deutsche", Kind::kTier1, 10, {}, {}, 2.6, 0.8};
  dt.required_cities = {{"New York", "NY"}, {"Miami", "FL"},
                        {"Chicago", "IL"},  {"Dallas", "TX"},
                        {"Los Angeles", "CA"}};
  specs.push_back(std::move(dt));

  NetworkSpec ntt{"NTT", Kind::kTier1, 12, {}, {}, 2.6, 0.8};
  ntt.required_cities = {{"Seattle", "WA"}, {"San Jose", "CA"},
                         {"Dallas", "TX"},  {"New York", "NY"},
                         {"Miami", "FL"},   {"New Orleans", "LA"}};
  specs.push_back(std::move(ntt));

  NetworkSpec sprint{"Sprint", Kind::kTier1, 24, {}, {}, 2.7, 0.65};
  sprint.required_cities = {{"Kansas City", "MO"}, {"New York", "NY"},
                            {"Washington", "DC"},  {"Atlanta", "GA"},
                            {"Fort Worth", "TX"},  {"Oakland", "CA"}};
  specs.push_back(std::move(sprint));

  NetworkSpec tinet{"Tinet", Kind::kTier1, 35, {}, {}, 2.7, 0.6};
  tinet.required_cities = {{"New York", "NY"}, {"Miami", "FL"},
                           {"Chicago", "IL"},  {"San Jose", "CA"},
                           {"Seattle", "WA"},  {"Denver", "CO"}};
  specs.push_back(std::move(tinet));

  NetworkSpec telia{"Teliasonera", Kind::kTier1, 15, {}, {}, 2.6, 0.75};
  telia.required_cities = {{"New York", "NY"}, {"Chicago", "IL"},
                           {"Dallas", "TX"},   {"San Jose", "CA"},
                           {"Washington", "DC"}};
  specs.push_back(std::move(telia));

  // --- Regional networks: 455 PoPs total. Footprints follow the paper's
  // case studies: Gulf-coast ISPs (Costreet, Telepak, USANetwork, Iris)
  // sit in Katrina's scope, east-coast ISPs (ANS, Bandcon, Digex,
  // Globalcenter, Gridnet, Hibernia, Goodnet) in Irene/Sandy's scope
  // (Figure 13 legends). ---
  NetworkSpec abilene{"Abilene", Kind::kRegional, 11, {}, {}, 2.2, 1.0};
  abilene.required_cities = {
      {"Seattle", "WA"},  {"Sunnyvale", "CA"},     {"Los Angeles", "CA"},
      {"Denver", "CO"},   {"Kansas City", "MO"},   {"Houston", "TX"},
      {"Chicago", "IL"},  {"Indianapolis", "IN"},  {"Atlanta", "GA"},
      {"Washington", "DC"}, {"New York", "NY"}};
  specs.push_back(std::move(abilene));

  specs.push_back(NetworkSpec{"ANS", Kind::kRegional, 25,
                              {"NY", "NJ", "PA", "CT", "MA", "MD", "DC", "VA"},
                              {}, 2.4, 0.6});
  specs.push_back(NetworkSpec{"Bandcon", Kind::kRegional, 20,
                              {"NY", "NJ", "PA", "MD", "DE", "VA"},
                              {}, 2.4, 0.6});
  specs.push_back(NetworkSpec{"BritishTele", Kind::kRegional, 65, {},
                              {}, 2.5, 0.7});
  specs.push_back(NetworkSpec{"Digex", Kind::kRegional, 27,
                              {"MD", "VA", "DC", "WV", "PA", "DE"},
                              {}, 2.4, 0.5});
  specs.push_back(NetworkSpec{"Epoch", Kind::kRegional, 28, {"TX"},
                              {}, 2.4, 0.6});
  specs.push_back(NetworkSpec{"Iris", Kind::kRegional, 22, {"TN", "MS", "AL"},
                              {}, 2.3, 0.5});
  specs.push_back(NetworkSpec{"Bluebird", Kind::kRegional, 24,
                              {"MO", "IL", "IA", "KS"},
                              {}, 2.3, 0.5});
  specs.push_back(NetworkSpec{"Gridnet", Kind::kRegional, 30,
                              {"NY", "CT", "MA", "RI", "NH", "NJ"},
                              {}, 2.4, 0.5});

  NetworkSpec globalcenter{"Globalcenter", Kind::kRegional, 8,
                           {"NJ", "NY", "DE", "MD"}, {}, 2.3, 0.8};
  // Deliberately coastal: the paper reports 87.5% of Globalcenter's PoPs
  // (7 of 8) inside Hurricane Irene's path.
  globalcenter.required_cities = {{"Atlantic City", "NJ"}, {"Toms River", "NJ"},
                                  {"New York", "NY"},      {"Asbury Park", "NJ"},
                                  {"Vineland", "NJ"},      {"Islip", "NY"},
                                  {"Dover", "DE"},         {"Salisbury", "MD"}};
  specs.push_back(std::move(globalcenter));

  specs.push_back(NetworkSpec{"Goodnet", Kind::kRegional, 30,
                              {"PA", "NJ", "NY", "OH"},
                              {}, 2.4, 0.5});
  specs.push_back(NetworkSpec{"Telepak", Kind::kRegional, 28,
                              {"MS", "LA", "AL"},
                              {}, 2.3, 0.4});
  specs.push_back(NetworkSpec{"NTS", Kind::kRegional, 33, {"TX", "NM", "OK"},
                              {}, 2.4, 0.5});
  specs.push_back(NetworkSpec{"Hibernia", Kind::kRegional, 40,
                              {"MA", "NH", "ME", "CT", "RI", "NY", "NJ"},
                              {}, 2.4, 0.5});
  specs.push_back(NetworkSpec{"Costreet", Kind::kRegional, 26, {"LA", "MS"},
                              {}, 2.3, 0.5});
  specs.push_back(NetworkSpec{"USANetwork", Kind::kRegional, 38,
                              {"AL", "FL", "GA"},
                              {}, 2.4, 0.5});
  return specs;
}

std::vector<std::pair<std::string, std::string>> PaperPeerings() {
  std::vector<std::pair<std::string, std::string>> peerings;
  // Tier-1 full mesh (Figure 2 shows the Tier-1s densely interconnected).
  const std::vector<std::string> tier1 = {"Level3", "ATT",   "Deutsche",
                                          "NTT",    "Sprint", "Tinet",
                                          "Teliasonera"};
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      peerings.emplace_back(tier1[i], tier1[j]);
    }
  }
  // Regional -> Tier-1 transit/peering. Most regionals do not yet peer
  // with ATT or Tinet, matching the paper's finding that those two are the
  // dominant *recommended* new peers (Figure 11).
  peerings.emplace_back("Abilene", "Level3");
  peerings.emplace_back("Abilene", "Sprint");
  peerings.emplace_back("ANS", "Level3");
  peerings.emplace_back("ANS", "Sprint");
  peerings.emplace_back("Bandcon", "Level3");
  peerings.emplace_back("Bandcon", "NTT");
  peerings.emplace_back("BritishTele", "Sprint");
  peerings.emplace_back("BritishTele", "Teliasonera");
  peerings.emplace_back("BritishTele", "Level3");
  peerings.emplace_back("Digex", "Level3");
  peerings.emplace_back("Digex", "Sprint");
  peerings.emplace_back("Epoch", "Level3");
  peerings.emplace_back("Epoch", "Sprint");
  peerings.emplace_back("Iris", "Level3");
  peerings.emplace_back("Iris", "Deutsche");
  peerings.emplace_back("Bluebird", "Sprint");
  peerings.emplace_back("Bluebird", "Level3");
  peerings.emplace_back("Gridnet", "Level3");
  peerings.emplace_back("Gridnet", "Teliasonera");
  peerings.emplace_back("Globalcenter", "NTT");
  peerings.emplace_back("Globalcenter", "Level3");
  peerings.emplace_back("Goodnet", "Sprint");
  peerings.emplace_back("Goodnet", "Deutsche");
  peerings.emplace_back("Telepak", "Level3");
  peerings.emplace_back("Telepak", "Sprint");
  peerings.emplace_back("NTS", "Sprint");
  peerings.emplace_back("NTS", "Level3");
  peerings.emplace_back("Hibernia", "Teliasonera");
  peerings.emplace_back("Hibernia", "Level3");
  peerings.emplace_back("Costreet", "Level3");
  peerings.emplace_back("Costreet", "Sprint");
  peerings.emplace_back("USANetwork", "Level3");
  peerings.emplace_back("USANetwork", "Deutsche");
  return peerings;
}

namespace {

/// Shared growth loop: one forked RNG stream per network (stream i+1, as
/// GeneratePaperCorpus always has), then the named peerings.
Corpus GrowCorpus(const std::vector<NetworkSpec>& specs,
                  const std::vector<std::pair<std::string, std::string>>& peerings,
                  std::uint64_t seed) {
  util::Rng root(seed);
  Corpus corpus;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    util::Rng network_rng = root.Fork(i + 1);
    corpus.AddNetwork(GenerateNetwork(specs[i], network_rng));
  }
  for (const auto& [a, b] : peerings) {
    const auto ia = corpus.FindNetwork(a);
    const auto ib = corpus.FindNetwork(b);
    if (!ia || !ib) {
      throw InternalError("peering references unknown network: " + a + "/" + b);
    }
    corpus.AddPeering(*ia, *ib);
  }
  return corpus;
}

/// Number of extra nationwide backbones at a given scale.
std::size_t ContinentalBackboneCount(double scale) {
  const auto whole = static_cast<std::size_t>(scale);
  return whole > 1 ? std::min<std::size_t>(whole - 1, 8) : 0;
}

}  // namespace

Corpus GeneratePaperCorpus(std::uint64_t seed) {
  return GrowCorpus(PaperNetworkSpecs(), PaperPeerings(), seed);
}

std::vector<NetworkSpec> ScaledNetworkSpecs(double scale) {
  if (!(scale >= 1.0) || !std::isfinite(scale)) {
    throw InvalidArgument("ScaledNetworkSpecs: scale must be finite and >= 1");
  }
  std::vector<NetworkSpec> specs = PaperNetworkSpecs();
  for (NetworkSpec& spec : specs) {
    spec.pop_count = std::max(
        spec.pop_count,
        static_cast<std::size_t>(
            std::llround(static_cast<double>(spec.pop_count) * scale)));
  }
  // Continental backbones: nationwide Tier-1 meshes over the full
  // gazetteer. Each anchors a different coast-to-coast corridor so the
  // backbones are geographically offset rather than clones.
  static const std::vector<std::pair<std::string, std::string>> kCorridors[] = {
      {{"Seattle", "WA"}, {"Chicago", "IL"}, {"New York", "NY"}},
      {{"Los Angeles", "CA"}, {"Dallas", "TX"}, {"Atlanta", "GA"}},
      {{"San Francisco", "CA"}, {"Denver", "CO"}, {"Washington", "DC"}},
      {{"Portland", "OR"}, {"Minneapolis", "MN"}, {"Boston", "MA"}},
      {{"San Diego", "CA"}, {"Phoenix", "AZ"}, {"Miami", "FL"}},
      {{"Sacramento", "CA"}, {"Kansas City", "MO"}, {"Philadelphia", "PA"}},
      {{"Salt Lake City", "UT"}, {"St. Louis", "MO"}, {"Charlotte", "NC"}},
      {{"Las Vegas", "NV"}, {"Houston", "TX"}, {"Baltimore", "MD"}},
  };
  const std::size_t backbones = ContinentalBackboneCount(scale);
  for (std::size_t k = 0; k < backbones; ++k) {
    NetworkSpec spec{util::Format("Continental%zu", k + 1),
                     NetworkKind::kTier1,
                     static_cast<std::size_t>(std::llround(32.0 * scale)),
                     {},
                     {},
                     3.0,
                     0.5};
    spec.required_cities = kCorridors[k % std::size(kCorridors)];
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<std::pair<std::string, std::string>> ScaledPeerings(double scale) {
  std::vector<std::pair<std::string, std::string>> peerings = PaperPeerings();
  const std::size_t backbones = ContinentalBackboneCount(scale);
  for (std::size_t k = 0; k < backbones; ++k) {
    const std::string name = util::Format("Continental%zu", k + 1);
    peerings.emplace_back(name, "Level3");
    peerings.emplace_back(name, "Sprint");
    peerings.emplace_back(name, "ATT");
    if (k > 0) {
      peerings.emplace_back(name, util::Format("Continental%zu", k));
    }
  }
  return peerings;
}

Corpus GenerateScaledCorpus(double scale, std::uint64_t seed) {
  return GrowCorpus(ScaledNetworkSpecs(scale), ScaledPeerings(scale), seed);
}

}  // namespace riskroute::topology
