#include "topology/geojson.h"

#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::topology {
namespace {

void AppendCoordinate(std::ostringstream& out, const geo::GeoPoint& p) {
  // GeoJSON order is [longitude, latitude].
  out << '[' << util::Format("%.6f", p.longitude()) << ','
      << util::Format("%.6f", p.latitude()) << ']';
}

void AppendPopFeature(std::ostringstream& out, const Network& network,
                      std::size_t i, const PopScalarFn& risk) {
  const Pop& pop = network.pop(i);
  out << R"({"type":"Feature","geometry":{"type":"Point","coordinates":)";
  AppendCoordinate(out, pop.location);
  out << R"(},"properties":{"name":")" << JsonEscape(pop.name)
      << R"(","network":")" << JsonEscape(network.name())
      << R"(","kind":")" << ToString(network.kind()) << R"(","degree":)"
      << network.Neighbors(i).size();
  if (risk) {
    out << R"(,"risk":)" << util::Format("%.6g", risk(i));
  }
  out << "}}";
}

void AppendLinkFeature(std::ostringstream& out, const Network& network,
                       const Link& link) {
  out << R"({"type":"Feature","geometry":{"type":"LineString","coordinates":[)";
  AppendCoordinate(out, network.pop(link.a).location);
  out << ',';
  AppendCoordinate(out, network.pop(link.b).location);
  out << R"(]},"properties":{"network":")" << JsonEscape(network.name())
      << R"("}})";
}

void AppendNetworkFeatures(std::ostringstream& out, const Network& network,
                           const PopScalarFn& risk, bool& first) {
  for (std::size_t i = 0; i < network.pop_count(); ++i) {
    if (!first) out << ',';
    first = false;
    AppendPopFeature(out, network, i, risk);
  }
  for (const Link& link : network.links()) {
    if (!first) out << ',';
    first = false;
    AppendLinkFeature(out, network, link);
  }
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::Format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string NetworkToGeoJson(const Network& network, const PopScalarFn& risk) {
  std::ostringstream out;
  out << R"({"type":"FeatureCollection","features":[)";
  bool first = true;
  AppendNetworkFeatures(out, network, risk, first);
  out << "]}";
  return out.str();
}

std::string CorpusToGeoJson(const Corpus& corpus) {
  std::ostringstream out;
  out << R"({"type":"FeatureCollection","features":[)";
  bool first = true;
  for (const Network& network : corpus.networks()) {
    AppendNetworkFeatures(out, network, nullptr, first);
  }
  out << "]}";
  return out.str();
}

std::string PathToGeoJson(const Network& network,
                          const std::vector<std::size_t>& path,
                          const std::string& label) {
  if (path.empty()) throw InvalidArgument("PathToGeoJson: empty path");
  std::ostringstream out;
  out << R"({"type":"Feature","geometry":{"type":"LineString","coordinates":[)";
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out << ',';
    AppendCoordinate(out, network.pop(path[i]).location);
  }
  out << R"(]},"properties":{"label":")" << JsonEscape(label)
      << R"(","network":")" << JsonEscape(network.name()) << R"("}})";
  return out.str();
}

}  // namespace riskroute::topology
