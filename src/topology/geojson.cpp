#include "topology/geojson.h"

#include <cctype>
#include <map>
#include <sstream>
#include <string_view>
#include <utility>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::topology {
namespace {

void AppendCoordinate(std::ostringstream& out, const geo::GeoPoint& p) {
  // GeoJSON order is [longitude, latitude].
  out << '[' << util::Format("%.6f", p.longitude()) << ','
      << util::Format("%.6f", p.latitude()) << ']';
}

void AppendPopFeature(std::ostringstream& out, const Network& network,
                      std::size_t i, const PopScalarFn& risk) {
  const Pop& pop = network.pop(i);
  out << R"({"type":"Feature","geometry":{"type":"Point","coordinates":)";
  AppendCoordinate(out, pop.location);
  out << R"(},"properties":{"name":")" << JsonEscape(pop.name)
      << R"(","network":")" << JsonEscape(network.name())
      << R"(","kind":")" << ToString(network.kind()) << R"(","degree":)"
      << network.Neighbors(i).size();
  if (risk) {
    out << R"(,"risk":)" << util::Format("%.6g", risk(i));
  }
  out << "}}";
}

void AppendLinkFeature(std::ostringstream& out, const Network& network,
                       const Link& link) {
  out << R"({"type":"Feature","geometry":{"type":"LineString","coordinates":[)";
  AppendCoordinate(out, network.pop(link.a).location);
  out << ',';
  AppendCoordinate(out, network.pop(link.b).location);
  out << R"(]},"properties":{"network":")" << JsonEscape(network.name())
      << R"("}})";
}

void AppendNetworkFeatures(std::ostringstream& out, const Network& network,
                           const PopScalarFn& risk, bool& first) {
  for (std::size_t i = 0; i < network.pop_count(); ++i) {
    if (!first) out << ',';
    first = false;
    AppendPopFeature(out, network, i, risk);
  }
  for (const Link& link : network.links()) {
    if (!first) out << ',';
    first = false;
    AppendLinkFeature(out, network, link);
  }
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::Format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string NetworkToGeoJson(const Network& network, const PopScalarFn& risk) {
  std::ostringstream out;
  out << R"({"type":"FeatureCollection","features":[)";
  bool first = true;
  AppendNetworkFeatures(out, network, risk, first);
  out << "]}";
  return out.str();
}

std::string CorpusToGeoJson(const Corpus& corpus) {
  std::ostringstream out;
  out << R"({"type":"FeatureCollection","features":[)";
  bool first = true;
  for (const Network& network : corpus.networks()) {
    AppendNetworkFeatures(out, network, nullptr, first);
  }
  out << "]}";
  return out.str();
}

std::string PathToGeoJson(const Network& network,
                          const std::vector<std::size_t>& path,
                          const std::string& label) {
  if (path.empty()) throw InvalidArgument("PathToGeoJson: empty path");
  std::ostringstream out;
  out << R"({"type":"Feature","geometry":{"type":"LineString","coordinates":[)";
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out << ',';
    AppendCoordinate(out, network.pop(path[i]).location);
  }
  out << R"(]},"properties":{"label":")" << JsonEscape(label)
      << R"(","network":")" << JsonEscape(network.name()) << R"("}})";
  return out.str();
}

namespace {

/// Minimal JSON document model for the reader below. Objects keep
/// insertion order; lookups are linear (feature objects are tiny).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Recursive-descent JSON parser covering everything the GeoJSON writers
/// emit (and standard JSON generally); throws ParseError with a byte
/// offset on malformed input.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing content");
    return value;
  }

 private:
  JsonValue ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = ParseString();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = text_[pos_] == 't';
        Expect(v.boolean ? "true" : "false");
        return v;
      }
      case 'n':
        Expect("null");
        return {};
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') Fail("expected key");
      std::string key = ParseString();
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') Fail("expected ':'");
      ++pos_;
      v.object.emplace_back(std::move(key), ParseValue());
      SkipSpace();
      if (pos_ >= text_.size()) Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return v;
      }
      Fail("expected ',' or '}'");
    }
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      SkipSpace();
      if (pos_ >= text_.size()) Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return v;
      }
      Fail("expected ',' or ']'");
    }
  }

  std::string ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape digit");
            }
          }
          // The writers only \u-escape ASCII control characters; emit
          // anything in Latin-1 range as one byte, else a '?'.
          out.push_back(code < 0x100 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) Fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    const auto parsed = util::ParseDouble(text_.substr(start, pos_ - start));
    if (!parsed) Fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = *parsed;
    return v;
  }

  void Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) Fail("bad literal");
    pos_ += literal.size();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[noreturn]] void Fail(const char* what) const {
    throw ParseError(std::string("geojson: ") + what + " at byte " +
                     std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Network ParseGeoJsonNetwork(std::string_view text,
                            const GeoJsonNetworkOptions& options) {
  const JsonValue doc = JsonParser(text).ParseDocument();
  if (doc.kind != JsonValue::Kind::kObject) {
    throw ParseError("geojson: document is not an object");
  }
  const JsonValue* type = doc.Find("type");
  if (type == nullptr || type->str != "FeatureCollection") {
    throw ParseError("geojson: not a FeatureCollection");
  }
  const JsonValue* features = doc.Find("features");
  if (features == nullptr || features->kind != JsonValue::Kind::kArray) {
    throw ParseError("geojson: missing features array");
  }

  const auto coordinate = [](const JsonValue& pair) {
    if (pair.kind != JsonValue::Kind::kArray || pair.array.size() != 2 ||
        pair.array[0].kind != JsonValue::Kind::kNumber ||
        pair.array[1].kind != JsonValue::Kind::kNumber) {
      throw ParseError("geojson: coordinate is not a [lon, lat] pair");
    }
    // GeoJSON order is [longitude, latitude].
    const double lon = pair.array[0].number;
    const double lat = pair.array[1].number;
    if (!geo::IsValidLatLon(lat, lon)) {
      throw ParseError("geojson: coordinate out of range");
    }
    return geo::GeoPoint(lat, lon);
  };

  // Pass 1: PoPs (Point features) in document order, plus the network
  // name/kind carried on feature properties.
  std::string name = options.network_name;
  std::optional<NetworkKind> kind;
  struct PendingLink {
    geo::GeoPoint a;
    geo::GeoPoint b;
    PendingLink(const geo::GeoPoint& a_in, const geo::GeoPoint& b_in)
        : a(a_in), b(b_in) {}
  };
  std::vector<Pop> pops;
  std::vector<PendingLink> pending;
  for (const JsonValue& feature : features->array) {
    const JsonValue* geometry = feature.Find("geometry");
    if (geometry == nullptr) throw ParseError("geojson: feature without geometry");
    const JsonValue* gtype = geometry->Find("type");
    const JsonValue* coords = geometry->Find("coordinates");
    if (gtype == nullptr || coords == nullptr) {
      throw ParseError("geojson: geometry without type/coordinates");
    }
    const JsonValue* properties = feature.Find("properties");
    if (properties != nullptr) {
      if (name.empty()) {
        if (const JsonValue* net = properties->Find("network")) {
          name = net->str;
        }
      }
      if (!kind) {
        if (const JsonValue* k = properties->Find("kind")) {
          kind = ParseNetworkKind(k->str);
        }
      }
    }
    if (gtype->str == "Point") {
      std::string pop_name;
      if (properties != nullptr) {
        if (const JsonValue* n = properties->Find("name")) pop_name = n->str;
      }
      pops.push_back(Pop{std::move(pop_name), coordinate(*coords)});
    } else if (gtype->str == "LineString") {
      if (coords->kind != JsonValue::Kind::kArray || coords->array.size() < 2) {
        throw ParseError("geojson: LineString needs >= 2 coordinates");
      }
      for (std::size_t i = 1; i < coords->array.size(); ++i) {
        pending.emplace_back(coordinate(coords->array[i - 1]),
                             coordinate(coords->array[i]));
      }
    } else {
      throw ParseError("geojson: unsupported geometry type '" + gtype->str +
                       "'");
    }
  }
  if (pops.empty()) throw ParseError("geojson: no Point features");

  Network network(name.empty() ? "imported" : name,
                  kind.value_or(options.kind));
  // Both writer and reader render coordinates through the same %.6f
  // serialization, so link endpoints match their PoP bitwise; first
  // occurrence wins if two PoPs share a rounded location.
  std::map<std::pair<double, double>, std::size_t> index_of;
  for (Pop& pop : pops) {
    const auto key = std::make_pair(pop.location.latitude(),
                                    pop.location.longitude());
    const std::size_t index = network.AddPop(std::move(pop));
    index_of.emplace(key, index);
  }
  for (const PendingLink& link : pending) {
    const auto a = index_of.find({link.a.latitude(), link.a.longitude()});
    const auto b = index_of.find({link.b.latitude(), link.b.longitude()});
    if (a == index_of.end() || b == index_of.end()) {
      throw ParseError("geojson: link endpoint matches no PoP");
    }
    if (a->second == b->second) continue;  // degenerate after rounding
    network.AddLink(a->second, b->second);
  }
  return network;
}

}  // namespace riskroute::topology
