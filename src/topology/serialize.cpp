#include "topology/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::topology {
namespace {

[[noreturn]] void Fail(std::size_t line_no, const std::string& message) {
  throw ParseError(util::Format("corpus line %zu: %s", line_no, message.c_str()));
}

}  // namespace

void WriteCorpus(const Corpus& corpus, std::ostream& out) {
  out << "corpus v1\n";
  for (const Network& network : corpus.networks()) {
    out << "network " << network.name() << ' ' << ToString(network.kind())
        << '\n';
    for (std::size_t i = 0; i < network.pop_count(); ++i) {
      const Pop& pop = network.pop(i);
      out << "pop " << i << ' '
          << util::Format("%.6f %.6f ", pop.location.latitude(),
                          pop.location.longitude())
          << pop.name << '\n';
    }
    for (const Link& link : network.links()) {
      out << "link " << link.a << ' ' << link.b << '\n';
    }
  }
  for (const Peering& peering : corpus.peerings()) {
    out << "peering " << corpus.network(peering.a).name() << ' '
        << corpus.network(peering.b).name() << '\n';
  }
}

std::string CorpusToString(const Corpus& corpus) {
  std::ostringstream os;
  WriteCorpus(corpus, os);
  return os.str();
}

Corpus ReadCorpus(std::istream& in) {
  Corpus corpus;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  std::optional<std::size_t> current;  // network being populated

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> tokens = util::SplitWhitespace(trimmed);
    const std::string& keyword = tokens.front();

    if (!saw_header) {
      if (keyword != "corpus" || tokens.size() != 2 || tokens[1] != "v1") {
        Fail(line_no, "expected header 'corpus v1'");
      }
      saw_header = true;
      continue;
    }

    if (keyword == "network") {
      if (tokens.size() != 3) Fail(line_no, "expected 'network <name> <kind>'");
      const auto kind = ParseNetworkKind(tokens[2]);
      if (!kind) Fail(line_no, "unknown network kind: " + tokens[2]);
      current = corpus.AddNetwork(Network(tokens[1], *kind));
    } else if (keyword == "pop") {
      if (!current) Fail(line_no, "'pop' before any 'network'");
      if (tokens.size() < 5) {
        Fail(line_no, "expected 'pop <idx> <lat> <lon> <name>'");
      }
      const auto idx = util::ParseInt(tokens[1]);
      const auto lat = util::ParseDouble(tokens[2]);
      const auto lon = util::ParseDouble(tokens[3]);
      if (!idx || !lat || !lon) Fail(line_no, "malformed pop fields");
      Network& network = corpus.mutable_network(*current);
      if (static_cast<std::size_t>(*idx) != network.pop_count()) {
        Fail(line_no, util::Format("pop index %lld out of order (expected %zu)",
                                   *idx, network.pop_count()));
      }
      // Reassemble the (possibly multi-word) PoP name.
      std::vector<std::string> name_parts(tokens.begin() + 4, tokens.end());
      network.AddPop(Pop{util::Join(name_parts, " "),
                         geo::GeoPoint(*lat, *lon)});
    } else if (keyword == "link") {
      if (!current) Fail(line_no, "'link' before any 'network'");
      if (tokens.size() != 3) Fail(line_no, "expected 'link <a> <b>'");
      const auto a = util::ParseInt(tokens[1]);
      const auto b = util::ParseInt(tokens[2]);
      if (!a || !b || *a < 0 || *b < 0) Fail(line_no, "malformed link fields");
      try {
        corpus.mutable_network(*current).AddLink(static_cast<std::size_t>(*a),
                                                 static_cast<std::size_t>(*b));
      } catch (const InvalidArgument& e) {
        Fail(line_no, e.what());
      }
    } else if (keyword == "peering") {
      if (tokens.size() != 3) Fail(line_no, "expected 'peering <a> <b>'");
      const auto a = corpus.FindNetwork(tokens[1]);
      const auto b = corpus.FindNetwork(tokens[2]);
      if (!a || !b) Fail(line_no, "peering references unknown network");
      corpus.AddPeering(*a, *b);
    } else {
      Fail(line_no, "unknown keyword: " + keyword);
    }
  }
  if (!saw_header) throw ParseError("corpus: missing 'corpus v1' header");
  return corpus;
}

Corpus CorpusFromString(const std::string& text) {
  std::istringstream is(text);
  return ReadCorpus(is);
}

}  // namespace riskroute::topology
