// The multi-network study corpus: 23 ISPs plus their AS-level peering
// relationships (paper Section 4.1, Figure 2).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "topology/network.h"

namespace riskroute::topology {

/// An AS-level peering relationship between two networks (indices into the
/// corpus's network list). Undirected; stored with a < b.
struct Peering {
  std::size_t a = 0;
  std::size_t b = 0;
};

/// Owning collection of networks plus the AS peering graph.
class Corpus {
 public:
  Corpus() = default;

  /// Appends a network; returns its index. Names must be unique.
  std::size_t AddNetwork(Network network);

  /// Records an AS peering between distinct existing networks; duplicates
  /// are ignored.
  void AddPeering(std::size_t a, std::size_t b);

  [[nodiscard]] std::size_t network_count() const { return networks_.size(); }
  [[nodiscard]] const Network& network(std::size_t i) const;
  [[nodiscard]] Network& mutable_network(std::size_t i);
  [[nodiscard]] const std::vector<Network>& networks() const { return networks_; }
  [[nodiscard]] const std::vector<Peering>& peerings() const { return peerings_; }

  [[nodiscard]] std::optional<std::size_t> FindNetwork(std::string_view name) const;
  [[nodiscard]] bool ArePeers(std::size_t a, std::size_t b) const;

  /// Indices of peers of network `i`.
  [[nodiscard]] std::vector<std::size_t> PeersOf(std::size_t i) const;

  /// Indices of all networks of the given kind.
  [[nodiscard]] std::vector<std::size_t> NetworksOfKind(NetworkKind kind) const;

  /// Total PoPs across all networks.
  [[nodiscard]] std::size_t TotalPops() const;

 private:
  std::vector<Network> networks_;
  std::vector<Peering> peerings_;
};

}  // namespace riskroute::topology
