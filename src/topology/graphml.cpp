#include "topology/graphml.h"

#include <map>
#include <optional>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::topology {
namespace {

/// Minimal XML pull reader covering the GraphML subset: start/end tags
/// with double- or single-quoted attributes, self-closing tags, text
/// content, and skipped comments / processing instructions / CDATA.
class XmlReader {
 public:
  struct StartTag {
    std::string name;
    std::map<std::string, std::string> attributes;
    bool self_closing = false;
  };

  explicit XmlReader(std::string_view text) : text_(text) {}

  /// Advances to the next start tag; returns nullopt at end of input.
  /// End tags and text content are tracked internally.
  std::optional<StartTag> NextStartTag() {
    while (pos_ < text_.size()) {
      SkipUntil('<');
      if (pos_ >= text_.size()) return std::nullopt;
      if (Peek("<!--")) {
        SkipPast("-->");
        continue;
      }
      if (Peek("<?")) {
        SkipPast("?>");
        continue;
      }
      if (Peek("<![CDATA[")) {
        SkipPast("]]>");
        continue;
      }
      if (Peek("</")) {
        SkipPast(">");
        ++depth_closes_;
        continue;
      }
      return ParseStartTag();
    }
    return std::nullopt;
  }

  /// Text content between the current position and the next '<'.
  std::string ReadText() {
    const std::size_t start = pos_;
    const std::size_t lt = text_.find('<', start);
    const std::size_t end = lt == std::string_view::npos ? text_.size() : lt;
    return Unescape(util::Trim(text_.substr(start, end - start)));
  }

  /// Decodes the five predefined XML entities.
  static std::string Unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      const auto try_entity = [&](std::string_view entity, char ch) {
        if (raw.substr(i, entity.size()) == entity) {
          out.push_back(ch);
          i += entity.size();
          return true;
        }
        return false;
      };
      if (try_entity("&amp;", '&') || try_entity("&lt;", '<') ||
          try_entity("&gt;", '>') || try_entity("&quot;", '"') ||
          try_entity("&apos;", '\'')) {
        continue;
      }
      out.push_back(raw[i++]);
    }
    return out;
  }

 private:
  void SkipUntil(char c) {
    const std::size_t found = text_.find(c, pos_);
    pos_ = found == std::string_view::npos ? text_.size() : found;
  }

  void SkipPast(std::string_view marker) {
    const std::size_t found = text_.find(marker, pos_);
    if (found == std::string_view::npos) {
      throw ParseError("graphml: unterminated construct near offset " +
                       std::to_string(pos_));
    }
    pos_ = found + marker.size();
  }

  [[nodiscard]] bool Peek(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  StartTag ParseStartTag() {
    ++pos_;  // consume '<'
    StartTag tag;
    while (pos_ < text_.size() && !IsSpace(text_[pos_]) &&
           text_[pos_] != '>' && text_[pos_] != '/') {
      tag.name.push_back(text_[pos_++]);
    }
    if (tag.name.empty()) throw ParseError("graphml: empty tag name");
    while (pos_ < text_.size()) {
      while (pos_ < text_.size() && IsSpace(text_[pos_])) ++pos_;
      if (pos_ >= text_.size()) break;
      if (text_[pos_] == '>') {
        ++pos_;
        return tag;
      }
      if (text_[pos_] == '/') {
        SkipPast(">");
        tag.self_closing = true;
        return tag;
      }
      // attribute name
      std::string name;
      while (pos_ < text_.size() && text_[pos_] != '=' &&
             !IsSpace(text_[pos_])) {
        name.push_back(text_[pos_++]);
      }
      while (pos_ < text_.size() && (IsSpace(text_[pos_]) || text_[pos_] == '=')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        throw ParseError("graphml: malformed attribute near offset " +
                         std::to_string(pos_));
      }
      const char quote = text_[pos_++];
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        value.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        throw ParseError("graphml: unterminated attribute value");
      }
      ++pos_;  // closing quote
      tag.attributes[name] = Unescape(value);
    }
    throw ParseError("graphml: unterminated start tag");
  }

  static bool IsSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_closes_ = 0;
};

struct RawNode {
  std::string id;
  std::map<std::string, std::string> data;  // key id -> value
};

/// Encodes the five predefined XML entities (inverse of XmlReader::Unescape).
std::string XmlEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Network ParseGraphml(std::string_view text, const GraphmlOptions& options) {
  XmlReader reader(text);

  std::map<std::string, std::string> node_key_names;  // key id -> attr.name
  std::vector<RawNode> nodes;
  std::vector<std::pair<std::string, std::string>> edges;

  std::optional<RawNode> current_node;
  std::string pending_data_key;

  while (auto tag = reader.NextStartTag()) {
    if (tag->name == "key") {
      const auto domain = tag->attributes.find("for");
      if (domain != tag->attributes.end() && domain->second != "node") continue;
      const auto id = tag->attributes.find("id");
      const auto name = tag->attributes.find("attr.name");
      if (id != tag->attributes.end() && name != tag->attributes.end()) {
        node_key_names[id->second] = name->second;
      }
    } else if (tag->name == "node") {
      if (current_node) nodes.push_back(std::move(*current_node));
      current_node = RawNode{};
      const auto id = tag->attributes.find("id");
      if (id == tag->attributes.end()) {
        throw ParseError("graphml: <node> without id");
      }
      current_node->id = id->second;
      if (tag->self_closing) {
        nodes.push_back(std::move(*current_node));
        current_node.reset();
      }
    } else if (tag->name == "edge") {
      if (current_node) {
        nodes.push_back(std::move(*current_node));
        current_node.reset();
      }
      const auto source = tag->attributes.find("source");
      const auto target = tag->attributes.find("target");
      if (source == tag->attributes.end() || target == tag->attributes.end()) {
        throw ParseError("graphml: <edge> without source/target");
      }
      edges.emplace_back(source->second, target->second);
    } else if (tag->name == "data" && current_node) {
      const auto key = tag->attributes.find("key");
      if (key != tag->attributes.end() && !tag->self_closing) {
        current_node->data[key->second] = reader.ReadText();
      }
    }
  }
  if (current_node) nodes.push_back(std::move(*current_node));

  // Resolve which key ids carry latitude / longitude / label.
  std::string lat_key, lon_key, label_key;
  for (const auto& [id, name] : node_key_names) {
    if (name == options.latitude_attr) lat_key = id;
    if (name == options.longitude_attr) lon_key = id;
    if (name == options.label_attr) label_key = id;
  }
  if (lat_key.empty() || lon_key.empty()) {
    throw ParseError("graphml: no node keys named '" + options.latitude_attr +
                     "'/'" + options.longitude_attr + "'");
  }

  Network network(options.network_name, options.kind);
  std::map<std::string, std::size_t> index_of;  // graphml id -> pop index
  for (const RawNode& raw : nodes) {
    const auto lat_it = raw.data.find(lat_key);
    const auto lon_it = raw.data.find(lon_key);
    if (lat_it == raw.data.end() || lon_it == raw.data.end()) {
      continue;  // hyper node / unplaced node: dropped
    }
    const auto lat = util::ParseDouble(lat_it->second);
    const auto lon = util::ParseDouble(lon_it->second);
    if (!lat || !lon || !geo::IsValidLatLon(*lat, *lon)) continue;
    std::string name = raw.id;
    if (!label_key.empty()) {
      const auto label_it = raw.data.find(label_key);
      if (label_it != raw.data.end() && !label_it->second.empty()) {
        name = label_it->second;
      }
    }
    index_of[raw.id] =
        network.AddPop(Pop{std::move(name), geo::GeoPoint(*lat, *lon)});
  }
  if (network.pop_count() == 0) {
    throw ParseError("graphml: no nodes with usable coordinates");
  }
  for (const auto& [source, target] : edges) {
    const auto a = index_of.find(source);
    const auto b = index_of.find(target);
    if (a == index_of.end() || b == index_of.end() || a->second == b->second) {
      continue;  // edge touches a dropped node or is a self-loop
    }
    network.AddLink(a->second, b->second);
  }
  return network;
}

std::string WriteGraphml(const Network& network,
                         const GraphmlOptions& options) {
  std::string out;
  out += "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
  out += "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  out += "  <key id=\"d0\" for=\"node\" attr.name=\"" +
         XmlEscape(options.latitude_attr) + "\" attr.type=\"double\"/>\n";
  out += "  <key id=\"d1\" for=\"node\" attr.name=\"" +
         XmlEscape(options.longitude_attr) + "\" attr.type=\"double\"/>\n";
  out += "  <key id=\"d2\" for=\"node\" attr.name=\"" +
         XmlEscape(options.label_attr) + "\" attr.type=\"string\"/>\n";
  out += "  <graph edgedefault=\"undirected\">\n";
  for (std::size_t i = 0; i < network.pop_count(); ++i) {
    const Pop& pop = network.pop(i);
    // %.17g round-trips an IEEE double exactly through ParseDouble.
    out += "    <node id=\"n" + std::to_string(i) + "\">\n";
    out += "      <data key=\"d0\">" +
           util::Format("%.17g", pop.location.latitude()) + "</data>\n";
    out += "      <data key=\"d1\">" +
           util::Format("%.17g", pop.location.longitude()) + "</data>\n";
    out += "      <data key=\"d2\">" + XmlEscape(pop.name) + "</data>\n";
    out += "    </node>\n";
  }
  for (const Link& link : network.links()) {
    out += "    <edge source=\"n" + std::to_string(link.a) + "\" target=\"n" +
           std::to_string(link.b) + "\"/>\n";
  }
  out += "  </graph>\n";
  out += "</graphml>\n";
  return out;
}

}  // namespace riskroute::topology
