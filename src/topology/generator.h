// Deterministic synthetic corpus generator.
//
// Reproduces the *scale and geography* of the paper's ground-truth corpus
// (Internet Topology Zoo + Internet Atlas; Section 4.1): 7 Tier-1 networks
// totalling 354 PoPs and 16 regional networks totalling 455 PoPs in the
// continental US, with line-of-sight links and the Figure 2 AS peering
// relationships. PoPs are placed at real cities from the embedded
// gazetteer; when a geographically confined regional network needs more
// PoPs than its states have gazetteer cities, satellite towns are
// synthesized a few tens of miles from already-chosen anchors (real
// regional ISPs similarly serve secondary towns around their metro hubs).
//
// Link placement emulates real backbone construction: a Euclidean MST
// guarantees connectivity with short line-of-sight spans, extra
// nearest-neighbour links raise the average degree to a per-network
// target, and Tier-1 networks get long-haul express links between their
// hub cities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/corpus.h"
#include "util/rng.h"

namespace riskroute::topology {

/// Blueprint for one synthetic network.
struct NetworkSpec {
  std::string name;
  NetworkKind kind = NetworkKind::kRegional;
  std::size_t pop_count = 0;
  /// Allowed states (two-letter codes); empty means nationwide.
  std::vector<std::string> states;
  /// Cities that must appear as PoPs, as "Name|ST" pairs (used to anchor
  /// the paper's named case-study PoPs, e.g. Level3 Houston and Boston).
  std::vector<std::pair<std::string, std::string>> required_cities;
  /// Target mean link degree (>= ~2 keeps the graph usefully meshy).
  double degree_target = 2.4;
  /// Exponent applied to city population when sampling PoP sites; higher
  /// concentrates PoPs in large metros (Tier-1 behaviour).
  double population_bias = 0.7;
};

/// The 23 networks of the paper's evaluation (names, tiers, PoP counts,
/// and geographic footprints as described in Sections 4.1 and 7).
[[nodiscard]] std::vector<NetworkSpec> PaperNetworkSpecs();

/// The Figure 2 AS-peering relationships, as (network name, network name).
[[nodiscard]] std::vector<std::pair<std::string, std::string>> PaperPeerings();

/// Generates one network from its spec. Deterministic in `rng`'s state.
[[nodiscard]] Network GenerateNetwork(const NetworkSpec& spec, util::Rng& rng);

/// Generates the full 23-network corpus with Figure 2 peerings. The
/// default seed is the repository's reference corpus (the one every bench
/// and documented experiment uses).
[[nodiscard]] Corpus GeneratePaperCorpus(std::uint64_t seed = 123);

/// The paper specs scaled to a continental tier: every network's PoP count
/// is multiplied by `scale` (required cities and footprints preserved, so
/// the regional meshes densify in place around their metro anchors), and
/// `floor(scale) - 1` extra nationwide "ContinentalN" Tier-1 backbones
/// (capped at 8) are appended, drawing on the full gazetteer. `scale` must
/// be >= 1; `scale == 1` reproduces PaperNetworkSpecs() exactly.
[[nodiscard]] std::vector<NetworkSpec> ScaledNetworkSpecs(double scale);

/// Peerings for a scaled corpus: PaperPeerings() plus each continental
/// backbone peered with the Tier-1 anchors and chained to its predecessor.
[[nodiscard]] std::vector<std::pair<std::string, std::string>>
ScaledPeerings(double scale);

/// Generates a continental-scale corpus: ScaledNetworkSpecs(scale) grown
/// with the same per-network forked-RNG scheme as GeneratePaperCorpus, so
/// the result is deterministic in (scale, seed). Total PoP count is
/// roughly 809 * scale plus ~32 * scale per continental backbone; scale 7
/// clears 5k PoPs and scale 50 approaches 50k. Generation cost is
/// O(pops^2) per network (MST + densification), so the largest scales take
/// minutes — freeze the resulting engine to a snapshot rather than
/// regenerating. `GenerateScaledCorpus(1.0, seed)` is byte-identical to
/// `GeneratePaperCorpus(seed)`.
[[nodiscard]] Corpus GenerateScaledCorpus(double scale,
                                          std::uint64_t seed = 123);

}  // namespace riskroute::topology
