// GeoJSON export of networks, corpora and routes.
//
// Produces RFC 7946 FeatureCollections (PoPs as Point features, links and
// routed paths as LineString features) so results drop straight into any
// GIS viewer — the practical counterpart of the paper's map figures
// (Figs 1, 7, 9, 11).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "topology/corpus.h"
#include "topology/network.h"

namespace riskroute::topology {

/// Optional per-PoP scalar (e.g. o_h risk) added as a "risk" property.
using PopScalarFn = std::function<double(std::size_t pop_index)>;

/// One network as a FeatureCollection: one Point per PoP (properties:
/// name, network, degree, optional risk) and one LineString per link.
[[nodiscard]] std::string NetworkToGeoJson(
    const Network& network, const PopScalarFn& risk = nullptr);

/// The whole corpus: every network's features, each tagged with its
/// network name and kind; peerings are omitted (AS-level, not geographic).
[[nodiscard]] std::string CorpusToGeoJson(const Corpus& corpus);

/// A routed path over a network as a single LineString feature with a
/// "label" property ("riskroute", "shortest", ...).
[[nodiscard]] std::string PathToGeoJson(const Network& network,
                                        const std::vector<std::size_t>& path,
                                        const std::string& label);

/// Escapes a string for embedding in a JSON document.
[[nodiscard]] std::string JsonEscape(const std::string& text);

/// Options for ParseGeoJsonNetwork.
struct GeoJsonNetworkOptions {
  /// Network name; empty = take the "network" property of the first
  /// feature that carries one.
  std::string network_name;
  /// Fallback tier when no feature carries a "kind" property.
  NetworkKind kind = NetworkKind::kRegional;
};

/// Parses a FeatureCollection produced by NetworkToGeoJson back into a
/// Network: Point features become PoPs in document order, LineString
/// features become links with endpoints matched to PoP coordinates
/// (exact match on the parsed values, which is reliable because writer
/// and reader serialize both through the same %.6f rendering). Names and
/// topology round-trip exactly; coordinates at the writer's 1e-6
/// precision. Throws ParseError on malformed JSON, non-FeatureCollection
/// input, invalid coordinates, or a link endpoint matching no PoP.
[[nodiscard]] Network ParseGeoJsonNetwork(
    std::string_view text, const GeoJsonNetworkOptions& options = {});

}  // namespace riskroute::topology
