// Physical network infrastructure: PoPs and the links between them.
//
// Mirrors the paper's Section 4.1 model: a network is a set of
// Points-of-Presence with geographic coordinates, connected by undirected
// links placed line-of-sight (link length = great-circle miles between the
// endpoints' cities).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geo_point.h"

namespace riskroute::topology {

/// Tier of a network in the paper's corpus.
enum class NetworkKind { kTier1, kRegional };

[[nodiscard]] std::string_view ToString(NetworkKind kind);
[[nodiscard]] std::optional<NetworkKind> ParseNetworkKind(std::string_view s);

/// A Point-of-Presence: a named infrastructure location.
struct Pop {
  std::string name;      // "Houston, TX"
  geo::GeoPoint location;
};

/// Undirected link between two PoPs (indices into the owning network).
struct Link {
  std::size_t a = 0;
  std::size_t b = 0;
};

/// A single ISP's physical infrastructure. PoP indices are stable handles.
class Network {
 public:
  Network(std::string name, NetworkKind kind);

  /// Appends a PoP; returns its index.
  std::size_t AddPop(Pop pop);

  /// Adds an undirected link between existing distinct PoPs; duplicate
  /// links are ignored. Throws InvalidArgument on bad indices or a == b.
  void AddLink(std::size_t a, std::size_t b);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] NetworkKind kind() const { return kind_; }
  [[nodiscard]] std::size_t pop_count() const { return pops_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const Pop& pop(std::size_t i) const;
  [[nodiscard]] const std::vector<Pop>& pops() const { return pops_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Neighbours of PoP `i` (ascending index order).
  [[nodiscard]] const std::vector<std::size_t>& Neighbors(std::size_t i) const;

  [[nodiscard]] bool HasLink(std::size_t a, std::size_t b) const;

  /// Index of the PoP whose name matches exactly, if any.
  [[nodiscard]] std::optional<std::size_t> FindPop(std::string_view name) const;

  /// Index of the PoP geographically closest to `p` (linear scan; network
  /// PoP counts are at most a few hundred). Throws if the network is empty.
  [[nodiscard]] std::size_t NearestPop(const geo::GeoPoint& p) const;

  /// True when every PoP can reach every other over links.
  [[nodiscard]] bool IsConnected() const;

  /// Largest great-circle distance between any two PoPs — the paper's
  /// "geographic footprint" characteristic (Table 3).
  [[nodiscard]] double FootprintMiles() const;

  /// Mean link degree over PoPs — the paper's "average outdegree".
  [[nodiscard]] double AverageDegree() const;

  /// Total line-of-sight mileage over all links.
  [[nodiscard]] double TotalLinkMiles() const;

 private:
  std::string name_;
  NetworkKind kind_;
  std::vector<Pop> pops_;
  std::vector<Link> links_;
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace riskroute::topology
