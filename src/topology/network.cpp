#include "topology/network.h"

#include <algorithm>
#include <limits>

#include "geo/distance.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::topology {

std::string_view ToString(NetworkKind kind) {
  switch (kind) {
    case NetworkKind::kTier1:
      return "tier1";
    case NetworkKind::kRegional:
      return "regional";
  }
  throw InternalError("unknown NetworkKind");
}

std::optional<NetworkKind> ParseNetworkKind(std::string_view s) {
  if (s == "tier1") return NetworkKind::kTier1;
  if (s == "regional") return NetworkKind::kRegional;
  return std::nullopt;
}

Network::Network(std::string name, NetworkKind kind)
    : name_(std::move(name)), kind_(kind) {
  if (name_.empty()) throw InvalidArgument("Network requires a name");
}

std::size_t Network::AddPop(Pop pop) {
  pops_.push_back(std::move(pop));
  adjacency_.emplace_back();
  return pops_.size() - 1;
}

void Network::AddLink(std::size_t a, std::size_t b) {
  if (a >= pops_.size() || b >= pops_.size()) {
    throw InvalidArgument(util::Format(
        "link (%zu, %zu) out of range for %zu PoPs", a, b, pops_.size()));
  }
  if (a == b) throw InvalidArgument("self-links are not allowed");
  if (HasLink(a, b)) return;
  links_.push_back(Link{std::min(a, b), std::max(a, b)});
  adjacency_[a].insert(
      std::lower_bound(adjacency_[a].begin(), adjacency_[a].end(), b), b);
  adjacency_[b].insert(
      std::lower_bound(adjacency_[b].begin(), adjacency_[b].end(), a), a);
}

const Pop& Network::pop(std::size_t i) const {
  if (i >= pops_.size()) {
    throw InvalidArgument(util::Format("PoP index %zu out of range", i));
  }
  return pops_[i];
}

const std::vector<std::size_t>& Network::Neighbors(std::size_t i) const {
  if (i >= adjacency_.size()) {
    throw InvalidArgument(util::Format("PoP index %zu out of range", i));
  }
  return adjacency_[i];
}

bool Network::HasLink(std::size_t a, std::size_t b) const {
  if (a >= adjacency_.size() || b >= adjacency_.size()) return false;
  return std::binary_search(adjacency_[a].begin(), adjacency_[a].end(), b);
}

std::optional<std::size_t> Network::FindPop(std::string_view name) const {
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    if (pops_[i].name == name) return i;
  }
  return std::nullopt;
}

std::size_t Network::NearestPop(const geo::GeoPoint& p) const {
  if (pops_.empty()) throw InvalidArgument("NearestPop on empty network");
  std::size_t best = 0;
  double best_miles = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    const double miles = geo::GreatCircleMiles(p, pops_[i].location);
    if (miles < best_miles) {
      best_miles = miles;
      best = i;
    }
  }
  return best;
}

bool Network::IsConnected() const {
  if (pops_.size() <= 1) return true;
  std::vector<bool> seen(pops_.size(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (const std::size_t v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == pops_.size();
}

double Network::FootprintMiles() const {
  double best = 0.0;
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    for (std::size_t j = i + 1; j < pops_.size(); ++j) {
      best = std::max(best,
                      geo::GreatCircleMiles(pops_[i].location, pops_[j].location));
    }
  }
  return best;
}

double Network::AverageDegree() const {
  if (pops_.empty()) return 0.0;
  return 2.0 * static_cast<double>(links_.size()) /
         static_cast<double>(pops_.size());
}

double Network::TotalLinkMiles() const {
  double total = 0.0;
  for (const Link& link : links_) {
    total += geo::GreatCircleMiles(pops_[link.a].location, pops_[link.b].location);
  }
  return total;
}

}  // namespace riskroute::topology
