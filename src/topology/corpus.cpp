#include "topology/corpus.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::topology {

std::size_t Corpus::AddNetwork(Network network) {
  if (FindNetwork(network.name()).has_value()) {
    throw InvalidArgument("duplicate network name: " + network.name());
  }
  networks_.push_back(std::move(network));
  return networks_.size() - 1;
}

void Corpus::AddPeering(std::size_t a, std::size_t b) {
  if (a >= networks_.size() || b >= networks_.size()) {
    throw InvalidArgument(util::Format(
        "peering (%zu, %zu) out of range for %zu networks", a, b,
        networks_.size()));
  }
  if (a == b) throw InvalidArgument("self-peering is not allowed");
  if (ArePeers(a, b)) return;
  peerings_.push_back(Peering{std::min(a, b), std::max(a, b)});
}

const Network& Corpus::network(std::size_t i) const {
  if (i >= networks_.size()) {
    throw InvalidArgument(util::Format("network index %zu out of range", i));
  }
  return networks_[i];
}

Network& Corpus::mutable_network(std::size_t i) {
  if (i >= networks_.size()) {
    throw InvalidArgument(util::Format("network index %zu out of range", i));
  }
  return networks_[i];
}

std::optional<std::size_t> Corpus::FindNetwork(std::string_view name) const {
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (networks_[i].name() == name) return i;
  }
  return std::nullopt;
}

bool Corpus::ArePeers(std::size_t a, std::size_t b) const {
  const std::size_t lo = std::min(a, b);
  const std::size_t hi = std::max(a, b);
  return std::any_of(peerings_.begin(), peerings_.end(),
                     [&](const Peering& p) { return p.a == lo && p.b == hi; });
}

std::vector<std::size_t> Corpus::PeersOf(std::size_t i) const {
  std::vector<std::size_t> out;
  for (const Peering& p : peerings_) {
    if (p.a == i) out.push_back(p.b);
    if (p.b == i) out.push_back(p.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> Corpus::NetworksOfKind(NetworkKind kind) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (networks_[i].kind() == kind) out.push_back(i);
  }
  return out;
}

std::size_t Corpus::TotalPops() const {
  std::size_t total = 0;
  for (const Network& n : networks_) total += n.pop_count();
  return total;
}

}  // namespace riskroute::topology
