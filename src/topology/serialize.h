// Plain-text serialization of networks and corpora (".rrt" format).
//
// A human-editable, Topology-Zoo-inspired format so users can load their
// own ground-truth maps instead of the synthetic corpus:
//
//   corpus v1
//   network Level3 tier1
//   pop 0 29.7600 -95.3700 Houston, TX
//   pop 1 42.3600 -71.0600 Boston, MA
//   link 0 1
//   peering Level3 ATT
//
// Lines starting with '#' are comments. `pop` lines must precede the
// `link` lines that reference them; `peering` lines may appear anywhere
// after both networks are declared.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/corpus.h"

namespace riskroute::topology {

/// Serializes a corpus (networks, PoPs, links, peerings).
void WriteCorpus(const Corpus& corpus, std::ostream& out);
[[nodiscard]] std::string CorpusToString(const Corpus& corpus);

/// Parses the format above. Throws ParseError with a line number on any
/// malformed input.
[[nodiscard]] Corpus ReadCorpus(std::istream& in);
[[nodiscard]] Corpus CorpusFromString(const std::string& text);

}  // namespace riskroute::topology
