// Counter-based random number generation (Philox4x32-10, hand-rolled).
//
// The Monte Carlo ensemble engine (src/sim/ensemble.h) needs draws that
// are a pure function of (seed, stream): scenario k must sample exactly
// the same hazard event, footprint jitter and fragility coin flips no
// matter which worker thread evaluates it, in what order, or how many
// workers exist. A sequential engine like std::mt19937_64 cannot give
// that without serializing the draws; a counter-based generator can —
// the i-th 128-bit block is Philox(key = seed, counter = (stream, i)),
// a fixed-depth bijective mixing network with no carried state.
//
// This is the Philox4x32-10 round function of Salmon et al. (SC'11),
// implemented directly so the repository stays dependency-free. It is
// not cryptographic; it passes the statistical bar the simulator needs
// (decorrelated parallel streams, 2^64 blocks per stream).
#pragma once

#include <array>
#include <cstdint>

namespace riskroute::util {

/// One 128-bit Philox4x32-10 block: a pure function of (seed, stream,
/// block index). All callers observe the same bits for the same inputs.
[[nodiscard]] constexpr std::array<std::uint32_t, 4> PhiloxBlock(
    std::uint64_t seed, std::uint64_t stream, std::uint64_t block) {
  constexpr std::uint32_t kMul0 = 0xD2511F53u;
  constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

  std::uint32_t c0 = static_cast<std::uint32_t>(block);
  std::uint32_t c1 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t c2 = static_cast<std::uint32_t>(stream);
  std::uint32_t c3 = static_cast<std::uint32_t>(stream >> 32);
  std::uint32_t k0 = static_cast<std::uint32_t>(seed);
  std::uint32_t k1 = static_cast<std::uint32_t>(seed >> 32);

  for (int round = 0; round < 10; ++round) {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * c0;
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * c2;
    const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
    const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
    const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
    const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
    const std::uint32_t n0 = hi1 ^ c1 ^ k0;
    const std::uint32_t n2 = hi0 ^ c3 ^ k1;
    c0 = n0;
    c1 = lo1;
    c2 = n2;
    c3 = lo0;
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
  return {c0, c1, c2, c3};
}

/// Stateless-by-construction stream view over PhiloxBlock: a tiny cursor
/// that hands out the blocks of one (seed, stream) pair in order. Every
/// draw is still a pure function of (seed, stream, draw index) — copying
/// the cursor replays it, and independent cursors for the same pair
/// observe identical sequences on any thread.
class PhiloxRng {
 public:
  PhiloxRng(std::uint64_t seed, std::uint64_t stream)
      : seed_(seed), stream_(stream) {}

  [[nodiscard]] std::uint32_t NextU32() {
    if (pos_ == 4) {
      block_ = PhiloxBlock(seed_, stream_, counter_++);
      pos_ = 0;
    }
    return block_[pos_++];
  }

  [[nodiscard]] std::uint64_t NextU64() {
    const std::uint64_t hi = NextU32();
    return (hi << 32) | NextU32();
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double NextUniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextUniform();
  }

  /// Uniform index in [0, n); n must be positive. Fixed-point scaling
  /// (Lemire) rather than modulo: one multiply, bias < 2^-64 — and,
  /// unlike std::uniform_int_distribution, the mapping is pinned by this
  /// header, not by the standard library's implementation.
  [[nodiscard]] std::size_t NextIndex(std::size_t n) {
    __extension__ using Wide = unsigned __int128;
    return static_cast<std::size_t>((static_cast<Wide>(NextU64()) * n) >> 64);
  }

  /// Index draw from a cumulative weight table (inclusive prefix sums of
  /// non-negative weights; back() must be positive): inverse-CDF on one
  /// uniform draw. The deterministic stand-in for Rng::WeightedIndex.
  template <typename Cumulative>
  [[nodiscard]] std::size_t NextWeightedIndex(const Cumulative& cdf) {
    const double u = NextUniform() * cdf.back();
    std::size_t lo = 0;
    std::size_t hi = cdf.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t counter_ = 0;
  std::array<std::uint32_t, 4> block_{};
  int pos_ = 4;
};

}  // namespace riskroute::util
