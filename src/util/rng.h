// Deterministic random number generation.
//
// Every synthetic data set in this reproduction (topology corpus, census
// blocks, hazard catalogs) is produced from explicitly seeded generators so
// that tables, figures and tests are bit-for-bit reproducible across runs.
// A thin wrapper around std::mt19937_64 keeps seeding explicit and bundles
// the distributions we actually use.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace riskroute::util {

/// Deterministic RNG. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  [[nodiscard]] double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with the given rate (lambda).
  [[nodiscard]] double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Index draw from unnormalized non-negative weights. Requires at least
  /// one strictly positive weight.
  [[nodiscard]] std::size_t WeightedIndex(const std::vector<double>& weights) {
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  /// Derives an independent child generator; used to give each synthetic
  /// data set its own stream so adding draws to one does not perturb others.
  [[nodiscard]] Rng Fork(std::uint64_t stream) {
    // SplitMix64 finalizer over (next engine draw, stream id) decorrelates
    // the child from the parent stream.
    std::uint64_t x = engine_() ^ (stream * 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30; x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27; x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return Rng(x);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace riskroute::util
