// Error types shared across the RiskRoute library.
//
// Library code throws these (all derived from std::runtime_error /
// std::logic_error) on contract violations and malformed input. Per the
// C++ Core Guidelines (E.2, E.14), exceptions are reserved for errors;
// expected "not found" results use std::optional instead.
#pragma once

#include <stdexcept>
#include <string>

namespace riskroute {

/// Malformed external input: a topology file, an advisory text, a CSV row.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad index, invalid
/// coordinates, empty data set where at least one element is required).
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what)
      : std::invalid_argument(what) {}
};

/// An internal invariant failed; indicates a bug in this library.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// An operating-system I/O operation failed (socket bind, connect, file
/// write): the environment's fault, not the caller's or the library's.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace riskroute
