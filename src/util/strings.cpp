#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace riskroute::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<long long> ParseInt(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::string Format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace riskroute::util
