// rng.h is header-only; this translation unit exists so the library always
// has at least one object file per public header group and to catch ODR
// issues early.
#include "util/rng.h"

namespace riskroute::util {
static_assert(sizeof(Rng) > 0);
}  // namespace riskroute::util
