// Fixed-size thread pool for embarrassingly parallel sweeps.
//
// The provisioning analysis (Section 6.3 of the paper) evaluates an
// all-pairs shortest-path objective for every candidate link — thousands of
// independent Dijkstra sweeps. ParallelFor spreads those across hardware
// threads; everything else in the library is single-threaded by design.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace riskroute::util {

/// Minimal work-queue thread pool. Tasks are std::function<void()>; use
/// Submit for futures or ParallelFor for index ranges.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  [[nodiscard]] auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    std::size_t queued = 0;
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
      queued = queue_.size();
    }
    NoteSubmit(queued);
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();
  /// Metrics hook for Submit (task count + peak queue depth `queued`).
  static void NoteSubmit(std::size_t queued);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across the pool, blocking until all
/// iterations complete. Exceptions from body propagate (first one wins).
void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace riskroute::util
