// Small string utilities used by the parsers and formatters.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace riskroute::util {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on arbitrary whitespace runs, dropping empty tokens.
[[nodiscard]] std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading and trailing whitespace.
[[nodiscard]] std::string_view Trim(std::string_view text);

/// ASCII upper-casing (advisory texts are all-caps; we normalize inputs).
[[nodiscard]] std::string ToUpper(std::string_view text);
[[nodiscard]] std::string ToLower(std::string_view text);

[[nodiscard]] bool StartsWith(std::string_view text, std::string_view prefix);
[[nodiscard]] bool Contains(std::string_view text, std::string_view needle);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string Join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Locale-independent numeric parsing. Returns nullopt on any trailing
/// garbage or empty input (stricter than std::stod).
[[nodiscard]] std::optional<double> ParseDouble(std::string_view text);
[[nodiscard]] std::optional<long long> ParseInt(std::string_view text);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string Format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace riskroute::util
