// Minimal CSV reading/writing used by the bench harness to emit
// figure/table data, by catalog/census IO to load user archives, and by
// tests to round-trip generated data sets.
//
// Supports RFC-4180-style quoting: "..." with embedded commas, doubled
// quotes, and — in ReadCsv/ReadCsvResult — newlines inside quoted fields
// (a quoted record continues across physical lines), so everything
// EscapeCsvField can write reads back losslessly. All readers enforce
// the defensive limits in CsvLimits and report failures as structured
// ParseResult diagnostics; the legacy ParseCsvLine/ReadCsv entry points
// are thin shims that throw ParseError with the rendered diagnostic.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/parse_result.h"

namespace riskroute::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Defensive limits for untrusted CSV input. The defaults are generous
/// (far above anything this library writes) but finite, so a hostile
/// stream cannot drive unbounded allocation; exceeding one yields a
/// ParseErrorKind::kLimitExceeded diagnostic.
struct CsvLimits {
  std::size_t max_field_bytes = 1 << 20;    // 1 MiB per field
  std::size_t max_fields_per_row = 4096;    // columns per record
  std::size_t max_record_bytes = 4 << 20;   // one logical record (quoted
                                            // fields may span lines)
  std::size_t max_rows = 4 << 20;           // records per stream
};

/// Parses a single CSV record into fields. The input is one logical
/// record: a '\n' outside quotes is treated as an ordinary character
/// (callers that want multi-record parsing use ReadCsvResult). Fails
/// with kBadSyntax on an unterminated quoted field (the diagnostic
/// points at the opening quote) and kLimitExceeded past CsvLimits.
[[nodiscard]] ParseResult<CsvRow> ParseCsvLineResult(
    std::string_view line, const CsvLimits& limits = {});

/// Reads all records from a CSV stream. Quoted fields may contain
/// embedded newlines; a record only ends on a line break outside quotes.
/// Blank physical lines between records are skipped (no header handling;
/// callers skip row 0 themselves when appropriate). Records accepted and
/// rejects are counted under `ingest.csv.*`.
[[nodiscard]] ParseResult<std::vector<CsvRow>> ReadCsvResult(
    std::istream& in, const CsvLimits& limits = {});

/// Legacy shim over ParseCsvLineResult: throws ParseError on failure.
[[nodiscard]] CsvRow ParseCsvLine(std::string_view line);

/// Legacy shim over ReadCsvResult: throws ParseError on failure.
[[nodiscard]] std::vector<CsvRow> ReadCsv(std::istream& in);

/// Escapes a single field for CSV output (quotes it when needed).
[[nodiscard]] std::string EscapeCsvField(std::string_view field);

/// Streaming CSV writer. Write a header, then rows; fields are escaped.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const CsvRow& row);

  /// Convenience: writes a row of heterogeneous printable values.
  template <typename... Ts>
  void Write(const Ts&... fields) {
    CsvRow row;
    row.reserve(sizeof...(fields));
    (row.push_back(ToField(fields)), ...);
    WriteRow(row);
  }

 private:
  static std::string ToField(const std::string& s) { return s; }
  static std::string ToField(const char* s) { return s; }
  static std::string ToField(double v);
  static std::string ToField(int v) { return std::to_string(v); }
  static std::string ToField(long v) { return std::to_string(v); }
  static std::string ToField(long long v) { return std::to_string(v); }
  static std::string ToField(std::size_t v) { return std::to_string(v); }

  std::ostream& out_;
};

}  // namespace riskroute::util
