// Minimal CSV reading/writing used by the bench harness to emit
// figure/table data and by tests to round-trip generated data sets.
//
// Supports RFC-4180-style quoting ("..." with embedded commas and doubled
// quotes). Does not support embedded newlines inside quoted fields; the
// data this library emits never needs them.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace riskroute::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line into fields. Throws ParseError on an
/// unterminated quoted field.
[[nodiscard]] CsvRow ParseCsvLine(std::string_view line);

/// Escapes a single field for CSV output (quotes it when needed).
[[nodiscard]] std::string EscapeCsvField(std::string_view field);

/// Streaming CSV writer. Write a header, then rows; fields are escaped.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const CsvRow& row);

  /// Convenience: writes a row of heterogeneous printable values.
  template <typename... Ts>
  void Write(const Ts&... fields) {
    CsvRow row;
    row.reserve(sizeof...(fields));
    (row.push_back(ToField(fields)), ...);
    WriteRow(row);
  }

 private:
  static std::string ToField(const std::string& s) { return s; }
  static std::string ToField(const char* s) { return s; }
  static std::string ToField(double v);
  static std::string ToField(int v) { return std::to_string(v); }
  static std::string ToField(long v) { return std::to_string(v); }
  static std::string ToField(long long v) { return std::to_string(v); }
  static std::string ToField(std::size_t v) { return std::to_string(v); }

  std::ostream& out_;
};

/// Reads all rows from a CSV stream (no header handling; callers skip
/// row 0 themselves when appropriate).
[[nodiscard]] std::vector<CsvRow> ReadCsv(std::istream& in);

}  // namespace riskroute::util
