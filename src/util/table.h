// Console table renderer.
//
// The benchmark binaries print the reproduced paper tables/figures as
// aligned plain-text tables before running their timing sections; this
// keeps the "reproduction output" human-diffable against the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace riskroute::util {

/// Column-aligned text table. Collects rows, renders once.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Adds a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: heterogeneous row (strings, ints, doubles).
  template <typename... Ts>
  void Add(const Ts&... fields) {
    AddRow({ToCell(fields)...});
  }

  /// Renders with single-space-padded columns and a rule under the header.
  void Render(std::ostream& out) const;

  [[nodiscard]] std::string ToString() const;
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  static std::string ToCell(const std::string& s) { return s; }
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(double v);
  static std::string ToCell(int v) { return std::to_string(v); }
  static std::string ToCell(long v) { return std::to_string(v); }
  static std::string ToCell(long long v) { return std::to_string(v); }
  static std::string ToCell(unsigned v) { return std::to_string(v); }
  static std::string ToCell(std::size_t v) { return std::to_string(v); }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace riskroute::util
