#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace riskroute::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t workers = std::min(count, pool.thread_count());
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.Submit([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace riskroute::util
