#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"

namespace riskroute::util {
namespace {

/// Pool metrics — all volatile: task counts, queue depth, and latencies
/// depend on thread count and scheduling by nature.
struct PoolMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& tasks =
      reg.GetCounter("util.thread_pool.tasks", obs::Stability::kVolatile);
  obs::Gauge& queue_depth_peak = reg.GetGauge("util.thread_pool.queue_depth_peak",
                                              obs::Stability::kVolatile);
  obs::Gauge& workers =
      reg.GetGauge("util.thread_pool.workers", obs::Stability::kVolatile);
  obs::Histogram& task_ns = reg.GetTiming("util.thread_pool.task_ns");
  obs::Histogram& busy_ns = reg.GetTiming("util.thread_pool.worker_busy_ns");

  static PoolMetrics& Get() {
    static PoolMetrics metrics;
    return metrics;
  }
};

}  // namespace

void ThreadPool::NoteSubmit(std::size_t queued) {
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.tasks.Add(1);
  metrics.queue_depth_peak.SetMax(static_cast<std::int64_t>(queued));
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  PoolMetrics::Get().workers.Set(static_cast<std::int64_t>(threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = PoolMetrics::Get();
  std::uint64_t busy_ns = 0;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) break;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    const std::uint64_t t0 = obs::Enabled() ? obs::detail::NowNs() : 0;
    task();
    if (t0 != 0) {
      const std::uint64_t elapsed = obs::detail::NowNs() - t0;
      metrics.task_ns.Record(elapsed);
      busy_ns += elapsed;
    }
  }
  // Per-worker busy time, recorded once at shutdown.
  if (busy_ns != 0) metrics.busy_ns.Record(busy_ns);
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t workers = std::min(count, pool.thread_count());
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.Submit([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace riskroute::util
