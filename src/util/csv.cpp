#include "util/csv.h"

#include <istream>
#include <ostream>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::util {

CsvRow ParseCsvLine(std::string_view line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
    ++i;
  }
  if (in_quotes) {
    throw ParseError("unterminated quoted CSV field in line: " + std::string(line));
  }
  row.push_back(std::move(field));
  return row;
}

std::string EscapeCsvField(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::WriteRow(const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << EscapeCsvField(row[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::ToField(double v) { return Format("%.6g", v); }

std::vector<CsvRow> ReadCsv(std::istream& in) {
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

}  // namespace riskroute::util
