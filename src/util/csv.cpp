#include "util/csv.h"

#include <istream>
#include <ostream>
#include <utility>

#include "util/error.h"
#include "util/parse_result.h"
#include "util/strings.h"

namespace riskroute::util {
namespace {

constexpr std::string_view kSource = "csv";

ParseDiagnostic LimitError(std::string message, std::size_t line,
                           std::size_t column) {
  ingest::CountRejected(kSource, ParseErrorKind::kLimitExceeded);
  return ParseDiagnostic{ParseErrorKind::kLimitExceeded, std::move(message), 0,
                         line, column};
}

}  // namespace

ParseResult<CsvRow> ParseCsvLineResult(std::string_view line,
                                       const CsvLimits& limits) {
  if (line.size() > limits.max_record_bytes) {
    return LimitError(
        Format("CSV record of %zu bytes exceeds the %zu-byte limit",
               line.size(), limits.max_record_bytes),
        0, 0);
  }
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  std::size_t open_quote_col = 0;  // 1-based column of the opening quote
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
      open_quote_col = i + 1;
    } else if (c == ',') {
      if (row.size() + 1 > limits.max_fields_per_row) {
        return LimitError(Format("CSV record exceeds %zu fields",
                                 limits.max_fields_per_row),
                          0, i + 1);
      }
      row.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
    if (field.size() > limits.max_field_bytes) {
      return LimitError(Format("CSV field exceeds %zu bytes",
                               limits.max_field_bytes),
                        0, i + 1);
    }
  }
  if (in_quotes) {
    ingest::CountRejected(kSource, ParseErrorKind::kBadSyntax);
    return ParseResult<CsvRow>::Failure(
        ParseErrorKind::kBadSyntax, "unterminated quoted CSV field",
        open_quote_col == 0 ? 0 : open_quote_col - 1, 0, open_quote_col);
  }
  // The final field is committed outside the comma branch, so it needs
  // its own limit check ("a,b,c" under a 2-field limit ends here).
  if (row.size() + 1 > limits.max_fields_per_row) {
    return LimitError(Format("CSV record exceeds %zu fields",
                             limits.max_fields_per_row),
                      0, line.size());
  }
  row.push_back(std::move(field));
  ingest::CountAccepted(kSource);
  return row;
}

ParseResult<std::vector<CsvRow>> ReadCsvResult(std::istream& in,
                                               const CsvLimits& limits) {
  using Result = ParseResult<std::vector<CsvRow>>;
  std::vector<CsvRow> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;  // blank separator line
    const std::size_t record_line = line_no;
    CsvRow row;
    std::string field;
    bool in_quotes = false;
    std::size_t open_quote_line = 0, open_quote_col = 0;
    std::size_t record_bytes = 0;
    for (bool record_done = false; !record_done;) {
      record_bytes += line.size() + 1;
      if (record_bytes > limits.max_record_bytes) {
        return LimitError(
            Format("CSV record exceeds the %zu-byte limit",
                   limits.max_record_bytes),
            record_line, 0);
      }
      const std::size_t n = line.size();
      for (std::size_t i = 0; i < n; ++i) {
        const char c = line[i];
        if (in_quotes) {
          // Inside quotes every character is content — including '\r',
          // so "\r\n" written by EscapeCsvField reads back exactly.
          if (c == '"') {
            if (i + 1 < n && line[i + 1] == '"') {
              field.push_back('"');
              ++i;
            } else {
              in_quotes = false;
            }
          } else {
            field.push_back(c);
          }
        } else if (c == '"') {
          in_quotes = true;
          open_quote_line = line_no;
          open_quote_col = i + 1;
        } else if (c == ',') {
          if (row.size() + 1 > limits.max_fields_per_row) {
            return LimitError(Format("CSV record exceeds %zu fields",
                                     limits.max_fields_per_row),
                              line_no, i + 1);
          }
          row.push_back(std::move(field));
          field.clear();
        } else if (c == '\r' && i + 1 == n) {
          // CRLF line terminator outside quotes.
        } else {
          field.push_back(c);
        }
        if (field.size() > limits.max_field_bytes) {
          return LimitError(Format("CSV field exceeds %zu bytes",
                                   limits.max_field_bytes),
                            line_no, i + 1);
        }
      }
      if (in_quotes) {
        // The quoted field continues on the next physical line.
        if (!std::getline(in, line)) {
          ingest::CountRejected(kSource, ParseErrorKind::kBadSyntax);
          return Result::Failure(ParseErrorKind::kBadSyntax,
                                 "unterminated quoted CSV field", 0,
                                 open_quote_line, open_quote_col);
        }
        ++line_no;
        field.push_back('\n');
      } else {
        record_done = true;
      }
    }
    if (row.size() + 1 > limits.max_fields_per_row) {
      return LimitError(Format("CSV record exceeds %zu fields",
                               limits.max_fields_per_row),
                        record_line, 0);
    }
    row.push_back(std::move(field));
    if (rows.size() + 1 > limits.max_rows) {
      return LimitError(Format("CSV stream exceeds %zu records",
                               limits.max_rows),
                        line_no, 0);
    }
    rows.push_back(std::move(row));
  }
  ingest::CountAccepted(kSource, rows.size());
  return rows;
}

CsvRow ParseCsvLine(std::string_view line) {
  return ParseCsvLineResult(line).ValueOrThrow();
}

std::vector<CsvRow> ReadCsv(std::istream& in) {
  return ReadCsvResult(in).ValueOrThrow();
}

std::string EscapeCsvField(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::WriteRow(const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << EscapeCsvField(row[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::ToField(double v) { return Format("%.6g", v); }

}  // namespace riskroute::util
