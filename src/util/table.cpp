#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw InvalidArgument("Table requires at least one column");
}

void Table::AddRow(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw InvalidArgument(Format("Table row arity %zu != header arity %zu",
                                 row.size(), headers_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::ToCell(double v) { return Format("%.4f", v); }

void Table::Render(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      if (c + 1 != row.size()) out << "  ";
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  out << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::ToString() const {
  std::ostringstream os;
  Render(os);
  return os.str();
}

}  // namespace riskroute::util
