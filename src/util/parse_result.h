// Structured parse errors for the ingestion boundary.
//
// Every parser that consumes untrusted text (advisory bulletins, catalog
// and census CSVs, CLI arguments) returns ParseResult<T>: either the
// parsed value or a ParseDiagnostic carrying a machine-readable error
// kind plus the byte offset / line / column where parsing failed. The
// fuzz harnesses under fuzz/ drive these entry points directly — a
// hostile input must surface as a diagnostic, never as an uncaught
// exception, signed-overflow UB, or an unbounded allocation.
//
// Call sites that predate this layer keep their throwing contract via
// thin shims (ParseCsvLine, ParseAdvisory, ReadCatalogsCsv, ...) built on
// ValueOrThrow(), which renders the diagnostic into the ParseError
// message. New code should prefer the *Result entry points.
//
// Accepted/rejected record counts are exported through the PR-3 metrics
// registry under `ingest.<source>.*` (see IngestCounter below); parsing
// is deterministic, so the counters land in the "stable" section of the
// metrics export.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::util {

/// Machine-readable failure category. Kept deliberately coarse: callers
/// branch on the kind (and metrics bucket by it); the human detail lives
/// in ParseDiagnostic::message.
enum class ParseErrorKind {
  kEmptyInput,     // nothing to parse where content is required
  kBadSyntax,      // structurally malformed (unterminated quote, bad row)
  kBadHeader,      // header row missing or unexpected
  kBadNumber,      // a numeric field failed to parse
  kBadValue,       // parsed, but semantically invalid (range, enum, NaN)
  kMissingField,   // a required field is absent
  kLimitExceeded,  // a defensive size/row/length limit was hit
  kUnknownOption,  // undeclared command-line flag
  kMissingValue,   // a flag that takes a value got none
};

/// Stable token for metric names and rendered diagnostics.
[[nodiscard]] constexpr const char* ToString(ParseErrorKind kind) {
  switch (kind) {
    case ParseErrorKind::kEmptyInput: return "empty_input";
    case ParseErrorKind::kBadSyntax: return "bad_syntax";
    case ParseErrorKind::kBadHeader: return "bad_header";
    case ParseErrorKind::kBadNumber: return "bad_number";
    case ParseErrorKind::kBadValue: return "bad_value";
    case ParseErrorKind::kMissingField: return "missing_field";
    case ParseErrorKind::kLimitExceeded: return "limit_exceeded";
    case ParseErrorKind::kUnknownOption: return "unknown_option";
    case ParseErrorKind::kMissingValue: return "missing_value";
  }
  return "unknown";
}

/// Where and why a parse failed. line/column are 1-based; 0 means the
/// position axis does not apply (token streams, argv).
struct ParseDiagnostic {
  ParseErrorKind kind = ParseErrorKind::kBadSyntax;
  std::string message;
  std::size_t byte_offset = 0;
  std::size_t line = 0;
  std::size_t column = 0;

  /// "unterminated quoted field (line 3, column 7) [bad_syntax]"
  [[nodiscard]] std::string Render() const {
    std::string out = message;
    if (line != 0) {
      out += Format(" (line %zu", line);
      if (column != 0) out += Format(", column %zu", column);
      out += ")";
    }
    out += " [";
    out += ToString(kind);
    out += "]";
    return out;
  }
};

/// std::expected-style value-or-diagnostic. Implicitly constructible from
/// either side so parsers can `return row;` / `return diag;` directly.
template <typename T>
class [[nodiscard]] ParseResult {
 public:
  ParseResult(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  ParseResult(ParseDiagnostic diag)
      : state_(std::in_place_index<1>, std::move(diag)) {}

  /// Shorthand for the failure side.
  [[nodiscard]] static ParseResult Failure(ParseErrorKind kind,
                                           std::string message,
                                           std::size_t byte_offset = 0,
                                           std::size_t line = 0,
                                           std::size_t column = 0) {
    return ParseResult(ParseDiagnostic{kind, std::move(message), byte_offset,
                                       line, column});
  }

  [[nodiscard]] bool ok() const { return state_.index() == 0; }
  [[nodiscard]] explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() {
    Require(ok(), "ParseResult::value() on an error result");
    return std::get<0>(state_);
  }
  [[nodiscard]] const T& value() const {
    Require(ok(), "ParseResult::value() on an error result");
    return std::get<0>(state_);
  }

  [[nodiscard]] const ParseDiagnostic& error() const {
    Require(!ok(), "ParseResult::error() on a success result");
    return std::get<1>(state_);
  }

  /// Bridges to the legacy throwing contract: the value, or ParseError
  /// with the rendered diagnostic as its message.
  [[nodiscard]] T ValueOrThrow() && {
    if (!ok()) throw ParseError(std::get<1>(state_).Render());
    return std::move(std::get<0>(state_));
  }
  [[nodiscard]] const T& ValueOrThrow() const& {
    if (!ok()) throw ParseError(std::get<1>(state_).Render());
    return std::get<0>(state_);
  }

 private:
  static void Require(bool condition, const char* what) {
    if (!condition) throw InternalError(what);
  }

  std::variant<T, ParseDiagnostic> state_;
};

namespace ingest {

/// Counter `ingest.<source>.<metric>` in the global registry. Parsing is
/// a pure function of the input bytes, so these are Stability::kStable.
[[nodiscard]] inline obs::Counter& IngestCounter(std::string_view source,
                                                 std::string_view metric) {
  std::string name = "ingest.";
  name += source;
  name += '.';
  name += metric;
  return obs::MetricsRegistry::Global().GetCounter(name);
}

/// Records `n` accepted records for `source` (e.g. "csv", "advisory").
inline void CountAccepted(std::string_view source, std::uint64_t n = 1) {
  if (!obs::Enabled()) return;
  IngestCounter(source, "accepted").Add(n);
}

/// Records one rejected parse for `source`, bucketed by error kind:
/// `ingest.<source>.rejects.<kind>`.
inline void CountRejected(std::string_view source, ParseErrorKind kind) {
  if (!obs::Enabled()) return;
  std::string metric = "rejects.";
  metric += ToString(kind);
  IngestCounter(source, metric).Add(1);
}

}  // namespace ingest
}  // namespace riskroute::util
