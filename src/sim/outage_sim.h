// Monte-Carlo outage simulation.
//
// End-to-end validation of the bit-risk metric: if o_h really predicts
// where disasters strike, then routes that minimize bit-risk miles should
// traverse disaster-stricken PoPs less often than geographic shortest
// paths do. Each trial samples a disaster event from the historical
// catalogs (so the event geography matches the risk model's training
// data), disables every PoP inside the event's damage radius, and measures
// the traffic volume whose precomputed path crossed a disabled PoP —
// separately for shortest-path routing and RiskRoute routing. The paper
// motivates exactly this comparison qualitatively (Sections 1 and 5);
// the simulator quantifies it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "hazard/catalog.h"
#include "sim/traffic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace riskroute::sim {

/// Physical damage footprint per hazard class (statute miles). Rough
/// figures consistent with the events' phenomenology: hurricanes devastate
/// wide swaths, tornadoes and localized wind events narrow tracks.
[[nodiscard]] double DefaultDamageRadiusMiles(hazard::HazardType type);

/// Simulation configuration.
struct OutageSimOptions {
  std::size_t trials = 2000;
  std::uint64_t seed = 2024;
  core::RiskParams params{1e5, 0.0};
  /// Override the per-type damage radius; <= 0 keeps the default.
  double damage_radius_miles = 0.0;
};

/// Aggregate outcome over all trials.
struct OutageSimReport {
  std::size_t trials = 0;
  /// Mean fraction of traffic whose *transit* path crossed a disabled PoP
  /// (endpoint loss excluded — no routing can save a dead endpoint).
  double shortest_path_affected = 0.0;
  double riskroute_affected = 0.0;
  /// Mean fraction of traffic whose endpoints were themselves disabled
  /// (identical for both routings; reported for context).
  double endpoint_loss = 0.0;
  /// Mean number of PoPs disabled per event.
  double mean_pops_disabled = 0.0;

  /// riskroute_affected / shortest_path_affected (1.0 when both zero);
  /// < 1 means risk-aware routing dodged damage.
  [[nodiscard]] double AffectedRatio() const;
};

/// Runs the simulation over a network graph. Paths for every PoP pair are
/// precomputed once per routing scheme; each trial then only samples an
/// event and marks disabled PoPs. Throws on an empty catalog list.
[[nodiscard]] OutageSimReport RunOutageSimulation(
    const core::RiskGraph& graph, const std::vector<hazard::Catalog>& catalogs,
    const TrafficMatrix& traffic, const OutageSimOptions& options = {},
    util::ThreadPool* pool = nullptr);

}  // namespace riskroute::sim
