#include "sim/triage.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>

#include "hazard/seasonal.h"
#include "obs/metrics.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/philox.h"

namespace riskroute::sim {
namespace {

constexpr std::size_t kFeatureDim = 6;
/// XORed into the engine seed for the keep/drop coins so the selection
/// stream never replays the footprint stream of Draw(k).
constexpr std::uint64_t kSelectSalt = 0x9E3779B97F4A7C15ull;
/// Strata with at most this many sampled-lane members are kept whole:
/// the exact work is negligible and the variance of a sparse stratum is
/// not.
constexpr std::size_t kWholeStratumLimit = 32;

/// Triage metrics, resolved once per process. Counters are pure
/// functions of (engine, options, universe), so they land in the
/// bitwise-stable export section; only the wall-clock timing is
/// volatile.
struct TriageMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& universe = reg.GetCounter("ensemble.triage.universe");
  obs::Counter& empty_scenarios =
      reg.GetCounter("ensemble.triage.empty_scenarios");
  obs::Counter& pilot_exact = reg.GetCounter("ensemble.triage.pilot_exact");
  obs::Counter& audit_exact = reg.GetCounter("ensemble.triage.audit_exact");
  obs::Counter& flagged_exact =
      reg.GetCounter("ensemble.triage.flagged_exact");
  obs::Counter& sampled_exact =
      reg.GetCounter("ensemble.triage.sampled_exact");
  obs::Counter& skipped = reg.GetCounter("ensemble.triage.skipped");
  obs::Counter& exact_evaluations =
      reg.GetCounter("ensemble.triage.exact_evaluations");
  obs::Histogram& run_ns = reg.GetTiming("ensemble.triage.run_ns");

  static TriageMetrics& Get() {
    static TriageMetrics metrics;
    return metrics;
  }
};

void Dispatch(util::ThreadPool* pool, std::size_t count,
              const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    util::ParallelFor(*pool, count, body);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }
}

/// Shortest-double round trip: every finite double survives %.17g.
void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Footprint-size bucket of the stratification: empty footprints never
/// reach the sampler, so buckets split the non-empty range.
std::size_t SizeBucket(std::size_t failed_pops) {
  if (failed_pops <= 2) return 0;
  if (failed_pops <= 8) return 1;
  if (failed_pops <= 32) return 2;
  return 3;
}

/// Ridge regression on standardized features with a centered target:
/// solves (Z^T Z + lambda * p * I) beta = Z^T (y - ybar) by Gaussian
/// elimination with partial pivoting (6x6, deterministic). Prediction is
/// ybar + beta . z.
struct Surrogate {
  std::array<double, kFeatureDim> mu{};
  std::array<double, kFeatureDim> sd{};
  std::array<double, kFeatureDim> beta{};
  double intercept = 0.0;
  double residual_sd = 0.0;
  double r2 = 0.0;

  [[nodiscard]] double Predict(
      const TriagedEnsemble::Features& f) const {
    const std::array<double, kFeatureDim> raw = {
        f.radius_miles, f.failed_pops,    f.score_mass,
        f.failed_links, f.usage_rank_sum, f.season};
    double y = intercept;
    for (std::size_t j = 0; j < kFeatureDim; ++j) {
      if (sd[j] > 0.0) y += beta[j] * ((raw[j] - mu[j]) / sd[j]);
    }
    return y;
  }
};

Surrogate FitSurrogate(const std::vector<TriagedEnsemble::Features>& rows,
                       const std::vector<double>& targets, double lambda) {
  Surrogate fit;
  const std::size_t p = rows.size();
  if (p == 0) return fit;
  const auto raw = [&](std::size_t i, std::size_t j) {
    const TriagedEnsemble::Features& f = rows[i];
    const double values[kFeatureDim] = {f.radius_miles, f.failed_pops,
                                        f.score_mass,   f.failed_links,
                                        f.usage_rank_sum, f.season};
    return values[j];
  };
  for (std::size_t j = 0; j < kFeatureDim; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < p; ++i) sum += raw(i, j);
    fit.mu[j] = sum / static_cast<double>(p);
    double ss = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      const double d = raw(i, j) - fit.mu[j];
      ss += d * d;
    }
    fit.sd[j] = std::sqrt(ss / static_cast<double>(p));
  }
  double ybar = 0.0;
  for (const double y : targets) ybar += y;
  ybar /= static_cast<double>(p);
  fit.intercept = ybar;

  const auto z = [&](std::size_t i, std::size_t j) {
    return fit.sd[j] > 0.0 ? (raw(i, j) - fit.mu[j]) / fit.sd[j] : 0.0;
  };
  // Normal equations, accumulated in fixed pilot order.
  double a[kFeatureDim][kFeatureDim] = {};
  double b[kFeatureDim] = {};
  for (std::size_t i = 0; i < p; ++i) {
    const double yc = targets[i] - ybar;
    for (std::size_t j = 0; j < kFeatureDim; ++j) {
      const double zj = z(i, j);
      b[j] += zj * yc;
      for (std::size_t k = j; k < kFeatureDim; ++k) a[j][k] += zj * z(i, k);
    }
  }
  const double penalty =
      std::max(lambda, 1e-12) * static_cast<double>(p);
  for (std::size_t j = 0; j < kFeatureDim; ++j) {
    for (std::size_t k = 0; k < j; ++k) a[j][k] = a[k][j];
    a[j][j] += penalty;
  }
  // Gaussian elimination with partial pivoting.
  std::array<std::size_t, kFeatureDim> perm{};
  for (std::size_t j = 0; j < kFeatureDim; ++j) perm[j] = j;
  for (std::size_t col = 0; col < kFeatureDim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < kFeatureDim; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < kFeatureDim; ++k) {
        std::swap(a[col][k], a[pivot][k]);
      }
      std::swap(b[col], b[pivot]);
    }
    if (a[col][col] == 0.0) continue;  // ridge makes this unreachable
    for (std::size_t r = col + 1; r < kFeatureDim; ++r) {
      const double factor = a[r][col] / a[col][col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < kFeatureDim; ++k) {
        a[r][k] -= factor * a[col][k];
      }
      b[r] -= factor * b[col];
    }
  }
  for (std::size_t col = kFeatureDim; col-- > 0;) {
    double acc = b[col];
    for (std::size_t k = col + 1; k < kFeatureDim; ++k) {
      acc -= a[col][k] * fit.beta[k];
    }
    fit.beta[col] = a[col][col] != 0.0 ? acc / a[col][col] : 0.0;
  }

  double sse = 0.0;
  double sst = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    const double pred = fit.Predict(rows[i]);
    const double err = targets[i] - pred;
    sse += err * err;
    const double dc = targets[i] - ybar;
    sst += dc * dc;
  }
  const std::size_t dof = p > kFeatureDim + 1 ? p - kFeatureDim - 1 : 1;
  fit.residual_sd = std::sqrt(sse / static_cast<double>(dof));
  fit.r2 = sst > 0.0 ? 1.0 - sse / sst : 0.0;
  return fit;
}

enum class Lane : std::uint8_t {
  kEmpty,
  kPilot,
  kAudit,
  kFlagged,
  kSampled,
  kSkipped,
};

}  // namespace

TriagedEnsemble::TriagedEnsemble(const EnsembleEngine& engine,
                                 const TriageOptions& options)
    : engine_(&engine), options_(options) {
  if (options_.pilot == 0) {
    throw InvalidArgument("TriagedEnsemble: pilot must be positive");
  }
  if (options_.audit_stride == 0) {
    throw InvalidArgument("TriagedEnsemble: audit_stride must be positive");
  }
  if (!(options_.base_rate > 0.0) || !(options_.base_rate <= 1.0)) {
    throw InvalidArgument("TriagedEnsemble: base_rate must be in (0, 1]");
  }
  if (!(options_.min_rate > 0.0) ||
      !(options_.min_rate <= options_.base_rate)) {
    throw InvalidArgument(
        "TriagedEnsemble: min_rate must be in (0, base_rate]");
  }
  if (!(options_.impact_quantile > 0.0) ||
      !(options_.impact_quantile < 1.0)) {
    throw InvalidArgument(
        "TriagedEnsemble: impact_quantile must be in (0, 1)");
  }
  if (!(options_.uncertainty_margin >= 0.0) ||
      options_.uncertainty_margin > std::numeric_limits<double>::max()) {
    throw InvalidArgument(
        "TriagedEnsemble: uncertainty_margin must be finite and >= 0");
  }
  if (!(options_.ridge_lambda >= 0.0) ||
      options_.ridge_lambda > std::numeric_limits<double>::max()) {
    throw InvalidArgument(
        "TriagedEnsemble: ridge_lambda must be finite and >= 0");
  }
}

TriagedEnsemble::Features TriagedEnsemble::FeaturesFor(
    const Scenario& scenario) const {
  Features f;
  f.radius_miles = scenario.radius_miles;
  f.failed_pops = static_cast<double>(scenario.failed_nodes.size());
  f.season = static_cast<double>(
      static_cast<int>(hazard::SeasonOfMonth(scenario.event_month)));
  f.empty =
      scenario.failed_nodes.empty() && scenario.severed_edges.empty();
  if (f.empty) return f;

  const core::RouteEngine& route = engine_->route_engine();
  for (const std::size_t v : scenario.failed_nodes) {
    f.score_mass += route.NodeScore(v);
  }
  // The frozen links this footprint takes out (severed spans plus edges
  // incident to a failed node), deduplicated exactly as Evaluate does.
  std::vector<std::uint32_t> failed_edges;
  for (const std::size_t v : scenario.failed_nodes) {
    for (std::uint32_t id = engine_->EdgeRowBegin(v);
         id < engine_->EdgeRowEnd(v); ++id) {
      failed_edges.push_back(id);
    }
    for (std::uint32_t id = 0; id < engine_->EdgeRowBegin(v); ++id) {
      if (engine_->edge(id).b == v) failed_edges.push_back(id);
    }
  }
  failed_edges.insert(failed_edges.end(), scenario.severed_edges.begin(),
                      scenario.severed_edges.end());
  std::sort(failed_edges.begin(), failed_edges.end());
  failed_edges.erase(std::unique(failed_edges.begin(), failed_edges.end()),
                     failed_edges.end());
  const std::span<const std::uint32_t> usage =
      engine_->baseline_edge_usage();
  f.failed_links = static_cast<double>(failed_edges.size());
  for (const std::uint32_t id : failed_edges) {
    f.usage_rank_sum += static_cast<double>(usage[id]);
  }
  return f;
}

TriagedReport TriagedEnsemble::Run(util::ThreadPool* pool) const {
  std::vector<std::uint64_t> ids(engine_->options().scenarios);
  for (std::size_t k = 0; k < ids.size(); ++k) ids[k] = k;
  return Run(ids, pool);
}

TriagedReport TriagedEnsemble::Run(std::span<const std::uint64_t> ids,
                                   util::ThreadPool* pool) const {
  TriageMetrics& metrics = TriageMetrics::Get();
  obs::ScopedTimer timer(metrics.run_ns);
  if (ids.empty()) {
    throw InvalidArgument("TriagedEnsemble: empty universe");
  }

  // The universe in ascending id order: lane assignment, sampling and
  // the reduction are defined over the sorted set, so any permutation of
  // `ids` produces the same report bitwise.
  std::vector<std::uint64_t> universe(ids.begin(), ids.end());
  std::sort(universe.begin(), universe.end());
  if (std::adjacent_find(universe.begin(), universe.end()) !=
      universe.end()) {
    throw InvalidArgument("TriagedEnsemble: duplicate scenario id");
  }
  const std::size_t n = universe.size();

  // Stage 1 — deterministic features for every id, per-slot parallel.
  std::vector<Features> features(n);
  Dispatch(pool, n, [&](std::size_t s) {
    features[s] = FeaturesFor(engine_->Draw(universe[s]));
  });

  // Stage 2 — pilot lane: the first `pilot` non-empty ids, evaluated
  // exactly and used to fit the surrogate.
  std::vector<std::size_t> pilot_slots;
  for (std::size_t s = 0; s < n && pilot_slots.size() < options_.pilot;
       ++s) {
    if (!features[s].empty) pilot_slots.push_back(s);
  }
  std::vector<std::uint64_t> pilot_ids;
  pilot_ids.reserve(pilot_slots.size());
  for (const std::size_t s : pilot_slots) pilot_ids.push_back(universe[s]);
  const std::vector<ScenarioOutcome> pilot_outcomes =
      engine_->EvaluateScenarios(pilot_ids, pool);

  std::vector<Features> pilot_rows;
  std::vector<double> pilot_targets;
  pilot_rows.reserve(pilot_slots.size());
  for (std::size_t i = 0; i < pilot_slots.size(); ++i) {
    pilot_rows.push_back(features[pilot_slots[i]]);
    pilot_targets.push_back(pilot_outcomes[i].delta_bit_risk_miles);
  }
  const Surrogate fit =
      FitSurrogate(pilot_rows, pilot_targets, options_.ridge_lambda);
  const double threshold =
      pilot_targets.empty()
          ? 0.0
          : stats::Quantile(pilot_targets, options_.impact_quantile);
  const double margin = options_.uncertainty_margin * fit.residual_sd;

  // Stage 3 — lane assignment and stratum statistics, one serial pass in
  // ascending id order (cheap arithmetic; everything here is a pure
  // function of the features).
  std::vector<double> predicted(n, 0.0);
  std::vector<Lane> lane(n, Lane::kSampled);
  std::vector<std::uint8_t> stratum(n, 0);
  std::vector<bool> is_pilot(n, false);
  for (const std::size_t s : pilot_slots) is_pilot[s] = true;
  constexpr std::size_t kStrata = 16;  // 4 seasons x 4 size buckets
  std::array<std::size_t, kStrata> stratum_count{};
  std::array<double, kStrata> stratum_impact{};
  double total_impact = 0.0;
  std::size_t sampled_total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const Features& f = features[s];
    if (f.empty) {
      lane[s] = Lane::kEmpty;
      continue;
    }
    predicted[s] = fit.Predict(f);
    if (is_pilot[s]) {
      lane[s] = Lane::kPilot;
      continue;
    }
    if (universe[s] % options_.audit_stride == 0) {
      lane[s] = Lane::kAudit;
      continue;
    }
    if (predicted[s] + margin >= threshold) {
      lane[s] = Lane::kFlagged;
      continue;
    }
    lane[s] = Lane::kSampled;
    const std::size_t h =
        static_cast<std::size_t>(f.season) * 4 +
        SizeBucket(static_cast<std::size_t>(f.failed_pops));
    stratum[s] = static_cast<std::uint8_t>(h);
    ++stratum_count[h];
    const double impact = std::fabs(predicted[s]);
    stratum_impact[h] += impact;
    total_impact += impact;
    ++sampled_total;
  }

  // Keep probabilities: proportional to the stratum's mean predicted
  // impact, floored and capped; sparse strata are kept whole.
  std::array<double, kStrata> keep_rate{};
  const double mean_impact =
      sampled_total > 0 ? total_impact / static_cast<double>(sampled_total)
                        : 0.0;
  std::size_t strata_used = 0;
  for (std::size_t h = 0; h < kStrata; ++h) {
    if (stratum_count[h] == 0) continue;
    ++strata_used;
    if (stratum_count[h] <= kWholeStratumLimit) {
      keep_rate[h] = 1.0;
      continue;
    }
    const double stratum_mean =
        stratum_impact[h] / static_cast<double>(stratum_count[h]);
    const double rate = mean_impact > 0.0
                            ? options_.base_rate * stratum_mean / mean_impact
                            : options_.base_rate;
    keep_rate[h] = std::min(1.0, std::max(options_.min_rate, rate));
  }

  // Stage 4 — the keep/drop coins: PhiloxRng(seed ^ salt, id), so each
  // decision is a pure function of (seed, id), decorrelated from the
  // footprint stream Draw(k) consumes.
  const std::uint64_t select_seed = engine_->options().seed ^ kSelectSalt;
  for (std::size_t s = 0; s < n; ++s) {
    if (lane[s] != Lane::kSampled) continue;
    util::PhiloxRng coin(select_seed, universe[s]);
    if (!(coin.NextUniform() < keep_rate[stratum[s]])) {
      lane[s] = Lane::kSkipped;
    }
  }

  // Stage 5 — exact evaluation of every non-pilot exact lane, per-slot
  // parallel; slot order pins outcome placement regardless of schedule.
  std::vector<std::size_t> exact_slots;
  for (std::size_t s = 0; s < n; ++s) {
    if (lane[s] == Lane::kAudit || lane[s] == Lane::kFlagged ||
        lane[s] == Lane::kSampled) {
      exact_slots.push_back(s);
    }
  }
  std::vector<std::uint64_t> exact_ids;
  exact_ids.reserve(exact_slots.size());
  for (const std::size_t s : exact_slots) exact_ids.push_back(universe[s]);
  const std::vector<ScenarioOutcome> exact_outcomes =
      engine_->EvaluateScenarios(exact_ids, pool);

  // Slot -> outcome lookup for the reduction.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> outcome_of(n, kNone);
  for (std::size_t i = 0; i < pilot_slots.size(); ++i) {
    outcome_of[pilot_slots[i]] = i;
  }
  for (std::size_t i = 0; i < exact_slots.size(); ++i) {
    outcome_of[exact_slots[i]] = pilot_outcomes.size() + i;
  }
  const auto outcome_at = [&](std::size_t s) -> const ScenarioOutcome& {
    const std::size_t i = outcome_of[s];
    return i < pilot_outcomes.size()
               ? pilot_outcomes[i]
               : exact_outcomes[i - pilot_outcomes.size()];
  };

  // Stage 6 — fixed-order Horvitz-Thompson reduction in ascending id
  // order. Exact lanes carry weight 1; kept sampled ids carry 1/pi of
  // their stratum; skipped ids are represented by their stratum-mates.
  TriagedReport report;
  report.universe = n;
  EnsembleReducer reducer(*engine_, engine_->options().criticality_top);
  static const ScenarioOutcome kZeroOutcome;
  TriageCalibration& cal = report.calibration;
  cal.pilot_residual_sd = fit.residual_sd;
  cal.pilot_r2 = fit.r2;
  double err_sum = 0.0;
  double abs_err_sum = 0.0;
  double sq_err_sum = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    switch (lane[s]) {
      case Lane::kEmpty:
        ++report.empty_scenarios;
        reducer.Add(kZeroOutcome, 1.0);
        break;
      case Lane::kPilot:
        ++report.pilot_exact;
        reducer.Add(outcome_at(s), 1.0);
        break;
      case Lane::kAudit: {
        ++report.audit_exact;
        const ScenarioOutcome& outcome = outcome_at(s);
        reducer.Add(outcome, 1.0);
        const double err = predicted[s] - outcome.delta_bit_risk_miles;
        ++cal.audits;
        err_sum += err;
        abs_err_sum += std::fabs(err);
        sq_err_sum += err * err;
        cal.max_abs_error = std::max(cal.max_abs_error, std::fabs(err));
        break;
      }
      case Lane::kFlagged:
        ++report.flagged_exact;
        reducer.Add(outcome_at(s), 1.0);
        break;
      case Lane::kSampled:
        ++report.sampled_exact;
        reducer.Add(outcome_at(s), 1.0 / keep_rate[stratum[s]]);
        break;
      case Lane::kSkipped:
        ++report.skipped;
        break;
    }
  }
  if (cal.audits > 0) {
    const auto audits = static_cast<double>(cal.audits);
    cal.bias = err_sum / audits;
    cal.mean_abs_error = abs_err_sum / audits;
    cal.rmse = std::sqrt(sq_err_sum / audits);
  }
  report.strata = strata_used;
  report.exact_evaluations = report.pilot_exact + report.audit_exact +
                             report.flagged_exact + report.sampled_exact;
  report.exact_fraction =
      static_cast<double>(report.exact_evaluations) / static_cast<double>(n);
  report.weight_sum = reducer.weight_sum();
  report.estimate = std::move(reducer).Finish(engine_->options().seed, n);

  metrics.universe.Add(n);
  metrics.empty_scenarios.Add(report.empty_scenarios);
  metrics.pilot_exact.Add(report.pilot_exact);
  metrics.audit_exact.Add(report.audit_exact);
  metrics.flagged_exact.Add(report.flagged_exact);
  metrics.sampled_exact.Add(report.sampled_exact);
  metrics.skipped.Add(report.skipped);
  metrics.exact_evaluations.Add(report.exact_evaluations);
  return report;
}

std::string TriagedReport::ToJson() const {
  std::string out;
  out.reserve(2048 + 128 * estimate.criticality.size());
  char buf[96];
  const auto field = [&](const char* key, double v, const char* tail) {
    out += "  \"";
    out += key;
    out += "\": ";
    AppendDouble(out, v);
    out += tail;
  };
  out += "{\n  \"schema\": \"riskroute.ensemble.triage.v1\",\n";
  std::snprintf(buf, sizeof(buf), "  \"seed\": %" PRIu64 ",\n",
                estimate.seed);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"universe\": %zu,\n", universe);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"baseline_pairs\": %zu,\n",
                estimate.baseline_pairs);
  out += buf;
  field("baseline_bit_risk_miles", estimate.baseline_bit_risk_miles, ",\n");
  out += "  \"delta\": {";
  const struct {
    const char* key;
    double value;
  } delta_fields[] = {
      {"mean", estimate.delta_mean}, {"variance", estimate.delta_variance},
      {"min", estimate.delta_min},   {"max", estimate.delta_max},
      {"p5", estimate.delta_p5},     {"p50", estimate.delta_p50},
      {"p95", estimate.delta_p95},
  };
  for (std::size_t i = 0; i < std::size(delta_fields); ++i) {
    out += i == 0 ? "\"" : ", \"";
    out += delta_fields[i].key;
    out += "\": ";
    AppendDouble(out, delta_fields[i].value);
  }
  out += "},\n";
  field("mean_failed_pops", estimate.mean_failed_pops, ",\n");
  field("mean_severed_links", estimate.mean_severed_links, ",\n");
  field("mean_endpoint_pairs", estimate.mean_endpoint_pairs, ",\n");
  field("mean_disconnected_pairs", estimate.mean_disconnected_pairs, ",\n");
  out += "  \"triage\": {";
  const struct {
    const char* key;
    std::size_t value;
  } count_fields[] = {
      {"pilot_exact", pilot_exact},     {"audit_exact", audit_exact},
      {"flagged_exact", flagged_exact}, {"sampled_exact", sampled_exact},
      {"skipped", skipped},             {"empty_scenarios", empty_scenarios},
      {"strata", strata},               {"exact_evaluations", exact_evaluations},
  };
  for (std::size_t i = 0; i < std::size(count_fields); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %zu", i == 0 ? "" : ", ",
                  count_fields[i].key, count_fields[i].value);
    out += buf;
  }
  out += ", \"exact_fraction\": ";
  AppendDouble(out, exact_fraction);
  out += ", \"weight_sum\": ";
  AppendDouble(out, weight_sum);
  out += "},\n  \"calibration\": {";
  std::snprintf(buf, sizeof(buf), "\"audits\": %zu", calibration.audits);
  out += buf;
  const struct {
    const char* key;
    double value;
  } cal_fields[] = {
      {"mean_abs_error", calibration.mean_abs_error},
      {"rmse", calibration.rmse},
      {"max_abs_error", calibration.max_abs_error},
      {"bias", calibration.bias},
      {"pilot_residual_sd", calibration.pilot_residual_sd},
      {"pilot_r2", calibration.pilot_r2},
  };
  for (const auto& [key, value] : cal_fields) {
    out += ", \"";
    out += key;
    out += "\": ";
    AppendDouble(out, value);
  }
  out += "},\n  \"criticality\": [";
  for (std::size_t i = 0; i < estimate.criticality.size(); ++i) {
    const LinkCriticality& link = estimate.criticality[i];
    if (i != 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "\n    {\"a\": %zu, \"b\": %zu, \"failures\": %" PRIu64
                  ", \"delta_sum\": ",
                  link.a, link.b, link.failures);
    out += buf;
    AppendDouble(out, link.delta_sum);
    out += "}";
  }
  out += estimate.criticality.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace riskroute::sim
