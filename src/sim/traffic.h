// Gravity-model traffic matrices.
//
// The outage simulator weighs each PoP pair's routing outcome by traffic
// volume. Absent real traffic data (proprietary), demand follows the
// standard gravity model: T(i, j) proportional to pop_i * pop_j — the same
// population-proportionality assumption the paper uses for outage impact
// (Section 4.2 cites population density correlating with Internet usage).
#pragma once

#include <cstddef>
#include <vector>

#include "core/risk_graph.h"

namespace riskroute::sim {

/// Dense symmetric demand matrix over a network's PoPs (row-major n x n,
/// zero diagonal, normalized to a configurable total volume).
class TrafficMatrix {
 public:
  /// Gravity demand from the graph's impact fractions:
  /// T(i,j) ∝ c_i * c_j, scaled so the sum over ordered pairs equals
  /// `total_volume`. Throws on an empty graph or non-positive volume.
  [[nodiscard]] static TrafficMatrix Gravity(const core::RiskGraph& graph,
                                             double total_volume = 1.0);

  /// Uniform demand (every ordered pair equal).
  [[nodiscard]] static TrafficMatrix Uniform(std::size_t n,
                                             double total_volume = 1.0);

  [[nodiscard]] double demand(std::size_t i, std::size_t j) const;
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] double total_volume() const { return total_; }

 private:
  TrafficMatrix(std::size_t n, std::vector<double> demand, double total);

  std::size_t n_ = 0;
  std::vector<double> demand_;
  double total_ = 0.0;
};

}  // namespace riskroute::sim
