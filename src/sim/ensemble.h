// Deterministic Monte Carlo outage ensemble engine.
//
// The paper's provisioning recommendations (Figures 9-11) rank links by
// their effect on the Eq 4 aggregate under the *expected* outage geography
// — a single historical risk field. This engine opens the ensemble view:
// draw N outage scenarios from the hazard catalogs (optionally
// season-conditioned), turn each sampled footprint into an edge/node
// failure set, and score every scenario's bit-risk-mile damage on the
// frozen core::RouteEngine through zero-copy EdgeOverlay sweeps. The
// output is the distribution of damage (mean/variance, P5/P50/P95) plus a
// per-link criticality ranking: which frozen links, when they fail,
// account for the most expected damage — the ensemble analogue of the
// Figure 9 augmentation ranking.
//
// Determinism contract (see DESIGN.md, "Ensemble simulation"):
//
//  * Draw k is a pure function of (seed, k). Scenarios are sampled with a
//    counter-based Philox stream per scenario index (util/philox.h), so
//    the sampled event, footprint jitter and fragility coin flips do not
//    depend on thread schedule, evaluation order, or how many other
//    scenarios exist.
//  * Reductions run in fixed scenario-index order. Workers write each
//    scenario's outcome into its own slot; the ensemble statistics
//    (Welford mean/variance, exact sorted quantiles, per-link
//    criticality sums) are folded serially over the slots. Exported
//    statistics are therefore bitwise identical for any worker count and
//    any scenario-index permutation.
//  * Scenario evaluation reuses one overlay per scenario across every
//    pair sweep; the frozen engine is never copied or mutated.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/edge_overlay.h"
#include "core/route_engine.h"
#include "geo/distance.h"
#include "geo/geo_point.h"
#include "hazard/catalog.h"
#include "util/thread_pool.h"

namespace riskroute::sim {

/// Ensemble configuration. The defaults are the reference configuration
/// the golden-replay fixtures pin down.
struct EnsembleOptions {
  /// Number of scenarios (draws 0..scenarios-1). Must be positive.
  std::size_t scenarios = 256;
  /// Philox key; same seed => bitwise-identical report.
  std::uint64_t seed = 2026;
  /// 1-12 restricts draws to events in that month's meteorological
  /// season (the seasonal model's slices); 0 samples the annual archive.
  int month = 0;
  /// Multiplies every hazard type's default damage radius.
  double damage_radius_scale = 1.0;
  /// Footprint centers jitter uniformly within this fraction of the
  /// damage radius around the sampled event (0 replays events exactly).
  double center_jitter = 0.25;
  /// Fringe fragility: nodes between R and fringe_factor * R fail with
  /// probability fringe_fail_scale * (node score / max score) * falloff.
  double fringe_factor = 2.0;
  double fringe_fail_scale = 0.5;
  /// Probability that a frozen link whose span crosses the footprint is
  /// severed even though both endpoints survive (long-haul fiber cuts).
  double link_cut_prob = 0.5;
  /// Number of links reported in the criticality ranking.
  std::size_t criticality_top = 10;
};

/// One sampled outage scenario: the hazard footprint and the failure set
/// it maps to. A pure function of (seed, index) for a fixed engine.
struct Scenario {
  std::uint64_t index = 0;
  hazard::HazardType type = hazard::HazardType::kFemaHurricane;
  geo::GeoPoint center;
  double radius_miles = 0.0;
  /// Calendar month (1-12) of the sampled archive event; the season
  /// stratum key for triaged sampling.
  int event_month = 6;
  /// Failed PoPs, ascending node index.
  std::vector<std::size_t> failed_nodes;
  /// Severed frozen links (ids into the engine's undirected edge table,
  /// ascending) whose endpoints both survived.
  std::vector<std::uint32_t> severed_edges;
};

/// Per-scenario evaluation result.
struct ScenarioOutcome {
  /// Sum over surviving connected pairs (j > i) of scenario bit-risk
  /// distance minus baseline bit-risk distance.
  double delta_bit_risk_miles = 0.0;
  std::uint32_t failed_pops = 0;
  std::uint32_t severed_links = 0;
  /// Unordered baseline-connected pairs with a failed endpoint (excluded
  /// from the delta: no routing can save a dead endpoint).
  std::uint32_t endpoint_pairs = 0;
  /// Unordered pairs alive at both ends but unreachable in-scenario
  /// (stranded; excluded from the delta, reported separately).
  std::uint32_t disconnected_pairs = 0;
  /// Frozen undirected edges out of service this scenario (severed, or
  /// incident to a failed node), ascending edge id.
  std::vector<std::uint32_t> failed_edge_ids;
};

/// One row of the provisioning criticality ranking.
struct LinkCriticality {
  std::size_t a = 0;  // a < b, frozen node indices
  std::size_t b = 0;
  double miles = 0.0;
  /// Scenarios in which the link was out of service.
  std::uint64_t failures = 0;
  /// Sum of those scenarios' delta_bit_risk_miles.
  double delta_sum = 0.0;

  /// Expected per-scenario damage attributable to this link's outages.
  [[nodiscard]] double MeanDelta(std::size_t scenarios) const {
    return scenarios == 0 ? 0.0
                          : delta_sum / static_cast<double>(scenarios);
  }
};

/// Ensemble statistics, reduced in fixed scenario-index order.
struct EnsembleReport {
  std::uint64_t seed = 0;
  std::size_t scenarios = 0;
  /// Unordered pairs connected in the unfailed frozen graph; the delta
  /// universe every scenario is scored against.
  std::size_t baseline_pairs = 0;
  /// Sum of baseline bit-risk distances over those pairs (Eq 4).
  double baseline_bit_risk_miles = 0.0;

  // delta_bit_risk_miles distribution (Welford mean/variance in scenario
  // order; quantiles are exact order statistics of the sorted deltas,
  // linearly interpolated).
  double delta_mean = 0.0;
  double delta_variance = 0.0;  // unbiased (n-1); 0 when n < 2
  double delta_min = 0.0;
  double delta_max = 0.0;
  double delta_p5 = 0.0;
  double delta_p50 = 0.0;
  double delta_p95 = 0.0;

  double mean_failed_pops = 0.0;
  double mean_severed_links = 0.0;
  double mean_endpoint_pairs = 0.0;
  double mean_disconnected_pairs = 0.0;

  /// Top links by delta_sum (descending; ties by ascending edge id).
  std::vector<LinkCriticality> criticality;

  /// Deterministic JSON export (%.17g doubles, fixed key order): bitwise
  /// identical across thread counts and scenario permutations for one
  /// (engine, options) pair. Schema "riskroute.ensemble.v1".
  [[nodiscard]] std::string ToJson() const;
};

/// Batched Monte Carlo ensemble over a frozen RouteEngine.
///
/// Construction freezes the sampling tables (event eligibility, catalog
/// CDF, undirected edge table) and sweeps the baseline upper-triangle
/// bit-risk distances once, recording each pair's baseline shortest-path
/// edge set as a bitmask; Run / EvaluateScenarios then score scenarios
/// against that baseline with one reused EdgeOverlay per scenario.
///
/// The path masks are the batched path's algorithmic edge: a scenario
/// only removes capacity, so a pair whose recorded baseline path avoids
/// every failed edge keeps that path — same hops, same weight sum — and
/// its overlay distance is bitwise equal to the baseline. Evaluate skips
/// those sweeps outright (delta contribution exactly 0.0); only pairs
/// whose baseline path intersects the failure set pay a targeted
/// Dijkstra. The engine and catalogs must outlive this object.
class EnsembleEngine {
 public:
  /// Throws InvalidArgument on empty catalogs, zero scenarios, a month
  /// outside 0-12, when the season filter leaves no eligible events, or
  /// on out-of-domain sampling knobs (NaN/negative center_jitter,
  /// fringe_factor < 1, fringe_fail_scale or link_cut_prob outside
  /// [0, 1], criticality_top == 0 — NaN never passes).
  /// `pool` parallelizes the baseline sweep only.
  EnsembleEngine(const core::RouteEngine& engine,
                 const std::vector<hazard::Catalog>& catalogs,
                 const EnsembleOptions& options = {},
                 util::ThreadPool* pool = nullptr);

  /// The engine keeps a pointer into `catalogs`; a temporary would dangle.
  EnsembleEngine(const core::RouteEngine&, std::vector<hazard::Catalog>&&,
                 const EnsembleOptions& = {}, util::ThreadPool* = nullptr) =
      delete;

  /// Scenario k — a pure function of (seed, k); thread-safe.
  [[nodiscard]] Scenario Draw(std::uint64_t k) const;

  /// The failure set as a zero-copy overlay for engine sweeps.
  [[nodiscard]] core::EdgeOverlay OverlayFor(const Scenario& scenario) const;

  /// Scores one scenario against the baseline; thread-safe.
  [[nodiscard]] ScenarioOutcome Evaluate(const Scenario& scenario) const;

  /// Outcomes for an explicit scenario-id list (sharding across hosts,
  /// permutation tests); out[i] corresponds to ids[i] regardless of
  /// execution order.
  [[nodiscard]] std::vector<ScenarioOutcome> EvaluateScenarios(
      std::span<const std::uint64_t> ids,
      util::ThreadPool* pool = nullptr) const;

  /// The full ensemble: scenarios 0..options.scenarios-1, parallel over
  /// `pool`, reduced in fixed scenario-index order.
  [[nodiscard]] EnsembleReport Run(util::ThreadPool* pool = nullptr) const;

  [[nodiscard]] const EnsembleOptions& options() const { return options_; }
  [[nodiscard]] double baseline_bit_risk_miles() const { return baseline_; }
  [[nodiscard]] std::size_t baseline_pairs() const { return baseline_pairs_; }
  /// The frozen routing engine the ensemble scores against.
  [[nodiscard]] const core::RouteEngine& route_engine() const {
    return *engine_;
  }

  /// The engine's undirected edge table (a < b, ascending (a, b)); the
  /// id space of Scenario::severed_edges and criticality rows.
  struct UndirectedEdge {
    std::size_t a = 0;
    std::size_t b = 0;
    double miles = 0.0;
  };
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const UndirectedEdge& edge(std::size_t id) const {
    return edges_[id];
  }

  /// How many baseline-connected pairs route over each frozen edge
  /// (indexed by undirected edge id): the static criticality rank the
  /// triage surrogate uses as a feature. Computed once at construction
  /// from the recorded baseline path masks.
  [[nodiscard]] std::span<const std::uint32_t> baseline_edge_usage() const {
    return baseline_edge_usage_;
  }
  /// Edge-id range [begin, end) of undirected edges whose lower endpoint
  /// is u; edges with u as the higher endpoint live in lower rows.
  [[nodiscard]] std::uint32_t EdgeRowBegin(std::size_t u) const {
    return edge_row_[u];
  }
  [[nodiscard]] std::uint32_t EdgeRowEnd(std::size_t u) const {
    return edge_row_[u + 1];
  }

  /// Per-slice (catalog index, eligible event count) in draw order: the
  /// exact integer layout behind the event pick. Exposed so boundary
  /// draws (picks landing on a prefix-sum edge) can be regression-tested
  /// against the slice they must bucket into.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::uint64_t>>
  SliceLayout() const;

 private:
  /// Eligible (catalog, event) sampling tables under the season filter.
  struct CatalogSlice {
    std::size_t catalog = 0;
    std::vector<std::size_t> events;  // indices into the catalog
  };

  const core::RouteEngine* engine_;
  const std::vector<hazard::Catalog>* catalogs_;
  EnsembleOptions options_;

  std::vector<CatalogSlice> slices_;
  /// Inclusive prefix sums of eligible event counts, kept in exact
  /// integer arithmetic: a double CDF starts mis-bucketing boundary
  /// draws once cumulative counts pass 2^53 (continental archives), so
  /// the slice pick is an integer NextIndex against these sums.
  std::vector<std::uint64_t> slice_prefix_;
  std::uint64_t slice_total_ = 0;

  std::vector<UndirectedEdge> edges_;
  /// First undirected edge id with .a == u (size N + 1): maps a failed
  /// node to its incident edge-id range in O(degree).
  std::vector<std::uint32_t> edge_row_;

  double max_node_score_ = 0.0;
  /// Unit direction vectors of the PoP locations and of three sample
  /// points along each frozen link span (t = 0.25/0.5/0.75), precomputed
  /// so Draw's footprint and link-cut scans are dot-product compares
  /// against the scenario center instead of per-draw haversines — the
  /// difference between ~29us and ~3us per draw at continental archive
  /// scale (a million draws is seconds, not minutes).
  std::vector<geo::UnitVec3> node_units_;
  std::vector<std::array<geo::UnitVec3, 3>> edge_span_units_;
  /// Baseline bit-risk distance for pair (i, j), j > i, flat upper
  /// triangle; +inf marks baseline-disconnected pairs (excluded
  /// everywhere).
  std::vector<double> baseline_dist_;
  /// Per-pair bitmask (mask_words_ words each, same slot layout as
  /// baseline_dist_) of the undirected edge ids on the pair's baseline
  /// shortest path. A scenario whose failed-edge mask is disjoint leaves
  /// the pair's distance bitwise unchanged.
  std::size_t mask_words_ = 0;
  std::vector<std::uint64_t> pair_path_mask_;
  std::vector<std::uint32_t> baseline_edge_usage_;
  double baseline_ = 0.0;
  std::size_t baseline_pairs_ = 0;

  [[nodiscard]] std::size_t PairSlot(std::size_t i, std::size_t j) const;
  /// Id of the frozen undirected edge {u, v}; the edge must exist.
  [[nodiscard]] std::uint32_t EdgeIdFor(std::size_t u, std::size_t v) const;
};

/// The single fixed-order reduction path behind EnsembleEngine::Run and
/// sim::TriagedEnsemble. Add() must be called in ascending scenario-id
/// order; `weight` folds the outcome in as if it stood for `weight`
/// scenarios of the universe (the Horvitz-Thompson 1/pi reweighting of
/// the triaged sampler). With every weight exactly 1.0 the arithmetic is
/// bitwise identical to the historical unweighted reduction: weighted
/// increments are computed as (w * d) / W so the w == 1.0 multiplications
/// are exact, and the weighted quantile interpolation degenerates to the
/// stats::Quantile order-statistic formula when cumulative weights are
/// the integers 1..n.
class EnsembleReducer {
 public:
  /// `engine` supplies the frozen edge table for the criticality rows.
  EnsembleReducer(const EnsembleEngine& engine, std::size_t criticality_top);

  /// Folds one evaluated outcome in with Horvitz-Thompson weight
  /// `weight` (> 0). Call in ascending scenario-id order.
  void Add(const ScenarioOutcome& outcome, double weight);

  /// Finalizes the report. `scenarios` is the universe size the report
  /// describes (for the triaged path this exceeds the Add() count).
  [[nodiscard]] EnsembleReport Finish(std::uint64_t seed,
                                      std::size_t scenarios) &&;

  [[nodiscard]] double weight_sum() const { return weight_sum_; }

 private:
  const EnsembleEngine* engine_;
  std::size_t top_;
  double weight_sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
  double sum_failed_pops_ = 0.0;
  double sum_severed_links_ = 0.0;
  double sum_endpoint_pairs_ = 0.0;
  double sum_disconnected_pairs_ = 0.0;
  std::vector<LinkCriticality> links_;
  /// (delta, weight) per Add, for the weighted quantiles.
  std::vector<std::pair<double, double>> deltas_;
};

}  // namespace riskroute::sim
