// Surrogate-triaged million-scenario ensembles.
//
// EnsembleEngine scores every scenario exactly, so ensemble cost grows
// linearly in N even though most draws barely graze the network. This
// layer makes N = 10^6 routine by spending exact evaluations only where
// they matter, without giving up either determinism or unbiasedness:
//
//  1. Features + surrogate. Every scenario id gets a deterministic
//     feature row straight from Draw(k) — footprint radius, failed-PoP
//     count and their Eq 1 score mass, the count and baseline-usage rank
//     sum of frozen links inside the footprint, and the event's season.
//     A hand-rolled ridge regression (standardized features, normal
//     equations, no external ML deps) is fit on an exact pilot batch —
//     the first `pilot` non-empty scenario ids in ascending order — and
//     predicts every other scenario's bit-risk-mile delta.
//  2. Lanes. Each id lands in exactly one lane, decided in priority
//     order: `empty` (footprint missed the network; the outcome is an
//     exact zero with no engine work), `pilot`, `audit` (id divisible by
//     audit_stride: a deterministic exact subsample, chosen blind to the
//     surrogate, whose surrogate-vs-exact errors are the calibration
//     report), `flagged` (predicted delta within uncertainty_margin
//     pilot-residual-sds of the pilot impact quantile — high-impact or
//     too-close-to-call ids are always evaluated exactly), or `sampled`.
//  3. Importance sampling. Sampled ids are stratified by (season,
//     footprint-size bucket); stratum h keeps each id independently with
//     probability pi_h proportional to the stratum's mean predicted
//     impact (floored at min_rate, capped at 1). The keep/drop coin for
//     id k is PhiloxRng(seed ^ salt, k) — decorrelated from Draw's
//     stream and a pure function of (seed, k). Kept ids are evaluated
//     exactly and folded into the shared fixed-order EnsembleReducer
//     with Horvitz-Thompson weight 1/pi_h; all pi = 1 lanes carry weight
//     1. Surrogate predictions steer *where* exact work goes but never
//     enter the estimate, so the reduced report is an unbiased
//     (Hajek-normalized) estimate of the plain-MC report over the same
//     universe.
//
// Determinism: features, lane assignment, strata, and rates are pure
// functions of (engine, options, universe set); parallel stages write
// per-slot; every reduction runs serially in ascending scenario-id
// order. The report is bitwise identical across worker counts and
// universe-id permutations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/ensemble.h"
#include "util/thread_pool.h"

namespace riskroute::sim {

/// Triage knobs. Defaults target ~10-20% exact work on the reference
/// corpora while keeping the audit lane dense enough to calibrate.
struct TriageOptions {
  /// Exact pilot batch: the first `pilot` non-empty scenario ids (or
  /// every non-empty id if fewer exist) train the surrogate. Must be
  /// positive.
  std::size_t pilot = 96;
  /// Every id divisible by audit_stride is evaluated exactly regardless
  /// of the surrogate (the calibration lane). Must be positive.
  std::size_t audit_stride = 64;
  /// Target keep probability for an average-impact sampled stratum, in
  /// (0, 1].
  double base_rate = 0.05;
  /// Floor on any stratum's keep probability, in (0, base_rate].
  double min_rate = 0.01;
  /// Pilot |delta| quantile that defines the high-impact threshold, in
  /// (0, 1).
  double impact_quantile = 0.90;
  /// Ids whose prediction is within `uncertainty_margin` pilot residual
  /// standard deviations below the threshold are flagged exact too
  /// (high-uncertainty lane). Must be finite and >= 0.
  double uncertainty_margin = 1.0;
  /// Ridge penalty on the standardized normal equations; >= 0, finite.
  double ridge_lambda = 1e-3;
};

/// Surrogate-vs-exact error statistics over the audit lane, which is
/// chosen blind to the surrogate (id % audit_stride == 0) and therefore
/// measures generalization, not training fit.
struct TriageCalibration {
  std::size_t audits = 0;  ///< audit-lane comparisons (0 on tiny runs)
  double mean_abs_error = 0.0;
  double rmse = 0.0;
  double max_abs_error = 0.0;
  /// Mean signed (predicted - exact); positive = surrogate overshoots.
  double bias = 0.0;
  /// Residual standard deviation of the pilot fit (the uncertainty
  /// band's unit).
  double pilot_residual_sd = 0.0;
  /// In-sample R^2 of the pilot fit; <= 1, can be negative on a
  /// degenerate pilot.
  double pilot_r2 = 0.0;
};

/// A triaged run: the HT-weighted ensemble estimate plus the triage
/// accounting needed to audit it.
struct TriagedReport {
  /// The Horvitz-Thompson-weighted ensemble statistics over the full
  /// universe (estimate.scenarios == universe). delta_min/delta_max
  /// cover evaluated scenarios only — skipped low-impact ids contribute
  /// through their stratum-mates' weights, not their own extremes.
  EnsembleReport estimate;

  std::size_t universe = 0;         ///< scenario ids in the run
  std::size_t empty_scenarios = 0;  ///< exact zeros, no engine work
  std::size_t pilot_exact = 0;
  std::size_t audit_exact = 0;
  std::size_t flagged_exact = 0;
  std::size_t sampled_exact = 0;   ///< kept by the importance sampler
  std::size_t skipped = 0;         ///< surrogate-only, weight carried by peers
  std::size_t strata = 0;          ///< non-empty sampling strata
  /// Engine evaluations actually paid (pilot + audit + flagged +
  /// sampled; empties are free).
  std::size_t exact_evaluations = 0;
  /// exact_evaluations / universe.
  double exact_fraction = 0.0;
  /// Realized sum of HT weights (the Hajek normalizer; E[...] = universe).
  double weight_sum = 0.0;

  TriageCalibration calibration;

  /// Deterministic JSON (%.17g doubles, fixed key order), schema
  /// "riskroute.ensemble.triage.v1". Bitwise identical across thread
  /// counts and universe permutations for one (engine, options) pair.
  [[nodiscard]] std::string ToJson() const;
};

/// Triaged ensemble over a frozen EnsembleEngine. The engine must
/// outlive this object; nothing in it is mutated.
class TriagedEnsemble {
 public:
  /// Validates `options` (InvalidArgument on out-of-domain knobs).
  explicit TriagedEnsemble(const EnsembleEngine& engine,
                           const TriageOptions& options = {});

  /// The deterministic per-scenario feature row (a pure function of the
  /// engine's (seed, k)); exposed for tests.
  struct Features {
    double radius_miles = 0.0;
    double failed_pops = 0.0;
    double score_mass = 0.0;     ///< sum of Eq 1 node scores, failed PoPs
    double failed_links = 0.0;   ///< frozen edges severed or endpoint-dead
    double usage_rank_sum = 0.0; ///< sum of baseline_edge_usage over those
    double season = 0.0;         ///< 0..3 (winter..fall) of event_month
    bool empty = false;          ///< no failed nodes, no severed edges
  };
  [[nodiscard]] Features FeaturesFor(const Scenario& scenario) const;

  /// The triaged run over ids 0..engine.options().scenarios-1.
  [[nodiscard]] TriagedReport Run(util::ThreadPool* pool = nullptr) const;

  /// Same, over an explicit universe (sharding, permutation tests). The
  /// ids are reduced in ascending order whatever order they arrive in;
  /// duplicates are rejected. `ids` must be non-empty.
  [[nodiscard]] TriagedReport Run(std::span<const std::uint64_t> ids,
                                  util::ThreadPool* pool) const;

  [[nodiscard]] const TriageOptions& options() const { return options_; }

 private:
  const EnsembleEngine* engine_;
  TriageOptions options_;
};

}  // namespace riskroute::sim
