#include "sim/outage_sim.h"

#include <algorithm>

#include "core/route_engine.h"
#include "core/shortest_path.h"
#include "geo/distance.h"
#include "util/error.h"

namespace riskroute::sim {
namespace {

/// Per-pair transit node sets (path nodes excluding the endpoints),
/// flattened for cache friendliness.
struct PathSets {
  // offsets[i * n + j] .. offsets[i * n + j + 1] index into transit_nodes.
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> transit_nodes;
};

PathSets PrecomputePaths(const core::RouteEngine& engine, bool risk_aware,
                         util::ThreadPool* pool) {
  const std::size_t n = engine.node_count();
  std::vector<std::vector<std::uint32_t>> per_pair(n * n);

  const auto body = [&](std::size_t i) {
    thread_local core::DijkstraWorkspace workspace;
    if (!risk_aware) {
      // One distance sweep covers every destination.
      engine.RunDistance(workspace, i);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || !workspace.Reached(j)) continue;
        const core::Path path = workspace.PathTo(j);
        auto& nodes = per_pair[i * n + j];
        for (std::size_t k = 1; k + 1 < path.size(); ++k) {
          nodes.push_back(static_cast<std::uint32_t>(path[k]));
        }
      }
      return;
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      engine.Run(workspace, i, engine.Alpha(i, j), j);
      if (!workspace.Reached(j)) continue;
      const core::Path path = workspace.PathTo(j);
      auto& nodes = per_pair[i * n + j];
      for (std::size_t k = 1; k + 1 < path.size(); ++k) {
        nodes.push_back(static_cast<std::uint32_t>(path[k]));
      }
    }
  };
  if (pool != nullptr) {
    util::ParallelFor(*pool, n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }

  PathSets sets;
  sets.offsets.resize(n * n + 1, 0);
  for (std::size_t p = 0; p < per_pair.size(); ++p) {
    sets.offsets[p + 1] =
        sets.offsets[p] + static_cast<std::uint32_t>(per_pair[p].size());
  }
  sets.transit_nodes.reserve(sets.offsets.back());
  for (const auto& nodes : per_pair) {
    sets.transit_nodes.insert(sets.transit_nodes.end(), nodes.begin(),
                              nodes.end());
  }
  return sets;
}

}  // namespace

double DefaultDamageRadiusMiles(hazard::HazardType type) {
  switch (type) {
    case hazard::HazardType::kFemaHurricane:
      return 120.0;
    case hazard::HazardType::kFemaTornado:
      return 25.0;
    case hazard::HazardType::kFemaStorm:
      return 60.0;
    case hazard::HazardType::kNoaaEarthquake:
      return 80.0;
    case hazard::HazardType::kNoaaWind:
      return 15.0;
  }
  throw InternalError("unknown HazardType");
}

double OutageSimReport::AffectedRatio() const {
  if (shortest_path_affected <= 0.0) return 1.0;
  return riskroute_affected / shortest_path_affected;
}

OutageSimReport RunOutageSimulation(const core::RiskGraph& graph,
                                    const std::vector<hazard::Catalog>& catalogs,
                                    const TrafficMatrix& traffic,
                                    const OutageSimOptions& options,
                                    util::ThreadPool* pool) {
  if (catalogs.empty()) {
    throw InvalidArgument("RunOutageSimulation: no catalogs");
  }
  if (traffic.size() != graph.node_count()) {
    throw InvalidArgument("RunOutageSimulation: traffic matrix size mismatch");
  }
  if (options.trials == 0) {
    throw InvalidArgument("RunOutageSimulation: trials must be positive");
  }

  const std::size_t n = graph.node_count();
  // One freeze serves both routing schemes' precomputation sweeps.
  const core::RouteEngine engine(graph, options.params);
  const PathSets shortest = PrecomputePaths(engine, /*risk_aware=*/false, pool);
  const PathSets risky = PrecomputePaths(engine, /*risk_aware=*/true, pool);

  // Catalog pick weights proportional to event counts: the simulated event
  // mix matches the historical archive mix.
  std::vector<double> catalog_weights;
  catalog_weights.reserve(catalogs.size());
  for (const hazard::Catalog& c : catalogs) {
    catalog_weights.push_back(static_cast<double>(c.size()));
  }

  util::Rng rng(options.seed);
  OutageSimReport report;
  report.trials = options.trials;
  std::vector<bool> dead(n, false);

  const auto affected_volume = [&](const PathSets& sets) {
    double volume = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || dead[i] || dead[j]) continue;
        const std::uint32_t begin = sets.offsets[i * n + j];
        const std::uint32_t end = sets.offsets[i * n + j + 1];
        for (std::uint32_t k = begin; k < end; ++k) {
          if (dead[sets.transit_nodes[k]]) {
            volume += traffic.demand(i, j);
            break;
          }
        }
      }
    }
    return volume;
  };

  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const hazard::Catalog& catalog = catalogs[rng.WeightedIndex(catalog_weights)];
    const hazard::Event& event = catalog.events()[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(catalog.size()) - 1))];
    const double radius = options.damage_radius_miles > 0.0
                              ? options.damage_radius_miles
                              : DefaultDamageRadiusMiles(catalog.type());

    std::fill(dead.begin(), dead.end(), false);
    std::size_t disabled = 0;
    double endpoint_volume = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (geo::GreatCircleMiles(graph.node(v).location, event.location) <=
          radius) {
        dead[v] = true;
        ++disabled;
      }
    }
    if (disabled > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i != j && (dead[i] || dead[j])) {
            endpoint_volume += traffic.demand(i, j);
          }
        }
      }
      report.shortest_path_affected += affected_volume(shortest);
      report.riskroute_affected += affected_volume(risky);
    }
    report.endpoint_loss += endpoint_volume;
    report.mean_pops_disabled += static_cast<double>(disabled);
  }

  const auto trials = static_cast<double>(options.trials);
  report.shortest_path_affected /= trials * traffic.total_volume();
  report.riskroute_affected /= trials * traffic.total_volume();
  report.endpoint_loss /= trials * traffic.total_volume();
  report.mean_pops_disabled /= trials;
  return report;
}

}  // namespace riskroute::sim
