#include "sim/traffic.h"

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::sim {

TrafficMatrix::TrafficMatrix(std::size_t n, std::vector<double> demand,
                             double total)
    : n_(n), demand_(std::move(demand)), total_(total) {}

TrafficMatrix TrafficMatrix::Gravity(const core::RiskGraph& graph,
                                     double total_volume) {
  const std::size_t n = graph.node_count();
  if (n == 0) throw InvalidArgument("TrafficMatrix: empty graph");
  if (!(total_volume > 0.0)) {
    throw InvalidArgument("TrafficMatrix: total volume must be positive");
  }
  std::vector<double> demand(n * n, 0.0);
  double raw_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // Floor the fractions so PoPs serving (almost) nobody still carry
      // some demand — real networks route management traffic everywhere.
      const double ci = std::max(graph.node(i).impact_fraction, 1e-6);
      const double cj = std::max(graph.node(j).impact_fraction, 1e-6);
      demand[i * n + j] = ci * cj;
      raw_total += demand[i * n + j];
    }
  }
  if (raw_total <= 0.0) {
    throw InvalidArgument("TrafficMatrix: degenerate impact fractions");
  }
  for (double& d : demand) d *= total_volume / raw_total;
  return TrafficMatrix(n, std::move(demand), total_volume);
}

TrafficMatrix TrafficMatrix::Uniform(std::size_t n, double total_volume) {
  if (n == 0) throw InvalidArgument("TrafficMatrix: empty matrix");
  if (!(total_volume > 0.0)) {
    throw InvalidArgument("TrafficMatrix: total volume must be positive");
  }
  const double pairs = static_cast<double>(n * n - n);
  std::vector<double> demand(n * n, pairs > 0 ? total_volume / pairs : 0.0);
  for (std::size_t i = 0; i < n; ++i) demand[i * n + i] = 0.0;
  return TrafficMatrix(n, std::move(demand), total_volume);
}

double TrafficMatrix::demand(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) {
    throw InvalidArgument(util::Format("TrafficMatrix: (%zu, %zu) out of range",
                                       i, j));
  }
  return demand_[i * n_ + j];
}

}  // namespace riskroute::sim
