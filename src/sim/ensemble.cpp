#include "sim/ensemble.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "core/shortest_path.h"
#include "geo/distance.h"
#include "hazard/seasonal.h"
#include "obs/metrics.h"
#include "sim/outage_sim.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/philox.h"

namespace riskroute::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Ensemble metrics, resolved once per process. Everything except the
/// wall-clock timings counts work that is a pure function of
/// (seed, scenario set), so the counters are Stability::kStable and land
/// in the export's bitwise-reproducible section.
struct EnsembleMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& scenarios = reg.GetCounter("sim.ensemble.scenarios");
  obs::Counter& empty_scenarios =
      reg.GetCounter("sim.ensemble.empty_scenarios");
  obs::Counter& failed_pops = reg.GetCounter("sim.ensemble.failed_pops");
  obs::Counter& severed_links = reg.GetCounter("sim.ensemble.severed_links");
  obs::Counter& endpoint_pairs =
      reg.GetCounter("sim.ensemble.endpoint_pairs");
  obs::Counter& disconnected_pairs =
      reg.GetCounter("sim.ensemble.disconnected_pairs");
  /// Overlays built (one per non-empty scenario) vs pair sweeps run
  /// through them: the overlay-reuse ratio of the batched path. Skipped
  /// sweeps are pairs whose baseline path missed the failure set, proven
  /// unchanged by the path-mask test alone.
  obs::Counter& overlay_builds = reg.GetCounter("sim.ensemble.overlay_builds");
  obs::Counter& overlay_pair_sweeps =
      reg.GetCounter("sim.ensemble.overlay_pair_sweeps");
  obs::Counter& skipped_pair_sweeps =
      reg.GetCounter("sim.ensemble.skipped_pair_sweeps");
  obs::Histogram& draw_ns = reg.GetTiming("sim.ensemble.draw_ns");
  obs::Histogram& evaluate_ns = reg.GetTiming("sim.ensemble.evaluate_ns");
  obs::Histogram& run_ns = reg.GetTiming("sim.ensemble.run_ns");

  static EnsembleMetrics& Get() {
    static EnsembleMetrics metrics;
    return metrics;
  }
};

void Dispatch(util::ThreadPool* pool, std::size_t count,
              const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    util::ParallelFor(*pool, count, body);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }
}

/// Shortest-double round trip: every finite double survives %.17g.
void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

EnsembleEngine::EnsembleEngine(const core::RouteEngine& engine,
                               const std::vector<hazard::Catalog>& catalogs,
                               const EnsembleOptions& options,
                               util::ThreadPool* pool)
    : engine_(&engine), catalogs_(&catalogs), options_(options) {
  if (catalogs.empty()) {
    throw InvalidArgument("EnsembleEngine: no catalogs");
  }
  if (options_.scenarios == 0) {
    throw InvalidArgument("EnsembleEngine: scenarios must be positive");
  }
  if (options_.month < 0 || options_.month > 12) {
    throw InvalidArgument("EnsembleEngine: month must be 0 (annual) or 1-12");
  }
  if (options_.fringe_factor < 1.0) {
    throw InvalidArgument("EnsembleEngine: fringe_factor must be >= 1");
  }

  // Eligible event tables: with a month, only events in that month's
  // meteorological season (the seasonal model's slicing); weights follow
  // the historical archive mix, exactly as RunOutageSimulation's
  // count-proportional catalog pick.
  for (std::size_t c = 0; c < catalogs.size(); ++c) {
    CatalogSlice slice;
    slice.catalog = c;
    const auto& events = catalogs[c].events();
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (options_.month != 0 &&
          hazard::SeasonOfMonth(events[e].month) !=
              hazard::SeasonOfMonth(options_.month)) {
        continue;
      }
      slice.events.push_back(e);
    }
    if (!slice.events.empty()) slices_.push_back(std::move(slice));
  }
  if (slices_.empty()) {
    throw InvalidArgument(
        "EnsembleEngine: season filter leaves no eligible events");
  }
  double cumulative = 0.0;
  slice_cdf_.reserve(slices_.size());
  for (const CatalogSlice& slice : slices_) {
    cumulative += static_cast<double>(slice.events.size());
    slice_cdf_.push_back(cumulative);
  }

  // Undirected edge table, ascending (a, b), with the per-tail row index
  // that maps failed nodes to incident edge ids.
  const std::size_t n = engine.node_count();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t e = engine.EdgeBegin(u); e < engine.EdgeEnd(u); ++e) {
      const std::size_t head = engine.EdgeHead(e);
      if (head > u) edges_.push_back({u, head, engine.EdgeMiles(e)});
    }
  }
  std::sort(edges_.begin(), edges_.end(),
            [](const UndirectedEdge& x, const UndirectedEdge& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  edge_row_.assign(n + 1, 0);
  for (const UndirectedEdge& edge : edges_) {
    ++edge_row_[edge.a + 1];
  }
  for (std::size_t u = 0; u < n; ++u) edge_row_[u + 1] += edge_row_[u];

  for (std::size_t v = 0; v < n; ++v) {
    max_node_score_ = std::max(max_node_score_, engine.NodeScore(v));
  }

  // Baseline upper-triangle bit-risk distances and path-edge masks: one
  // targeted sweep per pair, parallel over sources with disjoint row
  // slices (pair slots, so the mask slices are disjoint too).
  const std::size_t pairs = n * (n - 1) / 2;
  baseline_dist_.assign(pairs, kInf);
  mask_words_ = (edges_.size() + 63) / 64;
  pair_path_mask_.assign(pairs * mask_words_, 0);
  Dispatch(pool, n, [&](std::size_t i) {
    thread_local core::DijkstraWorkspace workspace;
    for (std::size_t j = i + 1; j < n; ++j) {
      engine.Run(workspace, i, engine.Alpha(i, j), j);
      if (!workspace.Reached(j)) continue;
      const std::size_t slot = PairSlot(i, j);
      baseline_dist_[slot] = workspace.DistanceTo(j);
      const core::Path path = workspace.PathTo(j);
      std::uint64_t* mask = &pair_path_mask_[slot * mask_words_];
      for (std::size_t h = 1; h < path.size(); ++h) {
        const std::uint32_t id = EdgeIdFor(path[h - 1], path[h]);
        mask[id / 64] |= std::uint64_t{1} << (id % 64);
      }
    }
  });
  for (const double d : baseline_dist_) {
    if (d < kInf) {
      baseline_ += d;
      ++baseline_pairs_;
    }
  }
}

std::size_t EnsembleEngine::PairSlot(std::size_t i, std::size_t j) const {
  // Row i starts after the triangle above it: i rows of (n-1), (n-2), ...
  const std::size_t n = engine_->node_count();
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

std::uint32_t EnsembleEngine::EdgeIdFor(std::size_t u, std::size_t v) const {
  if (u > v) std::swap(u, v);
  for (std::uint32_t id = edge_row_[u]; id < edge_row_[u + 1]; ++id) {
    if (edges_[id].b == v) return id;
  }
  throw InvalidArgument("EnsembleEngine: path hop is not a frozen edge");
}

Scenario EnsembleEngine::Draw(std::uint64_t k) const {
  EnsembleMetrics& metrics = EnsembleMetrics::Get();
  obs::ScopedTimer timer(metrics.draw_ns);

  util::PhiloxRng rng(options_.seed, k);
  Scenario scenario;
  scenario.index = k;

  // Event pick: catalog by archive-mix CDF, then uniform within the
  // eligible slice.
  const CatalogSlice& slice = slices_[rng.NextWeightedIndex(slice_cdf_)];
  const hazard::Catalog& catalog = (*catalogs_)[slice.catalog];
  const hazard::Event& event =
      catalog.events()[slice.events[rng.NextIndex(slice.events.size())]];
  scenario.type = catalog.type();
  scenario.radius_miles =
      DefaultDamageRadiusMiles(catalog.type()) * options_.damage_radius_scale;
  scenario.center = event.location;
  if (options_.center_jitter > 0.0) {
    const double bearing = rng.NextUniform(0.0, 360.0);
    const double distance =
        rng.NextUniform() * options_.center_jitter * scenario.radius_miles;
    scenario.center = geo::Destination(event.location, bearing, distance);
  }

  // Node failures: hard inside the radius; fragility coin flips in the
  // fringe, weighted by the engine's Eq 1 node score (the risk field) and
  // a linear falloff. Draws are consumed in ascending node order, so the
  // sequence is pinned by (seed, k) alone.
  const std::size_t n = engine_->node_count();
  const double radius = scenario.radius_miles;
  const double fringe = options_.fringe_factor * radius;
  for (std::size_t v = 0; v < n; ++v) {
    const double d = geo::GreatCircleMiles(engine_->location(v),
                                           scenario.center);
    if (d <= radius) {
      scenario.failed_nodes.push_back(v);
    } else if (d <= fringe && options_.fringe_fail_scale > 0.0 &&
               max_node_score_ > 0.0) {
      const double falloff = 1.0 - (d - radius) / (fringe - radius);
      const double p = options_.fringe_fail_scale *
                       (engine_->NodeScore(v) / max_node_score_) * falloff;
      if (rng.NextUniform() < p) scenario.failed_nodes.push_back(v);
    }
  }

  // Long-haul cuts: a surviving link whose span crosses the footprint is
  // severed with link_cut_prob. Edge ids ascend, so draw order is fixed.
  if (options_.link_cut_prob > 0.0) {
    std::vector<bool> dead(n, false);
    for (const std::size_t v : scenario.failed_nodes) dead[v] = true;
    for (std::uint32_t id = 0; id < edges_.size(); ++id) {
      const UndirectedEdge& edge = edges_[id];
      if (dead[edge.a] || dead[edge.b]) continue;
      double min_d = kInf;
      for (const double t : {0.25, 0.5, 0.75}) {
        min_d = std::min(
            min_d, geo::GreatCircleMiles(
                       geo::Interpolate(engine_->location(edge.a),
                                        engine_->location(edge.b), t),
                       scenario.center));
      }
      if (min_d <= radius && rng.NextUniform() < options_.link_cut_prob) {
        scenario.severed_edges.push_back(id);
      }
    }
  }
  return scenario;
}

core::EdgeOverlay EnsembleEngine::OverlayFor(const Scenario& scenario) const {
  core::EdgeOverlay overlay;
  for (const std::size_t v : scenario.failed_nodes) overlay.DisableNode(v);
  for (const std::uint32_t id : scenario.severed_edges) {
    overlay.RemoveEdge(edges_[id].a, edges_[id].b);
  }
  return overlay;
}

ScenarioOutcome EnsembleEngine::Evaluate(const Scenario& scenario) const {
  EnsembleMetrics& metrics = EnsembleMetrics::Get();
  obs::ScopedTimer timer(metrics.evaluate_ns);

  ScenarioOutcome outcome;
  outcome.failed_pops = static_cast<std::uint32_t>(scenario.failed_nodes.size());
  outcome.severed_links =
      static_cast<std::uint32_t>(scenario.severed_edges.size());

  metrics.scenarios.Add();
  metrics.failed_pops.Add(outcome.failed_pops);
  metrics.severed_links.Add(outcome.severed_links);

  // The failed frozen links this scenario takes out of service: severed
  // spans plus every edge incident to a failed node.
  for (const std::size_t v : scenario.failed_nodes) {
    for (std::uint32_t id = edge_row_[v]; id < edge_row_[v + 1]; ++id) {
      outcome.failed_edge_ids.push_back(id);
    }
    // Edges where v is the higher endpoint live in other rows.
    for (std::uint32_t id = 0; id < edge_row_[v]; ++id) {
      if (edges_[id].b == v) outcome.failed_edge_ids.push_back(id);
    }
  }
  outcome.failed_edge_ids.insert(outcome.failed_edge_ids.end(),
                                 scenario.severed_edges.begin(),
                                 scenario.severed_edges.end());
  std::sort(outcome.failed_edge_ids.begin(), outcome.failed_edge_ids.end());
  outcome.failed_edge_ids.erase(std::unique(outcome.failed_edge_ids.begin(),
                                            outcome.failed_edge_ids.end()),
                                outcome.failed_edge_ids.end());

  // An empty failure set perturbs nothing: the overlay sweeps would
  // reproduce the baseline bitwise, so skip them.
  if (scenario.failed_nodes.empty() && scenario.severed_edges.empty()) {
    metrics.empty_scenarios.Add();
    return outcome;
  }

  const std::size_t n = engine_->node_count();
  std::vector<bool> dead(n, false);
  for (const std::size_t v : scenario.failed_nodes) dead[v] = true;
  const core::EdgeOverlay overlay = OverlayFor(scenario);
  metrics.overlay_builds.Add();

  // The scenario's failed edges as a bitmask: a pair whose baseline path
  // is disjoint from it keeps that path (failures only remove capacity),
  // so its distance is bitwise unchanged and the sweep can be skipped —
  // the delta contribution is exactly 0.0 either way.
  std::vector<std::uint64_t> failed_mask(mask_words_, 0);
  for (const std::uint32_t id : outcome.failed_edge_ids) {
    failed_mask[id / 64] |= std::uint64_t{1} << (id % 64);
  }

  thread_local core::DijkstraWorkspace workspace;
  std::uint64_t sweeps = 0;
  std::uint64_t skipped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t slot = PairSlot(i, j);
      const double base = baseline_dist_[slot];
      if (base == kInf) continue;  // never connected; out of universe
      if (dead[i] || dead[j]) {
        ++outcome.endpoint_pairs;
        continue;
      }
      const std::uint64_t* mask = &pair_path_mask_[slot * mask_words_];
      bool touched = false;
      for (std::size_t w = 0; w < mask_words_; ++w) {
        if ((mask[w] & failed_mask[w]) != 0) {
          touched = true;
          break;
        }
      }
      if (!touched) {
        ++skipped;
        continue;
      }
      engine_->Run(workspace, i, engine_->Alpha(i, j), j, &overlay);
      ++sweeps;
      if (workspace.Reached(j)) {
        outcome.delta_bit_risk_miles += workspace.DistanceTo(j) - base;
      } else {
        ++outcome.disconnected_pairs;
      }
    }
  }
  metrics.overlay_pair_sweeps.Add(sweeps);
  metrics.skipped_pair_sweeps.Add(skipped);
  metrics.endpoint_pairs.Add(outcome.endpoint_pairs);
  metrics.disconnected_pairs.Add(outcome.disconnected_pairs);
  return outcome;
}

std::vector<ScenarioOutcome> EnsembleEngine::EvaluateScenarios(
    std::span<const std::uint64_t> ids, util::ThreadPool* pool) const {
  std::vector<ScenarioOutcome> outcomes(ids.size());
  Dispatch(pool, ids.size(), [&](std::size_t s) {
    outcomes[s] = Evaluate(Draw(ids[s]));
  });
  return outcomes;
}

EnsembleReport EnsembleEngine::Run(util::ThreadPool* pool) const {
  EnsembleMetrics& metrics = EnsembleMetrics::Get();
  obs::ScopedTimer timer(metrics.run_ns);

  std::vector<std::uint64_t> ids(options_.scenarios);
  for (std::size_t k = 0; k < ids.size(); ++k) ids[k] = k;
  const std::vector<ScenarioOutcome> outcomes = EvaluateScenarios(ids, pool);

  EnsembleReport report;
  report.seed = options_.seed;
  report.scenarios = options_.scenarios;
  report.baseline_pairs = baseline_pairs_;
  report.baseline_bit_risk_miles = baseline_;

  // Fixed-order reductions over the scenario slots: Welford for
  // mean/variance, running extrema, per-link criticality sums. Quantiles
  // come from the exact sorted deltas below — with every scenario's value
  // present, sorting is the exact merge of any per-thread partials.
  double mean = 0.0;
  double m2 = 0.0;
  report.delta_min = kInf;
  report.delta_max = -kInf;
  std::vector<LinkCriticality> links(edges_.size());
  for (std::size_t id = 0; id < edges_.size(); ++id) {
    links[id].a = edges_[id].a;
    links[id].b = edges_[id].b;
    links[id].miles = edges_[id].miles;
  }
  for (std::size_t s = 0; s < outcomes.size(); ++s) {
    const ScenarioOutcome& outcome = outcomes[s];
    const double x = outcome.delta_bit_risk_miles;
    const double d = x - mean;
    mean += d / static_cast<double>(s + 1);
    m2 += d * (x - mean);
    report.delta_min = std::min(report.delta_min, x);
    report.delta_max = std::max(report.delta_max, x);
    report.mean_failed_pops += outcome.failed_pops;
    report.mean_severed_links += outcome.severed_links;
    report.mean_endpoint_pairs += outcome.endpoint_pairs;
    report.mean_disconnected_pairs += outcome.disconnected_pairs;
    for (const std::uint32_t id : outcome.failed_edge_ids) {
      ++links[id].failures;
      links[id].delta_sum += x;
    }
  }
  const auto count = static_cast<double>(outcomes.size());
  report.delta_mean = mean;
  report.delta_variance = outcomes.size() > 1
                              ? m2 / static_cast<double>(outcomes.size() - 1)
                              : 0.0;
  report.mean_failed_pops /= count;
  report.mean_severed_links /= count;
  report.mean_endpoint_pairs /= count;
  report.mean_disconnected_pairs /= count;

  std::vector<double> deltas;
  deltas.reserve(outcomes.size());
  for (const ScenarioOutcome& outcome : outcomes) {
    deltas.push_back(outcome.delta_bit_risk_miles);
  }
  report.delta_p5 = stats::Quantile(deltas, 0.05);
  report.delta_p50 = stats::Quantile(deltas, 0.50);
  report.delta_p95 = stats::Quantile(deltas, 0.95);

  std::vector<std::size_t> order(links.size());
  for (std::size_t id = 0; id < order.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (links[x].delta_sum != links[y].delta_sum) {
      return links[x].delta_sum > links[y].delta_sum;
    }
    return x < y;  // ascending edge id breaks ties deterministically
  });
  for (const std::size_t id : order) {
    if (report.criticality.size() >= options_.criticality_top) break;
    if (links[id].failures == 0) continue;
    report.criticality.push_back(links[id]);
  }
  return report;
}

std::string EnsembleReport::ToJson() const {
  std::string out;
  out.reserve(1024 + 128 * criticality.size());
  char buf[64];
  const auto field = [&](const char* key, double v, const char* tail) {
    out += "  \"";
    out += key;
    out += "\": ";
    AppendDouble(out, v);
    out += tail;
  };
  out += "{\n  \"schema\": \"riskroute.ensemble.v1\",\n";
  std::snprintf(buf, sizeof(buf), "  \"seed\": %" PRIu64 ",\n", seed);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"scenarios\": %zu,\n", scenarios);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"baseline_pairs\": %zu,\n",
                baseline_pairs);
  out += buf;
  field("baseline_bit_risk_miles", baseline_bit_risk_miles, ",\n");
  out += "  \"delta\": {";
  const struct {
    const char* key;
    double value;
  } delta_fields[] = {
      {"mean", delta_mean}, {"variance", delta_variance},
      {"min", delta_min},   {"max", delta_max},
      {"p5", delta_p5},     {"p50", delta_p50},
      {"p95", delta_p95},
  };
  for (std::size_t i = 0; i < std::size(delta_fields); ++i) {
    out += i == 0 ? "\"" : ", \"";
    out += delta_fields[i].key;
    out += "\": ";
    AppendDouble(out, delta_fields[i].value);
  }
  out += "},\n";
  field("mean_failed_pops", mean_failed_pops, ",\n");
  field("mean_severed_links", mean_severed_links, ",\n");
  field("mean_endpoint_pairs", mean_endpoint_pairs, ",\n");
  field("mean_disconnected_pairs", mean_disconnected_pairs, ",\n");
  out += "  \"criticality\": [";
  for (std::size_t i = 0; i < criticality.size(); ++i) {
    const LinkCriticality& link = criticality[i];
    if (i != 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "\n    {\"a\": %zu, \"b\": %zu, \"failures\": %" PRIu64
                  ", \"delta_sum\": ",
                  link.a, link.b, link.failures);
    out += buf;
    AppendDouble(out, link.delta_sum);
    out += "}";
  }
  out += criticality.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace riskroute::sim
