#include "sim/ensemble.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

#include "core/shortest_path.h"
#include "geo/distance.h"
#include "hazard/seasonal.h"
#include "obs/metrics.h"
#include "sim/outage_sim.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/philox.h"

namespace riskroute::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Ensemble metrics, resolved once per process. Everything except the
/// wall-clock timings counts work that is a pure function of
/// (seed, scenario set), so the counters are Stability::kStable and land
/// in the export's bitwise-reproducible section.
struct EnsembleMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& scenarios = reg.GetCounter("sim.ensemble.scenarios");
  obs::Counter& empty_scenarios =
      reg.GetCounter("sim.ensemble.empty_scenarios");
  obs::Counter& failed_pops = reg.GetCounter("sim.ensemble.failed_pops");
  obs::Counter& severed_links = reg.GetCounter("sim.ensemble.severed_links");
  obs::Counter& endpoint_pairs =
      reg.GetCounter("sim.ensemble.endpoint_pairs");
  obs::Counter& disconnected_pairs =
      reg.GetCounter("sim.ensemble.disconnected_pairs");
  /// Overlays built (one per non-empty scenario) vs pair sweeps run
  /// through them: the overlay-reuse ratio of the batched path. Skipped
  /// sweeps are pairs whose baseline path missed the failure set, proven
  /// unchanged by the path-mask test alone.
  obs::Counter& overlay_builds = reg.GetCounter("sim.ensemble.overlay_builds");
  obs::Counter& overlay_pair_sweeps =
      reg.GetCounter("sim.ensemble.overlay_pair_sweeps");
  obs::Counter& skipped_pair_sweeps =
      reg.GetCounter("sim.ensemble.skipped_pair_sweeps");
  obs::Histogram& draw_ns = reg.GetTiming("sim.ensemble.draw_ns");
  obs::Histogram& evaluate_ns = reg.GetTiming("sim.ensemble.evaluate_ns");
  obs::Histogram& run_ns = reg.GetTiming("sim.ensemble.run_ns");

  static EnsembleMetrics& Get() {
    static EnsembleMetrics metrics;
    return metrics;
  }
};

void Dispatch(util::ThreadPool* pool, std::size_t count,
              const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    util::ParallelFor(*pool, count, body);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }
}

/// Shortest-double round trip: every finite double survives %.17g.
void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

EnsembleEngine::EnsembleEngine(const core::RouteEngine& engine,
                               const std::vector<hazard::Catalog>& catalogs,
                               const EnsembleOptions& options,
                               util::ThreadPool* pool)
    : engine_(&engine), catalogs_(&catalogs), options_(options) {
  if (catalogs.empty()) {
    throw InvalidArgument("EnsembleEngine: no catalogs");
  }
  if (options_.scenarios == 0) {
    throw InvalidArgument("EnsembleEngine: scenarios must be positive");
  }
  if (options_.month < 0 || options_.month > 12) {
    throw InvalidArgument("EnsembleEngine: month must be 0 (annual) or 1-12");
  }
  // Sampling-knob domains, written NaN-safely: a NaN fails every
  // ordered comparison, so `!(x >= lo) || !(x <= hi)` rejects it where
  // the naive `x < lo || x > hi` would let it slip through into the
  // coin-flip thresholds.
  if (!(options_.center_jitter >= 0.0) ||
      options_.center_jitter > std::numeric_limits<double>::max()) {
    throw InvalidArgument(
        "EnsembleEngine: center_jitter must be finite and >= 0");
  }
  if (!(options_.fringe_factor >= 1.0) ||
      options_.fringe_factor > std::numeric_limits<double>::max()) {
    throw InvalidArgument(
        "EnsembleEngine: fringe_factor must be finite and >= 1");
  }
  if (!(options_.fringe_fail_scale >= 0.0) ||
      !(options_.fringe_fail_scale <= 1.0)) {
    throw InvalidArgument(
        "EnsembleEngine: fringe_fail_scale must be within [0, 1]");
  }
  if (!(options_.link_cut_prob >= 0.0) || !(options_.link_cut_prob <= 1.0)) {
    throw InvalidArgument("EnsembleEngine: link_cut_prob must be within [0, 1]");
  }
  if (options_.criticality_top == 0) {
    throw InvalidArgument("EnsembleEngine: criticality_top must be positive");
  }

  // Eligible event tables: with a month, only events in that month's
  // meteorological season (the seasonal model's slicing); weights follow
  // the historical archive mix, exactly as RunOutageSimulation's
  // count-proportional catalog pick.
  for (std::size_t c = 0; c < catalogs.size(); ++c) {
    CatalogSlice slice;
    slice.catalog = c;
    const auto& events = catalogs[c].events();
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (options_.month != 0 &&
          hazard::SeasonOfMonth(events[e].month) !=
              hazard::SeasonOfMonth(options_.month)) {
        continue;
      }
      slice.events.push_back(e);
    }
    if (!slice.events.empty()) slices_.push_back(std::move(slice));
  }
  if (slices_.empty()) {
    throw InvalidArgument(
        "EnsembleEngine: season filter leaves no eligible events");
  }
  slice_prefix_.reserve(slices_.size());
  for (const CatalogSlice& slice : slices_) {
    slice_total_ += static_cast<std::uint64_t>(slice.events.size());
    slice_prefix_.push_back(slice_total_);
  }

  // Undirected edge table, ascending (a, b), with the per-tail row index
  // that maps failed nodes to incident edge ids.
  const std::size_t n = engine.node_count();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t e = engine.EdgeBegin(u); e < engine.EdgeEnd(u); ++e) {
      const std::size_t head = engine.EdgeHead(e);
      if (head > u) edges_.push_back({u, head, engine.EdgeMiles(e)});
    }
  }
  std::sort(edges_.begin(), edges_.end(),
            [](const UndirectedEdge& x, const UndirectedEdge& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  edge_row_.assign(n + 1, 0);
  for (const UndirectedEdge& edge : edges_) {
    ++edge_row_[edge.a + 1];
  }
  for (std::size_t u = 0; u < n; ++u) edge_row_[u + 1] += edge_row_[u];

  for (std::size_t v = 0; v < n; ++v) {
    max_node_score_ = std::max(max_node_score_, engine.NodeScore(v));
  }

  // Footprint-scan geometry: unit vectors for every PoP and for three
  // fixed sample points along each frozen span. Draw compares their dot
  // products against the scenario center's vector, reserving haversines
  // for the few fringe-annulus nodes that need an exact falloff distance.
  node_units_.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    node_units_.push_back(geo::ToUnitVec(engine.location(v)));
  }
  edge_span_units_.reserve(edges_.size());
  for (const UndirectedEdge& edge : edges_) {
    const geo::GeoPoint& a = engine.location(edge.a);
    const geo::GeoPoint& b = engine.location(edge.b);
    edge_span_units_.push_back({geo::ToUnitVec(geo::Interpolate(a, b, 0.25)),
                                geo::ToUnitVec(geo::Interpolate(a, b, 0.5)),
                                geo::ToUnitVec(geo::Interpolate(a, b, 0.75))});
  }

  // Baseline upper-triangle bit-risk distances and path-edge masks: one
  // targeted sweep per pair, parallel over sources with disjoint row
  // slices (pair slots, so the mask slices are disjoint too).
  const std::size_t pairs = n * (n - 1) / 2;
  baseline_dist_.assign(pairs, kInf);
  mask_words_ = (edges_.size() + 63) / 64;
  pair_path_mask_.assign(pairs * mask_words_, 0);
  Dispatch(pool, n, [&](std::size_t i) {
    thread_local core::DijkstraWorkspace workspace;
    for (std::size_t j = i + 1; j < n; ++j) {
      engine.Run(workspace, i, engine.Alpha(i, j), j);
      if (!workspace.Reached(j)) continue;
      const std::size_t slot = PairSlot(i, j);
      baseline_dist_[slot] = workspace.DistanceTo(j);
      const core::Path path = workspace.PathTo(j);
      std::uint64_t* mask = &pair_path_mask_[slot * mask_words_];
      for (std::size_t h = 1; h < path.size(); ++h) {
        const std::uint32_t id = EdgeIdFor(path[h - 1], path[h]);
        mask[id / 64] |= std::uint64_t{1} << (id % 64);
      }
    }
  });
  for (const double d : baseline_dist_) {
    if (d < kInf) {
      baseline_ += d;
      ++baseline_pairs_;
    }
  }

  // Per-edge baseline usage: how many connected pairs route over each
  // frozen edge. A serial popcount pass over the recorded path masks —
  // the static criticality rank the triage surrogate reads per footprint.
  baseline_edge_usage_.assign(edges_.size(), 0);
  for (std::size_t slot = 0; slot < baseline_dist_.size(); ++slot) {
    if (baseline_dist_[slot] == kInf) continue;
    const std::uint64_t* mask = &pair_path_mask_[slot * mask_words_];
    for (std::size_t w = 0; w < mask_words_; ++w) {
      std::uint64_t bits = mask[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        ++baseline_edge_usage_[w * 64 + static_cast<std::size_t>(bit)];
        bits &= bits - 1;
      }
    }
  }
}

std::size_t EnsembleEngine::PairSlot(std::size_t i, std::size_t j) const {
  // Row i starts after the triangle above it: i rows of (n-1), (n-2), ...
  const std::size_t n = engine_->node_count();
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

std::uint32_t EnsembleEngine::EdgeIdFor(std::size_t u, std::size_t v) const {
  if (u > v) std::swap(u, v);
  for (std::uint32_t id = edge_row_[u]; id < edge_row_[u + 1]; ++id) {
    if (edges_[id].b == v) return id;
  }
  throw InvalidArgument("EnsembleEngine: path hop is not a frozen edge");
}

std::vector<std::pair<std::size_t, std::uint64_t>>
EnsembleEngine::SliceLayout() const {
  std::vector<std::pair<std::size_t, std::uint64_t>> layout;
  layout.reserve(slices_.size());
  for (const CatalogSlice& slice : slices_) {
    layout.emplace_back(slice.catalog,
                        static_cast<std::uint64_t>(slice.events.size()));
  }
  return layout;
}

Scenario EnsembleEngine::Draw(std::uint64_t k) const {
  EnsembleMetrics& metrics = EnsembleMetrics::Get();
  obs::ScopedTimer timer(metrics.draw_ns);

  util::PhiloxRng rng(options_.seed, k);
  Scenario scenario;
  scenario.index = k;

  // Event pick: catalog by archive-mix weights, then uniform within the
  // eligible slice. The slice draw is one uniform event index in
  // [0, total) bucketed by exact integer prefix sums — no floating-point
  // CDF, so boundary draws land in the right slice at any archive scale.
  const std::uint64_t pick = rng.NextIndex(slice_total_);
  const std::size_t slice_id = static_cast<std::size_t>(
      std::upper_bound(slice_prefix_.begin(), slice_prefix_.end(), pick) -
      slice_prefix_.begin());
  const CatalogSlice& slice = slices_[slice_id];
  const hazard::Catalog& catalog = (*catalogs_)[slice.catalog];
  const hazard::Event& event =
      catalog.events()[slice.events[rng.NextIndex(slice.events.size())]];
  scenario.type = catalog.type();
  scenario.event_month = event.month;
  scenario.radius_miles =
      DefaultDamageRadiusMiles(catalog.type()) * options_.damage_radius_scale;
  scenario.center = event.location;
  if (options_.center_jitter > 0.0) {
    const double bearing = rng.NextUniform(0.0, 360.0);
    const double distance =
        rng.NextUniform() * options_.center_jitter * scenario.radius_miles;
    scenario.center = geo::Destination(event.location, bearing, distance);
  }

  // Node failures: hard inside the radius; fragility coin flips in the
  // fringe, weighted by the engine's Eq 1 node score (the risk field) and
  // a linear falloff. Draws are consumed in ascending node order, so the
  // sequence is pinned by (seed, k) alone. The radius/fringe membership
  // tests are dot products against precomputed unit vectors (the cosine
  // of the central angle is monotone in arc length); only nodes inside
  // the fringe annulus recover an exact falloff distance.
  const std::size_t n = engine_->node_count();
  const double radius = scenario.radius_miles;
  const double fringe = options_.fringe_factor * radius;
  const geo::UnitVec3 center = geo::ToUnitVec(scenario.center);
  const double cos_radius = geo::CosArcMiles(radius);
  const double cos_fringe = geo::CosArcMiles(fringe);
  for (std::size_t v = 0; v < n; ++v) {
    const double cos_d = geo::Dot(node_units_[v], center);
    if (cos_d >= cos_radius) {
      scenario.failed_nodes.push_back(v);
    } else if (cos_d >= cos_fringe && options_.fringe_fail_scale > 0.0 &&
               max_node_score_ > 0.0) {
      // Arc distance recovered from the dot product already in hand; the
      // annulus is far from the acos precision cliff at tiny angles.
      const double d = geo::kEarthRadiusMiles *
                       std::acos(std::clamp(cos_d, -1.0, 1.0));
      const double falloff = 1.0 - (d - radius) / (fringe - radius);
      const double p = options_.fringe_fail_scale *
                       (engine_->NodeScore(v) / max_node_score_) * falloff;
      if (rng.NextUniform() < p) scenario.failed_nodes.push_back(v);
    }
  }

  // Long-haul cuts: a surviving link whose span crosses the footprint is
  // severed with link_cut_prob. Edge ids ascend, so draw order is fixed.
  if (options_.link_cut_prob > 0.0) {
    // Reusable scratch: a fresh vector per draw is measurable at
    // million-draw scale. Cleared by un-marking (failure sets are tiny).
    thread_local std::vector<bool> dead;
    dead.resize(std::max(dead.size(), n));
    for (const std::size_t v : scenario.failed_nodes) dead[v] = true;
    for (std::uint32_t id = 0; id < edges_.size(); ++id) {
      const UndirectedEdge& edge = edges_[id];
      if (dead[edge.a] || dead[edge.b]) continue;
      const std::array<geo::UnitVec3, 3>& span = edge_span_units_[id];
      const double cos_span = std::max(
          {geo::Dot(span[0], center), geo::Dot(span[1], center),
           geo::Dot(span[2], center)});
      if (cos_span >= cos_radius && rng.NextUniform() < options_.link_cut_prob) {
        scenario.severed_edges.push_back(id);
      }
    }
    for (const std::size_t v : scenario.failed_nodes) dead[v] = false;
  }
  return scenario;
}

core::EdgeOverlay EnsembleEngine::OverlayFor(const Scenario& scenario) const {
  core::EdgeOverlay overlay;
  for (const std::size_t v : scenario.failed_nodes) overlay.DisableNode(v);
  for (const std::uint32_t id : scenario.severed_edges) {
    overlay.RemoveEdge(edges_[id].a, edges_[id].b);
  }
  return overlay;
}

ScenarioOutcome EnsembleEngine::Evaluate(const Scenario& scenario) const {
  EnsembleMetrics& metrics = EnsembleMetrics::Get();
  obs::ScopedTimer timer(metrics.evaluate_ns);

  ScenarioOutcome outcome;
  outcome.failed_pops = static_cast<std::uint32_t>(scenario.failed_nodes.size());
  outcome.severed_links =
      static_cast<std::uint32_t>(scenario.severed_edges.size());

  metrics.scenarios.Add();
  metrics.failed_pops.Add(outcome.failed_pops);
  metrics.severed_links.Add(outcome.severed_links);

  // The failed frozen links this scenario takes out of service: severed
  // spans plus every edge incident to a failed node.
  for (const std::size_t v : scenario.failed_nodes) {
    for (std::uint32_t id = edge_row_[v]; id < edge_row_[v + 1]; ++id) {
      outcome.failed_edge_ids.push_back(id);
    }
    // Edges where v is the higher endpoint live in other rows.
    for (std::uint32_t id = 0; id < edge_row_[v]; ++id) {
      if (edges_[id].b == v) outcome.failed_edge_ids.push_back(id);
    }
  }
  outcome.failed_edge_ids.insert(outcome.failed_edge_ids.end(),
                                 scenario.severed_edges.begin(),
                                 scenario.severed_edges.end());
  std::sort(outcome.failed_edge_ids.begin(), outcome.failed_edge_ids.end());
  outcome.failed_edge_ids.erase(std::unique(outcome.failed_edge_ids.begin(),
                                            outcome.failed_edge_ids.end()),
                                outcome.failed_edge_ids.end());

  // An empty failure set perturbs nothing: the overlay sweeps would
  // reproduce the baseline bitwise, so skip them.
  if (scenario.failed_nodes.empty() && scenario.severed_edges.empty()) {
    metrics.empty_scenarios.Add();
    return outcome;
  }

  const std::size_t n = engine_->node_count();
  std::vector<bool> dead(n, false);
  for (const std::size_t v : scenario.failed_nodes) dead[v] = true;
  const core::EdgeOverlay overlay = OverlayFor(scenario);
  metrics.overlay_builds.Add();

  // The scenario's failed edges as a bitmask: a pair whose baseline path
  // is disjoint from it keeps that path (failures only remove capacity),
  // so its distance is bitwise unchanged and the sweep can be skipped —
  // the delta contribution is exactly 0.0 either way.
  std::vector<std::uint64_t> failed_mask(mask_words_, 0);
  for (const std::uint32_t id : outcome.failed_edge_ids) {
    failed_mask[id / 64] |= std::uint64_t{1} << (id % 64);
  }

  thread_local core::DijkstraWorkspace workspace;
  std::uint64_t sweeps = 0;
  std::uint64_t skipped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t slot = PairSlot(i, j);
      const double base = baseline_dist_[slot];
      if (base == kInf) continue;  // never connected; out of universe
      if (dead[i] || dead[j]) {
        ++outcome.endpoint_pairs;
        continue;
      }
      const std::uint64_t* mask = &pair_path_mask_[slot * mask_words_];
      bool touched = false;
      for (std::size_t w = 0; w < mask_words_; ++w) {
        if ((mask[w] & failed_mask[w]) != 0) {
          touched = true;
          break;
        }
      }
      if (!touched) {
        ++skipped;
        continue;
      }
      engine_->Run(workspace, i, engine_->Alpha(i, j), j, &overlay);
      ++sweeps;
      if (workspace.Reached(j)) {
        outcome.delta_bit_risk_miles += workspace.DistanceTo(j) - base;
      } else {
        ++outcome.disconnected_pairs;
      }
    }
  }
  metrics.overlay_pair_sweeps.Add(sweeps);
  metrics.skipped_pair_sweeps.Add(skipped);
  metrics.endpoint_pairs.Add(outcome.endpoint_pairs);
  metrics.disconnected_pairs.Add(outcome.disconnected_pairs);
  return outcome;
}

std::vector<ScenarioOutcome> EnsembleEngine::EvaluateScenarios(
    std::span<const std::uint64_t> ids, util::ThreadPool* pool) const {
  std::vector<ScenarioOutcome> outcomes(ids.size());
  Dispatch(pool, ids.size(), [&](std::size_t s) {
    outcomes[s] = Evaluate(Draw(ids[s]));
  });
  return outcomes;
}

EnsembleReport EnsembleEngine::Run(util::ThreadPool* pool) const {
  EnsembleMetrics& metrics = EnsembleMetrics::Get();
  obs::ScopedTimer timer(metrics.run_ns);

  std::vector<std::uint64_t> ids(options_.scenarios);
  for (std::size_t k = 0; k < ids.size(); ++k) ids[k] = k;
  const std::vector<ScenarioOutcome> outcomes = EvaluateScenarios(ids, pool);

  // Fixed-order reduction over the scenario slots, unit-weighted: the
  // reducer's weighted arithmetic degenerates bitwise to the historical
  // unweighted Welford / sorted-quantile path when every weight is 1.
  EnsembleReducer reducer(*this, options_.criticality_top);
  for (const ScenarioOutcome& outcome : outcomes) reducer.Add(outcome, 1.0);
  return std::move(reducer).Finish(options_.seed, options_.scenarios);
}

EnsembleReducer::EnsembleReducer(const EnsembleEngine& engine,
                                 std::size_t criticality_top)
    : engine_(&engine), top_(criticality_top), min_(kInf), max_(-kInf) {
  links_.resize(engine.edge_count());
  for (std::size_t id = 0; id < links_.size(); ++id) {
    links_[id].a = engine.edge(id).a;
    links_[id].b = engine.edge(id).b;
    links_[id].miles = engine.edge(id).miles;
  }
}

void EnsembleReducer::Add(const ScenarioOutcome& outcome, double weight) {
  // Weighted Welford. The increments are written as (w * d) / W and
  // (w * d) * (x - mean) so that w == 1.0 multiplies exactly and the
  // unit-weight path reproduces the unweighted recurrence bitwise.
  const double x = outcome.delta_bit_risk_miles;
  weight_sum_ += weight;
  const double d = x - mean_;
  const double wd = weight * d;
  mean_ += wd / weight_sum_;
  m2_ += wd * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  sum_failed_pops_ += weight * static_cast<double>(outcome.failed_pops);
  sum_severed_links_ += weight * static_cast<double>(outcome.severed_links);
  sum_endpoint_pairs_ += weight * static_cast<double>(outcome.endpoint_pairs);
  sum_disconnected_pairs_ +=
      weight * static_cast<double>(outcome.disconnected_pairs);
  for (const std::uint32_t id : outcome.failed_edge_ids) {
    ++links_[id].failures;
    links_[id].delta_sum += weight * x;
  }
  deltas_.emplace_back(x, weight);
}

namespace {

/// Weighted order-statistic quantile over (value, weight) pairs sorted by
/// value: each pair stands for `weight` copies of its value, the virtual
/// sorted array has total length W, and the estimate interpolates the
/// values at virtual positions floor(p) and p + 1 for p = q * (W - 1) —
/// exactly the stats::Quantile formula when every weight is 1.
double WeightedQuantile(const std::vector<std::pair<double, double>>& sorted,
                        double total_weight, double q) {
  const auto value_at = [&](double p) {
    double cumulative = 0.0;
    for (const auto& [value, weight] : sorted) {
      cumulative += weight;
      if (cumulative > p) return value;
    }
    return sorted.back().first;
  };
  const double pos = q * (total_weight - 1.0);
  const double frac = pos - std::floor(pos);
  const double lo = value_at(std::floor(pos));
  const double hi = value_at(std::min(pos + 1.0, total_weight - 1.0));
  return lo * (1.0 - frac) + hi * frac;
}

}  // namespace

EnsembleReport EnsembleReducer::Finish(std::uint64_t seed,
                                       std::size_t scenarios) && {
  if (deltas_.empty()) {
    throw InvalidArgument("EnsembleReducer: no outcomes added");
  }
  EnsembleReport report;
  report.seed = seed;
  report.scenarios = scenarios;
  report.baseline_pairs = engine_->baseline_pairs();
  report.baseline_bit_risk_miles = engine_->baseline_bit_risk_miles();
  report.delta_mean = mean_;
  report.delta_variance = weight_sum_ > 1.0 ? m2_ / (weight_sum_ - 1.0) : 0.0;
  report.delta_min = min_;
  report.delta_max = max_;
  report.mean_failed_pops = sum_failed_pops_ / weight_sum_;
  report.mean_severed_links = sum_severed_links_ / weight_sum_;
  report.mean_endpoint_pairs = sum_endpoint_pairs_ / weight_sum_;
  report.mean_disconnected_pairs = sum_disconnected_pairs_ / weight_sum_;

  // Quantiles: sort by value (ascending ids fixed the input order, and
  // ties are value-identical, so the sort is deterministic), then read
  // the weighted order statistics. A linear cumulative scan per quantile
  // is O(n) — three scans, cheaper than it looks next to the sort.
  std::sort(deltas_.begin(), deltas_.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  report.delta_p5 = WeightedQuantile(deltas_, weight_sum_, 0.05);
  report.delta_p50 = WeightedQuantile(deltas_, weight_sum_, 0.50);
  report.delta_p95 = WeightedQuantile(deltas_, weight_sum_, 0.95);

  std::vector<std::size_t> order(links_.size());
  for (std::size_t id = 0; id < order.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (links_[x].delta_sum != links_[y].delta_sum) {
      return links_[x].delta_sum > links_[y].delta_sum;
    }
    return x < y;  // ascending edge id breaks ties deterministically
  });
  for (const std::size_t id : order) {
    if (report.criticality.size() >= top_) break;
    if (links_[id].failures == 0) continue;
    report.criticality.push_back(links_[id]);
  }
  return report;
}

std::string EnsembleReport::ToJson() const {
  std::string out;
  out.reserve(1024 + 128 * criticality.size());
  char buf[64];
  const auto field = [&](const char* key, double v, const char* tail) {
    out += "  \"";
    out += key;
    out += "\": ";
    AppendDouble(out, v);
    out += tail;
  };
  out += "{\n  \"schema\": \"riskroute.ensemble.v1\",\n";
  std::snprintf(buf, sizeof(buf), "  \"seed\": %" PRIu64 ",\n", seed);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"scenarios\": %zu,\n", scenarios);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"baseline_pairs\": %zu,\n",
                baseline_pairs);
  out += buf;
  field("baseline_bit_risk_miles", baseline_bit_risk_miles, ",\n");
  out += "  \"delta\": {";
  const struct {
    const char* key;
    double value;
  } delta_fields[] = {
      {"mean", delta_mean}, {"variance", delta_variance},
      {"min", delta_min},   {"max", delta_max},
      {"p5", delta_p5},     {"p50", delta_p50},
      {"p95", delta_p95},
  };
  for (std::size_t i = 0; i < std::size(delta_fields); ++i) {
    out += i == 0 ? "\"" : ", \"";
    out += delta_fields[i].key;
    out += "\": ";
    AppendDouble(out, delta_fields[i].value);
  }
  out += "},\n";
  field("mean_failed_pops", mean_failed_pops, ",\n");
  field("mean_severed_links", mean_severed_links, ",\n");
  field("mean_endpoint_pairs", mean_endpoint_pairs, ",\n");
  field("mean_disconnected_pairs", mean_disconnected_pairs, ",\n");
  out += "  \"criticality\": [";
  for (std::size_t i = 0; i < criticality.size(); ++i) {
    const LinkCriticality& link = criticality[i];
    if (i != 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "\n    {\"a\": %zu, \"b\": %zu, \"failures\": %" PRIu64
                  ", \"delta_sum\": ",
                  link.a, link.b, link.failures);
    out += buf;
    AppendDouble(out, link.delta_sum);
    out += "}";
  }
  out += criticality.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace riskroute::sim
