#include "server/wire.h"

#include <cstring>

#include "obs/metrics.h"

namespace riskroute::server::wire {
namespace {

using util::ParseErrorKind;

void CountReject(ParseErrorKind kind) {
  if (!obs::Enabled()) return;
  std::string name = "server.wire.rejects.";
  name += util::ToString(kind);
  obs::MetricsRegistry::Global().GetCounter(name).Add();
}

void CountAccepted() {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Global().GetCounter("server.wire.accepted").Add();
}

template <typename T>
util::ParseResult<T> Reject(ParseErrorKind kind, std::string message,
                            std::size_t byte_offset = 0) {
  CountReject(kind);
  return util::ParseResult<T>::Failure(kind, std::move(message), byte_offset);
}

// --- Little-endian append helpers ---

void PutU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string& out, std::string_view s) {
  PutU16(out, static_cast<std::uint16_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Bounded little-endian reader over a payload span. Every Read* returns
/// false once the payload is exhausted; the caller turns that into one
/// structured "truncated payload" diagnostic.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ReadU8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = bytes_[pos_++];
    return true;
  }
  [[nodiscard]] bool ReadU16(std::uint16_t& v) {
    if (pos_ + 2 > bytes_.size()) return false;
    v = static_cast<std::uint16_t>(bytes_[pos_] |
                                   (std::uint16_t{bytes_[pos_ + 1]} << 8));
    pos_ += 2;
    return true;
  }
  [[nodiscard]] bool ReadU32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return true;
  }
  [[nodiscard]] bool ReadU64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return true;
  }
  [[nodiscard]] bool ReadBytes(std::size_t n, std::string& out) {
    if (pos_ + n > bytes_.size()) return false;
    out.assign(reinterpret_cast<const char*>(bytes_.data()) + pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

[[nodiscard]] bool ValidRequestKind(std::uint16_t kind) {
  return kind >= static_cast<std::uint16_t>(FrameKind::kRouteRequest) &&
         kind <= static_cast<std::uint16_t>(FrameKind::kEnsembleTriageRequest);
}

std::string EncodeFrame(FrameKind kind, std::uint64_t id,
                        std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(reinterpret_cast<const char*>(kMagic), sizeof(kMagic));
  PutU16(out, kWireVersion);
  PutU16(out, static_cast<std::uint16_t>(kind));
  PutU64(out, id);
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  std::string payload;
  PutU32(payload, request.deadline_ms);
  switch (request.kind) {
    case FrameKind::kRouteRequest:
      PutString(payload, request.route.from);
      PutString(payload, request.route.to);
      break;
    case FrameKind::kRatiosRequest:
      PutString(payload, request.ratios.label);
      break;
    case FrameKind::kEnsembleRequest:
      PutU32(payload, static_cast<std::uint32_t>(request.ensemble.scenarios));
      PutU64(payload, request.ensemble.seed);
      PutU32(payload, static_cast<std::uint32_t>(request.ensemble.month));
      PutU32(payload, static_cast<std::uint32_t>(request.ensemble.top));
      payload.push_back(request.ensemble.json ? '\x01' : '\x00');
      break;
    case FrameKind::kEnsembleTriageRequest:
      PutU32(payload, static_cast<std::uint32_t>(request.ensemble.scenarios));
      PutU64(payload, request.ensemble.seed);
      PutU32(payload, static_cast<std::uint32_t>(request.ensemble.month));
      PutU32(payload, static_cast<std::uint32_t>(request.ensemble.top));
      payload.push_back(request.ensemble.json ? '\x01' : '\x00');
      PutU32(payload, static_cast<std::uint32_t>(request.ensemble.pilot));
      PutU32(payload,
             static_cast<std::uint32_t>(request.ensemble.audit_stride));
      PutU32(payload, request.ensemble.base_rate_ppm);
      break;
    case FrameKind::kProvisionRequest:
      PutU32(payload, static_cast<std::uint32_t>(request.provision.links));
      break;
    case FrameKind::kPingRequest:
      PutU32(payload, request.ping_delay_ms);
      break;
    case FrameKind::kShutdownRequest:
      break;
    case FrameKind::kStreamAdvisory:
      payload.push_back(request.stream.reset ? '\x01' : '\x00');
      PutU32(payload, static_cast<std::uint32_t>(request.stream.top));
      PutU32(payload, static_cast<std::uint32_t>(request.stream.bulletin.size()));
      payload.append(request.stream.bulletin);
      break;
    case FrameKind::kResponse:
      throw InvalidArgument("EncodeRequest on a response kind");
  }
  return EncodeFrame(request.kind, request.id, payload);
}

std::string EncodeResponse(std::uint64_t id, Status status,
                           std::string_view body) {
  std::string payload;
  PutU16(payload, static_cast<std::uint16_t>(status));
  payload.append(body);
  return EncodeFrame(FrameKind::kResponse, id, payload);
}

util::ParseResult<FrameHeader> DecodeFrameHeader(
    std::span<const std::uint8_t> bytes, const WireLimits& limits) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Reject<FrameHeader>(ParseErrorKind::kEmptyInput,
                               "truncated frame header", bytes.size());
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Reject<FrameHeader>(ParseErrorKind::kBadHeader,
                               "bad frame magic (want \"RRW1\")", 0);
  }
  Reader reader(bytes.subspan(sizeof(kMagic)));
  std::uint16_t version = 0;
  std::uint16_t kind = 0;
  FrameHeader header;
  // Header reads cannot fail past the size check above.
  if (!reader.ReadU16(version) || !reader.ReadU16(kind) ||
      !reader.ReadU64(header.id) || !reader.ReadU32(header.payload_len)) {
    return Reject<FrameHeader>(ParseErrorKind::kBadSyntax,
                               "truncated frame header", bytes.size());
  }
  if (version != kWireVersion) {
    return Reject<FrameHeader>(
        ParseErrorKind::kBadHeader,
        util::Format("unsupported wire version %u (want %u)", version,
                     kWireVersion),
        4);
  }
  if (!ValidRequestKind(kind) &&
      kind != static_cast<std::uint16_t>(FrameKind::kResponse)) {
    return Reject<FrameHeader>(ParseErrorKind::kBadValue,
                               util::Format("unknown frame kind %u", kind), 6);
  }
  if (header.payload_len > limits.max_payload) {
    return Reject<FrameHeader>(
        ParseErrorKind::kLimitExceeded,
        util::Format("payload length %u exceeds limit %u", header.payload_len,
                     limits.max_payload),
        16);
  }
  header.kind = static_cast<FrameKind>(kind);
  return header;
}

util::ParseResult<Request> DecodeRequestPayload(
    const FrameHeader& header, std::span<const std::uint8_t> payload,
    const WireLimits& limits) {
  if (header.kind == FrameKind::kResponse) {
    return Reject<Request>(ParseErrorKind::kBadValue,
                           "frame is a response, not a request");
  }
  Request request;
  request.kind = header.kind;
  request.id = header.id;

  Reader reader(payload);
  const auto truncated = [&] {
    return Reject<Request>(ParseErrorKind::kBadSyntax,
                           "truncated request payload", reader.pos());
  };
  const auto read_string = [&](std::string& out, const char* field,
                               util::ParseResult<Request>& error) {
    std::uint16_t len = 0;
    if (!reader.ReadU16(len)) {
      error = truncated();
      return false;
    }
    if (len > limits.max_string_bytes) {
      error = Reject<Request>(
          ParseErrorKind::kLimitExceeded,
          util::Format("%s length %u exceeds limit %u", field, len,
                       limits.max_string_bytes),
          reader.pos());
      return false;
    }
    if (!reader.ReadBytes(len, out)) {
      error = truncated();
      return false;
    }
    return true;
  };

  if (!reader.ReadU32(request.deadline_ms)) return truncated();
  if (request.deadline_ms > limits.max_deadline_ms) {
    return Reject<Request>(
        ParseErrorKind::kBadValue,
        util::Format("deadline %u ms exceeds limit %u ms", request.deadline_ms,
                     limits.max_deadline_ms),
        reader.pos());
  }

  util::ParseResult<Request> error = request;  // overwritten before use
  switch (request.kind) {
    case FrameKind::kRouteRequest:
      if (!read_string(request.route.from, "from", error)) return error;
      if (!read_string(request.route.to, "to", error)) return error;
      break;
    case FrameKind::kRatiosRequest:
      if (!read_string(request.ratios.label, "label", error)) return error;
      break;
    case FrameKind::kEnsembleRequest: {
      std::uint32_t scenarios = 0;
      std::uint32_t month = 0;
      std::uint32_t top = 0;
      std::uint8_t json = 0;
      if (!reader.ReadU32(scenarios) || !reader.ReadU64(request.ensemble.seed) ||
          !reader.ReadU32(month) || !reader.ReadU32(top) ||
          !reader.ReadU8(json)) {
        return truncated();
      }
      if (scenarios == 0 || scenarios > limits.max_scenarios) {
        return Reject<Request>(
            ParseErrorKind::kBadValue,
            util::Format("scenarios %u outside [1, %u]", scenarios,
                         limits.max_scenarios));
      }
      if (month > 12) {
        return Reject<Request>(ParseErrorKind::kBadValue,
                               util::Format("month %u outside [0, 12]", month));
      }
      if (top > limits.max_top) {
        return Reject<Request>(
            ParseErrorKind::kLimitExceeded,
            util::Format("top %u exceeds limit %u", top, limits.max_top));
      }
      if (json > 1) {
        return Reject<Request>(ParseErrorKind::kBadValue,
                               "json flag must be 0 or 1");
      }
      request.ensemble.scenarios = scenarios;
      request.ensemble.month = static_cast<int>(month);
      request.ensemble.top = top;
      request.ensemble.json = json != 0;
      break;
    }
    case FrameKind::kEnsembleTriageRequest: {
      std::uint32_t scenarios = 0;
      std::uint32_t month = 0;
      std::uint32_t top = 0;
      std::uint8_t json = 0;
      std::uint32_t pilot = 0;
      std::uint32_t audit_stride = 0;
      std::uint32_t base_rate_ppm = 0;
      if (!reader.ReadU32(scenarios) ||
          !reader.ReadU64(request.ensemble.seed) || !reader.ReadU32(month) ||
          !reader.ReadU32(top) || !reader.ReadU8(json) ||
          !reader.ReadU32(pilot) || !reader.ReadU32(audit_stride) ||
          !reader.ReadU32(base_rate_ppm)) {
        return truncated();
      }
      if (scenarios == 0 || scenarios > limits.max_scenarios) {
        return Reject<Request>(
            ParseErrorKind::kBadValue,
            util::Format("scenarios %u outside [1, %u]", scenarios,
                         limits.max_scenarios));
      }
      if (month > 12) {
        return Reject<Request>(ParseErrorKind::kBadValue,
                               util::Format("month %u outside [0, 12]", month));
      }
      if (top > limits.max_top) {
        return Reject<Request>(
            ParseErrorKind::kLimitExceeded,
            util::Format("top %u exceeds limit %u", top, limits.max_top));
      }
      if (json > 1) {
        return Reject<Request>(ParseErrorKind::kBadValue,
                               "json flag must be 0 or 1");
      }
      if (pilot == 0 || pilot > limits.max_scenarios) {
        return Reject<Request>(
            ParseErrorKind::kBadValue,
            util::Format("pilot %u outside [1, %u]", pilot,
                         limits.max_scenarios));
      }
      if (audit_stride == 0 || audit_stride > limits.max_audit_stride) {
        return Reject<Request>(
            ParseErrorKind::kBadValue,
            util::Format("audit_stride %u outside [1, %u]", audit_stride,
                         limits.max_audit_stride));
      }
      if (base_rate_ppm == 0 || base_rate_ppm > 1'000'000) {
        return Reject<Request>(
            ParseErrorKind::kBadValue,
            util::Format("base_rate_ppm %u outside [1, 1000000]",
                         base_rate_ppm));
      }
      request.ensemble.scenarios = scenarios;
      request.ensemble.month = static_cast<int>(month);
      request.ensemble.top = top;
      request.ensemble.json = json != 0;
      request.ensemble.triage = true;
      request.ensemble.pilot = pilot;
      request.ensemble.audit_stride = audit_stride;
      request.ensemble.base_rate_ppm = base_rate_ppm;
      break;
    }
    case FrameKind::kProvisionRequest: {
      std::uint32_t links = 0;
      if (!reader.ReadU32(links)) return truncated();
      if (links == 0 || links > limits.max_links) {
        return Reject<Request>(
            ParseErrorKind::kBadValue,
            util::Format("links %u outside [1, %u]", links, limits.max_links));
      }
      request.provision.links = links;
      break;
    }
    case FrameKind::kPingRequest:
      if (!reader.ReadU32(request.ping_delay_ms)) return truncated();
      if (request.ping_delay_ms > limits.max_ping_delay_ms) {
        return Reject<Request>(
            ParseErrorKind::kLimitExceeded,
            util::Format("ping delay %u ms exceeds limit %u ms",
                         request.ping_delay_ms, limits.max_ping_delay_ms));
      }
      break;
    case FrameKind::kShutdownRequest:
      break;
    case FrameKind::kStreamAdvisory: {
      std::uint8_t reset = 0;
      std::uint32_t top = 0;
      std::uint32_t bulletin_len = 0;
      if (!reader.ReadU8(reset) || !reader.ReadU32(top) ||
          !reader.ReadU32(bulletin_len)) {
        return truncated();
      }
      if (reset > 1) {
        return Reject<Request>(ParseErrorKind::kBadValue,
                               "reset flag must be 0 or 1");
      }
      if (top > limits.max_top) {
        return Reject<Request>(
            ParseErrorKind::kLimitExceeded,
            util::Format("top %u exceeds limit %u", top, limits.max_top));
      }
      if (bulletin_len > limits.max_bulletin_bytes) {
        return Reject<Request>(
            ParseErrorKind::kLimitExceeded,
            util::Format("bulletin length %u exceeds limit %u", bulletin_len,
                         limits.max_bulletin_bytes));
      }
      if (!reader.ReadBytes(bulletin_len, request.stream.bulletin)) {
        return truncated();
      }
      request.stream.reset = reset != 0;
      request.stream.top = top;
      break;
    }
    case FrameKind::kResponse:
      break;  // unreachable; rejected above
  }
  if (!reader.exhausted()) {
    return Reject<Request>(ParseErrorKind::kBadSyntax,
                           "trailing bytes after request payload",
                           reader.pos());
  }
  CountAccepted();
  return request;
}

util::ParseResult<Response> DecodeResponsePayload(
    const FrameHeader& header, std::span<const std::uint8_t> payload,
    const WireLimits& limits) {
  (void)limits;
  if (header.kind != FrameKind::kResponse) {
    return Reject<Response>(ParseErrorKind::kBadValue,
                            "frame is a request, not a response");
  }
  Reader reader(payload);
  Response response;
  response.id = header.id;
  std::uint16_t status = 0;
  if (!reader.ReadU16(status)) {
    return Reject<Response>(ParseErrorKind::kBadSyntax,
                            "truncated response payload", reader.pos());
  }
  if (status > static_cast<std::uint16_t>(Status::kShuttingDown)) {
    return Reject<Response>(ParseErrorKind::kBadValue,
                            util::Format("unknown status %u", status));
  }
  response.status = static_cast<Status>(status);
  if (!reader.ReadBytes(payload.size() - reader.pos(), response.body)) {
    return Reject<Response>(ParseErrorKind::kBadSyntax,
                            "truncated response payload", reader.pos());
  }
  CountAccepted();
  return response;
}

util::ParseResult<Frame> DecodeSingleFrame(std::span<const std::uint8_t> bytes,
                                           const WireLimits& limits) {
  auto header = DecodeFrameHeader(bytes, limits);
  if (!header.ok()) return header.error();
  const std::size_t total = kFrameHeaderBytes + header.value().payload_len;
  if (bytes.size() < total) {
    CountReject(ParseErrorKind::kBadSyntax);
    return util::ParseResult<Frame>::Failure(
        ParseErrorKind::kBadSyntax, "truncated frame payload", bytes.size());
  }
  if (bytes.size() > total) {
    CountReject(ParseErrorKind::kBadSyntax);
    return util::ParseResult<Frame>::Failure(
        ParseErrorKind::kBadSyntax, "trailing bytes after frame", total);
  }
  Frame frame;
  frame.header = header.value();
  frame.payload.assign(reinterpret_cast<const char*>(bytes.data()) +
                           kFrameHeaderBytes,
                       frame.header.payload_len);
  return frame;
}

util::ParseResult<std::optional<Frame>> FrameAssembler::Poll() {
  if (buffer_.size() < kFrameHeaderBytes) return std::optional<Frame>{};
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(buffer_.data()), buffer_.size());
  auto header = DecodeFrameHeader(bytes, limits_);
  if (!header.ok()) return header.error();
  const std::size_t total = kFrameHeaderBytes + header.value().payload_len;
  if (buffer_.size() < total) return std::optional<Frame>{};
  Frame frame;
  frame.header = header.value();
  frame.payload = buffer_.substr(kFrameHeaderBytes,
                                 frame.header.payload_len);
  buffer_.erase(0, total);
  return std::optional<Frame>(std::move(frame));
}

}  // namespace riskroute::server::wire
