#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <memory>
#include <utility>

#include "server/handlers.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::server {
namespace {

/// errno rendered for an IoError message.
std::string Errno(const char* op) {
  return util::Format("%s failed: %s", op, std::strerror(errno));
}

int ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument(util::Format(
        "unix socket path is %zu bytes; the OS limit is %zu", path.size(),
        sizeof(addr.sun_path) - 1));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(Errno("socket(AF_UNIX)"));
  ::unlink(path.c_str());  // stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string detail = Errno("bind/listen");
    ::close(fd);
    throw IoError("unix socket " + path + ": " + detail);
  }
  return fd;
}

int ListenTcp(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(Errno("socket(AF_INET)"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string detail = Errno("bind/listen");
    ::close(fd);
    throw IoError(util::Format("tcp 127.0.0.1:%d: %s", port, detail.c_str()));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

bool SendAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(const api::Service& service, const ServerOptions& options)
    : service_(service), options_(options), scheduler_(options.scheduler) {}

Server::~Server() { Stop(); }

void Server::Start() {
  if (started_) throw InternalError("Server::Start called twice");
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    throw InvalidArgument("server needs a unix path or a tcp port");
  }
  if (!options_.unix_path.empty()) {
    listen_fds_.push_back(ListenUnix(options_.unix_path));
  }
  if (options_.tcp_port >= 0) {
    listen_fds_.push_back(ListenTcp(options_.tcp_port, bound_tcp_port_));
  }
  started_ = true;
  accept_threads_.reserve(listen_fds_.size());
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { AcceptLoop(fd); });
  }
}

bool Server::WaitFor(std::chrono::milliseconds timeout) {
  std::unique_lock lock(stop_mutex_);
  stop_cv_.wait_for(lock, timeout, [this] { return stop_requested_; });
  return stop_requested_;
}

void Server::RequestStop() {
  {
    std::lock_guard lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller: the first Stop() owns the teardown; nothing to do
    // beyond making sure waiters wake.
    RequestStop();
    return;
  }
  RequestStop();

  // 1. Stop accepting: shutdown() wakes a blocked accept(), then close.
  for (const int fd : listen_fds_) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  for (std::thread& thread : accept_threads_) {
    if (thread.joinable()) thread.join();
  }
  accept_threads_.clear();
  listen_fds_.clear();

  // 2. Sever live connections so their threads fall out of recv().
  std::vector<std::thread> conn_threads;
  {
    std::lock_guard lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_threads.swap(conn_threads_);
  }
  for (std::thread& thread : conn_threads) {
    if (thread.joinable()) thread.join();
  }

  // 3. Cancel the queued backlog (each task replies kShuttingDown to a
  //    connection that is already gone; the sends fail harmlessly).
  scheduler_.Stop();

  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::AcceptLoop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or unrecoverable
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    std::lock_guard lock(conn_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  wire::FrameAssembler assembler(options_.limits);
  char buffer[16 * 1024];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or connection severed
    assembler.Append(buffer, static_cast<std::size_t>(n));
    for (;;) {
      auto polled = assembler.Poll();
      if (!polled.ok()) {
        // Framing is desynchronized: report once (id 0 — the original id
        // is unrecoverable) and drop the connection.
        SendReply(fd, 0, wire::Status::kBadRequest,
                  polled.error().Render() + "\n");
        open = false;
        break;
      }
      if (!polled.value().has_value()) break;  // need more bytes
      if (!ServeFrame(fd, *polled.value())) {
        open = false;
        break;
      }
    }
  }
  {
    std::lock_guard lock(conn_mutex_);
    std::erase(conn_fds_, fd);
  }
  ::close(fd);
}

bool Server::ServeFrame(int fd, const wire::Frame& frame) {
  const std::span<const std::uint8_t> payload(
      reinterpret_cast<const std::uint8_t*>(frame.payload.data()),
      frame.payload.size());
  auto decoded =
      wire::DecodeRequestPayload(frame.header, payload, options_.limits);
  if (!decoded.ok()) {
    // The frame boundary was sound, only this payload is bad; the
    // connection may continue.
    return SendReply(fd, frame.header.id, wire::Status::kBadRequest,
                     decoded.error().Render() + "\n");
  }
  const wire::Request& request = decoded.value();

  if (request.kind == wire::FrameKind::kShutdownRequest) {
    if (!options_.allow_remote_shutdown) {
      return SendReply(fd, request.id, wire::Status::kBadRequest,
                       "remote shutdown is disabled\n");
    }
    SendReply(fd, request.id, wire::Status::kOk, "shutting down\n");
    RequestStop();
    return false;
  }

  using Reply = std::pair<wire::Status, std::string>;
  auto promise = std::make_shared<std::promise<Reply>>();
  std::future<Reply> future = promise->get_future();
  const auto deadline =
      request.deadline_ms > 0
          ? RequestScheduler::Clock::now() +
                std::chrono::milliseconds(request.deadline_ms)
          : RequestScheduler::Clock::time_point::max();

  const auto submitted = scheduler_.TrySubmit(
      [this, promise, request](TaskFate fate) {
        switch (fate) {
          case TaskFate::kRun:
            promise->set_value(HandleRequest(service_, request));
            break;
          case TaskFate::kExpired:
            promise->set_value(
                {wire::Status::kDeadlineExceeded, "deadline exceeded\n"});
            break;
          case TaskFate::kCancelled:
            promise->set_value(
                {wire::Status::kShuttingDown, "server shutting down\n"});
            break;
        }
      },
      deadline);

  switch (submitted) {
    case RequestScheduler::Submit::kQueueFull:
      return SendReply(fd, request.id, wire::Status::kOverloaded,
                       "server queue is full\n");
    case RequestScheduler::Submit::kStopped:
      return SendReply(fd, request.id, wire::Status::kShuttingDown,
                       "server shutting down\n");
    case RequestScheduler::Submit::kAccepted:
      break;
  }
  const Reply reply = future.get();
  return SendReply(fd, request.id, reply.first, reply.second);
}

bool Server::SendReply(int fd, std::uint64_t id, wire::Status status,
                       std::string_view body) {
  const std::string frame = wire::EncodeResponse(id, status, body);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  return SendAll(fd, frame.data(), frame.size());
}

}  // namespace riskroute::server
