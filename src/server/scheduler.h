// Bounded request scheduler with backpressure for riskroute_serverd.
//
// Connections submit decoded requests as tasks; a fixed set of workers
// drains them in FIFO order. The queue is bounded: a submit against a
// full queue is rejected immediately (the connection replies
// Status::kOverloaded) instead of growing an unbounded backlog — the
// reject-with-status backpressure contract. Every task carries an
// optional deadline; a task whose deadline has passed by the time a
// worker dequeues it is not executed (the connection replies
// kDeadlineExceeded). Stop() cancels whatever is still queued, invoking
// each task with TaskFate::kCancelled so waiting connections get their
// kShuttingDown reply rather than a hung future.
//
// Metrics (all volatile — queue occupancy depends on arrival timing):
// server.scheduler.{submitted,rejected_full,executed,expired,cancelled}
// counters and the server.scheduler.queue_depth_peak gauge.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace riskroute::server {

struct SchedulerOptions {
  /// Worker threads draining the queue. At least 1.
  std::size_t workers = 1;
  /// Requests allowed to wait beyond the ones workers are executing.
  /// 0 means a request is only accepted when a worker is idle.
  std::size_t queue_capacity = 64;
};

/// How a task left the scheduler.
enum class TaskFate {
  kRun,        // a worker executed it
  kExpired,    // its deadline passed while queued; not executed
  kCancelled,  // the scheduler stopped before a worker reached it
};

class RequestScheduler {
 public:
  using Clock = std::chrono::steady_clock;
  /// A task observes its fate and must fulfil its reply either way.
  using Task = std::function<void(TaskFate)>;

  enum class Submit {
    kAccepted,
    kQueueFull,  // reply kOverloaded
    kStopped,    // reply kShuttingDown
  };

  explicit RequestScheduler(const SchedulerOptions& options);
  ~RequestScheduler();  // Stop() + join
  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Non-blocking; kQueueFull when queued tasks == queue_capacity.
  /// `deadline` of Clock::time_point::max() means none.
  [[nodiscard]] Submit TrySubmit(Task task, Clock::time_point deadline);

  /// Stops workers and cancels the remaining queue. Idempotent; blocks
  /// until workers have joined and queued tasks saw kCancelled.
  void Stop();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const { return capacity_; }

 private:
  struct Item {
    Task task;
    Clock::time_point deadline;
  };

  void WorkerLoop();

  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  /// Workers currently executing a task. Each non-busy worker can absorb
  /// one task beyond the queue capacity (this is what makes capacity 0
  /// mean "accept only when a worker is idle") — counted as busy from
  /// dequeue to task completion, so a freshly constructed scheduler
  /// accepts immediately even before its workers first park.
  std::size_t busy_workers_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace riskroute::server
