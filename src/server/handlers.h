// Request handlers: the thin adapter from decoded wire::Requests to
// api::Service calls. One function, shared by the server's scheduler
// workers and by tests that want handler behavior without sockets.
#pragma once

#include <string>
#include <utility>

#include "api/service.h"
#include "server/wire.h"

namespace riskroute::server {

/// Executes one request against the service and returns the reply
/// status + body. The body of a kOk reply is the api response's `body`
/// — byte-identical to the equivalent CLI subcommand's stdout. Errors
/// map to: InvalidArgument (unknown PoP, bad field) -> kBadRequest;
/// disconnected route endpoints -> kBadRequest ("PoPs are not
/// connected\n", the CLI's stderr line); anything else -> kInternal.
/// Shutdown frames are the connection loop's business, not a handler's.
[[nodiscard]] std::pair<wire::Status, std::string> HandleRequest(
    const api::Service& service, const wire::Request& request);

}  // namespace riskroute::server
