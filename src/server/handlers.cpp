#include "server/handlers.h"

#include <chrono>
#include <exception>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"

namespace riskroute::server {
namespace {

obs::Counter& RequestCounter(wire::FrameKind kind) {
  const char* name = "server.requests.other";
  switch (kind) {
    case wire::FrameKind::kRouteRequest: name = "server.requests.route"; break;
    case wire::FrameKind::kRatiosRequest:
      name = "server.requests.ratios";
      break;
    case wire::FrameKind::kEnsembleRequest:
      name = "server.requests.ensemble";
      break;
    case wire::FrameKind::kEnsembleTriageRequest:
      name = "server.requests.ensemble_triage";
      break;
    case wire::FrameKind::kProvisionRequest:
      name = "server.requests.provision";
      break;
    case wire::FrameKind::kPingRequest: name = "server.requests.ping"; break;
    case wire::FrameKind::kStreamAdvisory:
      name = "server.requests.stream";
      break;
    default: break;
  }
  return obs::MetricsRegistry::Global().GetCounter(
      name, obs::Stability::kVolatile);
}

std::pair<wire::Status, std::string> Execute(const api::Service& service,
                                             const wire::Request& request) {
  switch (request.kind) {
    case wire::FrameKind::kRouteRequest: {
      const api::RouteResponse response = service.Route(request.route);
      if (!response.connected) {
        return {wire::Status::kBadRequest, "PoPs are not connected\n"};
      }
      return {wire::Status::kOk, response.body};
    }
    case wire::FrameKind::kRatiosRequest:
      return {wire::Status::kOk, service.Ratios(request.ratios).body};
    case wire::FrameKind::kEnsembleRequest:
    case wire::FrameKind::kEnsembleTriageRequest:
      // The decoder sets ensemble.triage for kind 8; one handler serves
      // both shapes.
      return {wire::Status::kOk, service.Ensemble(request.ensemble).body};
    case wire::FrameKind::kProvisionRequest:
      return {wire::Status::kOk, service.Provision(request.provision).body};
    case wire::FrameKind::kStreamAdvisory:
      return {wire::Status::kOk, service.StreamAdvisory(request.stream).body};
    case wire::FrameKind::kPingRequest:
      if (request.ping_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(request.ping_delay_ms));
      }
      return {wire::Status::kOk, "pong\n"};
    default:
      return {wire::Status::kBadRequest, "unhandled request kind\n"};
  }
}

}  // namespace

std::pair<wire::Status, std::string> HandleRequest(
    const api::Service& service, const wire::Request& request) {
  static obs::TraceScope scope(obs::MetricsRegistry::Global(),
                               "server.request");
  obs::TraceSpan span(scope);
  RequestCounter(request.kind).Add();
  try {
    return Execute(service, request);
  } catch (const InvalidArgument& e) {
    return {wire::Status::kBadRequest, std::string(e.what()) + "\n"};
  } catch (const std::exception& e) {
    return {wire::Status::kInternal, std::string(e.what()) + "\n"};
  }
}

}  // namespace riskroute::server
