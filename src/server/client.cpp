#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::server {
namespace {

std::string Errno(const char* op) {
  return util::Format("%s failed: %s", op, std::strerror(errno));
}

}  // namespace

Client Client::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument(util::Format(
        "unix socket path is %zu bytes; the OS limit is %zu", path.size(),
        sizeof(addr.sun_path) - 1));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(Errno("socket(AF_UNIX)"));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string detail = Errno("connect");
    ::close(fd);
    throw IoError("unix socket " + path + ": " + detail);
  }
  return Client(fd);
}

Client Client::ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgument("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(Errno("socket(AF_INET)"));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string detail = Errno("connect");
    ::close(fd);
    throw IoError(util::Format("tcp %s:%d: %s", host.c_str(), port,
                               detail.c_str()));
  }
  return Client(fd);
}

Client::Client(int fd) : fd_(fd) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      assembler_(std::move(other.assembler_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    assembler_ = std::move(other.assembler_);
  }
  return *this;
}

Client::Result Client::Call(wire::Request& request) {
  if (fd_ < 0) throw IoError("client socket is closed");
  request.id = next_id_++;
  const std::string encoded = wire::EncodeRequest(request);
  const char* data = encoded.data();
  std::size_t left = encoded.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(Errno("send"));
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }

  char buffer[16 * 1024];
  for (;;) {
    auto polled = assembler_.Poll();
    if (!polled.ok()) throw ParseError(polled.error().Render());
    if (polled.value().has_value()) {
      const wire::Frame& frame = *polled.value();
      const std::span<const std::uint8_t> payload(
          reinterpret_cast<const std::uint8_t*>(frame.payload.data()),
          frame.payload.size());
      auto response = wire::DecodeResponsePayload(frame.header, payload,
                                                  wire::ResponseLimits());
      if (!response.ok()) throw ParseError(response.error().Render());
      if (response.value().id != request.id) {
        throw ParseError(util::Format(
            "response id %llu does not match request id %llu",
            static_cast<unsigned long long>(response.value().id),
            static_cast<unsigned long long>(request.id)));
      }
      return Result{response.value().status, std::move(response.value().body)};
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw IoError("server closed the connection mid-reply");
    assembler_.Append(buffer, static_cast<std::size_t>(n));
  }
}

}  // namespace riskroute::server
