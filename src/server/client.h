// Blocking wire-protocol client for riskroute_serverd.
//
// A Client owns one connected socket. Call() encodes a wire::Request,
// assigns it the next request id, writes the frame, and blocks until the
// matching response frame arrives. The transport is strictly
// request/response in order, so id mismatches indicate a server bug and
// throw. Used by tools/riskroute_client.cpp, the loopback tests, and the
// warm-server benchmark.
#pragma once

#include <cstdint>
#include <string>

#include "server/wire.h"

namespace riskroute::server {

class Client {
 public:
  /// Connects to a Unix-domain socket. Throws IoError on failure.
  [[nodiscard]] static Client ConnectUnix(const std::string& path);
  /// Connects to a TCP host:port. Throws IoError on failure.
  [[nodiscard]] static Client ConnectTcp(const std::string& host, int port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct Result {
    wire::Status status = wire::Status::kInternal;
    std::string body;
  };

  /// Sends one request (overwriting `request.id` with the next id on this
  /// connection) and blocks for the reply. Throws IoError when the
  /// connection drops and ParseError when the response frame is
  /// malformed.
  Result Call(wire::Request& request);

 private:
  explicit Client(int fd);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  wire::FrameAssembler assembler_{wire::ResponseLimits()};
};

}  // namespace riskroute::server
