// riskroute_serverd: the persistent query daemon.
//
// A Server boots with a const api::Service& (the frozen engine is loaded
// once, typically from an engine snapshot) and then answers wire-protocol
// requests over a Unix-domain socket, a TCP loopback socket, or both. The
// accept loop hands each connection to its own thread; a connection reads
// frames through wire::FrameAssembler, decodes them with the defensive
// wire limits, and executes them through the bounded RequestScheduler —
// queue-full submits reply kOverloaded immediately, queued requests whose
// deadline lapses reply kDeadlineExceeded without executing, and requests
// still queued at shutdown reply kShuttingDown. Requests on one
// connection are answered strictly in order; concurrency comes from
// multiple connections sharing the scheduler's workers.
//
// Lifecycle: Start() binds and spawns the accept thread; WaitFor() lets a
// driver poll for a wire-initiated shutdown (a kShutdownRequest frame)
// while watching its own signals; Stop() tears everything down and is
// idempotent. The destructor calls Stop().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "server/scheduler.h"
#include "server/wire.h"

namespace riskroute::server {

struct ServerOptions {
  /// Unix-domain socket path; empty = no unix listener. The path is
  /// unlinked on bind (stale socket files) and again on Stop().
  std::string unix_path;
  /// TCP port on 127.0.0.1; -1 = no TCP listener, 0 = ephemeral (read
  /// the bound port back with tcp_port()).
  int tcp_port = -1;
  SchedulerOptions scheduler;
  wire::WireLimits limits;
  /// Honor wire kShutdownRequest frames (ops convenience; tests).
  bool allow_remote_shutdown = true;
};

class Server {
 public:
  /// `service` must outlive the server.
  Server(const api::Service& service, const ServerOptions& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and starts accepting. Throws
  /// util-style IoError when neither listener is configured or a bind
  /// fails.
  void Start();

  /// Waits up to `timeout` for a stop request (wire shutdown frame or a
  /// concurrent Stop()); returns true when one arrived. Poll this from
  /// the serving driver so process signals stay responsive.
  [[nodiscard]] bool WaitFor(std::chrono::milliseconds timeout);

  /// Stops accepting, severs open connections, cancels the queued
  /// backlog, joins every thread. Idempotent.
  void Stop();

  /// The TCP port actually bound (resolves port 0); -1 without TCP.
  [[nodiscard]] int tcp_port() const { return bound_tcp_port_; }
  [[nodiscard]] const std::string& unix_path() const {
    return options_.unix_path;
  }
  /// Requests answered so far (any status).
  [[nodiscard]] std::size_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop(int listen_fd);
  void ServeConnection(int fd);
  /// Decodes + executes one request frame; writes the reply. Returns
  /// false when the connection must close (protocol error, send failure,
  /// or a shutdown frame).
  bool ServeFrame(int fd, const wire::Frame& frame);
  bool SendReply(int fd, std::uint64_t id, wire::Status status,
                 std::string_view body);
  void RequestStop();

  const api::Service& service_;
  ServerOptions options_;
  RequestScheduler scheduler_;

  std::vector<int> listen_fds_;
  int bound_tcp_port_ = -1;
  std::vector<std::thread> accept_threads_;

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> requests_served_{0};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool started_ = false;
};

}  // namespace riskroute::server
