#include "server/scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace riskroute::server {
namespace {

/// Scheduler metric handles, resolved once. All volatile: queue depth and
/// rejection counts depend on arrival timing, not algorithmic work.
struct Metrics {
  obs::Counter& submitted;
  obs::Counter& rejected_full;
  obs::Counter& executed;
  obs::Counter& expired;
  obs::Counter& cancelled;
  obs::Gauge& queue_depth_peak;

  static Metrics& Get() {
    static Metrics metrics{
        obs::MetricsRegistry::Global().GetCounter(
            "server.scheduler.submitted", obs::Stability::kVolatile),
        obs::MetricsRegistry::Global().GetCounter(
            "server.scheduler.rejected_full", obs::Stability::kVolatile),
        obs::MetricsRegistry::Global().GetCounter(
            "server.scheduler.executed", obs::Stability::kVolatile),
        obs::MetricsRegistry::Global().GetCounter(
            "server.scheduler.expired", obs::Stability::kVolatile),
        obs::MetricsRegistry::Global().GetCounter(
            "server.scheduler.cancelled", obs::Stability::kVolatile),
        obs::MetricsRegistry::Global().GetGauge(
            "server.scheduler.queue_depth_peak", obs::Stability::kVolatile),
    };
    return metrics;
  }
};

}  // namespace

RequestScheduler::RequestScheduler(const SchedulerOptions& options)
    : capacity_(options.queue_capacity) {
  const std::size_t workers = std::max<std::size_t>(1, options.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RequestScheduler::~RequestScheduler() { Stop(); }

RequestScheduler::Submit RequestScheduler::TrySubmit(
    Task task, Clock::time_point deadline) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return Submit::kStopped;
    if (queue_.size() >= capacity_ + (workers_.size() - busy_workers_)) {
      Metrics::Get().rejected_full.Add();
      return Submit::kQueueFull;
    }
    queue_.push_back(Item{std::move(task), deadline});
    Metrics::Get().submitted.Add();
    Metrics::Get().queue_depth_peak.SetMax(
        static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return Submit::kAccepted;
}

void RequestScheduler::Stop() {
  std::deque<Item> cancelled;
  {
    std::lock_guard lock(mutex_);
    if (stopping_ && queue_.empty() && workers_.empty()) return;
    stopping_ = true;
    cancelled.swap(queue_);
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  for (Item& item : cancelled) {
    Metrics::Get().cancelled.Add();
    item.task(TaskFate::kCancelled);
  }
}

void RequestScheduler::WorkerLoop() {
  for (;;) {
    Item item;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // Stop() cancels the remaining queue itself
      item = std::move(queue_.front());
      queue_.pop_front();
      ++busy_workers_;
    }
    const bool expired = item.deadline != Clock::time_point::max() &&
                         Clock::now() > item.deadline;
    if (expired) {
      Metrics::Get().expired.Add();
      item.task(TaskFate::kExpired);
    } else {
      Metrics::Get().executed.Add();
      item.task(TaskFate::kRun);
    }
    {
      std::lock_guard lock(mutex_);
      --busy_workers_;
    }
  }
}

}  // namespace riskroute::server
