// Wire protocol of riskroute_serverd: compact length-prefixed binary
// frames with versioned framing, decoded through the same ParseResult
// discipline as every other untrusted-input boundary (PR 5).
//
// Frame layout (all integers little-endian, no padding):
//
//   offset  size  field
//   0       4     magic "RRW1"
//   4       2     version (kWireVersion)
//   6       2     kind (FrameKind)
//   8       8     request id (echoed verbatim in the response)
//   16      4     payload length
//   20      ...   payload (kind-specific)
//
// Request payloads open with a u32 deadline in milliseconds (0 = none),
// then the kind's fields in fixed order. Strings are u16 length + raw
// bytes. Response payloads are a u16 status followed by the body bytes.
//
// The encoding is canonical: fixed field order, no optional fields, no
// trailing bytes, booleans restricted to 0/1, every numeric field
// validated against its defensive limit on decode. An accepted frame
// therefore re-encodes to the exact input bytes — the round-trip oracle
// fuzz/harness_wire.cpp enforces. Decoders never throw on hostile bytes;
// rejects come back as ParseDiagnostics and are counted under
// `server.wire.rejects.<kind>`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "api/service.h"
#include "util/parse_result.h"

namespace riskroute::server::wire {

inline constexpr std::uint8_t kMagic[4] = {'R', 'R', 'W', '1'};
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;

/// Message kinds. Requests are < 100; kResponse answers every request.
enum class FrameKind : std::uint16_t {
  kRouteRequest = 1,
  kRatiosRequest = 2,
  kEnsembleRequest = 3,
  kProvisionRequest = 4,
  // Testing/ops aid: the server's worker sleeps delay_ms then answers
  // "pong" — the knob the backpressure and deadline tests turn.
  kPingRequest = 5,
  kShutdownRequest = 6,
  // Rolling incremental re-route: one advisory bulletin per frame
  // (existing kind values are frozen — corpus files carry them).
  kStreamAdvisory = 7,
  // Surrogate-triaged ensemble: the kEnsembleRequest fields plus the
  // integer triage knobs (pilot, audit_stride, base_rate in ppm). A new
  // kind rather than new fields on kind 3 — kind 3's byte layout is
  // frozen by the canonical corpus.
  kEnsembleTriageRequest = 8,
  kResponse = 100,
};

/// Response status. kOk carries the query body; every other status
/// carries a short diagnostic line.
enum class Status : std::uint16_t {
  kOk = 0,
  kBadRequest = 1,        // undecodable payload, unknown PoP, bad field
  kOverloaded = 2,        // scheduler queue full — retry later
  kDeadlineExceeded = 3,  // expired before a worker picked it up
  kInternal = 4,          // handler threw something unexpected
  kShuttingDown = 5,      // server stopping; request was not executed
};

[[nodiscard]] constexpr const char* ToString(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBadRequest: return "bad_request";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kInternal: return "internal";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

/// Defensive decode limits. Request-side callers keep the defaults; the
/// client raises max_payload for responses (ensemble bodies are large).
struct WireLimits {
  std::uint32_t max_payload = 64 * 1024;
  std::uint16_t max_string_bytes = 256;
  std::uint32_t max_scenarios = 1u << 20;
  std::uint32_t max_top = 10'000;
  std::uint32_t max_audit_stride = 1u << 20;
  std::uint32_t max_links = 64;
  std::uint32_t max_ping_delay_ms = 60'000;
  std::uint32_t max_deadline_ms = 3'600'000;
  /// Advisory bulletins are prose, not names: they get their own cap
  /// (real NHC advisories are a few KiB) instead of max_string_bytes.
  std::uint32_t max_bulletin_bytes = 32 * 1024;
};

/// Client-side limits: same field caps, room for large response bodies.
[[nodiscard]] inline WireLimits ResponseLimits() {
  WireLimits limits;
  limits.max_payload = 64u * 1024 * 1024;
  return limits;
}

/// A decoded request of any kind; `kind` selects which sub-request is
/// meaningful. Unused sub-requests keep their defaults so re-encoding a
/// decoded frame is well defined.
struct Request {
  FrameKind kind = FrameKind::kPingRequest;
  std::uint64_t id = 0;
  std::uint32_t deadline_ms = 0;  // 0 = no deadline
  api::RouteRequest route;
  api::RatiosRequest ratios;
  api::EnsembleRequest ensemble;
  api::ProvisionRequest provision;
  api::StreamAdvisoryRequest stream;
  std::uint32_t ping_delay_ms = 0;
};

/// A decoded response frame.
struct Response {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::string body;
};

/// Validated frame header (magic and version already checked).
struct FrameHeader {
  FrameKind kind = FrameKind::kPingRequest;
  std::uint64_t id = 0;
  std::uint32_t payload_len = 0;
};

// --- Encoding (always canonical) ---

[[nodiscard]] std::string EncodeRequest(const Request& request);
[[nodiscard]] std::string EncodeResponse(std::uint64_t id, Status status,
                                         std::string_view body);

// --- Decoding (ParseResult; never throws on hostile bytes) ---

/// Header of a frame whose first kFrameHeaderBytes bytes are available.
/// Rejects bad magic/version/kind and payload lengths over the limit.
[[nodiscard]] util::ParseResult<FrameHeader> DecodeFrameHeader(
    std::span<const std::uint8_t> bytes, const WireLimits& limits);

/// Payload of a request frame (the bytes after the header, exactly
/// header.payload_len of them).
[[nodiscard]] util::ParseResult<Request> DecodeRequestPayload(
    const FrameHeader& header, std::span<const std::uint8_t> payload,
    const WireLimits& limits);

/// Payload of a response frame.
[[nodiscard]] util::ParseResult<Response> DecodeResponsePayload(
    const FrameHeader& header, std::span<const std::uint8_t> payload,
    const WireLimits& limits);

/// One whole frame that must span `bytes` exactly (no trailing bytes) —
/// the single-shot entry point the fuzz harness drives.
struct Frame {
  FrameHeader header;
  std::string payload;
};
[[nodiscard]] util::ParseResult<Frame> DecodeSingleFrame(
    std::span<const std::uint8_t> bytes, const WireLimits& limits);

/// Incremental frame assembly for a connection's read loop. Append raw
/// socket bytes, then Poll until it returns no frame. A diagnostic from
/// Poll is fatal for the connection (framing is unrecoverable once the
/// byte stream desynchronizes).
class FrameAssembler {
 public:
  explicit FrameAssembler(const WireLimits& limits) : limits_(limits) {}

  void Append(const char* data, std::size_t size) {
    buffer_.append(data, size);
  }

  /// nullopt = need more bytes; a value = one complete frame consumed
  /// from the buffer; a diagnostic = the stream is corrupt.
  [[nodiscard]] util::ParseResult<std::optional<Frame>> Poll();

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  WireLimits limits_;
  std::string buffer_;
};

}  // namespace riskroute::server::wire
