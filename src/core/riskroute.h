// RiskRoute: minimum bit-risk-mile routing (paper Sections 5, 6.1, 7).
//
// The bit-risk miles of a path p = {p_1..p_K} between PoPs i and j is
//
//   r_ij(p) = sum_{x=2..K} [ d(p_{x-1}, p_x)
//                            + alpha_ij (lambda_h o_h(p_x)
//                                        + lambda_f o_f(p_x)) ]     (Eq 1)
//
// and RiskRoute picks  p_rr = argmin_p r_ij(p)  over all network paths
// (Eq 3), which is a shortest-path problem with edge weight
// miles(u,v) + alpha_ij * score(v). The evaluation compares RiskRoute
// against geographic shortest paths via the risk-reduction ratio (Eq 5)
// and distance-increase ratio (Eq 6).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/path_metrics.h"
#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/shortest_path.h"
#include "util/thread_pool.h"

namespace riskroute::core {

/// A routed pair: the chosen path plus its PathMetrics (miles and Eq 1
/// bit_risk_miles).
struct RouteResult : PathMetrics {
  Path path;

  /// Deprecated: pre-PathMetrics spelling of `miles`.
  [[nodiscard]] double bit_miles() const { return miles; }
};

/// Aggregated Eq 5 / Eq 6 ratios over a pair population.
struct RatioReport {
  /// Eq 5: 1 - mean_{pairs} r(p_rr)/r(p_shortest). Positive = RiskRoute
  /// reduces bit-risk miles versus shortest-path routing.
  double risk_reduction_ratio = 0.0;
  /// Eq 6: mean_{pairs} d(p_rr)/d(p_shortest) - 1. Positive = RiskRoute
  /// pays extra mileage.
  double distance_increase_ratio = 0.0;
  std::size_t pair_count = 0;
};

/// Stateless-by-construction router over a risk graph. The graph is held
/// by reference; node scores are read live, so callers may mutate forecast
/// risks or edges between calls.
class RiskRouter {
 public:
  RiskRouter(const RiskGraph& graph, const RiskParams& params);

  /// lambda_h * o_h(v) + lambda_f * o_f(v): the impact-unscaled node risk.
  [[nodiscard]] double NodeScore(std::size_t v) const;

  /// alpha_ij = c_i + c_j.
  [[nodiscard]] double Alpha(std::size_t i, std::size_t j) const;

  /// Eq 1 evaluated on an explicit path; endpoints define alpha. Throws
  /// InvalidArgument on an empty path or one that uses a missing edge.
  [[nodiscard]] double PathBitRiskMiles(const Path& path) const;

  /// Plain mileage of an explicit path.
  [[nodiscard]] double PathMiles(const Path& path) const;

  /// Eq 3: the minimum bit-risk-mile route; nullopt when disconnected.
  [[nodiscard]] std::optional<RouteResult> MinRiskRoute(std::size_t i,
                                                        std::size_t j) const;

  /// Geographic shortest path between the same pair, with its Eq 1 value
  /// (the baseline the paper compares against).
  [[nodiscard]] std::optional<RouteResult> ShortestRoute(std::size_t i,
                                                         std::size_t j) const;

  [[nodiscard]] const RiskGraph& graph() const { return graph_; }
  [[nodiscard]] const RiskParams& params() const { return params_; }

 private:
  const RiskGraph& graph_;
  RiskParams params_;
};

/// Computes Eq 5 / Eq 6 ratios over ordered (source, target) pairs drawn
/// from the given sets (source == target pairs are skipped; the paper's
/// 1/N^2 normalization over the diagonal contributes nothing and is
/// dropped). Pairs where either routing fails to connect are skipped.
/// Supplying a thread pool parallelizes over sources.
[[nodiscard]] RatioReport ComputeRatios(const RiskGraph& graph,
                                        const RiskParams& params,
                                        const std::vector<std::size_t>& sources,
                                        const std::vector<std::size_t>& targets,
                                        util::ThreadPool* pool = nullptr);

/// All-pairs intradomain ratios (Eq 5/6 with every PoP as both source and
/// target) — the Table 2 per-network computation.
[[nodiscard]] RatioReport ComputeIntradomainRatios(const RiskGraph& graph,
                                                   const RiskParams& params,
                                                   util::ThreadPool* pool = nullptr);

/// The Eq 4 objective: sum over unordered PoP pairs of the *minimum*
/// bit-risk miles between them. Provisioning minimizes this.
[[nodiscard]] double AggregateMinBitRisk(const RiskGraph& graph,
                                         const RiskParams& params,
                                         util::ThreadPool* pool = nullptr);

/// Generalized Eq 4 objective over an explicit (source, target) pair
/// population: sum of minimum bit-risk miles over ordered pairs with
/// source != target. Used by the peering recommendation, whose objective
/// is the interdomain lower bound from a network's PoPs to all regional
/// PoPs (paper Section 6.3).
[[nodiscard]] double SumMinBitRisk(const RiskGraph& graph,
                                   const RiskParams& params,
                                   const std::vector<std::size_t>& sources,
                                   const std::vector<std::size_t>& targets,
                                   util::ThreadPool* pool = nullptr);

}  // namespace riskroute::core
