// Yen's k-shortest loopless paths over a RiskGraph.
//
// Substrate for the multi-objective extension the paper sketches in
// Section 6.4 ("the RiskRoute framework could easily be expanded to
// include multiple objective functions that would balance risk and
// SLA-related issues such as latency"): enumerating the k best paths under
// one weight exposes the candidate set over which other objectives are
// traded off, and is also the standard building block for MPLS explicit
// backup paths (Section 3.1).
#pragma once

#include <cstddef>
#include <vector>

#include "core/path_metrics.h"
#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "core/shortest_path.h"

namespace riskroute::core {

/// One enumerated path with its weight under the enumeration objective,
/// plus the shared PathMetrics. The engine variant fills miles and
/// bit_risk_miles from the frozen planes; the EdgeWeightFn variant has no
/// risk model, so there the PathMetrics base stays zero.
struct WeightedPath : PathMetrics {
  Path path;
  double weight = 0.0;
};

/// Yen's algorithm: up to `k` loopless paths from `source` to `target` in
/// ascending weight order (fewer if the graph admits fewer). `weight` must
/// be non-negative. Throws InvalidArgument on bad nodes or k == 0.
[[nodiscard]] std::vector<WeightedPath> KShortestPaths(
    const RiskGraph& graph, std::size_t source, std::size_t target,
    std::size_t k, const EdgeWeightFn& weight);

/// Engine variant under weight miles + alpha * score (alpha = 0 is the
/// distance metric). Spur masking runs as EdgeOverlay removals/disables on
/// the frozen CSR — no masked-weight callbacks. An optional `base` overlay
/// (e.g. a failure scenario) applies to every search; spur masks layer on
/// top of it.
[[nodiscard]] std::vector<WeightedPath> KShortestPaths(
    const RouteEngine& engine, std::size_t source, std::size_t target,
    std::size_t k, double alpha, const EdgeOverlay* base = nullptr);

}  // namespace riskroute::core
