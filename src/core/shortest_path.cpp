#include "core/shortest_path.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::core {

void DijkstraWorkspace::Prepare(const RiskGraph& graph, std::size_t source,
                                std::optional<std::size_t> target) {
  const std::size_t n = graph.node_count();
  if (source >= n) {
    throw InvalidArgument(util::Format("Dijkstra source %zu out of range", source));
  }
  if (target && *target >= n) {
    throw InvalidArgument(util::Format("Dijkstra target %zu out of range", *target));
  }
  source_ = source;
  dist_.assign(n, Infinity());
  parent_.assign(n, n);  // n = "no parent"
  settled_.assign(n, false);
  dist_[source] = 0.0;
}

double DijkstraWorkspace::DistanceTo(std::size_t node) const {
  if (node >= dist_.size()) {
    throw InvalidArgument(util::Format("DistanceTo: node %zu out of range", node));
  }
  return dist_[node];
}

bool DijkstraWorkspace::Reached(std::size_t node) const {
  return node < dist_.size() && dist_[node] < Infinity();
}

Path DijkstraWorkspace::PathTo(std::size_t node) const {
  if (!Reached(node)) {
    throw InvalidArgument(util::Format("PathTo: node %zu not reached", node));
  }
  Path path;
  std::size_t cursor = node;
  const std::size_t none = parent_.size();
  while (cursor != source_) {
    path.push_back(cursor);
    cursor = parent_[cursor];
    if (cursor == none) throw InternalError("broken parent chain in Dijkstra");
  }
  path.push_back(source_);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<Path> ShortestPathWith(const RiskGraph& graph, std::size_t source,
                                 std::size_t target, const EdgeWeightFn& weight) {
  // Pooled per-thread scratch: repeated convenience calls (examples, CLI,
  // Yen's first path) stop paying a fresh workspace allocation each time.
  thread_local DijkstraWorkspace workspace;
  workspace.Run(graph, source, weight, target);
  if (!workspace.Reached(target)) return std::nullopt;
  return workspace.PathTo(target);
}

}  // namespace riskroute::core
