// RouteEngine snapshot serialization.
//
// Format (version 1, little-endian, SoA):
//
//   header (128 bytes)
//     [0]   char     magic[8]      "RRENGSNP"
//     [8]   u32      version       1
//     [12]  u32      header_bytes  128
//     [16]  u64      node_count
//     [24]  u64      edge_count    (directed)
//     [32]  u64      landmark_count
//     [40]  u64      names_bytes   (total name-blob length)
//     [48]  f64      lambda_historical
//     [56]  f64      lambda_forecast
//     [64]  u64      checksum      FNV-1a64 over every snapshot byte
//                                  except these eight
//     [72]  u64      total_bytes   (whole snapshot, for truncation checks)
//     [80]  u8[48]   reserved, zero
//
//   sections, in this order, each starting on a 64-byte boundary (zero
//   padding between; the file end is padded to 64 as well):
//     row_offsets   u32 x (node_count + 1)
//     col           u32 x edge_count
//     miles         f64 x edge_count
//     impact        f64 x node_count
//     historical    f64 x node_count
//     forecast      f64 x node_count
//     latitude      f64 x node_count
//     longitude     f64 x node_count
//     landmark_ids  u32 x landmark_count
//     landmark_miles f64 x (node_count * landmark_count), node-major
//     name_offsets  u32 x (node_count + 1)
//     name_blob     u8 x names_bytes
//
// The risk plane and node scores are derived state and are rebuilt on
// load through the same RebuildRiskPlane expression the constructor uses,
// so a loaded engine's sweeps are bitwise identical to the saved one's.
//
// The 64-byte section alignment plus the raw-SoA layout keep the format
// mmap-ready: a future server can map the file and point the CSR spans
// straight into it without a deserialization pass.
//
// Canonicality. The writer emits exactly one byte sequence per engine
// state, and the loader rejects anything the writer would not produce —
// wrong magic/version/sizes, checksum mismatches, nonzero padding,
// structurally invalid arrays. Every accepted input therefore re-saves
// byte-identically, a property the snapshot fuzz harness asserts on each
// accepted corpus entry.

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/route_engine.h"
#include "geo/geo_point.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/parse_result.h"
#include "util/strings.h"

namespace riskroute::core {
namespace {

constexpr char kMagic[8] = {'R', 'R', 'E', 'N', 'G', 'S', 'N', 'P'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kHeaderBytes = 128;
constexpr std::size_t kAlign = 64;
constexpr std::size_t kChecksumOffset = 64;

using util::ParseDiagnostic;
using util::ParseErrorKind;

std::size_t AlignUp(std::size_t offset) {
  return (offset + (kAlign - 1)) & ~(kAlign - 1);
}

/// Appends raw little-endian element bytes after zero-padding to the
/// section boundary. The build host is little-endian (asserted at load by
/// the magic/checksum pair: a byte-swapped writer cannot produce a
/// snapshot this loader accepts).
template <typename T>
void AppendSection(std::string& out, const T* data, std::size_t count) {
  out.resize(AlignUp(out.size()), '\0');
  if (count != 0) {
    out.append(reinterpret_cast<const char*>(data), count * sizeof(T));
  }
}

template <typename T>
void PutAt(std::string& out, std::size_t offset, T value) {
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

/// Bounds-checked, alignment-aware section reader over the snapshot span.
struct SectionCursor {
  std::span<const std::uint8_t> bytes;
  std::size_t offset = kHeaderBytes;
  ParseDiagnostic diag;
  bool failed = false;

  bool Fail(ParseErrorKind kind, std::string message) {
    if (!failed) {
      diag = ParseDiagnostic{kind, std::move(message), offset, 0, 0};
      failed = true;
    }
    return false;
  }

  /// Advances over the alignment gap (must be zero bytes) and reads
  /// `count` elements of T into `dst`. Element counts are validated
  /// against the remaining bytes before any multiplication can overflow.
  template <typename T>
  bool Read(std::vector<T>& dst, std::uint64_t count, const char* what) {
    if (failed) return false;
    const std::size_t aligned = AlignUp(offset);
    if (aligned > bytes.size()) {
      return Fail(ParseErrorKind::kBadSyntax,
                  util::Format("snapshot truncated before %s section", what));
    }
    for (std::size_t i = offset; i < aligned; ++i) {
      if (bytes[i] != 0) {
        return Fail(ParseErrorKind::kBadValue,
                    util::Format("nonzero padding before %s section", what));
      }
    }
    offset = aligned;
    const std::size_t remaining = bytes.size() - offset;
    if (count > remaining / sizeof(T)) {
      return Fail(
          ParseErrorKind::kBadSyntax,
          util::Format("snapshot truncated inside %s section", what));
    }
    dst.resize(static_cast<std::size_t>(count));
    if (count != 0) {
      std::memcpy(dst.data(), bytes.data() + offset,
                  static_cast<std::size_t>(count) * sizeof(T));
      offset += static_cast<std::size_t>(count) * sizeof(T);
    }
    return true;
  }

  /// Consumes the final padding; the snapshot must end exactly here.
  bool Finish() {
    if (failed) return false;
    const std::size_t aligned = AlignUp(offset);
    if (aligned != bytes.size()) {
      return Fail(ParseErrorKind::kBadSyntax,
                  "snapshot size does not match its sections");
    }
    for (std::size_t i = offset; i < aligned; ++i) {
      if (bytes[i] != 0) {
        return Fail(ParseErrorKind::kBadValue, "nonzero trailing padding");
      }
    }
    offset = aligned;
    return true;
  }
};

template <typename T>
T HeaderField(std::span<const std::uint8_t> bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

util::ParseResult<RouteEngine> Reject(ParseDiagnostic diag) {
  util::ingest::CountRejected("snapshot", diag.kind);
  return util::ParseResult<RouteEngine>(std::move(diag));
}

util::ParseResult<RouteEngine> Reject(ParseErrorKind kind, std::string message,
                                      std::size_t byte_offset = 0) {
  return Reject(ParseDiagnostic{kind, std::move(message), byte_offset, 0, 0});
}

bool AllFiniteNonNegative(const std::vector<double>& values) {
  for (const double v : values) {
    if (!std::isfinite(v) || v < 0.0) return false;
  }
  return true;
}

}  // namespace

std::uint64_t RouteEngine::SnapshotChecksum(std::span<const std::uint8_t> bytes,
                                            std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string RouteEngine::SnapshotBytes() const {
  const std::size_t n = node_count();
  const std::size_t k = landmark_ids_.size();

  std::string out(kHeaderBytes, '\0');
  std::memcpy(out.data(), kMagic, sizeof(kMagic));
  PutAt(out, 8, kVersion);
  PutAt(out, 12, kHeaderBytes);
  PutAt(out, 16, static_cast<std::uint64_t>(n));
  PutAt(out, 24, static_cast<std::uint64_t>(col_.size()));
  PutAt(out, 32, static_cast<std::uint64_t>(k));
  PutAt(out, 48, params_.lambda_historical);
  PutAt(out, 56, params_.lambda_forecast);

  AppendSection(out, row_offsets_.data(), n + 1);
  AppendSection(out, col_.data(), col_.size());
  AppendSection(out, miles_.data(), miles_.size());
  AppendSection(out, impact_.data(), n);
  AppendSection(out, historical_.data(), n);
  AppendSection(out, forecast_.data(), n);
  std::vector<double> axis(n);
  for (std::size_t v = 0; v < n; ++v) axis[v] = location_[v].latitude();
  AppendSection(out, axis.data(), n);
  for (std::size_t v = 0; v < n; ++v) axis[v] = location_[v].longitude();
  AppendSection(out, axis.data(), n);
  AppendSection(out, landmark_ids_.data(), k);
  AppendSection(out, landmark_miles_.data(), landmark_miles_.size());

  std::vector<std::uint32_t> name_offsets(n + 1, 0);
  std::string blob;
  for (std::size_t v = 0; v < n; ++v) {
    blob += name_[v];
    name_offsets[v + 1] = static_cast<std::uint32_t>(blob.size());
  }
  PutAt(out, 40, static_cast<std::uint64_t>(blob.size()));
  AppendSection(out, name_offsets.data(), n + 1);
  AppendSection(out, blob.data(), blob.size());
  out.resize(AlignUp(out.size()), '\0');
  PutAt(out, 72, static_cast<std::uint64_t>(out.size()));

  const auto* data = reinterpret_cast<const std::uint8_t*>(out.data());
  std::uint64_t checksum =
      SnapshotChecksum(std::span(data, kChecksumOffset));
  checksum = SnapshotChecksum(
      std::span(data + kChecksumOffset + 8, out.size() - kChecksumOffset - 8),
      checksum);
  PutAt(out, kChecksumOffset, checksum);
  return out;
}

void RouteEngine::SaveSnapshot(std::ostream& out) const {
  const std::string bytes = SnapshotBytes();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw InternalError("RouteEngine::SaveSnapshot: write failed");
  obs::MetricsRegistry::Global()
      .GetCounter("core.route_engine.snapshot_saves")
      .Add(1);
}

void RouteEngine::SaveSnapshotFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw InvalidArgument("RouteEngine::SaveSnapshotFile: cannot open " + path);
  }
  SaveSnapshot(out);
}

util::ParseResult<RouteEngine> RouteEngine::LoadSnapshot(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Reject(ParseErrorKind::kBadHeader,
                  util::Format("snapshot header truncated: %zu bytes",
                               bytes.size()));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Reject(ParseErrorKind::kBadHeader, "bad snapshot magic");
  }
  const auto version = HeaderField<std::uint32_t>(bytes, 8);
  if (version != kVersion) {
    return Reject(ParseErrorKind::kBadValue,
                  util::Format("unsupported snapshot version %u",
                               static_cast<unsigned>(version)),
                  8);
  }
  if (HeaderField<std::uint32_t>(bytes, 12) != kHeaderBytes) {
    return Reject(ParseErrorKind::kBadHeader, "bad snapshot header size", 12);
  }
  const auto node_count = HeaderField<std::uint64_t>(bytes, 16);
  const auto edge_count = HeaderField<std::uint64_t>(bytes, 24);
  const auto landmark_count = HeaderField<std::uint64_t>(bytes, 32);
  const auto names_bytes = HeaderField<std::uint64_t>(bytes, 40);
  const double lambda_h = HeaderField<double>(bytes, 48);
  const double lambda_f = HeaderField<double>(bytes, 56);
  const auto total_bytes = HeaderField<std::uint64_t>(bytes, 72);
  for (std::size_t i = 80; i < kHeaderBytes; ++i) {
    if (bytes[i] != 0) {
      return Reject(ParseErrorKind::kBadValue, "nonzero reserved header bytes",
                    i);
    }
  }
  if (total_bytes != bytes.size()) {
    return Reject(
        ParseErrorKind::kBadSyntax,
        util::Format("snapshot truncated: header says %llu bytes, have %zu",
                     static_cast<unsigned long long>(total_bytes),
                     bytes.size()),
        72);
  }
  // The same CSR capacity limits the freezing constructor enforces, plus
  // k <= n (farthest-point selection never repeats a node).
  constexpr std::uint64_t kMaxU32 = std::numeric_limits<std::uint32_t>::max();
  if (node_count >= kMaxU32 || edge_count > kMaxU32 ||
      landmark_count > node_count || names_bytes > kMaxU32) {
    return Reject(ParseErrorKind::kLimitExceeded,
                  "snapshot counts exceed engine limits", 16);
  }
  if (!std::isfinite(lambda_h) || lambda_h < 0.0 || !std::isfinite(lambda_f) ||
      lambda_f < 0.0) {
    return Reject(ParseErrorKind::kBadValue,
                  "snapshot lambdas must be finite and non-negative", 48);
  }

  RouteEngine engine;
  engine.params_.lambda_historical = lambda_h;
  engine.params_.lambda_forecast = lambda_f;

  SectionCursor cursor{bytes, kHeaderBytes, {}, false};
  std::vector<double> lat;
  std::vector<double> lon;
  std::vector<std::uint32_t> name_offsets;
  std::vector<std::uint8_t> blob;
  cursor.Read(engine.row_offsets_, node_count + 1, "row_offsets");
  cursor.Read(engine.col_, edge_count, "col");
  cursor.Read(engine.miles_, edge_count, "miles");
  cursor.Read(engine.impact_, node_count, "impact");
  cursor.Read(engine.historical_, node_count, "historical");
  cursor.Read(engine.forecast_, node_count, "forecast");
  cursor.Read(lat, node_count, "latitude");
  cursor.Read(lon, node_count, "longitude");
  cursor.Read(engine.landmark_ids_, landmark_count, "landmark_ids");
  cursor.Read(engine.landmark_miles_, node_count * landmark_count,
              "landmark_miles");
  cursor.Read(name_offsets, node_count + 1, "name_offsets");
  cursor.Read(blob, names_bytes, "name_blob");
  if (!cursor.Finish()) return Reject(cursor.diag);

  std::uint64_t checksum =
      SnapshotChecksum(bytes.subspan(0, kChecksumOffset));
  checksum = SnapshotChecksum(bytes.subspan(kChecksumOffset + 8), checksum);
  if (checksum != HeaderField<std::uint64_t>(bytes, kChecksumOffset)) {
    return Reject(ParseErrorKind::kBadValue, "snapshot checksum mismatch",
                  kChecksumOffset);
  }

  // Structural validation: exactly what the freezing constructor would
  // have produced.
  if (engine.row_offsets_.front() != 0 ||
      engine.row_offsets_.back() != edge_count) {
    return Reject(ParseErrorKind::kBadValue, "CSR row offsets out of bounds");
  }
  for (std::size_t u = 0; u + 1 < engine.row_offsets_.size(); ++u) {
    if (engine.row_offsets_[u] > engine.row_offsets_[u + 1]) {
      return Reject(ParseErrorKind::kBadValue,
                    "CSR row offsets not monotone");
    }
  }
  for (const std::uint32_t head : engine.col_) {
    if (head >= node_count) {
      return Reject(ParseErrorKind::kBadValue, "CSR edge head out of range");
    }
  }
  if (!AllFiniteNonNegative(engine.miles_)) {
    return Reject(ParseErrorKind::kBadValue,
                  "edge mileage must be finite and non-negative");
  }
  if (!AllFiniteNonNegative(engine.impact_) ||
      !AllFiniteNonNegative(engine.historical_) ||
      !AllFiniteNonNegative(engine.forecast_)) {
    return Reject(ParseErrorKind::kBadValue,
                  "node attributes must be finite and non-negative");
  }
  for (std::size_t v = 0; v < node_count; ++v) {
    if (!geo::IsValidLatLon(lat[v], lon[v])) {
      return Reject(ParseErrorKind::kBadValue,
                    util::Format("node %zu location out of range", v));
    }
  }
  for (const std::uint32_t id : engine.landmark_ids_) {
    if (id >= node_count) {
      return Reject(ParseErrorKind::kBadValue, "landmark id out of range");
    }
  }
  for (const double d : engine.landmark_miles_) {
    // +inf marks a disconnected (landmark, node) pair; NaN and negatives
    // would poison the A* bounds.
    if (std::isnan(d) || d < 0.0) {
      return Reject(ParseErrorKind::kBadValue,
                    "landmark distances must be non-negative");
    }
  }
  if (name_offsets.front() != 0 || name_offsets.back() != names_bytes) {
    return Reject(ParseErrorKind::kBadValue, "name offsets out of bounds");
  }
  for (std::size_t v = 0; v + 1 < name_offsets.size(); ++v) {
    if (name_offsets[v] > name_offsets[v + 1]) {
      return Reject(ParseErrorKind::kBadValue, "name offsets not monotone");
    }
  }

  engine.location_.reserve(node_count);
  for (std::size_t v = 0; v < node_count; ++v) {
    engine.location_.emplace_back(lat[v], lon[v]);
  }
  engine.name_.resize(node_count);
  const char* const blob_chars =
      blob.empty() ? "" : reinterpret_cast<const char*>(blob.data());
  for (std::size_t v = 0; v < node_count; ++v) {
    engine.name_[v].assign(blob_chars + name_offsets[v],
                           name_offsets[v + 1] - name_offsets[v]);
  }
  engine.node_score_.resize(node_count);
  engine.risk_.resize(engine.col_.size());
  engine.RebuildRiskPlane();

  util::ingest::CountAccepted("snapshot");
  obs::MetricsRegistry::Global()
      .GetCounter("core.route_engine.snapshot_loads")
      .Add(1);
  return util::ParseResult<RouteEngine>(std::move(engine));
}

util::ParseResult<RouteEngine> RouteEngine::LoadSnapshotFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Reject(ParseErrorKind::kEmptyInput,
                  "cannot open snapshot file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();
  return LoadSnapshot(std::span(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

}  // namespace riskroute::core
