#include "core/riskroute.h"

#include "core/route_engine.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::core {
namespace {

/// Edge weight for a fixed alpha: miles + alpha * score(v). Kept for the
/// single-pair convenience routes; the batched sweeps run on RouteEngine's
/// precomputed planes instead.
struct BitRiskWeight {
  const RiskGraph* graph;
  RiskParams params;
  double alpha;

  double operator()(std::size_t, const RiskEdge& edge) const {
    const RiskNode& to = graph->node(edge.to);
    return edge.miles + alpha * (params.lambda_historical * to.historical_risk +
                                 params.lambda_forecast * to.forecast_risk);
  }
};

}  // namespace

RiskRouter::RiskRouter(const RiskGraph& graph, const RiskParams& params)
    : graph_(graph), params_(params) {
  if (params.lambda_historical < 0.0 || params.lambda_forecast < 0.0) {
    throw InvalidArgument("RiskParams: lambdas must be non-negative");
  }
}

double RiskRouter::NodeScore(std::size_t v) const {
  const RiskNode& node = graph_.node(v);
  return params_.lambda_historical * node.historical_risk +
         params_.lambda_forecast * node.forecast_risk;
}

double RiskRouter::Alpha(std::size_t i, std::size_t j) const {
  return graph_.node(i).impact_fraction + graph_.node(j).impact_fraction;
}

double RiskRouter::PathBitRiskMiles(const Path& path) const {
  if (path.empty()) throw InvalidArgument("PathBitRiskMiles: empty path");
  const double alpha = Alpha(path.front(), path.back());
  double total = 0.0;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t u = path[k - 1];
    const std::size_t v = path[k];
    bool found = false;
    for (const RiskEdge& edge : graph_.OutEdges(u)) {
      if (edge.to == v) {
        total += edge.miles + alpha * NodeScore(v);
        found = true;
        break;
      }
    }
    if (!found) {
      throw InvalidArgument(
          util::Format("PathBitRiskMiles: missing edge (%zu, %zu)", u, v));
    }
  }
  return total;
}

double RiskRouter::PathMiles(const Path& path) const {
  if (path.empty()) throw InvalidArgument("PathMiles: empty path");
  double total = 0.0;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t u = path[k - 1];
    const std::size_t v = path[k];
    bool found = false;
    for (const RiskEdge& edge : graph_.OutEdges(u)) {
      if (edge.to == v) {
        total += edge.miles;
        found = true;
        break;
      }
    }
    if (!found) {
      throw InvalidArgument(util::Format("PathMiles: missing edge (%zu, %zu)", u, v));
    }
  }
  return total;
}

std::optional<RouteResult> RiskRouter::MinRiskRoute(std::size_t i,
                                                    std::size_t j) const {
  thread_local DijkstraWorkspace workspace;
  workspace.Run(graph_, i, BitRiskWeight{&graph_, params_, Alpha(i, j)}, j);
  if (!workspace.Reached(j)) return std::nullopt;
  RouteResult result;
  result.path = workspace.PathTo(j);
  result.bit_risk_miles = workspace.DistanceTo(j);
  result.miles = PathMiles(result.path);
  return result;
}

std::optional<RouteResult> RiskRouter::ShortestRoute(std::size_t i,
                                                     std::size_t j) const {
  thread_local DijkstraWorkspace workspace;
  workspace.Run(graph_, i, DistanceWeight, j);
  if (!workspace.Reached(j)) return std::nullopt;
  RouteResult result;
  result.path = workspace.PathTo(j);
  result.miles = workspace.DistanceTo(j);
  result.bit_risk_miles = PathBitRiskMiles(result.path);
  return result;
}

// The batched sweeps below freeze the graph once and run on the engine's
// CSR planes; results are bitwise identical to the per-pair
// DijkstraWorkspace loops they replaced (see route_engine.h).

RatioReport ComputeRatios(const RiskGraph& graph, const RiskParams& params,
                          const std::vector<std::size_t>& sources,
                          const std::vector<std::size_t>& targets,
                          util::ThreadPool* pool) {
  const RouteEngine engine(graph, params);
  return engine.ComputeRatios(sources, targets, pool);
}

RatioReport ComputeIntradomainRatios(const RiskGraph& graph,
                                     const RiskParams& params,
                                     util::ThreadPool* pool) {
  std::vector<std::size_t> everyone(graph.node_count());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  return ComputeRatios(graph, params, everyone, everyone, pool);
}

double SumMinBitRisk(const RiskGraph& graph, const RiskParams& params,
                     const std::vector<std::size_t>& sources,
                     const std::vector<std::size_t>& targets,
                     util::ThreadPool* pool) {
  const RouteEngine engine(graph, params);
  return engine.SumMinBitRisk(sources, targets, pool);
}

double AggregateMinBitRisk(const RiskGraph& graph, const RiskParams& params,
                           util::ThreadPool* pool) {
  const RouteEngine engine(graph, params);
  return engine.AggregateMinBitRisk(pool);
}

}  // namespace riskroute::core
