#include "core/riskroute.h"

#include <atomic>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::core {
namespace {

/// Per-source accumulation shared by the ratio computations.
struct SourceSums {
  double risk_ratio_sum = 0.0;      // sum of r(p_rr)/r(p_short)
  double distance_ratio_sum = 0.0;  // sum of d(p_rr)/d(p_short)
  std::size_t pairs = 0;
};

/// Edge weight for a fixed alpha: miles + alpha * score(v).
struct BitRiskWeight {
  const RiskGraph* graph;
  RiskParams params;
  double alpha;

  double operator()(std::size_t, const RiskEdge& edge) const {
    const RiskNode& to = graph->node(edge.to);
    return edge.miles + alpha * (params.lambda_historical * to.historical_risk +
                                 params.lambda_forecast * to.forecast_risk);
  }
};

/// Processes every target for one source; used by both ComputeRatios and
/// AggregateMinBitRisk-style sweeps.
SourceSums RatioSumsForSource(const RiskGraph& graph, const RiskParams& params,
                              std::size_t source,
                              const std::vector<std::size_t>& targets,
                              DijkstraWorkspace& distance_ws,
                              DijkstraWorkspace& risk_ws) {
  SourceSums sums;
  const RiskRouter router(graph, params);
  // One pure-distance Dijkstra covers every target's shortest path.
  distance_ws.Run(graph, source, DistanceWeight);
  for (const std::size_t target : targets) {
    if (target == source || !distance_ws.Reached(target)) continue;
    const Path shortest = distance_ws.PathTo(target);
    const double shortest_miles = distance_ws.DistanceTo(target);
    const double shortest_bit_risk = router.PathBitRiskMiles(shortest);
    if (shortest_bit_risk <= 0.0 || shortest_miles <= 0.0) continue;

    const double alpha = router.Alpha(source, target);
    risk_ws.Run(graph, source, BitRiskWeight{&graph, params, alpha}, target);
    if (!risk_ws.Reached(target)) continue;
    const double rr_bit_risk = risk_ws.DistanceTo(target);
    const double rr_miles = router.PathMiles(risk_ws.PathTo(target));

    sums.risk_ratio_sum += rr_bit_risk / shortest_bit_risk;
    sums.distance_ratio_sum += rr_miles / shortest_miles;
    sums.pairs += 1;
  }
  return sums;
}

}  // namespace

RiskRouter::RiskRouter(const RiskGraph& graph, const RiskParams& params)
    : graph_(graph), params_(params) {
  if (params.lambda_historical < 0.0 || params.lambda_forecast < 0.0) {
    throw InvalidArgument("RiskParams: lambdas must be non-negative");
  }
}

double RiskRouter::NodeScore(std::size_t v) const {
  const RiskNode& node = graph_.node(v);
  return params_.lambda_historical * node.historical_risk +
         params_.lambda_forecast * node.forecast_risk;
}

double RiskRouter::Alpha(std::size_t i, std::size_t j) const {
  return graph_.node(i).impact_fraction + graph_.node(j).impact_fraction;
}

double RiskRouter::PathBitRiskMiles(const Path& path) const {
  if (path.empty()) throw InvalidArgument("PathBitRiskMiles: empty path");
  const double alpha = Alpha(path.front(), path.back());
  double total = 0.0;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t u = path[k - 1];
    const std::size_t v = path[k];
    bool found = false;
    for (const RiskEdge& edge : graph_.OutEdges(u)) {
      if (edge.to == v) {
        total += edge.miles + alpha * NodeScore(v);
        found = true;
        break;
      }
    }
    if (!found) {
      throw InvalidArgument(
          util::Format("PathBitRiskMiles: missing edge (%zu, %zu)", u, v));
    }
  }
  return total;
}

double RiskRouter::PathMiles(const Path& path) const {
  if (path.empty()) throw InvalidArgument("PathMiles: empty path");
  double total = 0.0;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t u = path[k - 1];
    const std::size_t v = path[k];
    bool found = false;
    for (const RiskEdge& edge : graph_.OutEdges(u)) {
      if (edge.to == v) {
        total += edge.miles;
        found = true;
        break;
      }
    }
    if (!found) {
      throw InvalidArgument(util::Format("PathMiles: missing edge (%zu, %zu)", u, v));
    }
  }
  return total;
}

std::optional<RouteResult> RiskRouter::MinRiskRoute(std::size_t i,
                                                    std::size_t j) const {
  DijkstraWorkspace workspace;
  workspace.Run(graph_, i, BitRiskWeight{&graph_, params_, Alpha(i, j)}, j);
  if (!workspace.Reached(j)) return std::nullopt;
  RouteResult result;
  result.path = workspace.PathTo(j);
  result.bit_risk_miles = workspace.DistanceTo(j);
  result.bit_miles = PathMiles(result.path);
  return result;
}

std::optional<RouteResult> RiskRouter::ShortestRoute(std::size_t i,
                                                     std::size_t j) const {
  DijkstraWorkspace workspace;
  workspace.Run(graph_, i, DistanceWeight, j);
  if (!workspace.Reached(j)) return std::nullopt;
  RouteResult result;
  result.path = workspace.PathTo(j);
  result.bit_miles = workspace.DistanceTo(j);
  result.bit_risk_miles = PathBitRiskMiles(result.path);
  return result;
}

RatioReport ComputeRatios(const RiskGraph& graph, const RiskParams& params,
                          const std::vector<std::size_t>& sources,
                          const std::vector<std::size_t>& targets,
                          util::ThreadPool* pool) {
  std::vector<SourceSums> per_source(sources.size());
  const auto body = [&](std::size_t s) {
    DijkstraWorkspace distance_ws;
    DijkstraWorkspace risk_ws;
    per_source[s] = RatioSumsForSource(graph, params, sources[s], targets,
                                       distance_ws, risk_ws);
  };
  if (pool != nullptr) {
    util::ParallelFor(*pool, sources.size(), body);
  } else {
    for (std::size_t s = 0; s < sources.size(); ++s) body(s);
  }

  RatioReport report;
  double risk_sum = 0.0;
  double distance_sum = 0.0;
  for (const SourceSums& sums : per_source) {
    risk_sum += sums.risk_ratio_sum;
    distance_sum += sums.distance_ratio_sum;
    report.pair_count += sums.pairs;
  }
  if (report.pair_count > 0) {
    const auto n = static_cast<double>(report.pair_count);
    report.risk_reduction_ratio = 1.0 - risk_sum / n;
    report.distance_increase_ratio = distance_sum / n - 1.0;
  }
  return report;
}

RatioReport ComputeIntradomainRatios(const RiskGraph& graph,
                                     const RiskParams& params,
                                     util::ThreadPool* pool) {
  std::vector<std::size_t> everyone(graph.node_count());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  return ComputeRatios(graph, params, everyone, everyone, pool);
}

double SumMinBitRisk(const RiskGraph& graph, const RiskParams& params,
                     const std::vector<std::size_t>& sources,
                     const std::vector<std::size_t>& targets,
                     util::ThreadPool* pool) {
  std::vector<double> per_source(sources.size(), 0.0);
  const auto body = [&](std::size_t s) {
    DijkstraWorkspace workspace;
    const std::size_t i = sources[s];
    double sum = 0.0;
    for (const std::size_t j : targets) {
      if (j == i) continue;
      const double alpha =
          graph.node(i).impact_fraction + graph.node(j).impact_fraction;
      workspace.Run(graph, i, BitRiskWeight{&graph, params, alpha}, j);
      if (workspace.Reached(j)) sum += workspace.DistanceTo(j);
    }
    per_source[s] = sum;
  };
  if (pool != nullptr) {
    util::ParallelFor(*pool, sources.size(), body);
  } else {
    for (std::size_t s = 0; s < sources.size(); ++s) body(s);
  }
  double total = 0.0;
  for (const double v : per_source) total += v;
  return total;
}

double AggregateMinBitRisk(const RiskGraph& graph, const RiskParams& params,
                           util::ThreadPool* pool) {
  const std::size_t n = graph.node_count();
  std::vector<double> per_source(n, 0.0);
  const auto body = [&](std::size_t i) {
    DijkstraWorkspace workspace;
    double sum = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double alpha =
          graph.node(i).impact_fraction + graph.node(j).impact_fraction;
      workspace.Run(graph, i, BitRiskWeight{&graph, params, alpha}, j);
      if (workspace.Reached(j)) sum += workspace.DistanceTo(j);
    }
    per_source[i] = sum;
  };
  if (pool != nullptr) {
    util::ParallelFor(*pool, n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
  double total = 0.0;
  for (const double v : per_source) total += v;
  return total;
}

}  // namespace riskroute::core
