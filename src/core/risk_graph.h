// The risk graph: the structure RiskRoute optimizes over
// (paper Section 6.4 — "constructing a graph structure where the nodes are
// PoPs and the link weights consist of the bit-risk miles between
// infrastructure locations").
//
// Nodes carry the per-PoP quantities of Equation 1 — the impact fraction
// c_i (Section 5.1), historical risk o_h (Section 5.2) and forecast risk
// o_f (Section 5.3) — and edges carry line-of-sight mileage. The graph is
// cheap to copy and supports edge insertion/removal so the provisioning
// analysis can evaluate candidate links in place.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geo/geo_point.h"
#include "hazard/risk_field.h"
#include "population/assignment.h"
#include "topology/network.h"

namespace riskroute::core {

/// Per-PoP attributes used by the metric.
struct RiskNode {
  std::string name;
  geo::GeoPoint location;
  double impact_fraction = 0.0;  // c_i
  double historical_risk = 0.0;  // o_h(i)
  double forecast_risk = 0.0;    // o_f(i)
};

/// Outgoing edge entry in the adjacency list.
struct RiskEdge {
  std::size_t to = 0;
  double miles = 0.0;
};

/// One undirected edge for the bulk-build path.
struct WeightedLink {
  std::size_t a = 0;
  std::size_t b = 0;
  double miles = 0.0;
};

/// Weighted undirected graph over PoPs.
class RiskGraph {
 public:
  RiskGraph() = default;

  /// Adds a node; returns its index.
  std::size_t AddNode(RiskNode node);

  /// Adds an undirected edge with explicit mileage. Duplicate edges are
  /// ignored; self-edges and bad indices throw.
  void AddEdge(std::size_t a, std::size_t b, double miles);

  /// Adds an undirected edge with great-circle mileage between the nodes.
  void AddEdgeByDistance(std::size_t a, std::size_t b);

  /// Bulk edge insertion for graph construction: validates indices and
  /// mileages, dedups the batch once via a sort (either orientation
  /// collides) instead of the per-insert O(degree) duplicate scan AddEdge
  /// does, then builds the adjacency lists in one pass. Self-edges and bad
  /// indices throw, exactly as AddEdge. "Unchecked" = the batch is NOT
  /// checked against edges already in the graph; callers use this on
  /// freshly built graphs (as FromNetwork does). With E edges this is
  /// O(E log E) total where repeated AddEdge is O(E * degree).
  void AddEdgesUnchecked(std::span<const WeightedLink> edges);

  /// Removes an undirected edge (both directions); throws if absent.
  void RemoveEdge(std::size_t a, std::size_t b);

  [[nodiscard]] bool HasEdge(std::size_t a, std::size_t b) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const RiskNode& node(std::size_t i) const;
  [[nodiscard]] const std::vector<RiskNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<RiskEdge>& OutEdges(std::size_t i) const;

  /// Total directed edge entries (2x undirected edge count).
  [[nodiscard]] std::size_t directed_edge_count() const;

  /// Replaces every node's forecast risk (used per advisory tick in the
  /// disaster case studies). Must match node_count().
  void SetForecastRisks(const std::vector<double>& risks);

  /// Clears all forecast risk (no active advisory).
  void ClearForecastRisks();

  /// Builds the graph for one network: impact fractions from the census
  /// assignment, historical risks from the hazard field (evaluated through
  /// the field's batch path). Forecast risks start at zero.
  [[nodiscard]] static RiskGraph FromNetwork(
      const topology::Network& network,
      const population::ImpactModel& impact,
      const hazard::HistoricalRiskField& hazard_field);

  /// Same, with precomputed per-PoP historical risks (one per PoP, e.g.
  /// from a hazard::RiskFieldCache) so repeated builds over the same
  /// network skip the KDE evaluations entirely.
  [[nodiscard]] static RiskGraph FromNetwork(
      const topology::Network& network,
      const population::ImpactModel& impact,
      std::span<const double> historical_risks);

 private:
  std::vector<RiskNode> nodes_;
  std::vector<std::vector<RiskEdge>> adjacency_;
};

}  // namespace riskroute::core
