// Interdomain RiskRoute (paper Section 6.2).
//
// For traffic crossing multiple networks, the paper brackets the bit-risk
// miles between an upper bound — geographic shortest-path routing through
// all peering networks — and a lower bound — RiskRoute with control over
// every network's routing. Both are computed on a merged graph containing
// every network's PoPs and links plus peering edges between co-located
// PoPs of AS-adjacent networks.
#pragma once

#include <cstddef>
#include <vector>

#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/riskroute.h"
#include "hazard/risk_field.h"
#include "population/assignment.h"
#include "topology/corpus.h"
#include "util/thread_pool.h"

namespace riskroute::core {

/// Identifies a merged-graph node's origin.
struct MergedNode {
  std::size_t network = 0;  // index into the corpus
  std::size_t pop = 0;      // PoP index within that network
};

/// The corpus-wide routing substrate.
struct MergedGraph {
  RiskGraph graph;
  std::vector<MergedNode> origin;                    // global -> (net, pop)
  std::vector<std::vector<std::size_t>> global_ids;  // [net][pop] -> global
  /// Realized peering edges (global node pairs), for reporting.
  std::vector<std::pair<std::size_t, std::size_t>> peering_edges;

  [[nodiscard]] std::size_t GlobalId(std::size_t network, std::size_t pop) const;
};

/// Options for merged-graph construction.
struct MergeOptions {
  /// Two PoPs of AS-adjacent networks peer when within this distance
  /// (the paper's "co-located" infrastructure).
  double colocation_radius_miles = 25.0;
  /// Optional memoized risk lookup. When set (e.g. to a Study's warmed
  /// cache) node risks come from it instead of fresh KDE evaluations.
  const hazard::RiskFieldCache* risk_cache = nullptr;
};

/// Builds the merged graph. `impacts` must hold one ImpactModel per corpus
/// network (same order).
[[nodiscard]] MergedGraph BuildMergedGraph(
    const topology::Corpus& corpus,
    const std::vector<population::ImpactModel>& impacts,
    const hazard::HistoricalRiskField& hazard_field,
    const MergeOptions& options = {});

/// Interdomain Eq 5 / Eq 6 ratios for one network, following the paper's
/// Section 7 evaluation: every PoP of `network_index` is a source, and the
/// targets are all PoPs of every regional network in the corpus. The
/// shortest-path result is the paper's upper bound; the RiskRoute result
/// its lower bound; the report compares the two.
[[nodiscard]] RatioReport InterdomainRatios(const MergedGraph& merged,
                                            const topology::Corpus& corpus,
                                            std::size_t network_index,
                                            const RiskParams& params,
                                            util::ThreadPool* pool = nullptr);

/// Same, against an engine already frozen from `merged.graph` (saves the
/// per-call freeze when sweeping many networks over one merged graph).
class RouteEngine;
[[nodiscard]] RatioReport InterdomainRatios(const RouteEngine& engine,
                                            const MergedGraph& merged,
                                            const topology::Corpus& corpus,
                                            std::size_t network_index,
                                            util::ThreadPool* pool = nullptr);

/// Global node ids of all PoPs of every regional network (the paper's
/// interdomain destination set).
[[nodiscard]] std::vector<std::size_t> RegionalTargets(
    const MergedGraph& merged, const topology::Corpus& corpus);

}  // namespace riskroute::core
