#include "core/ospf_export.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/route_engine.h"
#include "util/error.h"

namespace riskroute::core {
namespace {

double EffectiveAlpha(const RouteEngine& engine,
                      const OspfExportOptions& options) {
  if (options.alpha > 0.0) return options.alpha;
  if (engine.node_count() == 0) return 0.0;
  // Mean alpha of a uniformly random pair is 2 * mean(c_i) = 2/N when the
  // fractions are normalized.
  double mean_fraction = 0.0;
  for (std::size_t v = 0; v < engine.node_count(); ++v) {
    mean_fraction += engine.impact_fraction(v);
  }
  mean_fraction /= static_cast<double>(engine.node_count());
  return 2.0 * mean_fraction;
}

}  // namespace

std::vector<OspfLinkCost> ComputeOspfCosts(const RiskGraph& graph,
                                           const OspfExportOptions& options) {
  // The freeze precomputes every node score; the per-link composite is
  // then plane loads instead of per-edge node lookups.
  const RouteEngine engine(graph, options.params);
  const double alpha = EffectiveAlpha(engine, options);
  std::vector<OspfLinkCost> costs;
  for (std::size_t a = 0; a < engine.node_count(); ++a) {
    for (std::size_t e = engine.EdgeBegin(a); e < engine.EdgeEnd(a); ++e) {
      const std::size_t b = engine.EdgeHead(e);
      if (b < a) continue;  // one entry per undirected link
      const double weight =
          engine.EdgeMiles(e) +
          alpha * (engine.NodeScore(a) + engine.NodeScore(b)) / 2.0;
      costs.push_back(OspfLinkCost{a, b, weight, 1});
    }
  }
  if (costs.empty()) return costs;
  double max_weight = 0.0;
  for (const OspfLinkCost& c : costs) {
    max_weight = std::max(max_weight, c.composite_weight);
  }
  if (max_weight <= 0.0) max_weight = 1.0;
  for (OspfLinkCost& c : costs) {
    const double scaled = c.composite_weight / max_weight * 65535.0;
    c.cost = static_cast<std::uint16_t>(
        std::clamp(std::lround(scaled), 1L, 65535L));
  }
  return costs;
}

std::string RenderOspfConfig(const RiskGraph& graph,
                             const std::vector<OspfLinkCost>& costs) {
  std::ostringstream out;
  out << "! RiskRoute composite OSPF costs (miles + risk; see Section 3.1)\n";
  for (const OspfLinkCost& c : costs) {
    out << "link \"" << graph.node(c.a).name << "\" \"" << graph.node(c.b).name
        << "\" cost " << c.cost << '\n';
  }
  return out.str();
}

EdgeWeightFn CompositeWeight(const RiskGraph& graph,
                             const OspfExportOptions& options) {
  const double alpha = EffectiveAlpha(RouteEngine(graph, options.params), options);
  const RiskParams params = options.params;
  return [&graph, alpha, params](std::size_t from, const RiskEdge& edge) {
    const auto score = [&](std::size_t v) {
      const RiskNode& node = graph.node(v);
      return params.lambda_historical * node.historical_risk +
             params.lambda_forecast * node.forecast_risk;
    };
    return edge.miles + alpha * (score(from) + score(edge.to)) / 2.0;
  };
}

}  // namespace riskroute::core
