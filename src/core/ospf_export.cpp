#include "core/ospf_export.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace riskroute::core {
namespace {

double EffectiveAlpha(const RiskGraph& graph, const OspfExportOptions& options) {
  if (options.alpha > 0.0) return options.alpha;
  if (graph.node_count() == 0) return 0.0;
  // Mean alpha of a uniformly random pair is 2 * mean(c_i) = 2/N when the
  // fractions are normalized.
  double mean_fraction = 0.0;
  for (const RiskNode& node : graph.nodes()) {
    mean_fraction += node.impact_fraction;
  }
  mean_fraction /= static_cast<double>(graph.node_count());
  return 2.0 * mean_fraction;
}

double LinkCompositeWeight(const RiskGraph& graph,
                           const OspfExportOptions& options, double alpha,
                           std::size_t a, std::size_t b, double miles) {
  const auto score = [&](std::size_t v) {
    const RiskNode& node = graph.node(v);
    return options.params.lambda_historical * node.historical_risk +
           options.params.lambda_forecast * node.forecast_risk;
  };
  return miles + alpha * (score(a) + score(b)) / 2.0;
}

}  // namespace

std::vector<OspfLinkCost> ComputeOspfCosts(const RiskGraph& graph,
                                           const OspfExportOptions& options) {
  const double alpha = EffectiveAlpha(graph, options);
  std::vector<OspfLinkCost> costs;
  for (std::size_t a = 0; a < graph.node_count(); ++a) {
    for (const RiskEdge& edge : graph.OutEdges(a)) {
      if (edge.to < a) continue;  // one entry per undirected link
      costs.push_back(OspfLinkCost{
          a, edge.to,
          LinkCompositeWeight(graph, options, alpha, a, edge.to, edge.miles),
          1});
    }
  }
  if (costs.empty()) return costs;
  double max_weight = 0.0;
  for (const OspfLinkCost& c : costs) {
    max_weight = std::max(max_weight, c.composite_weight);
  }
  if (max_weight <= 0.0) max_weight = 1.0;
  for (OspfLinkCost& c : costs) {
    const double scaled = c.composite_weight / max_weight * 65535.0;
    c.cost = static_cast<std::uint16_t>(
        std::clamp(std::lround(scaled), 1L, 65535L));
  }
  return costs;
}

std::string RenderOspfConfig(const RiskGraph& graph,
                             const std::vector<OspfLinkCost>& costs) {
  std::ostringstream out;
  out << "! RiskRoute composite OSPF costs (miles + risk; see Section 3.1)\n";
  for (const OspfLinkCost& c : costs) {
    out << "link \"" << graph.node(c.a).name << "\" \"" << graph.node(c.b).name
        << "\" cost " << c.cost << '\n';
  }
  return out.str();
}

EdgeWeightFn CompositeWeight(const RiskGraph& graph,
                             const OspfExportOptions& options) {
  const double alpha = EffectiveAlpha(graph, options);
  const RiskParams params = options.params;
  return [&graph, alpha, params](std::size_t from, const RiskEdge& edge) {
    const auto score = [&](std::size_t v) {
      const RiskNode& node = graph.node(v);
      return params.lambda_historical * node.historical_risk +
             params.lambda_forecast * node.forecast_risk;
    };
    return edge.miles + alpha * (score(from) + score(edge.to)) / 2.0;
  };
}

}  // namespace riskroute::core
