// Tuning parameters of the bit-risk-mile metric (paper Equation 1).
#pragma once

namespace riskroute::core {

/// lambda_h scales historical outage risk and lambda_f forecasted outage
/// risk in the bit-risk-mile sum; larger values buy more risk-averse
/// (and geographically longer) routes. Section 7 of the paper uses
/// lambda_h = 1e5 (also 1e4/1e6 in sweeps) and lambda_f = 1e3.
struct RiskParams {
  double lambda_historical = 1e5;
  double lambda_forecast = 1e3;
};

}  // namespace riskroute::core
