// Suurballe/Bhandari disjoint path pairs.
//
// A backup path that shares a link — or a disaster-prone node — with the
// primary fails with it. The gold standard for the paper's backup-route
// objective (Section 3) is therefore a *disjoint pair*: two paths sharing
// no link (or no intermediate node) whose total weight is minimal. This
// module implements Suurballe's algorithm over the bit-risk edge weight:
// shortest-tree potentials, reduced costs, a second Dijkstra on the
// residual graph with the first path's arcs reversed, and the standard
// overlap-cancellation recovery of the two paths. Node-disjointness comes
// from the usual node-splitting transform.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/risk_graph.h"
#include "core/shortest_path.h"

namespace riskroute::core {

/// A disjoint pair; `total_weight` is the sum of both paths' weights under
/// the requested objective.
struct DisjointPathPair {
  Path first;
  Path second;
  double total_weight = 0.0;
};

/// Disjointness flavour.
enum class Disjointness {
  kEdgeDisjoint,  // no shared undirected link
  kNodeDisjoint,  // no shared node except the endpoints
};

/// Minimum-total-weight disjoint path pair between `source` and `target`,
/// or nullopt when the graph does not admit one. `weight(from, edge)` must
/// be non-negative. Throws on bad node indices or source == target.
[[nodiscard]] std::optional<DisjointPathPair> FindDisjointPair(
    const RiskGraph& graph, std::size_t source, std::size_t target,
    const EdgeWeightFn& weight,
    Disjointness disjointness = Disjointness::kNodeDisjoint);

}  // namespace riskroute::core
