// Study: one-call assembly of the paper's full experimental context.
//
// Every experiment in the paper runs against the same substrate stack —
// the 23-network corpus (Section 4.1), the census population model
// (Section 4.2), the five hazard catalogs and their KDE risk field
// (Sections 4.3/5.2), and the per-network impact models (Section 5.1).
// Study builds all of it deterministically so benches, examples and tests
// share identical, reproducible inputs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/interdomain.h"
#include "core/risk_graph.h"
#include "hazard/risk_field.h"
#include "population/census.h"
#include "population/assignment.h"
#include "topology/corpus.h"

namespace riskroute::core {

/// Knobs for the substrate assembly; the defaults are the repository's
/// reference configuration (the one EXPERIMENTS.md records).
struct StudyOptions {
  std::uint64_t corpus_seed = 123;
  /// Corpus size multiplier. 1.0 reproduces the paper's 23-network corpus
  /// exactly (topology::GeneratePaperCorpus); > 1.0 switches to
  /// topology::GenerateScaledCorpus, which grows every network's PoP count
  /// by the factor and adds synthetic continental tier-1 backbones.
  double corpus_scale = 1.0;
  std::uint64_t hazard_seed = 11;
  population::CensusOptions census;
  /// Per-catalog KDE bandwidths; empty = paper Table 1 values.
  std::vector<double> bandwidths;
  /// Mean aggregate PoP risk after calibration (see hazard::kDefaultMeanPopRisk).
  double calibration_target = hazard::kDefaultMeanPopRisk;
};

/// Immutable bundle of all substrates plus convenience builders.
class Study {
 public:
  /// Builds everything; takes a few seconds (216k census blocks, 176k
  /// hazard events, 23 impact models).
  [[nodiscard]] static Study Build(const StudyOptions& options = {});

  [[nodiscard]] const topology::Corpus& corpus() const { return corpus_; }
  [[nodiscard]] const population::CensusModel& census() const { return *census_; }
  [[nodiscard]] const hazard::HistoricalRiskField& hazard_field() const {
    return *hazard_field_;
  }

  /// Memoized risk lookup over hazard_field(), pre-warmed with every
  /// corpus PoP location at Build time. BuildGraph/BuildMerged read
  /// through it, so repeated network builds never re-evaluate the KDEs
  /// for the same ~800 locations.
  [[nodiscard]] const hazard::RiskFieldCache& risk_cache() const {
    return *risk_cache_;
  }
  [[nodiscard]] const population::ImpactModel& impact(std::size_t network) const;

  /// Risk graph for one network (forecast risks zeroed).
  [[nodiscard]] RiskGraph BuildGraph(std::size_t network) const;

  /// Risk graph by network name; throws if unknown.
  [[nodiscard]] RiskGraph BuildGraphFor(std::string_view network_name) const;

  /// Network index by name; throws if unknown.
  [[nodiscard]] std::size_t NetworkIndex(std::string_view name) const;

  /// The corpus-wide merged interdomain graph.
  [[nodiscard]] MergedGraph BuildMerged(const MergeOptions& options = {}) const;

  /// All PoP locations in the corpus (the calibration reference set).
  [[nodiscard]] std::vector<geo::GeoPoint> AllPopLocations() const;

 private:
  Study() = default;

  topology::Corpus corpus_;
  std::unique_ptr<population::CensusModel> census_;
  std::unique_ptr<hazard::HistoricalRiskField> hazard_field_;
  std::unique_ptr<hazard::RiskFieldCache> risk_cache_;
  std::vector<population::ImpactModel> impacts_;
};

}  // namespace riskroute::core
