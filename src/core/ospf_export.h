// Composite OSPF/IS-IS link weights (paper Section 3.1).
//
// "To address robustness to disasters within a single domain, the
// RiskRoute metric can be used directly in standard intra-domain routing
// protocols such as OSPF or ISIS. ... The approach would simply be to
// create link weights that are a composite metric based on operational
// objectives and RiskRoute." This module turns a risk graph into such a
// composite weight set: each link's cost combines its mileage with the
// endpoint risk scores, scaled into the 16-bit integer range OSPF costs
// live in, and renders a plain-text configuration snippet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/shortest_path.h"

namespace riskroute::core {

/// One exported link cost.
struct OspfLinkCost {
  std::size_t a = 0;
  std::size_t b = 0;
  double composite_weight = 0.0;  // miles + risk term (pre-quantization)
  std::uint16_t cost = 1;         // quantized OSPF cost in [1, 65535]
};

/// Export options.
struct OspfExportOptions {
  /// Risk scaling inside the composite weight; the node risk of both
  /// endpoints is averaged since a link cost cannot depend on direction.
  RiskParams params{1e5, 1e3};
  /// Effective impact scale replacing the pair-dependent alpha_ij (a link
  /// weight must be pair-independent); defaults to the mean alpha of a
  /// uniform pair, 2/N, computed automatically when <= 0.
  double alpha = 0.0;
};

/// Computes composite weights for every link and quantizes them into OSPF
/// costs such that the largest weight maps to 65535 and proportions are
/// preserved (minimum cost 1).
[[nodiscard]] std::vector<OspfLinkCost> ComputeOspfCosts(
    const RiskGraph& graph, const OspfExportOptions& options = {});

/// Renders "link <nameA> <nameB> cost <c>" lines (stable order).
[[nodiscard]] std::string RenderOspfConfig(
    const RiskGraph& graph, const std::vector<OspfLinkCost>& costs);

/// Edge-weight function reproducing the composite weight, so the effect of
/// deploying the exported costs can be simulated on the same graph.
[[nodiscard]] EdgeWeightFn CompositeWeight(const RiskGraph& graph,
                                           const OspfExportOptions& options = {});

}  // namespace riskroute::core
