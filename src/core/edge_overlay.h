// Edge overlay: candidate/failure deltas evaluated against a frozen graph.
//
// The provisioning analysis (paper Section 6.3) scores thousands of
// candidate links, and the failure analyses (Sections 3.1, 6.2) score
// link/node outages. Both used to mutate a RiskGraph copy per scenario;
// an EdgeOverlay instead records a small add/remove set that RouteEngine
// consults after each CSR row, so every scenario is evaluated with zero
// graph copies and zero mutations.
//
// Semantics mirror RiskGraph mutation exactly so overlay sweeps are
// bitwise identical to mutate-and-restore sweeps:
//  * added edges iterate AFTER the frozen row, in insertion order — the
//    same position RiskGraph::AddEdge appends them to the adjacency list;
//  * removed edges are skipped in place — RiskGraph::RemoveEdge's
//    std::erase_if preserves the order of the surviving entries;
//  * a disabled node is skipped as a relaxation target, matching the
//    infinite-weight masking the failure analyses used.
//
// A directed pair present in both the added and removed sets is treated
// as removed (the sets are unordered, so "add then remove" and "remove
// then re-add" collapse to removal winning).
//
// Node-score overrides (the streaming forecast path, PR 9): an overlay
// may carry a full replacement for the engine's node-score plane. A
// relaxation into node v then weighs miles + alpha * override[v] instead
// of miles + alpha * NodeScore(v). The streaming layer fills the vector
// with the engine's own baseline scores for untouched nodes and with
// RouteEngine::ScoreWithForecast values for nodes inside an advisory
// footprint, so an overlay sweep is bitwise identical to re-freezing the
// engine at that advisory — same weights, same heap evolution, same
// parent chains — without touching the frozen planes.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"

namespace riskroute::core {

/// One overlay-added directed edge entry (each AddEdge stores two).
struct OverlayEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  double miles = 0.0;
};

/// A small set of edge additions/removals and node failures layered over a
/// frozen RouteEngine. Cheap to copy (one per candidate scenario).
class EdgeOverlay {
 public:
  /// Adds an undirected edge. Within one tail node, edges keep insertion
  /// order (the AddEdge append position). The caller is responsible for
  /// not adding an edge the frozen graph already has.
  void AddEdge(std::size_t a, std::size_t b, double miles) {
    InsertAdded(a, b, miles);
    InsertAdded(b, a, miles);
  }

  /// Removes an undirected frozen edge (both directions).
  void RemoveEdge(std::size_t a, std::size_t b) {
    RemoveDirectedEdge(a, b);
    RemoveDirectedEdge(b, a);
  }

  /// Removes one direction only — Yen's spur masking removes (u, v)
  /// without touching (v, u).
  void RemoveDirectedEdge(std::size_t from, std::size_t to) {
    const std::pair<std::size_t, std::size_t> key{from, to};
    const auto it = std::lower_bound(removed_.begin(), removed_.end(), key);
    if (it == removed_.end() || *it != key) removed_.insert(it, key);
  }

  /// Fails a node: no edge relaxes into it (its own distance stays
  /// infinite unless it is the source).
  void DisableNode(std::size_t v) {
    const auto it = std::lower_bound(disabled_.begin(), disabled_.end(), v);
    if (it == disabled_.end() || *it != v) disabled_.insert(it, v);
  }

  /// Installs a full replacement node-score plane: `scores[v]` substitutes
  /// for the engine's NodeScore(v) in every risk-weighted relaxation into
  /// v. The vector must match the engine's node count (checked at sweep
  /// time) and every entry must be finite and non-negative so ALT lower
  /// bounds on the miles plane stay admissible.
  void SetNodeScoreOverride(std::vector<double> scores) {
    for (std::size_t v = 0; v < scores.size(); ++v) {
      if (!std::isfinite(scores[v]) || scores[v] < 0.0) {
        throw InvalidArgument(
            "EdgeOverlay node-score override must be finite and "
            "non-negative at every node (node " +
            std::to_string(v) + ")");
      }
    }
    score_override_ = std::move(scores);
  }

  void ClearNodeScoreOverride() { score_override_.clear(); }

  /// Replacement node-score plane, or nullptr when the overlay leaves the
  /// engine's frozen risk plane untouched.
  [[nodiscard]] const double* node_score_override() const {
    return score_override_.empty() ? nullptr : score_override_.data();
  }

  [[nodiscard]] std::size_t node_score_override_size() const {
    return score_override_.size();
  }

  void Clear() {
    added_.clear();
    removed_.clear();
    disabled_.clear();
    score_override_.clear();
  }

  [[nodiscard]] bool empty() const {
    return added_.empty() && removed_.empty() && disabled_.empty() &&
           score_override_.empty();
  }

  /// Overlay edges out of `from`, in insertion order.
  [[nodiscard]] std::span<const OverlayEdge> AddedFrom(std::size_t from) const {
    const auto [lo, hi] = std::equal_range(
        added_.begin(), added_.end(), OverlayEdge{from, 0, 0.0},
        [](const OverlayEdge& a, const OverlayEdge& b) {
          return a.from < b.from;
        });
    return std::span<const OverlayEdge>(added_).subspan(
        static_cast<std::size_t>(lo - added_.begin()),
        static_cast<std::size_t>(hi - lo));
  }

  [[nodiscard]] std::span<const OverlayEdge> added() const { return added_; }

  [[nodiscard]] bool IsRemoved(std::size_t from, std::size_t to) const {
    return !removed_.empty() &&
           std::binary_search(removed_.begin(), removed_.end(),
                              std::pair{from, to});
  }

  [[nodiscard]] bool IsDisabled(std::size_t v) const {
    return !disabled_.empty() &&
           std::binary_search(disabled_.begin(), disabled_.end(), v);
  }

  /// True when the relaxation from `from` into `to` must be skipped.
  [[nodiscard]] bool Masks(std::size_t from, std::size_t to) const {
    return IsDisabled(to) || IsRemoved(from, to);
  }

  [[nodiscard]] bool HasAddedEdge(std::size_t a, std::size_t b) const {
    const std::span<const OverlayEdge> out = AddedFrom(a);
    return std::any_of(out.begin(), out.end(),
                       [b](const OverlayEdge& e) { return e.to == b; });
  }

 private:
  void InsertAdded(std::size_t from, std::size_t to, double miles) {
    // upper_bound keeps entries with equal `from` in insertion order.
    const auto it = std::upper_bound(
        added_.begin(), added_.end(), from,
        [](std::size_t f, const OverlayEdge& e) { return f < e.from; });
    added_.insert(it, OverlayEdge{from, to, miles});
  }

  std::vector<OverlayEdge> added_;  // sorted by from, insertion-stable
  std::vector<std::pair<std::size_t, std::size_t>> removed_;  // sorted
  std::vector<std::size_t> disabled_;                         // sorted
  std::vector<double> score_override_;  // empty, or one score per node
};

}  // namespace riskroute::core
