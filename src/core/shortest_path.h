// Dijkstra shortest path over a RiskGraph with a pluggable edge-weight
// function (paper Section 6.4: minimizing bit-risk miles reduces to a
// shortest-path problem on the risk graph).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "core/risk_graph.h"

namespace riskroute::core {

/// A path as a node index sequence (front = source, back = destination).
using Path = std::vector<std::size_t>;

/// Type-erased edge weight; the templated Run avoids the indirection in
/// hot loops, this alias is for convenience call sites.
using EdgeWeightFn =
    std::function<double(std::size_t from, const RiskEdge& edge)>;

/// Reusable Dijkstra scratch space. One instance per thread; reuse across
/// calls to avoid re-allocating the distance/parent arrays for each of the
/// O(N^2) per-pair searches the ratio analyses run.
class DijkstraWorkspace {
 public:
  /// Single-source shortest path; if `target` is set, stops as soon as the
  /// target is settled. `weight(from, edge)` must be non-negative.
  template <typename WeightFn>
  void Run(const RiskGraph& graph, std::size_t source, WeightFn&& weight,
           std::optional<std::size_t> target = std::nullopt);

  [[nodiscard]] double DistanceTo(std::size_t node) const;
  [[nodiscard]] bool Reached(std::size_t node) const;

  /// Reconstructs source->node path from the last Run; throws if the node
  /// was not reached.
  [[nodiscard]] Path PathTo(std::size_t node) const;

  [[nodiscard]] static constexpr double Infinity() {
    return std::numeric_limits<double>::infinity();
  }

 private:
  // RouteEngine drives the same scratch arrays from its frozen CSR planes,
  // so engine sweeps and legacy sweeps share one workspace type.
  friend class RouteEngine;

  struct QueueEntry {
    double dist;
    std::size_t node;
    bool operator>(const QueueEntry& other) const { return dist > other.dist; }
  };

  void Prepare(const RiskGraph& graph, std::size_t source,
               std::optional<std::size_t> target);

  std::vector<double> dist_;
  std::vector<std::size_t> parent_;
  std::vector<bool> settled_;
  std::vector<QueueEntry> heap_;  // persistent min-heap buffer
  std::size_t source_ = 0;
};

template <typename WeightFn>
void DijkstraWorkspace::Run(const RiskGraph& graph, std::size_t source,
                            WeightFn&& weight,
                            std::optional<std::size_t> target) {
  Prepare(graph, source, target);
  // The heap buffer persists across runs; push_heap/pop_heap with the same
  // comparator evolve it exactly as the std::priority_queue this replaced,
  // minus the per-call container allocation.
  heap_.clear();
  heap_.push_back(QueueEntry{0.0, source});
  while (!heap_.empty()) {
    const QueueEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    if (settled_[top.node]) continue;
    settled_[top.node] = true;
    if (target && top.node == *target) return;
    for (const RiskEdge& edge : graph.OutEdges(top.node)) {
      if (settled_[edge.to]) continue;
      const double candidate = dist_[top.node] + weight(top.node, edge);
      if (candidate < dist_[edge.to]) {
        dist_[edge.to] = candidate;
        parent_[edge.to] = top.node;
        heap_.push_back(QueueEntry{candidate, edge.to});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      }
    }
  }
}

/// Convenience single-shot shortest path under an arbitrary edge-weight
/// callback; returns nullopt if unreachable. This is the slow path: each
/// call walks adjacency lists through a type-erased std::function. Keep it
/// only for weights the frozen planes cannot express (composite or
/// stateful callbacks).
[[nodiscard]] std::optional<Path> ShortestPathWith(const RiskGraph& graph,
                                                   std::size_t source,
                                                   std::size_t target,
                                                   const EdgeWeightFn& weight);

/// Pure-distance edge weight (bit-miles).
[[nodiscard]] inline double DistanceWeight(std::size_t /*from*/,
                                           const RiskEdge& edge) {
  return edge.miles;
}

}  // namespace riskroute::core
