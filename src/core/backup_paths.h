// Risk-aware backup paths (paper Section 3 / 3.1).
//
// The paper positions RiskRoute as the path-computation algorithm inside
// existing repair mechanisms: "RiskRoute fits very nicely into the IP Fast
// Reroute framework [RFC 5714] by offering an algorithm for backup/repair
// path calculation", and for MPLS domains "the fast reroute mechanism can
// be used to establish failover paths for single link or node failures".
// This module implements both:
//
//  * Loop-Free Alternates (RFC 5286 inequality) under a composite
//    risk-aware link weight — the IP-FRR table;
//  * explicit detour paths around a protected link or node — the
//    MPLS-FRR bypass tunnels.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "core/shortest_path.h"
#include "util/thread_pool.h"

namespace riskroute::core {

/// Destination-based routing table under one link-weight function:
/// next_hop[s][d] is the first hop from s toward d (s itself when s == d;
/// kUnreachable when disconnected).
struct RoutingTable {
  static constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
  /// next_hop[source][destination].
  std::vector<std::vector<std::size_t>> next_hop;
  /// dist[source][destination] under the table's weight.
  std::vector<std::vector<double>> dist;
};

/// All-pairs routing table (N single-source Dijkstras).
[[nodiscard]] RoutingTable BuildRoutingTable(const RiskGraph& graph,
                                             const EdgeWeightFn& weight);

/// Engine variant under weight miles + alpha * score: the N sweeps run on
/// the frozen CSR, parallel over sources when a pool is given (disjoint
/// table rows; bitwise thread-count independent).
[[nodiscard]] RoutingTable BuildRoutingTable(const RouteEngine& engine,
                                             double alpha,
                                             util::ThreadPool* pool = nullptr,
                                             const EdgeOverlay* overlay = nullptr);

/// One source's loop-free alternates for one destination.
struct LfaEntry {
  std::size_t primary_next_hop = RoutingTable::kUnreachable;
  /// Neighbours n of s satisfying RFC 5286's basic loop-free condition
  /// dist(n, d) < dist(n, s) + dist(s, d); traffic handed to any of them
  /// reaches d without looping back through s.
  std::vector<std::size_t> alternates;
};

/// LFAs for every (source, destination) pair. alternates exclude the
/// primary next hop.
[[nodiscard]] std::vector<std::vector<LfaEntry>> ComputeLfas(
    const RiskGraph& graph, const RoutingTable& table);

/// Fraction of (source, destination, primary-next-hop) triples that have
/// at least one loop-free alternate — the standard IP-FRR coverage metric.
[[nodiscard]] double LfaCoverage(const std::vector<std::vector<LfaEntry>>& lfas);

/// MPLS-style bypass: the best path from `u` to `v` that avoids the
/// protected link (u, v) itself. nullopt when no detour exists.
[[nodiscard]] std::optional<Path> LinkBypass(const RiskGraph& graph,
                                             std::size_t u, std::size_t v,
                                             const EdgeWeightFn& weight);

/// Engine variant: the protected link fails as an EdgeOverlay removal.
[[nodiscard]] std::optional<Path> LinkBypass(const RouteEngine& engine,
                                             std::size_t u, std::size_t v,
                                             double alpha);

/// MPLS-style node protection: best path from `u` to `dst` avoiding the
/// protected intermediate node `protect` entirely. nullopt when no detour
/// exists. Throws if protect is u or dst.
[[nodiscard]] std::optional<Path> NodeBypass(const RiskGraph& graph,
                                             std::size_t u, std::size_t dst,
                                             std::size_t protect,
                                             const EdgeWeightFn& weight);

/// Engine variant: the protected node fails as an EdgeOverlay disable.
[[nodiscard]] std::optional<Path> NodeBypass(const RouteEngine& engine,
                                             std::size_t u, std::size_t dst,
                                             std::size_t protect, double alpha);

}  // namespace riskroute::core
