// Multi-objective routing: balancing outage risk against SLA latency.
//
// The paper leaves this as an explicit extension (Section 6.4: "the
// RiskRoute framework could easily be expanded to include multiple
// objective functions that would balance risk and SLA-related issues such
// as latency in route calculations", at the cost of extra computation).
// This module implements that extension: candidate paths are enumerated
// with Yen's algorithm under both the distance and the bit-risk
// objectives, merged, and reduced to the Pareto front over
// (latency, bit-risk miles). Operators then pick a point — minimum risk
// within a latency budget, or a weighted scalarization.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/k_shortest.h"
#include "core/path_metrics.h"
#include "core/risk_graph.h"
#include "core/risk_params.h"

namespace riskroute::core {

/// Propagation latency model: milliseconds per statute mile of fiber
/// (light in glass at ~0.66c, plus the paper's line-of-sight paths being
/// shorter than real conduit — the constant is the conventional
/// ~0.0082 ms/mile one-way figure).
inline constexpr double kLatencyMsPerMile = 0.0082;

[[nodiscard]] inline double MilesToLatencyMs(double miles) {
  return miles * kLatencyMsPerMile;
}

/// A candidate route scored under every objective: the shared PathMetrics
/// (miles, bit_risk_miles) plus the latency this module trades off.
struct RouteObjectives : PathMetrics {
  Path path;
  double latency_ms = 0.0;
};

/// Pareto-front router over (latency, bit-risk).
class MultiObjectiveRouter {
 public:
  /// `candidates_per_objective` bounds the Yen enumeration under each
  /// objective; the front can hold at most the merged candidate count.
  MultiObjectiveRouter(const RiskGraph& graph, const RiskParams& params,
                       std::size_t candidates_per_objective = 8);

  /// Nondominated candidates, ascending latency (therefore descending
  /// risk). Empty when the pair is disconnected.
  [[nodiscard]] std::vector<RouteObjectives> ParetoFront(std::size_t i,
                                                         std::size_t j) const;

  /// Minimum bit-risk route whose one-way latency does not exceed
  /// `max_latency_ms`; nullopt when no candidate fits the budget.
  [[nodiscard]] std::optional<RouteObjectives> MinRiskWithinLatency(
      std::size_t i, std::size_t j, double max_latency_ms) const;

  /// Scalarized pick from the front: minimizes
  /// (1 - risk_weight) * latency/latency_min + risk_weight * risk/risk_min,
  /// with risk_weight in [0, 1]. nullopt when disconnected.
  [[nodiscard]] std::optional<RouteObjectives> Scalarized(
      std::size_t i, std::size_t j, double risk_weight) const;

  [[nodiscard]] const RiskGraph& graph() const { return graph_; }

 private:
  [[nodiscard]] std::vector<RouteObjectives> Candidates(std::size_t i,
                                                        std::size_t j) const;

  const RiskGraph& graph_;
  RiskParams params_;
  RouteEngine engine_;  // frozen once; both Yen enumerations run on it
  std::size_t k_;
};

}  // namespace riskroute::core
