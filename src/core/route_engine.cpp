#include "core/route_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::core {
namespace {

constexpr std::size_t kNoTarget = static_cast<std::size_t>(-1);

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Engine metrics, resolved once per process. Hot loops accumulate in
/// locals and flush with a handful of sharded adds per sweep, so the
/// per-relaxation cost is a register increment. All counters except
/// workspace_reuses record algorithmic work that is identical for any
/// thread count (sweeps are dispatched per source with fixed per-source
/// work), so they are Stability::kStable; workspace reuse depends on how
/// sources land on pooled threads.
struct EngineMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& freezes = reg.GetCounter("core.route_engine.freezes");
  obs::Histogram& freeze_ns = reg.GetTiming("core.route_engine.freeze_ns");
  obs::Counter& sweeps = reg.GetCounter("core.route_engine.sweeps");
  obs::Counter& overlay_sweeps =
      reg.GetCounter("core.route_engine.overlay_sweeps");
  obs::Counter& heap_pops = reg.GetCounter("core.route_engine.heap_pops");
  obs::Counter& relaxations = reg.GetCounter("core.route_engine.relaxations");
  obs::Histogram& relaxations_per_sweep = reg.GetHistogram(
      "core.route_engine.relaxations_per_sweep", SweepBounds());
  obs::Counter& envelope_sweeps =
      reg.GetCounter("core.route_engine.envelope_sweeps");
  obs::Counter& envelope_bisections =
      reg.GetCounter("core.route_engine.envelope_bisections");
  obs::Counter& envelope_rewalks =
      reg.GetCounter("core.route_engine.envelope_rewalks");
  obs::Counter& alt_sweeps = reg.GetCounter("core.route_engine.alt_sweeps");
  obs::Counter& landmark_preps =
      reg.GetCounter("core.route_engine.landmark_preps");
  obs::Counter& workspace_reuses = reg.GetCounter(
      "core.route_engine.workspace_reuses", obs::Stability::kVolatile);

  static const std::vector<std::uint64_t>& SweepBounds() {
    static const std::vector<std::uint64_t> bounds =
        obs::ExponentialBounds(16, 4, 12);
    return bounds;
  }
  static EngineMetrics& Get() {
    static EngineMetrics metrics;
    return metrics;
  }
};

/// Per-source accumulation for the ratio sweep (mirrors riskroute.cpp).
struct SourceSums {
  double risk_ratio_sum = 0.0;
  double distance_ratio_sum = 0.0;
  std::size_t pairs = 0;
};

void Dispatch(util::ThreadPool* pool, std::size_t count,
              const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    util::ParallelFor(*pool, count, body);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }
}

}  // namespace

RouteEngine::RouteEngine(const RiskGraph& graph, const RiskParams& params)
    : params_(params) {
  EngineMetrics& metrics = EngineMetrics::Get();
  metrics.freezes.Add(1);
  obs::ScopedTimer freeze_timer(metrics.freeze_ns);
  if (params.lambda_historical < 0.0 || params.lambda_forecast < 0.0) {
    throw InvalidArgument("RouteEngine: lambdas must be non-negative");
  }
  const std::size_t n = graph.node_count();
  const std::size_t edges = graph.directed_edge_count();
  if (n >= kNoTarget || n > std::numeric_limits<std::uint32_t>::max() ||
      edges > std::numeric_limits<std::uint32_t>::max()) {
    throw InvalidArgument("RouteEngine: graph too large for CSR freeze");
  }
  row_offsets_.resize(n + 1);
  impact_.resize(n);
  historical_.resize(n);
  forecast_.resize(n);
  node_score_.resize(n);
  location_.resize(n);
  name_.resize(n);
  col_.reserve(edges);
  miles_.reserve(edges);
  row_offsets_[0] = 0;
  for (std::size_t u = 0; u < n; ++u) {
    const RiskNode& node = graph.node(u);
    impact_[u] = node.impact_fraction;
    historical_[u] = node.historical_risk;
    forecast_[u] = node.forecast_risk;
    location_[u] = node.location;
    name_[u] = node.name;
    // CSR rows preserve adjacency-list iteration order: the relaxation
    // order (and therefore every distance and parent chain) is bitwise
    // identical to a DijkstraWorkspace sweep over the RiskGraph.
    for (const RiskEdge& edge : graph.OutEdges(u)) {
      col_.push_back(static_cast<std::uint32_t>(edge.to));
      miles_.push_back(edge.miles);
    }
    row_offsets_[u + 1] = static_cast<std::uint32_t>(col_.size());
  }
  risk_.resize(col_.size());
  RebuildRiskPlane();
}

void RouteEngine::RebuildRiskPlane() {
  // Same expression as RiskRouter::NodeScore / BitRiskWeight, so the
  // precomputed plane is bitwise equal to the per-edge recomputation.
  for (std::size_t v = 0; v < node_score_.size(); ++v) {
    node_score_[v] = params_.lambda_historical * historical_[v] +
                     params_.lambda_forecast * forecast_[v];
  }
  for (std::size_t e = 0; e < risk_.size(); ++e) {
    risk_[e] = node_score_[col_[e]];
  }
}

double RouteEngine::ScoreWithForecast(std::size_t v,
                                      double forecast_risk) const {
  if (v >= node_count()) {
    throw InvalidArgument(
        util::Format("RouteEngine::ScoreWithForecast: node %zu out of range",
                     v));
  }
  // The RebuildRiskPlane expression verbatim: the overlay score planes the
  // streaming layer assembles from these values reproduce the additive
  // fold (and therefore the rounding) of a full refreeze.
  return params_.lambda_historical * historical_[v] +
         params_.lambda_forecast * forecast_risk;
}

void RouteEngine::SetForecastRisks(std::span<const double> risks) {
  if (risks.size() != forecast_.size()) {
    throw InvalidArgument(util::Format(
        "RouteEngine::SetForecastRisks: %zu risks for %zu nodes",
        risks.size(), forecast_.size()));
  }
  std::copy(risks.begin(), risks.end(), forecast_.begin());
  RebuildRiskPlane();
}

void RouteEngine::ClearForecastRisks() {
  std::fill(forecast_.begin(), forecast_.end(), 0.0);
  RebuildRiskPlane();
}

void RouteEngine::PrepareLandmarks(std::size_t count) {
  const std::size_t n = node_count();
  ClearLandmarks();
  if (count == 0 || n == 0) return;
  count = std::min(count, n);
  EngineMetrics::Get().landmark_preps.Add(1);
  landmark_ids_.reserve(count);
  landmark_miles_.assign(n * count, kInf);

  // Farthest-point traversal on the miles plane. `coverage[v]` is the
  // closest chosen landmark's distance to v; each round picks the least
  // covered node. +inf coverage (a component no landmark has reached yet)
  // outranks every finite distance, so multi-component graphs get a
  // landmark per component before any component gets its second. Ties
  // break to the lowest node id — the whole selection is deterministic.
  std::vector<double> coverage(n, kInf);
  DijkstraWorkspace ws;
  RunDistance(ws, 0);
  const auto least_covered = [&](const std::vector<double>& score) {
    std::size_t pick = 0;
    double best = -1.0;
    for (std::size_t v = 0; v < n; ++v) {
      const double s = score[v];
      if (s > best) {
        best = s;
        pick = v;
      }
    }
    return pick;
  };
  // Seed: the node farthest from node 0 (node 0 itself is an arbitrary
  // anchor, not a landmark).
  std::size_t pick = least_covered(ws.dist_);
  for (std::size_t l = 0; l < count; ++l) {
    landmark_ids_.push_back(static_cast<std::uint32_t>(pick));
    coverage[pick] = -1.0;  // never re-picked (every score is >= 0)
    RunDistance(ws, pick);
    for (std::size_t v = 0; v < n; ++v) {
      landmark_miles_[v * count + l] = ws.dist_[v];
      if (coverage[v] >= 0.0 && ws.dist_[v] < coverage[v]) {
        coverage[v] = ws.dist_[v];
      }
    }
    if (l + 1 < count) pick = least_covered(coverage);
  }
}

void RouteEngine::ClearLandmarks() {
  landmark_ids_.clear();
  landmark_miles_.clear();
}

bool RouteEngine::HasEdge(std::size_t a, std::size_t b) const {
  if (a >= node_count() || b >= node_count()) return false;
  for (std::size_t e = row_offsets_[a]; e < row_offsets_[a + 1]; ++e) {
    if (col_[e] == b) return true;
  }
  return false;
}

template <bool kRisk, bool kOverlay, bool kAlt>
void RouteEngine::RunImpl(DijkstraWorkspace& ws, std::size_t source,
                          double alpha, std::size_t target,
                          const EdgeOverlay* overlay) const {
  const std::size_t n = node_count();
  if (source >= n) {
    throw InvalidArgument(
        util::Format("RouteEngine: source %zu out of range", source));
  }
  if (target != kNoTarget && target >= n) {
    throw InvalidArgument(
        util::Format("RouteEngine: target %zu out of range", target));
  }
  EngineMetrics& metrics = EngineMetrics::Get();
  if (ws.dist_.size() == n) metrics.workspace_reuses.Add(1);
  ws.source_ = source;
  ws.dist_.assign(n, kInf);
  ws.parent_.assign(n, n);
  ws.settled_.assign(n, false);
  ws.dist_[source] = 0.0;

  // A* heuristic: the heap keys carry f = g + h while dist_ keeps the
  // plain g accumulation, so every settled distance is the same additive
  // fold a Dijkstra sweep produces — bitwise, not merely approximately.
  // h(v) = max over landmarks of |d(L,v) - d(L,target)| on the frozen
  // miles plane; landmarks seeing only one endpoint of (v, target) prove
  // the pair disconnected (h = +inf), landmarks seeing neither say
  // nothing (0).
  const std::size_t lm_count = kAlt ? landmark_ids_.size() : 0;
  const double* const lm_miles = landmark_miles_.data();
  const double* const lm_target =
      kAlt ? lm_miles + target * lm_count : nullptr;
  const auto bound_to_target = [&](std::size_t v) {
    double best = 0.0;
    const double* const lv = lm_miles + v * lm_count;
    for (std::size_t l = 0; l < lm_count; ++l) {
      const double dv = lv[l];
      const double dt = lm_target[l];
      double b;
      if (dv == kInf || dt == kInf) {
        b = dv == dt ? 0.0 : kInf;
      } else {
        b = std::abs(dv - dt);
      }
      if (b > best) best = b;
    }
    return best;
  };

  auto& heap = ws.heap_;
  heap.clear();
  heap.push_back(DijkstraWorkspace::QueueEntry{
      kAlt ? bound_to_target(source) : 0.0, source});
  const std::uint32_t* const col = col_.data();
  const std::uint32_t* const rows = row_offsets_.data();
  const double* const miles = miles_.data();
  const double* const risk = risk_.data();
  const double* score_override = nullptr;
  if constexpr (kOverlay) {
    score_override = overlay->node_score_override();
    if (score_override != nullptr &&
        overlay->node_score_override_size() != n) {
      throw InvalidArgument(util::Format(
          "RouteEngine: overlay node-score override covers %zu nodes, "
          "engine has %zu",
          overlay->node_score_override_size(), n));
    }
  }
  double* const dist = ws.dist_.data();
  std::size_t* const parent = ws.parent_.data();
  // Counted in registers here, flushed to sharded atomics once per sweep
  // — the hot loop itself carries no atomic traffic.
  std::uint64_t pops = 0;
  std::uint64_t relaxations = 0;
  while (!heap.empty()) {
    const DijkstraWorkspace::QueueEntry top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
    if (ws.settled_[top.node]) continue;
    ws.settled_[top.node] = true;
    ++pops;
    if (top.node == target) break;
    const double base = dist[top.node];
    const std::uint32_t row_end = rows[top.node + 1];
    for (std::uint32_t e = rows[top.node]; e < row_end; ++e) {
      const std::size_t to = col[e];
      if (ws.settled_[to]) continue;
      if constexpr (kOverlay) {
        if (overlay->Masks(top.node, to)) continue;
      }
      ++relaxations;
      double weight = miles[e];
      if constexpr (kRisk) {
        if constexpr (kOverlay) {
          weight +=
              alpha * (score_override != nullptr ? score_override[to]
                                                 : risk[e]);
        } else {
          weight += alpha * risk[e];
        }
      }
      const double candidate = base + weight;
      if (candidate < dist[to]) {
        dist[to] = candidate;
        parent[to] = top.node;
        heap.push_back(DijkstraWorkspace::QueueEntry{
            kAlt ? candidate + bound_to_target(to) : candidate, to});
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
    if constexpr (kOverlay) {
      // Overlay additions relax after the frozen row — the position
      // RiskGraph::AddEdge would have appended them to.
      for (const OverlayEdge& oe : overlay->AddedFrom(top.node)) {
        const std::size_t to = oe.to;
        // Masks() (not just IsDisabled) so a directed removal also hides
        // an overlay-added edge — Yen's spur masking removes edges of
        // accepted paths that may themselves be overlay additions.
        if (ws.settled_[to] || overlay->Masks(top.node, to)) continue;
        ++relaxations;
        double weight = oe.miles;
        if constexpr (kRisk) {
          weight += alpha * (score_override != nullptr ? score_override[to]
                                                       : node_score_[to]);
        }
        const double candidate = base + weight;
        if (candidate < dist[to]) {
          dist[to] = candidate;
          parent[to] = top.node;
          heap.push_back(DijkstraWorkspace::QueueEntry{
              kAlt ? candidate + bound_to_target(to) : candidate, to});
          std::push_heap(heap.begin(), heap.end(), std::greater<>{});
        }
      }
    }
  }
  metrics.sweeps.Add(1);
  if constexpr (kOverlay) metrics.overlay_sweeps.Add(1);
  if constexpr (kAlt) metrics.alt_sweeps.Add(1);
  metrics.heap_pops.Add(pops);
  metrics.relaxations.Add(relaxations);
  metrics.relaxations_per_sweep.Record(relaxations);
}

void RouteEngine::Run(DijkstraWorkspace& ws, std::size_t source, double alpha,
                      std::optional<std::size_t> target,
                      const EdgeOverlay* overlay) const {
  const std::size_t tgt = target.value_or(kNoTarget);
  const bool alt = tgt != kNoTarget && AltUsable(overlay);
  if (overlay != nullptr && !overlay->empty()) {
    if (alt) {
      RunImpl<true, true, true>(ws, source, alpha, tgt, overlay);
    } else {
      RunImpl<true, true, false>(ws, source, alpha, tgt, overlay);
    }
  } else if (alt) {
    RunImpl<true, false, true>(ws, source, alpha, tgt, nullptr);
  } else {
    RunImpl<true, false, false>(ws, source, alpha, tgt, nullptr);
  }
}

void RouteEngine::RunDistance(DijkstraWorkspace& ws, std::size_t source,
                              std::optional<std::size_t> target,
                              const EdgeOverlay* overlay) const {
  const std::size_t tgt = target.value_or(kNoTarget);
  const bool alt = tgt != kNoTarget && AltUsable(overlay);
  if (overlay != nullptr && !overlay->empty()) {
    if (alt) {
      RunImpl<false, true, true>(ws, source, 0.0, tgt, overlay);
    } else {
      RunImpl<false, true, false>(ws, source, 0.0, tgt, overlay);
    }
  } else if (alt) {
    RunImpl<false, false, true>(ws, source, 0.0, tgt, nullptr);
  } else {
    RunImpl<false, false, false>(ws, source, 0.0, tgt, nullptr);
  }
}

std::vector<double> RouteEngine::SingleSourceAllTargets(
    std::size_t source, double alpha, const EdgeOverlay* overlay) const {
  thread_local DijkstraWorkspace ws;
  if (alpha == 0.0) {
    RunDistance(ws, source, std::nullopt, overlay);
  } else {
    Run(ws, source, alpha, std::nullopt, overlay);
  }
  return ws.dist_;
}

std::optional<Path> RouteEngine::FindPath(std::size_t source,
                                          std::size_t target, double alpha,
                                          const EdgeOverlay* overlay) const {
  thread_local DijkstraWorkspace ws;
  Run(ws, source, alpha, target, overlay);
  if (!ws.Reached(target)) return std::nullopt;
  return ws.PathTo(target);
}

double RouteEngine::PathWeight(const Path& path, double alpha,
                               const EdgeOverlay* overlay) const {
  if (path.empty()) throw InvalidArgument("RouteEngine::PathWeight: empty path");
  const double* const score_override =
      overlay != nullptr ? overlay->node_score_override() : nullptr;
  if (score_override != nullptr &&
      overlay->node_score_override_size() != node_count()) {
    throw InvalidArgument(util::Format(
        "RouteEngine::PathWeight: overlay node-score override covers %zu "
        "nodes, engine has %zu",
        overlay->node_score_override_size(), node_count()));
  }
  double total = 0.0;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t u = path[k - 1];
    const std::size_t v = path[k];
    bool found = false;
    double hop_miles = 0.0;
    const bool removed = overlay != nullptr && overlay->IsRemoved(u, v);
    if (!removed) {
      for (std::size_t e = row_offsets_[u]; e < row_offsets_[u + 1]; ++e) {
        if (col_[e] == v) {
          hop_miles = miles_[e];
          found = true;
          break;
        }
      }
      if (!found && overlay != nullptr) {
        for (const OverlayEdge& oe : overlay->AddedFrom(u)) {
          if (oe.to == v) {
            hop_miles = oe.miles;
            found = true;
            break;
          }
        }
      }
    }
    if (!found) {
      throw InvalidArgument(
          util::Format("RouteEngine: missing edge (%zu, %zu)", u, v));
    }
    total += hop_miles + alpha * (score_override != nullptr
                                      ? score_override[v]
                                      : node_score_[v]);
  }
  return total;
}

double RouteEngine::PathBitRiskMiles(const Path& path,
                                     const EdgeOverlay* overlay) const {
  if (path.empty()) {
    throw InvalidArgument("RouteEngine::PathBitRiskMiles: empty path");
  }
  return PathWeight(path, Alpha(path.front(), path.back()), overlay);
}

double RouteEngine::PathMiles(const Path& path,
                              const EdgeOverlay* overlay) const {
  // alpha = 0 adds +0.0 per hop, which is bitwise neutral for the
  // non-negative mileages the graph validates.
  if (path.empty()) throw InvalidArgument("RouteEngine::PathMiles: empty path");
  return PathWeight(path, 0.0, overlay);
}

PairMatrix RouteEngine::ManyToMany(std::span<const std::size_t> sources,
                                   std::span<const std::size_t> targets,
                                   RouteMetric metric, util::ThreadPool* pool,
                                   const EdgeOverlay* overlay) const {
  PairMatrix m;
  m.rows = sources.size();
  m.cols = targets.size();
  m.dist.assign(m.rows * m.cols, kInf);
  // With landmarks prepared and a sparse target set, per-pair A* beats
  // one full sweep per source: each goal-directed run settles a corridor
  // instead of the whole graph. The distances are bitwise the same either
  // way (both are the min additive fold over paths), so the cutover is a
  // pure performance policy.
  const bool targeted_distance =
      metric == RouteMetric::kDistance && AltUsable(overlay) &&
      targets.size() * 8 <= node_count();
  const auto body = [&](std::size_t s) {
    thread_local DijkstraWorkspace ws;
    double* const row = m.dist.data() + s * m.cols;
    const std::size_t src = sources[s];
    if (metric == RouteMetric::kDistance && !targeted_distance) {
      RunDistance(ws, src, std::nullopt, overlay);
      for (std::size_t t = 0; t < m.cols; ++t) {
        row[t] = ws.DistanceTo(targets[t]);
      }
      return;
    }
    if (targeted_distance) {
      for (std::size_t t = 0; t < m.cols; ++t) {
        const std::size_t tgt = targets[t];
        if (tgt == src) {
          row[t] = 0.0;
          continue;
        }
        RunDistance(ws, src, tgt, overlay);
        row[t] = ws.DistanceTo(tgt);
      }
      return;
    }
    for (std::size_t t = 0; t < m.cols; ++t) {
      const std::size_t tgt = targets[t];
      if (tgt == src) {
        row[t] = 0.0;
        continue;
      }
      Run(ws, src, Alpha(src, tgt), tgt, overlay);
      row[t] = ws.DistanceTo(tgt);
    }
  };
  // Rows are disjoint output slices: results are bitwise identical for
  // any thread count.
  Dispatch(pool, m.rows, body);
  return m;
}

PairMatrix RouteEngine::AllPairs(RouteMetric metric, util::ThreadPool* pool,
                                 const EdgeOverlay* overlay) const {
  std::vector<std::size_t> everyone(node_count());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  return ManyToMany(everyone, everyone, metric, pool, overlay);
}

RatioReport RouteEngine::ComputeRatios(std::span<const std::size_t> sources,
                                       std::span<const std::size_t> targets,
                                       util::ThreadPool* pool,
                                       const EdgeOverlay* overlay) const {
  std::vector<SourceSums> per_source(sources.size());
  const auto body = [&](std::size_t s) {
    thread_local DijkstraWorkspace distance_ws;
    thread_local DijkstraWorkspace risk_ws;
    SourceSums sums;
    const std::size_t source = sources[s];
    // One pure-distance sweep covers every target's shortest path.
    RunDistance(distance_ws, source, std::nullopt, overlay);
    for (const std::size_t target : targets) {
      if (target == source || !distance_ws.Reached(target)) continue;
      const Path shortest = distance_ws.PathTo(target);
      const double shortest_miles = distance_ws.DistanceTo(target);
      const double shortest_bit_risk = PathBitRiskMiles(shortest, overlay);
      if (shortest_bit_risk <= 0.0 || shortest_miles <= 0.0) continue;

      Run(risk_ws, source, Alpha(source, target), target, overlay);
      if (!risk_ws.Reached(target)) continue;
      const double rr_bit_risk = risk_ws.DistanceTo(target);
      const double rr_miles = PathMiles(risk_ws.PathTo(target), overlay);

      sums.risk_ratio_sum += rr_bit_risk / shortest_bit_risk;
      sums.distance_ratio_sum += rr_miles / shortest_miles;
      sums.pairs += 1;
    }
    per_source[s] = sums;
  };
  Dispatch(pool, sources.size(), body);

  RatioReport report;
  double risk_sum = 0.0;
  double distance_sum = 0.0;
  for (const SourceSums& sums : per_source) {
    risk_sum += sums.risk_ratio_sum;
    distance_sum += sums.distance_ratio_sum;
    report.pair_count += sums.pairs;
  }
  if (report.pair_count > 0) {
    const auto n = static_cast<double>(report.pair_count);
    report.risk_reduction_ratio = 1.0 - risk_sum / n;
    report.distance_increase_ratio = distance_sum / n - 1.0;
  }
  return report;
}

double RouteEngine::ParametricRowSum(std::size_t i) const {
  const std::size_t n = node_count();

  // Sweep pool: one workspace per distinct alpha swept this row, reused
  // across rows. unique_ptr keeps the pointers stable as the pool grows
  // mid-recursion.
  thread_local std::vector<std::unique_ptr<DijkstraWorkspace>> sweep_pool;
  std::size_t sweeps_used = 0;
  const auto sweep_at = [&](double alpha) {
    if (sweeps_used == sweep_pool.size()) {
      sweep_pool.push_back(std::make_unique<DijkstraWorkspace>());
    }
    DijkstraWorkspace* s = sweep_pool[sweeps_used++].get();
    Run(*s, i, alpha);
    return s;
  };

  // Per-target results, summed in ascending-j order at the end so the
  // accumulation order matches the per-pair loop exactly.
  thread_local std::vector<double> dist_row;
  dist_row.assign(n, kInf);

  // The fold of hop weights along the sweep's argmin path, evaluated at
  // this pair's alpha — the same source-to-target accumulation the
  // targeted Dijkstra performs (dist[v] = dist[u] + weight at each hop).
  std::uint64_t rewalks = 0;
  std::uint64_t bisections = 0;

  thread_local std::vector<std::size_t> chain;
  const auto rewalk = [&](std::size_t j, double alpha,
                          const DijkstraWorkspace& tree) {
    ++rewalks;
    chain.clear();
    for (std::size_t v = j; v != i; v = tree.parent_[v]) chain.push_back(v);
    double value = 0.0;
    std::size_t u = i;
    for (std::size_t k = chain.size(); k-- > 0;) {
      const std::size_t v = chain[k];
      std::size_t e = row_offsets_[u];
      while (col_[e] != v) ++e;  // edge exists: the sweep relaxed it
      double weight = miles_[e];
      weight += alpha * risk_[e];
      value = value + weight;
      u = v;
    }
    return value;
  };

  // Resolves every target in `targets` whose alpha lies in
  // [lo_alpha, hi_alpha]. A target whose alpha equals an endpoint reads
  // the sweep's distance directly (a full sweep is bitwise equal to the
  // targeted run; early exit only truncates work past the settle). A
  // target whose argmin parent chain is identical at both endpoints is
  // optimal on that same path throughout the interval — two lines
  // ordered at both ends of an interval stay ordered inside it — so an
  // O(path) rewalk at its own alpha yields the exact Dijkstra fold.
  // Remaining targets bisect at the median unresolved alpha; the median
  // target itself resolves as an endpoint of the child interval, so the
  // recursion spends at most one extra sweep per unresolved target and
  // in practice one per argmin-tree switch.
  const auto resolve = [&](auto&& self, const DijkstraWorkspace* lo,
                           double lo_alpha, const DijkstraWorkspace* hi,
                           double hi_alpha,
                           const std::vector<std::size_t>& targets) -> void {
    std::vector<std::size_t> unresolved;
    for (const std::size_t j : targets) {
      // Reachability does not depend on alpha (weights stay finite).
      if (!lo->Reached(j)) continue;
      const double alpha = Alpha(i, j);
      if (alpha == lo_alpha) {
        dist_row[j] = lo->DistanceTo(j);
        continue;
      }
      if (alpha == hi_alpha) {
        dist_row[j] = hi->DistanceTo(j);
        continue;
      }
      bool same_path = true;
      for (std::size_t v = j; v != i;) {
        const std::size_t p = lo->parent_[v];
        if (p != hi->parent_[v]) {
          same_path = false;
          break;
        }
        v = p;
      }
      if (same_path) {
        dist_row[j] = rewalk(j, alpha, *lo);
      } else {
        unresolved.push_back(j);
      }
    }
    if (unresolved.empty()) return;
    ++bisections;
    const double mid_alpha = Alpha(i, unresolved[unresolved.size() / 2]);
    const DijkstraWorkspace* mid = sweep_at(mid_alpha);
    std::vector<std::size_t> left;
    std::vector<std::size_t> right;
    for (const std::size_t j : unresolved) {
      (Alpha(i, j) <= mid_alpha ? left : right).push_back(j);
    }
    if (!left.empty()) self(self, lo, lo_alpha, mid, mid_alpha, left);
    if (!right.empty()) self(self, mid, mid_alpha, hi, hi_alpha, right);
  };

  // Row targets sorted by alpha (alpha_ij = c_i + c_j is monotone in
  // c_j), so the interval endpoints are the extreme-impact targets.
  std::vector<std::size_t> targets;
  targets.reserve(n - i - 1);
  for (std::size_t j = i + 1; j < n; ++j) targets.push_back(j);
  std::sort(targets.begin(), targets.end(),
            [&](std::size_t a, std::size_t b) {
              return impact_[a] != impact_[b] ? impact_[a] < impact_[b]
                                              : a < b;
            });
  const double alpha_lo = Alpha(i, targets.front());
  const double alpha_hi = Alpha(i, targets.back());
  const DijkstraWorkspace* lo = sweep_at(alpha_lo);
  const DijkstraWorkspace* hi =
      alpha_lo == alpha_hi ? lo : sweep_at(alpha_hi);
  resolve(resolve, lo, alpha_lo, hi, alpha_hi, targets);

  EngineMetrics& metrics = EngineMetrics::Get();
  metrics.envelope_sweeps.Add(sweeps_used);
  metrics.envelope_bisections.Add(bisections);
  metrics.envelope_rewalks.Add(rewalks);

  double sum = 0.0;
  for (std::size_t j = i + 1; j < n; ++j) {
    if (dist_row[j] != kInf) sum += dist_row[j];
  }
  return sum;
}

double RouteEngine::AggregateMinBitRisk(util::ThreadPool* pool,
                                        const EdgeOverlay* overlay) const {
  const std::size_t n = node_count();
  std::vector<double> per_source(n, 0.0);
  const bool use_overlay = overlay != nullptr && !overlay->empty();
  const auto body = [&](std::size_t i) {
    thread_local DijkstraWorkspace ws;
    // The parametric shortcut amortizes its full sweeps over the row's
    // targets; short rows (and overlay sweeps, whose parent chains may
    // thread overlay edges) keep the per-pair loop.
    if (!use_overlay && n - i > 4) {
      per_source[i] = ParametricRowSum(i);
      return;
    }
    double sum = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      Run(ws, i, Alpha(i, j), j, overlay);
      if (ws.Reached(j)) sum += ws.DistanceTo(j);
    }
    per_source[i] = sum;
  };
  Dispatch(pool, n, body);
  double total = 0.0;
  for (const double v : per_source) total += v;
  return total;
}

double RouteEngine::SumMinBitRisk(std::span<const std::size_t> sources,
                                  std::span<const std::size_t> targets,
                                  util::ThreadPool* pool,
                                  const EdgeOverlay* overlay) const {
  std::vector<double> per_source(sources.size(), 0.0);
  const auto body = [&](std::size_t s) {
    thread_local DijkstraWorkspace ws;
    const std::size_t i = sources[s];
    double sum = 0.0;
    for (const std::size_t j : targets) {
      if (j == i) continue;
      Run(ws, i, Alpha(i, j), j, overlay);
      if (ws.Reached(j)) sum += ws.DistanceTo(j);
    }
    per_source[s] = sum;
  };
  Dispatch(pool, sources.size(), body);
  double total = 0.0;
  for (const double v : per_source) total += v;
  return total;
}

}  // namespace riskroute::core
