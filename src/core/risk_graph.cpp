#include "core/risk_graph.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "geo/distance.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::core {

std::size_t RiskGraph::AddNode(RiskNode node) {
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  return nodes_.size() - 1;
}

void RiskGraph::AddEdge(std::size_t a, std::size_t b, double miles) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw InvalidArgument(util::Format("edge (%zu, %zu) out of range", a, b));
  }
  if (a == b) throw InvalidArgument("self-edges are not allowed");
  if (miles < 0.0) throw InvalidArgument("edge mileage must be non-negative");
  if (HasEdge(a, b)) return;
  adjacency_[a].push_back(RiskEdge{b, miles});
  adjacency_[b].push_back(RiskEdge{a, miles});
}

void RiskGraph::AddEdgeByDistance(std::size_t a, std::size_t b) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw InvalidArgument(util::Format("edge (%zu, %zu) out of range", a, b));
  }
  AddEdge(a, b,
          geo::GreatCircleMiles(nodes_[a].location, nodes_[b].location));
}

void RiskGraph::AddEdgesUnchecked(std::span<const WeightedLink> edges) {
  // Normalized (low, high) keys so duplicates in either orientation
  // collide; keys_sorted finds them in O(E log E) while the insertion pass
  // below walks the ORIGINAL order, so adjacency lists come out exactly as
  // a sequence of AddEdge calls would build them (first occurrence wins).
  std::vector<std::pair<std::size_t, std::size_t>> keys(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const WeightedLink& e = edges[i];
    if (e.a >= nodes_.size() || e.b >= nodes_.size()) {
      throw InvalidArgument(
          util::Format("edge (%zu, %zu) out of range", e.a, e.b));
    }
    if (e.a == e.b) throw InvalidArgument("self-edges are not allowed");
    if (e.miles < 0.0) {
      throw InvalidArgument("edge mileage must be non-negative");
    }
    keys[i] = std::minmax(e.a, e.b);
  }
  std::vector<std::size_t> by_key(edges.size());
  std::iota(by_key.begin(), by_key.end(), 0);
  std::sort(by_key.begin(), by_key.end(), [&](std::size_t x, std::size_t y) {
    return keys[x] != keys[y] ? keys[x] < keys[y] : x < y;
  });
  std::vector<bool> duplicate(edges.size(), false);
  for (std::size_t s = 1; s < by_key.size(); ++s) {
    if (keys[by_key[s]] == keys[by_key[s - 1]]) duplicate[by_key[s]] = true;
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (duplicate[i]) continue;
    const WeightedLink& e = edges[i];
    adjacency_[e.a].push_back(RiskEdge{e.b, e.miles});
    adjacency_[e.b].push_back(RiskEdge{e.a, e.miles});
  }
}

void RiskGraph::RemoveEdge(std::size_t a, std::size_t b) {
  if (!HasEdge(a, b)) {
    throw InvalidArgument(util::Format("edge (%zu, %zu) not present", a, b));
  }
  std::erase_if(adjacency_[a], [&](const RiskEdge& e) { return e.to == b; });
  std::erase_if(adjacency_[b], [&](const RiskEdge& e) { return e.to == a; });
}

bool RiskGraph::HasEdge(std::size_t a, std::size_t b) const {
  if (a >= adjacency_.size()) return false;
  return std::any_of(adjacency_[a].begin(), adjacency_[a].end(),
                     [&](const RiskEdge& e) { return e.to == b; });
}

const RiskNode& RiskGraph::node(std::size_t i) const {
  if (i >= nodes_.size()) {
    throw InvalidArgument(util::Format("node index %zu out of range", i));
  }
  return nodes_[i];
}

const std::vector<RiskEdge>& RiskGraph::OutEdges(std::size_t i) const {
  if (i >= adjacency_.size()) {
    throw InvalidArgument(util::Format("node index %zu out of range", i));
  }
  return adjacency_[i];
}

std::size_t RiskGraph::directed_edge_count() const {
  std::size_t total = 0;
  for (const auto& edges : adjacency_) total += edges.size();
  return total;
}

void RiskGraph::SetForecastRisks(const std::vector<double>& risks) {
  if (risks.size() != nodes_.size()) {
    throw InvalidArgument(util::Format(
        "SetForecastRisks: %zu risks for %zu nodes", risks.size(),
        nodes_.size()));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].forecast_risk = risks[i];
  }
}

void RiskGraph::ClearForecastRisks() {
  for (RiskNode& node : nodes_) node.forecast_risk = 0.0;
}

RiskGraph RiskGraph::FromNetwork(const topology::Network& network,
                                 const population::ImpactModel& impact,
                                 const hazard::HistoricalRiskField& hazard_field) {
  return FromNetwork(network, impact, hazard_field.PopRisks(network));
}

RiskGraph RiskGraph::FromNetwork(const topology::Network& network,
                                 const population::ImpactModel& impact,
                                 std::span<const double> historical_risks) {
  if (historical_risks.size() != network.pop_count()) {
    throw InvalidArgument(util::Format(
        "FromNetwork: %zu historical risks for %zu PoPs",
        historical_risks.size(), network.pop_count()));
  }
  RiskGraph graph;
  for (std::size_t i = 0; i < network.pop_count(); ++i) {
    const topology::Pop& pop = network.pop(i);
    graph.AddNode(RiskNode{pop.name, pop.location, impact.fraction(i),
                           historical_risks[i], 0.0});
  }
  std::vector<WeightedLink> edges;
  edges.reserve(network.link_count());
  for (const topology::Link& link : network.links()) {
    edges.push_back(WeightedLink{
        link.a, link.b,
        geo::GreatCircleMiles(network.pop(link.a).location,
                              network.pop(link.b).location)});
  }
  graph.AddEdgesUnchecked(edges);
  return graph;
}

}  // namespace riskroute::core
