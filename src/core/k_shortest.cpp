#include "core/k_shortest.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::core {
namespace {

/// Edge-weight wrapper that masks a set of removed nodes and edges.
struct MaskedWeight {
  const EdgeWeightFn* base;
  const std::vector<bool>* removed_nodes;
  const std::set<std::pair<std::size_t, std::size_t>>* removed_edges;

  double operator()(std::size_t from, const RiskEdge& edge) const {
    if ((*removed_nodes)[edge.to] ||
        removed_edges->contains({from, edge.to})) {
      return DijkstraWorkspace::Infinity();
    }
    return (*base)(from, edge);
  }
};

double PathWeight(const RiskGraph& graph, const Path& path,
                  const EdgeWeightFn& weight) {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    bool found = false;
    for (const RiskEdge& edge : graph.OutEdges(path[i - 1])) {
      if (edge.to == path[i]) {
        total += weight(path[i - 1], edge);
        found = true;
        break;
      }
    }
    if (!found) throw InternalError("KShortestPaths: broken candidate path");
  }
  return total;
}

}  // namespace

std::vector<WeightedPath> KShortestPaths(const RiskGraph& graph,
                                         std::size_t source,
                                         std::size_t target, std::size_t k,
                                         const EdgeWeightFn& weight) {
  if (k == 0) throw InvalidArgument("KShortestPaths: k must be positive");
  if (source >= graph.node_count() || target >= graph.node_count()) {
    throw InvalidArgument("KShortestPaths: node out of range");
  }
  if (source == target) {
    return {WeightedPath{{}, Path{source}, 0.0}};
  }

  std::vector<WeightedPath> accepted;
  // Candidate pool; keyed by (weight, path) so duplicates coalesce.
  auto compare = [](const WeightedPath& a, const WeightedPath& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.path < b.path;
  };
  std::set<WeightedPath, decltype(compare)> candidates(compare);

  {
    const auto first = ShortestPathWith(graph, source, target, weight);
    if (!first) return {};
    accepted.push_back(WeightedPath{{}, *first, PathWeight(graph, *first, weight)});
  }

  std::vector<bool> removed_nodes(graph.node_count(), false);
  std::set<std::pair<std::size_t, std::size_t>> removed_edges;

  while (accepted.size() < k) {
    const Path& previous = accepted.back().path;
    // Each prefix of the last accepted path spawns a spur candidate.
    for (std::size_t spur = 0; spur + 1 < previous.size(); ++spur) {
      const Path root(previous.begin(),
                      previous.begin() + static_cast<std::ptrdiff_t>(spur) + 1);

      std::fill(removed_nodes.begin(), removed_nodes.end(), false);
      removed_edges.clear();
      // Remove edges used by already-accepted paths sharing this root.
      for (const WeightedPath& wp : accepted) {
        if (wp.path.size() > spur + 1 &&
            std::equal(root.begin(), root.end(), wp.path.begin())) {
          removed_edges.insert({wp.path[spur], wp.path[spur + 1]});
        }
      }
      // Remove root nodes except the spur node (looplessness).
      for (std::size_t i = 0; i < spur; ++i) removed_nodes[root[i]] = true;

      DijkstraWorkspace workspace;
      const MaskedWeight masked{&weight, &removed_nodes, &removed_edges};
      workspace.Run(graph, root.back(), masked, target);
      if (!workspace.Reached(target)) continue;
      const Path spur_path = workspace.PathTo(target);

      Path candidate = root;
      candidate.insert(candidate.end(), spur_path.begin() + 1,
                       spur_path.end());
      const double w = PathWeight(graph, candidate, weight);
      if (!std::isfinite(w)) continue;  // used a masked edge
      candidates.insert(WeightedPath{{}, std::move(candidate), w});
    }
    if (candidates.empty()) break;
    // Promote the best unseen candidate.
    WeightedPath best = *candidates.begin();
    candidates.erase(candidates.begin());
    const bool duplicate =
        std::any_of(accepted.begin(), accepted.end(),
                    [&](const WeightedPath& wp) { return wp.path == best.path; });
    if (!duplicate) accepted.push_back(std::move(best));
  }
  return accepted;
}

std::vector<WeightedPath> KShortestPaths(const RouteEngine& engine,
                                         std::size_t source,
                                         std::size_t target, std::size_t k,
                                         double alpha,
                                         const EdgeOverlay* base) {
  if (k == 0) throw InvalidArgument("KShortestPaths: k must be positive");
  if (source >= engine.node_count() || target >= engine.node_count()) {
    throw InvalidArgument("KShortestPaths: node out of range");
  }
  if (source == target) {
    return {WeightedPath{{}, Path{source}, 0.0}};
  }

  std::vector<WeightedPath> accepted;
  auto compare = [](const WeightedPath& a, const WeightedPath& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.path < b.path;
  };
  std::set<WeightedPath, decltype(compare)> candidates(compare);

  {
    const auto first = engine.FindPath(source, target, alpha, base);
    if (!first) return {};
    accepted.push_back(
        WeightedPath{{}, *first, engine.PathWeight(*first, alpha, base)});
  }

  EdgeOverlay masked;
  DijkstraWorkspace workspace;

  while (accepted.size() < k) {
    const Path& previous = accepted.back().path;
    // Each prefix of the last accepted path spawns a spur candidate.
    for (std::size_t spur = 0; spur + 1 < previous.size(); ++spur) {
      const Path root(previous.begin(),
                      previous.begin() + static_cast<std::ptrdiff_t>(spur) + 1);

      masked = base != nullptr ? *base : EdgeOverlay{};
      // Remove edges used by already-accepted paths sharing this root.
      for (const WeightedPath& wp : accepted) {
        if (wp.path.size() > spur + 1 &&
            std::equal(root.begin(), root.end(), wp.path.begin())) {
          masked.RemoveDirectedEdge(wp.path[spur], wp.path[spur + 1]);
        }
      }
      // Remove root nodes except the spur node (looplessness).
      for (std::size_t i = 0; i < spur; ++i) masked.DisableNode(root[i]);

      engine.Run(workspace, root.back(), alpha, target, &masked);
      if (!workspace.Reached(target)) continue;
      const Path spur_path = workspace.PathTo(target);

      Path candidate = root;
      candidate.insert(candidate.end(), spur_path.begin() + 1,
                       spur_path.end());
      const double w = engine.PathWeight(candidate, alpha, base);
      if (!std::isfinite(w)) continue;
      candidates.insert(WeightedPath{{}, std::move(candidate), w});
    }
    if (candidates.empty()) break;
    // Promote the best unseen candidate.
    WeightedPath best = *candidates.begin();
    candidates.erase(candidates.begin());
    const bool duplicate =
        std::any_of(accepted.begin(), accepted.end(),
                    [&](const WeightedPath& wp) { return wp.path == best.path; });
    if (!duplicate) accepted.push_back(std::move(best));
  }
  // Fill the shared PathMetrics from the frozen planes; a k-path caller
  // reads the same field names as every other routing surface.
  for (WeightedPath& wp : accepted) {
    wp.miles = engine.PathMiles(wp.path, base);
    wp.bit_risk_miles = engine.PathBitRiskMiles(wp.path, base);
  }
  return accepted;
}

}  // namespace riskroute::core
