// PathMetrics: the shared per-path measurement every routing surface
// reports. Result structs across the library (core::RouteResult,
// core::RouteObjectives, core::WeightedPath) inherit it so callers read
// the same two field names everywhere instead of per-module spellings
// (`bit_miles`, `weight_miles`, ...). Aggregate objectives (Eq 4 sums)
// use the same `bit_risk_miles` spelling for the summed quantity.
#pragma once

namespace riskroute::core {

/// Measurements of one path under the paper's two metrics.
struct PathMetrics {
  /// Plain mileage of the path (sum of hop distances).
  double miles = 0.0;
  /// Eq 1 bit-risk miles of the path; endpoints define alpha.
  double bit_risk_miles = 0.0;
};

}  // namespace riskroute::core
