#include "core/multi_objective.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/riskroute.h"
#include "util/error.h"

namespace riskroute::core {

MultiObjectiveRouter::MultiObjectiveRouter(const RiskGraph& graph,
                                           const RiskParams& params,
                                           std::size_t candidates_per_objective)
    : graph_(graph),
      params_(params),
      engine_(graph, params),
      k_(candidates_per_objective) {
  if (k_ == 0) {
    throw InvalidArgument("MultiObjectiveRouter: need at least one candidate");
  }
}

std::vector<RouteObjectives> MultiObjectiveRouter::Candidates(
    std::size_t i, std::size_t j) const {
  const double alpha = engine_.Alpha(i, j);

  // Both enumerations run on the frozen engine: alpha = 0 is the distance
  // objective, alpha_ij the bit-risk objective.
  std::vector<WeightedPath> pool = KShortestPaths(engine_, i, j, k_, 0.0);
  for (WeightedPath& wp : KShortestPaths(engine_, i, j, k_, alpha)) {
    pool.push_back(std::move(wp));
  }

  std::vector<RouteObjectives> candidates;
  candidates.reserve(pool.size());
  for (const WeightedPath& wp : pool) {
    const bool duplicate = std::any_of(
        candidates.begin(), candidates.end(),
        [&](const RouteObjectives& r) { return r.path == wp.path; });
    if (duplicate) continue;
    RouteObjectives route;
    route.path = wp.path;
    route.miles = engine_.PathMiles(wp.path);
    route.latency_ms = MilesToLatencyMs(route.miles);
    route.bit_risk_miles = engine_.PathBitRiskMiles(wp.path);
    candidates.push_back(std::move(route));
  }
  return candidates;
}

std::vector<RouteObjectives> MultiObjectiveRouter::ParetoFront(
    std::size_t i, std::size_t j) const {
  std::vector<RouteObjectives> candidates = Candidates(i, j);
  std::sort(candidates.begin(), candidates.end(),
            [](const RouteObjectives& a, const RouteObjectives& b) {
              if (a.latency_ms != b.latency_ms) {
                return a.latency_ms < b.latency_ms;
              }
              return a.bit_risk_miles < b.bit_risk_miles;
            });
  std::vector<RouteObjectives> front;
  double best_risk = std::numeric_limits<double>::infinity();
  for (RouteObjectives& route : candidates) {
    if (route.bit_risk_miles < best_risk - 1e-12) {
      best_risk = route.bit_risk_miles;
      front.push_back(std::move(route));
    }
  }
  return front;
}

std::optional<RouteObjectives> MultiObjectiveRouter::MinRiskWithinLatency(
    std::size_t i, std::size_t j, double max_latency_ms) const {
  std::optional<RouteObjectives> best;
  for (RouteObjectives& route : ParetoFront(i, j)) {
    if (route.latency_ms <= max_latency_ms &&
        (!best || route.bit_risk_miles < best->bit_risk_miles)) {
      best = std::move(route);
    }
  }
  return best;
}

std::optional<RouteObjectives> MultiObjectiveRouter::Scalarized(
    std::size_t i, std::size_t j, double risk_weight) const {
  if (risk_weight < 0.0 || risk_weight > 1.0) {
    throw InvalidArgument("Scalarized: risk_weight must be in [0, 1]");
  }
  const std::vector<RouteObjectives> front = ParetoFront(i, j);
  if (front.empty()) return std::nullopt;
  double min_latency = std::numeric_limits<double>::infinity();
  double min_risk = std::numeric_limits<double>::infinity();
  for (const RouteObjectives& route : front) {
    min_latency = std::min(min_latency, route.latency_ms);
    min_risk = std::min(min_risk, route.bit_risk_miles);
  }
  min_latency = std::max(min_latency, 1e-9);
  min_risk = std::max(min_risk, 1e-9);

  const RouteObjectives* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  for (const RouteObjectives& route : front) {
    const double score =
        (1.0 - risk_weight) * route.latency_ms / min_latency +
        risk_weight * route.bit_risk_miles / min_risk;
    if (score < best_score) {
      best_score = score;
      best = &route;
    }
  }
  return *best;
}

}  // namespace riskroute::core
