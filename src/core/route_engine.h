// RouteEngine: a RiskGraph frozen into immutable CSR form with
// precomputed weight planes, plus pooled workspaces and batched parallel
// sweeps. This is the routing substrate every Section 6/7 evaluation runs
// on: relaxation is index arithmetic plus contiguous array loads — no
// adjacency-list pointer chasing, no per-edge weight callbacks, no
// per-call queue allocation.
//
// Layout. Freezing walks the adjacency lists once and records, per
// directed edge e in row order: the head `EdgeHead(e)` and two weight
// planes — `EdgeMiles(e)` (pure distance) and `EdgeRisk(e)` =
// lambda_h * o_h(head) + lambda_f * o_f(head) (the Equation 1 node term
// for the engine's RiskParams). A relaxation under pair scale alpha then
// costs `miles[e] + alpha * risk[e]`; alpha = 0 is exactly the distance
// metric. CSR rows preserve adjacency-list iteration order, so every
// sweep is bitwise identical to the legacy DijkstraWorkspace loop over
// the RiskGraph (same relaxation order, same heap evolution, same
// distances, same parent chains).
//
// Forecast updates. SetForecastRisks/ClearForecastRisks rebuild the node
// scores and the risk plane in place (O(N + E)) — the per-advisory path
// of the disaster case studies — without re-freezing the topology.
//
// Overlays. Every sweep takes an optional EdgeOverlay: removed edges are
// skipped in place, added edges relax after the frozen row in insertion
// order, disabled nodes reject relaxation. See edge_overlay.h for why
// that is bitwise identical to mutate-and-restore.
//
// Determinism. Batched sweeps parallelize over sources with disjoint
// output slices and reduce in fixed index order, so results are bitwise
// independent of thread count (the PR 1 contract).
//
// ALT (A*, Landmarks, Triangle inequality). PrepareLandmarks picks k
// landmarks by farthest-point traversal on the miles plane and runs one
// full distance sweep per landmark. Targeted sweeps then run A* with
// h(v) = max_L |d_miles(L,v) - d_miles(L,t)|, a lower bound on
// d_miles(v,t) by the triangle inequality. Because every relaxation
// weight is miles[e] + alpha * risk[e] >= miles[e] for alpha, risk >= 0,
// the same h is admissible and consistent for *every* pair scale alpha,
// so one landmark table serves the distance metric and all bit-risk
// alphas. A* g-values accumulate through the identical relaxation
// expression as Dijkstra, so settled distances are bitwise equal with
// ALT on or off (argmin parent chains can differ only on exact
// floating-point ties between distinct paths). ALT engages only for
// targeted sweeps and is bypassed when an overlay *adds* edges (added
// edges can shorten miles distances below the frozen-plane bounds);
// removals and disabled nodes only lengthen distances, so the bounds
// stay admissible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/edge_overlay.h"
#include "core/path_metrics.h"
#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/riskroute.h"
#include "core/shortest_path.h"
#include "geo/geo_point.h"
#include "util/parse_result.h"
#include "util/thread_pool.h"

namespace riskroute::core {

/// Which weight plane a batched sweep relaxes under.
enum class RouteMetric {
  kDistance,  // pure bit-miles; one full Dijkstra per source
  kBitRisk,   // Eq 1 with per-pair alpha_ij; one targeted Dijkstra per pair
};

/// Dense result of a batched sweep: dist(sources[r], targets[c]),
/// +infinity when unreachable.
struct PairMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> dist;  // row-major

  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return dist[r * cols + c];
  }
};

class RouteEngine {
 public:
  /// Freezes `graph` under `params`. The graph is fully copied into CSR
  /// form; later mutations of `graph` do not affect the engine.
  RouteEngine(const RiskGraph& graph, const RiskParams& params);

  [[nodiscard]] std::size_t node_count() const { return node_score_.size(); }
  [[nodiscard]] const RiskParams& params() const { return params_; }

  /// lambda_h * o_h(v) + lambda_f * o_f(v) — bitwise equal to
  /// RiskRouter::NodeScore.
  [[nodiscard]] double NodeScore(std::size_t v) const {
    return node_score_[v];
  }
  /// Node score under a hypothetical forecast risk, evaluated with the
  /// exact RebuildRiskPlane expression (same translation unit, same
  /// flags). The streaming layer builds EdgeOverlay node-score override
  /// planes from these values, which is what makes an overlay sweep
  /// bitwise equal to re-freezing the engine at that forecast plane.
  [[nodiscard]] double ScoreWithForecast(std::size_t v,
                                         double forecast_risk) const;
  /// Frozen forecast-risk input at v (zero on a baseline engine).
  [[nodiscard]] double forecast_risk(std::size_t v) const {
    return forecast_[v];
  }
  /// alpha_ij = c_i + c_j.
  [[nodiscard]] double Alpha(std::size_t i, std::size_t j) const {
    return impact_[i] + impact_[j];
  }
  [[nodiscard]] double impact_fraction(std::size_t v) const {
    return impact_[v];
  }
  [[nodiscard]] const geo::GeoPoint& location(std::size_t v) const {
    return location_[v];
  }
  /// Node name copied from the RiskGraph at freeze time (empty when the
  /// graph carried none). Snapshot boots keep names without the graph.
  [[nodiscard]] const std::string& node_name(std::size_t v) const {
    return name_[v];
  }

  /// CSR row bounds and per-edge planes (frozen edges only).
  [[nodiscard]] std::size_t EdgeBegin(std::size_t u) const {
    return row_offsets_[u];
  }
  [[nodiscard]] std::size_t EdgeEnd(std::size_t u) const {
    return row_offsets_[u + 1];
  }
  [[nodiscard]] std::size_t EdgeHead(std::size_t e) const { return col_[e]; }
  [[nodiscard]] double EdgeMiles(std::size_t e) const { return miles_[e]; }
  [[nodiscard]] double EdgeRisk(std::size_t e) const { return risk_[e]; }

  /// True when the frozen graph has the undirected edge (overlay-added
  /// edges are the overlay's business).
  [[nodiscard]] bool HasEdge(std::size_t a, std::size_t b) const;

  /// Replaces/clears every node's forecast risk and rebuilds the risk
  /// plane — the per-advisory update of the disaster case studies.
  /// Landmark tables stay valid: they bound the miles plane, which risk
  /// updates never touch.
  void SetForecastRisks(std::span<const double> risks);
  void ClearForecastRisks();

  // --- ALT landmarks (see the header comment) ---

  /// Selects `count` landmarks by farthest-point traversal on the miles
  /// plane (seeded from node 0's farthest node; ties break to the lowest
  /// node id) and runs one full distance sweep per landmark to fill the
  /// node-major k-per-node distance table. Deterministic; O(k) sweeps.
  /// `count` is clamped to the node count; 0 clears. Once prepared, every
  /// *targeted* sweep upgrades to A* automatically; untargeted sweeps and
  /// sweeps under overlays with added edges keep plain Dijkstra. Settled
  /// distances are bitwise identical either way.
  void PrepareLandmarks(std::size_t count);
  void ClearLandmarks();
  [[nodiscard]] std::size_t landmark_count() const {
    return landmark_ids_.size();
  }
  [[nodiscard]] std::span<const std::uint32_t> landmark_ids() const {
    return landmark_ids_;
  }
  /// d_miles(landmark, v) on the frozen graph; +inf when disconnected.
  [[nodiscard]] double LandmarkMiles(std::size_t landmark,
                                     std::size_t v) const {
    return landmark_miles_[v * landmark_ids_.size() + landmark];
  }

  // --- Engine snapshots (versioned little-endian SoA; see
  // route_engine_snapshot.cpp for the layout) ---

  /// Serializes the frozen engine — CSR arrays, miles plane, node
  /// attributes, locations, names, landmark tables, params + checksum —
  /// in the canonical snapshot byte layout (64-byte-aligned sections,
  /// zero padding). The risk plane and node scores are rebuilt on load
  /// from the stored attributes, bitwise identically.
  void SaveSnapshot(std::ostream& out) const;
  void SaveSnapshotFile(const std::string& path) const;
  [[nodiscard]] std::string SnapshotBytes() const;

  /// Parses a snapshot. Every field is validated (magic, version,
  /// counts, monotone CSR offsets, finite non-negative miles, lat/lon
  /// ranges, checksum, zero padding) and hostile bytes surface as a
  /// ParseDiagnostic — never UB or an exception. An accepted snapshot is
  /// canonical: SaveSnapshot of the loaded engine reproduces the input
  /// bytes exactly.
  [[nodiscard]] static util::ParseResult<RouteEngine> LoadSnapshot(
      std::span<const std::uint8_t> bytes);
  [[nodiscard]] static util::ParseResult<RouteEngine> LoadSnapshotFile(
      const std::string& path);

  /// FNV-1a64 over a snapshot-payload byte run — exposed so tools and
  /// tests can recompute the stored checksum after patching bytes.
  [[nodiscard]] static std::uint64_t SnapshotChecksum(
      std::span<const std::uint8_t> bytes,
      std::uint64_t seed = 14695981039346656037ull);

  // --- Single-source sweeps (DijkstraWorkspace is the scratch type) ---

  /// Dijkstra under weight miles + alpha * risk; stops early once
  /// `target` is settled. Results land in `ws` (DistanceTo / Reached /
  /// PathTo), bitwise identical to DijkstraWorkspace::Run over the source
  /// RiskGraph with the corresponding weight function.
  void Run(DijkstraWorkspace& ws, std::size_t source, double alpha,
           std::optional<std::size_t> target = std::nullopt,
           const EdgeOverlay* overlay = nullptr) const;

  /// Pure-distance Dijkstra (the miles plane only; bitwise identical to
  /// Run with alpha = 0, and to DistanceWeight over the RiskGraph).
  void RunDistance(DijkstraWorkspace& ws, std::size_t source,
                   std::optional<std::size_t> target = std::nullopt,
                   const EdgeOverlay* overlay = nullptr) const;

  /// One full sweep's distance row (index = target node; +inf when
  /// unreachable). Runs on a pooled thread-local workspace.
  [[nodiscard]] std::vector<double> SingleSourceAllTargets(
      std::size_t source, double alpha,
      const EdgeOverlay* overlay = nullptr) const;

  /// Single-shot path under weight miles + alpha * risk; nullopt when
  /// unreachable. Pooled thread-local workspace.
  [[nodiscard]] std::optional<Path> FindPath(
      std::size_t source, std::size_t target, double alpha,
      const EdgeOverlay* overlay = nullptr) const;

  // --- Path metrics (bitwise equal to the RiskRouter evaluators) ---

  /// Sum over hops of miles + alpha * NodeScore(head); throws
  /// InvalidArgument on an empty path or a missing edge.
  [[nodiscard]] double PathWeight(const Path& path, double alpha,
                                  const EdgeOverlay* overlay = nullptr) const;
  /// Eq 1 on an explicit path; endpoints define alpha.
  [[nodiscard]] double PathBitRiskMiles(
      const Path& path, const EdgeOverlay* overlay = nullptr) const;
  [[nodiscard]] double PathMiles(const Path& path,
                                 const EdgeOverlay* overlay = nullptr) const;
  /// Both shared metrics of a path in one call — the PathMetrics every
  /// result struct carries.
  [[nodiscard]] PathMetrics Measure(const Path& path,
                                    const EdgeOverlay* overlay = nullptr) const {
    return PathMetrics{PathMiles(path, overlay),
                       PathBitRiskMiles(path, overlay)};
  }

  // --- Batched parallel sweeps (bitwise thread-count independent) ---

  /// dist(sources[r], targets[c]) under the metric. kDistance runs one
  /// full sweep per source — unless landmarks are prepared, the overlay
  /// adds no edges, and the target set is sparse (|targets| * 8 <=
  /// node_count()), in which case it runs one goal-directed ALT search
  /// per pair instead (same distances bitwise, far fewer settled nodes).
  /// kBitRisk runs one targeted sweep per pair with
  /// alpha = Alpha(source, target).
  [[nodiscard]] PairMatrix ManyToMany(std::span<const std::size_t> sources,
                                      std::span<const std::size_t> targets,
                                      RouteMetric metric,
                                      util::ThreadPool* pool = nullptr,
                                      const EdgeOverlay* overlay = nullptr) const;

  /// ManyToMany over every node as both source and target.
  [[nodiscard]] PairMatrix AllPairs(RouteMetric metric,
                                    util::ThreadPool* pool = nullptr,
                                    const EdgeOverlay* overlay = nullptr) const;

  // --- Aggregates (legacy-identical pair order and summation order) ---

  /// Eq 5 / Eq 6 ratios over ordered (source, target) pairs; same skip
  /// rules and accumulation order as core::ComputeRatios.
  [[nodiscard]] RatioReport ComputeRatios(
      std::span<const std::size_t> sources,
      std::span<const std::size_t> targets, util::ThreadPool* pool = nullptr,
      const EdgeOverlay* overlay = nullptr) const;

  /// Eq 4 objective over unordered pairs (j > i), bitwise equal to
  /// core::AggregateMinBitRisk. Without an overlay this runs the
  /// parametric row sweep (see ParametricRowSum) instead of one targeted
  /// Dijkstra per pair, which is several times faster on the Section 7
  /// topologies while producing the identical sum.
  [[nodiscard]] double AggregateMinBitRisk(
      util::ThreadPool* pool = nullptr,
      const EdgeOverlay* overlay = nullptr) const;

  /// Generalized Eq 4 over ordered (source, target) pairs with
  /// source != target, bitwise equal to core::SumMinBitRisk.
  [[nodiscard]] double SumMinBitRisk(std::span<const std::size_t> sources,
                                     std::span<const std::size_t> targets,
                                     util::ThreadPool* pool = nullptr,
                                     const EdgeOverlay* overlay = nullptr) const;

 private:
  /// Uninitialized shell for LoadSnapshot.
  RouteEngine() = default;

  template <bool kRisk, bool kOverlay, bool kAlt>
  void RunImpl(DijkstraWorkspace& ws, std::size_t source, double alpha,
               std::size_t target, const EdgeOverlay* overlay) const;

  /// True when a targeted sweep may use the landmark bounds: landmarks
  /// prepared and no overlay-added edges undercutting the miles plane.
  [[nodiscard]] bool AltUsable(const EdgeOverlay* overlay) const {
    return !landmark_ids_.empty() &&
           (overlay == nullptr || overlay->added().empty());
  }

  /// Sum of min bit-risk-miles from source i to every j > i, bitwise
  /// equal to running one targeted Dijkstra per pair. Exploits that the
  /// pair weight is linear in alpha: path cost = miles(P) + alpha *
  /// score(P), so per target the optimum over alpha is a lower envelope
  /// of lines. Full sweeps at the row's extreme alphas bound the
  /// envelope — a line that is minimal at both ends of an alpha interval
  /// is minimal throughout it (two lines cross at most once) — so every
  /// target whose endpoint parent chains coincide needs only an O(path)
  /// re-walk at its own alpha; targets whose chains differ bisect the
  /// interval at the median unresolved alpha, sharing each new sweep
  /// across the row.
  [[nodiscard]] double ParametricRowSum(std::size_t i) const;

  void RebuildRiskPlane();

  RiskParams params_;

  // CSR topology + weight planes.
  std::vector<std::uint32_t> row_offsets_;  // size N + 1
  std::vector<std::uint32_t> col_;          // directed edge heads
  std::vector<double> miles_;               // distance plane
  std::vector<double> risk_;                // node-score plane, risk_[e] = node_score_[col_[e]]

  // Frozen node attributes.
  std::vector<double> impact_;      // c_i
  std::vector<double> historical_;  // o_h
  std::vector<double> forecast_;    // o_f
  std::vector<double> node_score_;  // lambda_h * o_h + lambda_f * o_f
  std::vector<geo::GeoPoint> location_;
  std::vector<std::string> name_;

  // ALT landmark tables (empty until PrepareLandmarks). landmark_miles_
  // is node-major — the k bounds a relaxation reads are contiguous:
  // landmark_miles_[v * k + l] = d_miles(landmark_ids_[l], v).
  std::vector<std::uint32_t> landmark_ids_;
  std::vector<double> landmark_miles_;
};

}  // namespace riskroute::core
