#include "core/disjoint_paths.h"

#include <algorithm>
#include <limits>
#include <map>

#include "util/error.h"

namespace riskroute::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Directed arc in the (possibly node-split) working graph.
struct Arc {
  std::size_t from;
  std::size_t to;
  double weight;
};

/// Working graph: arc list + adjacency indices.
struct ArcGraph {
  std::size_t node_count = 0;
  std::vector<Arc> arcs;
  std::vector<std::vector<std::size_t>> out;  // node -> arc indices

  void AddArc(std::size_t from, std::size_t to, double weight) {
    out[from].push_back(arcs.size());
    arcs.push_back(Arc{from, to, weight});
  }
};

/// Builds the working graph. With node splitting, original node i becomes
/// in-node 2i and out-node 2i+1 joined by a zero-weight arc; undirected
/// links become u_out -> v_in arcs both ways. Without splitting, node i
/// maps to itself.
ArcGraph BuildArcGraph(const RiskGraph& graph, const EdgeWeightFn& weight,
                       bool split_nodes) {
  const std::size_t n = graph.node_count();
  ArcGraph work;
  work.node_count = split_nodes ? 2 * n : n;
  work.out.resize(work.node_count);
  if (split_nodes) {
    for (std::size_t v = 0; v < n; ++v) {
      work.AddArc(2 * v, 2 * v + 1, 0.0);  // in -> out
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (const RiskEdge& edge : graph.OutEdges(u)) {
      const double w = weight(u, edge);
      if (w < 0.0) {
        throw InvalidArgument("FindDisjointPair: negative edge weight");
      }
      if (split_nodes) {
        work.AddArc(2 * u + 1, 2 * edge.to, w);
      } else {
        work.AddArc(u, edge.to, w);
      }
    }
  }
  return work;
}

/// Bellman-Ford (handles the negative reversed arcs of the residual
/// graph); returns parent arc indices, or empty if target unreachable.
std::vector<std::size_t> BellmanFord(const ArcGraph& graph,
                                     const std::vector<bool>& arc_enabled,
                                     std::size_t source, std::size_t target) {
  std::vector<double> dist(graph.node_count, kInf);
  std::vector<std::size_t> parent_arc(graph.node_count,
                                      graph.arcs.size());  // sentinel
  dist[source] = 0.0;
  for (std::size_t round = 0; round + 1 < graph.node_count; ++round) {
    bool changed = false;
    for (std::size_t a = 0; a < graph.arcs.size(); ++a) {
      if (!arc_enabled[a]) continue;
      const Arc& arc = graph.arcs[a];
      if (dist[arc.from] == kInf) continue;
      const double candidate = dist[arc.from] + arc.weight;
      if (candidate < dist[arc.to] - 1e-12) {
        dist[arc.to] = candidate;
        parent_arc[arc.to] = a;
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (dist[target] == kInf) return {};
  // Reconstruct the arc sequence target <- source.
  std::vector<std::size_t> path_arcs;
  std::size_t cursor = target;
  while (cursor != source) {
    const std::size_t a = parent_arc[cursor];
    if (a == graph.arcs.size()) {
      throw InternalError("FindDisjointPair: broken Bellman-Ford chain");
    }
    path_arcs.push_back(a);
    cursor = graph.arcs[a].from;
  }
  std::reverse(path_arcs.begin(), path_arcs.end());
  return path_arcs;
}

/// Maps a split-space node sequence back to original node ids, collapsing
/// in/out duplicates; identity when not split.
Path Unsplit(const std::vector<std::size_t>& nodes, bool split_nodes) {
  Path path;
  for (const std::size_t v : nodes) {
    const std::size_t original = split_nodes ? v / 2 : v;
    if (path.empty() || path.back() != original) path.push_back(original);
  }
  return path;
}

}  // namespace

std::optional<DisjointPathPair> FindDisjointPair(const RiskGraph& graph,
                                                 std::size_t source,
                                                 std::size_t target,
                                                 const EdgeWeightFn& weight,
                                                 Disjointness disjointness) {
  const std::size_t n = graph.node_count();
  if (source >= n || target >= n) {
    throw InvalidArgument("FindDisjointPair: node out of range");
  }
  if (source == target) {
    throw InvalidArgument("FindDisjointPair: source equals target");
  }
  const bool split = disjointness == Disjointness::kNodeDisjoint;
  ArcGraph work = BuildArcGraph(graph, weight, split);
  const std::size_t s = split ? 2 * source + 1 : source;  // leave from out
  const std::size_t t = split ? 2 * target : target;      // arrive at in

  std::vector<bool> enabled(work.arcs.size(), true);

  // First shortest path (Bellman-Ford doubles as our Dijkstra here; the
  // graphs are small and it keeps one code path).
  const std::vector<std::size_t> p1_arcs = BellmanFord(work, enabled, s, t);
  if (p1_arcs.empty()) return std::nullopt;

  // Residual: reverse P1's arcs with negated weight.
  for (const std::size_t a : p1_arcs) {
    const Arc arc = work.arcs[a];
    enabled[a] = false;
    enabled.push_back(true);
    work.AddArc(arc.to, arc.from, -arc.weight);
  }

  const std::vector<std::size_t> p2_arcs = BellmanFord(work, enabled, s, t);
  if (p2_arcs.empty()) return std::nullopt;

  // Union of P1 and P2 arcs with anti-parallel cancellation: an arc of P1
  // whose reverse was used by P2 drops out (and vice versa).
  std::map<std::pair<std::size_t, std::size_t>, int> flow;
  const auto add_flow = [&](const std::vector<std::size_t>& arcs) {
    for (const std::size_t a : arcs) {
      const Arc& arc = work.arcs[a];
      flow[{arc.from, arc.to}] += 1;
      const auto reverse_it = flow.find({arc.to, arc.from});
      if (reverse_it != flow.end() && reverse_it->second > 0 &&
          flow[{arc.from, arc.to}] > 0) {
        flow[{arc.from, arc.to}] -= 1;
        reverse_it->second -= 1;
      }
    }
  };
  add_flow(p1_arcs);
  add_flow(p2_arcs);

  // Decompose the remaining flow into two s->t walks.
  std::multimap<std::size_t, std::size_t> next;  // from -> to
  for (const auto& [key, count] : flow) {
    for (int c = 0; c < count; ++c) next.insert({key.first, key.second});
  }
  const auto walk = [&]() -> std::vector<std::size_t> {
    std::vector<std::size_t> nodes{s};
    std::size_t cursor = s;
    while (cursor != t) {
      const auto it = next.find(cursor);
      if (it == next.end()) {
        throw InternalError("FindDisjointPair: flow decomposition stuck");
      }
      cursor = it->second;
      next.erase(it);
      nodes.push_back(cursor);
    }
    return nodes;
  };
  DisjointPathPair pair;
  pair.first = Unsplit(walk(), split);
  pair.second = Unsplit(walk(), split);

  // Total weight from the recovered paths under the original objective.
  const auto path_weight = [&](const Path& path) {
    double total = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      bool found = false;
      for (const RiskEdge& edge : graph.OutEdges(path[i - 1])) {
        if (edge.to == path[i]) {
          total += weight(path[i - 1], edge);
          found = true;
          break;
        }
      }
      if (!found) throw InternalError("FindDisjointPair: broken output path");
    }
    return total;
  };
  pair.total_weight = path_weight(pair.first) + path_weight(pair.second);
  // Convention: report the lighter path first (the primary).
  if (path_weight(pair.second) < path_weight(pair.first)) {
    std::swap(pair.first, pair.second);
  }
  return pair;
}

}  // namespace riskroute::core
