#include "core/backup_paths.h"

#include "util/error.h"

namespace riskroute::core {

RoutingTable BuildRoutingTable(const RiskGraph& graph,
                               const EdgeWeightFn& weight) {
  const std::size_t n = graph.node_count();
  RoutingTable table;
  table.next_hop.assign(n, std::vector<std::size_t>(n, RoutingTable::kUnreachable));
  table.dist.assign(n, std::vector<double>(n, DijkstraWorkspace::Infinity()));
  DijkstraWorkspace workspace;
  for (std::size_t s = 0; s < n; ++s) {
    workspace.Run(graph, s, weight);
    for (std::size_t d = 0; d < n; ++d) {
      if (!workspace.Reached(d)) continue;
      table.dist[s][d] = workspace.DistanceTo(d);
      if (d == s) {
        table.next_hop[s][d] = s;
      } else {
        table.next_hop[s][d] = workspace.PathTo(d)[1];
      }
    }
  }
  return table;
}

RoutingTable BuildRoutingTable(const RouteEngine& engine, double alpha,
                               util::ThreadPool* pool,
                               const EdgeOverlay* overlay) {
  const std::size_t n = engine.node_count();
  RoutingTable table;
  table.next_hop.assign(n, std::vector<std::size_t>(n, RoutingTable::kUnreachable));
  table.dist.assign(n, std::vector<double>(n, DijkstraWorkspace::Infinity()));
  const auto body = [&](std::size_t s) {
    thread_local DijkstraWorkspace workspace;
    engine.Run(workspace, s, alpha, std::nullopt, overlay);
    for (std::size_t d = 0; d < n; ++d) {
      if (!workspace.Reached(d)) continue;
      table.dist[s][d] = workspace.DistanceTo(d);
      if (d == s) {
        table.next_hop[s][d] = s;
      } else {
        table.next_hop[s][d] = workspace.PathTo(d)[1];
      }
    }
  };
  if (pool != nullptr) {
    util::ParallelFor(*pool, n, body);
  } else {
    for (std::size_t s = 0; s < n; ++s) body(s);
  }
  return table;
}

std::vector<std::vector<LfaEntry>> ComputeLfas(const RiskGraph& graph,
                                               const RoutingTable& table) {
  const std::size_t n = graph.node_count();
  if (table.dist.size() != n) {
    throw InvalidArgument("ComputeLfas: table does not match graph");
  }
  std::vector<std::vector<LfaEntry>> lfas(n, std::vector<LfaEntry>(n));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      LfaEntry& entry = lfas[s][d];
      entry.primary_next_hop = table.next_hop[s][d];
      if (d == s || entry.primary_next_hop == RoutingTable::kUnreachable) {
        continue;
      }
      for (const RiskEdge& edge : graph.OutEdges(s)) {
        const std::size_t neighbor = edge.to;
        if (neighbor == entry.primary_next_hop) continue;
        // RFC 5286 basic loop-free condition.
        if (table.dist[neighbor][d] <
            table.dist[neighbor][s] + table.dist[s][d]) {
          entry.alternates.push_back(neighbor);
        }
      }
    }
  }
  return lfas;
}

double LfaCoverage(const std::vector<std::vector<LfaEntry>>& lfas) {
  std::size_t routable = 0;
  std::size_t protected_pairs = 0;
  for (std::size_t s = 0; s < lfas.size(); ++s) {
    for (std::size_t d = 0; d < lfas[s].size(); ++d) {
      if (d == s) continue;
      const LfaEntry& entry = lfas[s][d];
      if (entry.primary_next_hop == RoutingTable::kUnreachable) continue;
      ++routable;
      if (!entry.alternates.empty()) ++protected_pairs;
    }
  }
  if (routable == 0) return 0.0;
  return static_cast<double>(protected_pairs) / static_cast<double>(routable);
}

std::optional<Path> LinkBypass(const RiskGraph& graph, std::size_t u,
                               std::size_t v, const EdgeWeightFn& weight) {
  if (!graph.HasEdge(u, v)) {
    throw InvalidArgument("LinkBypass: protected link does not exist");
  }
  const auto masked = [&](std::size_t from, const RiskEdge& edge) {
    if ((from == u && edge.to == v) || (from == v && edge.to == u)) {
      return DijkstraWorkspace::Infinity();
    }
    return weight(from, edge);
  };
  DijkstraWorkspace workspace;
  workspace.Run(graph, u, masked, v);
  if (!workspace.Reached(v)) return std::nullopt;
  return workspace.PathTo(v);
}

std::optional<Path> NodeBypass(const RiskGraph& graph, std::size_t u,
                               std::size_t dst, std::size_t protect,
                               const EdgeWeightFn& weight) {
  if (protect == u || protect == dst) {
    throw InvalidArgument("NodeBypass: cannot protect an endpoint");
  }
  const auto masked = [&](std::size_t from, const RiskEdge& edge) {
    if (edge.to == protect) return DijkstraWorkspace::Infinity();
    return weight(from, edge);
  };
  DijkstraWorkspace workspace;
  workspace.Run(graph, u, masked, dst);
  if (!workspace.Reached(dst)) return std::nullopt;
  return workspace.PathTo(dst);
}

std::optional<Path> LinkBypass(const RouteEngine& engine, std::size_t u,
                               std::size_t v, double alpha) {
  if (!engine.HasEdge(u, v)) {
    throw InvalidArgument("LinkBypass: protected link does not exist");
  }
  EdgeOverlay overlay;
  overlay.RemoveEdge(u, v);
  thread_local DijkstraWorkspace workspace;
  engine.Run(workspace, u, alpha, v, &overlay);
  if (!workspace.Reached(v)) return std::nullopt;
  return workspace.PathTo(v);
}

std::optional<Path> NodeBypass(const RouteEngine& engine, std::size_t u,
                               std::size_t dst, std::size_t protect,
                               double alpha) {
  if (protect == u || protect == dst) {
    throw InvalidArgument("NodeBypass: cannot protect an endpoint");
  }
  EdgeOverlay overlay;
  overlay.DisableNode(protect);
  thread_local DijkstraWorkspace workspace;
  engine.Run(workspace, u, alpha, dst, &overlay);
  if (!workspace.Reached(dst)) return std::nullopt;
  return workspace.PathTo(dst);
}

}  // namespace riskroute::core
