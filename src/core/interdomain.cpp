#include "core/interdomain.h"

#include "core/route_engine.h"
#include "geo/distance.h"
#include "util/error.h"
#include "util/strings.h"

namespace riskroute::core {

std::size_t MergedGraph::GlobalId(std::size_t network, std::size_t pop) const {
  if (network >= global_ids.size() || pop >= global_ids[network].size()) {
    throw InvalidArgument(util::Format(
        "MergedGraph: no node for network %zu pop %zu", network, pop));
  }
  return global_ids[network][pop];
}

MergedGraph BuildMergedGraph(
    const topology::Corpus& corpus,
    const std::vector<population::ImpactModel>& impacts,
    const hazard::HistoricalRiskField& hazard_field,
    const MergeOptions& options) {
  if (impacts.size() != corpus.network_count()) {
    throw InvalidArgument(util::Format(
        "BuildMergedGraph: %zu impact models for %zu networks",
        impacts.size(), corpus.network_count()));
  }
  MergedGraph merged;
  merged.global_ids.resize(corpus.network_count());

  // Nodes: every PoP of every network, with its own network's impact
  // fraction and the shared historical hazard field. Risks come per
  // network from the batch path (or the caller's memoized cache).
  for (std::size_t n = 0; n < corpus.network_count(); ++n) {
    const topology::Network& network = corpus.network(n);
    const std::vector<double> risks =
        options.risk_cache != nullptr ? options.risk_cache->PopRisks(network)
                                      : hazard_field.PopRisks(network);
    merged.global_ids[n].resize(network.pop_count());
    for (std::size_t p = 0; p < network.pop_count(); ++p) {
      const topology::Pop& pop = network.pop(p);
      const std::size_t id = merged.graph.AddNode(RiskNode{
          network.name() + ":" + pop.name, pop.location,
          impacts[n].fraction(p), risks[p], 0.0});
      merged.global_ids[n][p] = id;
      merged.origin.push_back(MergedNode{n, p});
    }
  }

  // Intradomain links.
  for (std::size_t n = 0; n < corpus.network_count(); ++n) {
    for (const topology::Link& link : corpus.network(n).links()) {
      merged.graph.AddEdgeByDistance(merged.global_ids[n][link.a],
                                     merged.global_ids[n][link.b]);
    }
  }

  // Peering edges: for each AS peering and each PoP of one side, connect
  // to the nearest co-located PoP of the other side (if within radius).
  for (const topology::Peering& peering : corpus.peerings()) {
    const topology::Network& na = corpus.network(peering.a);
    const topology::Network& nb = corpus.network(peering.b);
    for (std::size_t pa = 0; pa < na.pop_count(); ++pa) {
      const std::size_t pb = nb.NearestPop(na.pop(pa).location);
      const double miles =
          geo::GreatCircleMiles(na.pop(pa).location, nb.pop(pb).location);
      if (miles <= options.colocation_radius_miles) {
        const std::size_t ga = merged.global_ids[peering.a][pa];
        const std::size_t gb = merged.global_ids[peering.b][pb];
        if (!merged.graph.HasEdge(ga, gb)) {
          merged.graph.AddEdge(ga, gb, miles);
          merged.peering_edges.emplace_back(ga, gb);
        }
      }
    }
  }
  return merged;
}

std::vector<std::size_t> RegionalTargets(const MergedGraph& merged,
                                         const topology::Corpus& corpus) {
  std::vector<std::size_t> targets;
  for (const std::size_t n :
       corpus.NetworksOfKind(topology::NetworkKind::kRegional)) {
    for (const std::size_t id : merged.global_ids[n]) targets.push_back(id);
  }
  return targets;
}

RatioReport InterdomainRatios(const MergedGraph& merged,
                              const topology::Corpus& corpus,
                              std::size_t network_index,
                              const RiskParams& params,
                              util::ThreadPool* pool) {
  if (network_index >= corpus.network_count()) {
    throw InvalidArgument("InterdomainRatios: network index out of range");
  }
  const std::vector<std::size_t>& sources = merged.global_ids[network_index];
  const std::vector<std::size_t> targets = RegionalTargets(merged, corpus);
  return ComputeRatios(merged.graph, params, sources, targets, pool);
}

RatioReport InterdomainRatios(const RouteEngine& engine,
                              const MergedGraph& merged,
                              const topology::Corpus& corpus,
                              std::size_t network_index,
                              util::ThreadPool* pool) {
  if (network_index >= corpus.network_count()) {
    throw InvalidArgument("InterdomainRatios: network index out of range");
  }
  const std::vector<std::size_t>& sources = merged.global_ids[network_index];
  const std::vector<std::size_t> targets = RegionalTargets(merged, corpus);
  return engine.ComputeRatios(sources, targets, pool);
}

}  // namespace riskroute::core
