#include "core/study.h"

#include "hazard/synthesis.h"
#include "obs/metrics.h"
#include "topology/generator.h"
#include "util/error.h"

namespace riskroute::core {
namespace {

/// Per-stage build tracing: each stage records wall-clock total and self
/// time (total minus nested spans) under core.study.<stage>.{total,self}_ns.
struct StudyTrace {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& builds = reg.GetCounter("core.study.builds");
  obs::TraceScope build{reg, "core.study.build"};
  obs::TraceScope corpus{reg, "core.study.corpus"};
  obs::TraceScope census{reg, "core.study.census"};
  obs::TraceScope hazard{reg, "core.study.hazard"};
  obs::TraceScope impacts{reg, "core.study.impacts"};

  static StudyTrace& Get() {
    static StudyTrace trace;
    return trace;
  }
};

}  // namespace

Study Study::Build(const StudyOptions& options) {
  StudyTrace& trace = StudyTrace::Get();
  trace.builds.Add(1);
  obs::TraceSpan build_span(trace.build);

  Study study;
  {
    obs::TraceSpan span(trace.corpus);
    study.corpus_ =
        options.corpus_scale > 1.0
            ? topology::GenerateScaledCorpus(options.corpus_scale,
                                             options.corpus_seed)
            : topology::GeneratePaperCorpus(options.corpus_seed);
  }
  {
    obs::TraceSpan span(trace.census);
    study.census_ = std::make_unique<population::CensusModel>(
        population::CensusModel::Synthesize(options.census));
  }

  {
    obs::TraceSpan span(trace.hazard);
    const std::vector<hazard::Catalog> catalogs =
        hazard::SynthesizeAllCatalogs(options.hazard_seed);
    const std::vector<double> bandwidths =
        options.bandwidths.empty() ? hazard::PaperBandwidths()
                                   : options.bandwidths;
    study.hazard_field_ =
        std::make_unique<hazard::HistoricalRiskField>(catalogs, bandwidths);
    const std::vector<geo::GeoPoint> pop_locations = study.AllPopLocations();
    study.hazard_field_->CalibrateTo(pop_locations,
                                     options.calibration_target);
    // Memoize the calibrated per-PoP risks once; every BuildGraph /
    // BuildMerged afterwards is a pure cache read.
    study.risk_cache_ =
        std::make_unique<hazard::RiskFieldCache>(*study.hazard_field_);
    study.risk_cache_->Warm(pop_locations);
  }

  {
    obs::TraceSpan span(trace.impacts);
    study.impacts_.reserve(study.corpus_.network_count());
    for (std::size_t n = 0; n < study.corpus_.network_count(); ++n) {
      study.impacts_.push_back(population::ImpactModel::Build(
          study.corpus_.network(n), *study.census_));
    }
  }
  return study;
}

const population::ImpactModel& Study::impact(std::size_t network) const {
  if (network >= impacts_.size()) {
    throw InvalidArgument("Study::impact: network index out of range");
  }
  return impacts_[network];
}

RiskGraph Study::BuildGraph(std::size_t network) const {
  return RiskGraph::FromNetwork(
      corpus_.network(network), impact(network),
      risk_cache_->PopRisks(corpus_.network(network)));
}

std::size_t Study::NetworkIndex(std::string_view name) const {
  const auto index = corpus_.FindNetwork(name);
  if (!index) {
    throw InvalidArgument("Study: unknown network: " + std::string(name));
  }
  return *index;
}

RiskGraph Study::BuildGraphFor(std::string_view network_name) const {
  return BuildGraph(NetworkIndex(network_name));
}

MergedGraph Study::BuildMerged(const MergeOptions& options) const {
  MergeOptions with_cache = options;
  if (with_cache.risk_cache == nullptr) {
    with_cache.risk_cache = risk_cache_.get();
  }
  return BuildMergedGraph(corpus_, impacts_, *hazard_field_, with_cache);
}

std::vector<geo::GeoPoint> Study::AllPopLocations() const {
  std::vector<geo::GeoPoint> locations;
  for (const topology::Network& network : corpus_.networks()) {
    for (const topology::Pop& pop : network.pops()) {
      locations.push_back(pop.location);
    }
  }
  return locations;
}

}  // namespace riskroute::core
