#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

namespace riskroute::obs {

namespace {

// Slots per histogram shard beyond the buckets: count, sum, min, max.
constexpr std::size_t kMetaSlots = 4;
constexpr std::uint64_t kMinSentinel = std::numeric_limits<std::uint64_t>::max();

std::size_t RoundUpToCacheLine(std::size_t slots) {
  constexpr std::size_t kSlotsPerLine =
      detail::kCacheLineBytes / sizeof(std::atomic<std::uint64_t>);
  return (slots + kSlotsPerLine - 1) / kSlotsPerLine * kSlotsPerLine;
}

}  // namespace

// --- Counter ---

Counter::Counter(std::string name, Stability stability,
                 const std::atomic<bool>* enabled)
    : name_(std::move(name)),
      stability_(stability),
      enabled_(enabled),
      shards_(new detail::CounterShard[detail::kShardCount]) {}

std::uint64_t Counter::Total() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < detail::kShardCount; ++s) {
    total += shards_[s].value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (std::size_t s = 0; s < detail::kShardCount; ++s) {
    shards_[s].value.store(0, std::memory_order_relaxed);
  }
}

// --- Gauge ---

Gauge::Gauge(std::string name, Stability stability,
             const std::atomic<bool>* enabled)
    : name_(std::move(name)), stability_(stability), enabled_(enabled) {}

void Gauge::Reset() { value_.store(0, std::memory_order_relaxed); }

// --- Histogram ---

Histogram::Histogram(std::string name, std::span<const std::uint64_t> bounds,
                     Stability stability, const std::atomic<bool>* enabled)
    : name_(std::move(name)),
      stability_(stability),
      enabled_(enabled),
      bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1),
      stride_(RoundUpToCacheLine(buckets_ + kMetaSlots)),
      slots_(new std::atomic<std::uint64_t>[stride_ * detail::kShardCount]) {
  for (std::size_t i = 0; i < stride_ * detail::kShardCount; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t s = 0; s < detail::kShardCount; ++s) {
    slots_[s * stride_ + buckets_ + 2].store(kMinSentinel,
                                             std::memory_order_relaxed);
  }
}

std::size_t Histogram::BucketOf(std::uint64_t value) const {
  // First bound >= value; the overflow bucket is bounds_.size().
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::RecordImpl(std::uint64_t value) {
  std::atomic<std::uint64_t>* shard =
      slots_.get() + detail::ThisThreadShard() * stride_;
  shard[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  shard[buckets_].fetch_add(1, std::memory_order_relaxed);       // count
  shard[buckets_ + 1].fetch_add(value, std::memory_order_relaxed);  // sum
  std::atomic<std::uint64_t>& min_slot = shard[buckets_ + 2];
  std::uint64_t seen = min_slot.load(std::memory_order_relaxed);
  while (value < seen && !min_slot.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  std::atomic<std::uint64_t>& max_slot = shard[buckets_ + 3];
  seen = max_slot.load(std::memory_order_relaxed);
  while (value > seen && !max_slot.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Totals Histogram::Snapshot() const {
  Totals t;
  t.counts.assign(buckets_, 0);
  std::uint64_t min = kMinSentinel;
  for (std::size_t s = 0; s < detail::kShardCount; ++s) {
    const std::atomic<std::uint64_t>* shard = slots_.get() + s * stride_;
    for (std::size_t b = 0; b < buckets_; ++b) {
      t.counts[b] += shard[b].load(std::memory_order_relaxed);
    }
    t.count += shard[buckets_].load(std::memory_order_relaxed);
    t.sum += shard[buckets_ + 1].load(std::memory_order_relaxed);
    min = std::min(min, shard[buckets_ + 2].load(std::memory_order_relaxed));
    t.max = std::max(t.max, shard[buckets_ + 3].load(std::memory_order_relaxed));
  }
  t.min = (t.count == 0) ? 0 : min;
  return t;
}

void Histogram::Reset() {
  for (std::size_t s = 0; s < detail::kShardCount; ++s) {
    std::atomic<std::uint64_t>* shard = slots_.get() + s * stride_;
    for (std::size_t b = 0; b < buckets_ + kMetaSlots; ++b) {
      shard[b].store(0, std::memory_order_relaxed);
    }
    shard[buckets_ + 2].store(kMinSentinel, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> ExponentialBounds(std::uint64_t start,
                                             std::uint64_t factor,
                                             std::size_t count) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(count);
  std::uint64_t v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

// --- MetricsRegistry ---

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     Stability stability) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(
                          new Counter(std::string(name), stability, &enabled_)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, Stability stability) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(
                          new Gauge(std::string(name), stability, &enabled_)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const std::uint64_t> bounds,
                                         Stability stability) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(
                          std::string(name), bounds, stability, &enabled_)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetTiming(std::string_view name) {
  // 1us .. ~17min in x4 steps; values are steady_clock nanoseconds.
  static const std::vector<std::uint64_t> kTimingBounds =
      ExponentialBounds(1'000, 4, 15);
  return GetHistogram(name, kTimingBounds, Stability::kVolatile);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace {

bool IsTimingName(const std::string& name) {
  return name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

void AppendIndent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

void AppendUintArray(std::string& out,
                     const std::vector<std::uint64_t>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += ']';
}

void AppendHistogram(std::string& out, const Histogram& h, int depth) {
  const Histogram::Totals t = h.Snapshot();
  out += "{\n";
  AppendIndent(out, depth + 1);
  out += "\"bounds\": ";
  AppendUintArray(out, h.bounds());
  out += ",\n";
  AppendIndent(out, depth + 1);
  out += "\"counts\": ";
  AppendUintArray(out, t.counts);
  out += ",\n";
  AppendIndent(out, depth + 1);
  out += "\"count\": " + std::to_string(t.count) + ",\n";
  AppendIndent(out, depth + 1);
  out += "\"sum\": " + std::to_string(t.sum) + ",\n";
  AppendIndent(out, depth + 1);
  out += "\"min\": " + std::to_string(t.min) + ",\n";
  AppendIndent(out, depth + 1);
  out += "\"max\": " + std::to_string(t.max) + "\n";
  AppendIndent(out, depth);
  out += '}';
}

// Emits `"section": {entries}` where each entry appends itself; Emit is
// called once per matching metric, already comma/indent managed.
template <typename Map, typename Pred, typename Emit>
void AppendSection(std::string& out, const char* section, const Map& map,
                   int depth, Pred pred, Emit emit) {
  AppendIndent(out, depth);
  out += '"';
  out += section;
  out += "\": {";
  bool first = true;
  for (const auto& [name, metric] : map) {
    if (!pred(*metric)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    AppendIndent(out, depth + 1);
    out += '"' + name + "\": ";
    emit(*metric);
  }
  if (!first) {
    out += '\n';
    AppendIndent(out, depth);
  }
  out += '}';
}

}  // namespace

std::string MetricsRegistry::DumpJson(bool include_volatile) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": " + std::to_string(kSchemaVersion) + ",\n";

  const auto emit_for = [&](Stability want, bool emit_values) {
    const auto stable_pred = [&](const auto& m) {
      return m.stability() == want && emit_values;
    };
    AppendSection(out, "counters", counters_, 2, stable_pred,
                  [&](const Counter& c) {
                    out += std::to_string(c.Total());
                  });
    out += ",\n";
    AppendSection(out, "gauges", gauges_, 2, stable_pred, [&](const Gauge& g) {
      out += std::to_string(g.Value());
    });
    out += ",\n";
    AppendSection(out, "histograms", histograms_, 2,
                  [&](const Histogram& h) {
                    return stable_pred(h) && !IsTimingName(h.name());
                  },
                  [&](const Histogram& h) { AppendHistogram(out, h, 3); });
  };

  out += "  \"stable\": {\n";
  emit_for(Stability::kStable, true);
  out += "\n  },\n";

  out += "  \"volatile\": {\n";
  emit_for(Stability::kVolatile, include_volatile);
  out += ",\n";
  AppendSection(out, "timings", histograms_, 2,
                [&](const Histogram& h) {
                  return h.stability() == Stability::kVolatile &&
                         IsTimingName(h.name()) && include_volatile;
                },
                [&](const Histogram& h) { AppendHistogram(out, h, 3); });
  out += "\n  }\n}\n";
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path,
                                    bool include_volatile) const {
  std::ofstream out(path);
  if (!out) return false;
  out << DumpJson(include_volatile);
  return static_cast<bool>(out);
}

// --- TraceScope / TraceSpan ---

TraceScope::TraceScope(MetricsRegistry& registry, std::string_view name)
    : total_(registry.GetTiming(std::string(name) + ".total_ns")),
      self_(registry.GetTiming(std::string(name) + ".self_ns")) {}

thread_local TraceSpan* TraceSpan::current_ = nullptr;

TraceSpan::TraceSpan(TraceScope& scope)
    : scope_(scope.total_.recording() ? &scope : nullptr) {
  if (scope_ == nullptr) return;
  parent_ = current_;
  current_ = this;
  start_ns_ = detail::NowNs();
}

TraceSpan::~TraceSpan() {
  if (scope_ == nullptr) return;
  const std::uint64_t total = detail::NowNs() - start_ns_;
  current_ = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += total;
  scope_->total_.Record(total);
  scope_->self_.Record(total >= child_ns_ ? total - child_ns_ : 0);
}

}  // namespace riskroute::obs
