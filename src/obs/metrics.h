// Low-overhead observability: a process-wide registry of named counters,
// gauges and fixed-bucket histograms, plus RAII scoped timers and trace
// spans for per-stage wall-clock accounting.
//
// Design constraints (see DESIGN.md, "Observability"):
//
//  * Hot-path cost. Every record call is one branch on the registry's
//    enabled flag plus, when enabled, a relaxed fetch_add on a sharded
//    cache-line-aligned atomic. Threads are spread round-robin over the
//    shards, so concurrent recorders on different threads almost never
//    touch the same cache line. A disabled registry costs exactly the
//    branch: no clock reads, no atomics, no allocation.
//
//  * Deterministic export. All recorded quantities are integers
//    (event counts, work units, nanoseconds), and export merges shards by
//    integer addition / min / max — order-independent operations — so a
//    dump is a pure function of the multiset of recorded values. Metrics
//    registered as Stability::kStable record algorithmic work (relaxation
//    counts, cache hits, KDE batch sizes) that is identical for any
//    worker-thread count; DumpJson groups them under "stable" so that
//    section is bitwise reproducible across thread counts. Wall-clock
//    timings and scheduling-dependent counts (thread-pool queue depth,
//    workspace reuse) register as Stability::kVolatile and land under
//    "volatile".
//
//  * Naming. Metric names follow `subsystem.object.metric`, e.g.
//    `core.route_engine.relaxations` or `stats.kde.batch_points`; timing
//    metrics end in `_ns`.
//
// Handles returned by the registry are stable for the registry's lifetime;
// call sites resolve them once (typically via a function-local static
// struct) and record through the reference afterwards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace riskroute::obs {

/// Version stamp of the DumpJson layout (see tools/metrics_schema.json).
inline constexpr int kSchemaVersion = 1;

/// Whether a metric's aggregate is bitwise independent of thread count and
/// scheduling (kStable) or wall-clock / scheduling dependent (kVolatile).
enum class Stability { kStable, kVolatile };

namespace detail {

inline constexpr std::size_t kCacheLineBytes = 64;
/// Power of two; threads are assigned shards round-robin, so contention
/// only appears beyond kShardCount concurrent recorders.
inline constexpr std::size_t kShardCount = 16;

/// This thread's shard slot (assigned once, on first use).
inline std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShardCount - 1);
  return shard;
}

struct alignas(kCacheLineBytes) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

/// Monotonic nanosecond clock for ScopedTimer/TraceSpan.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace detail

class MetricsRegistry;

/// Monotonic event counter. Add is wait-free: one enabled branch plus one
/// relaxed fetch_add on this thread's shard.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[detail::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over shards (exact: integer addition is order-independent).
  [[nodiscard]] std::uint64_t Total() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Stability stability() const { return stability_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, Stability stability,
          const std::atomic<bool>* enabled);
  void Reset();

  std::string name_;
  Stability stability_;
  const std::atomic<bool>* enabled_;
  std::unique_ptr<detail::CounterShard[]> shards_;
};

/// Last-value / running-level gauge (signed). Not sharded: gauges sit on
/// cold paths (cache sizes, pool configuration), and Set semantics do not
/// merge. SetMax keeps a running maximum (peak queue depth).
class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t n) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// value = max(value, v), atomically.
  void SetMax(std::int64_t v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Stability stability() const { return stability_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, Stability stability,
        const std::atomic<bool>* enabled);
  void Reset();

  std::string name_;
  Stability stability_;
  const std::atomic<bool>* enabled_;
  alignas(detail::kCacheLineBytes) std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over unsigned integer values (work units or
/// nanoseconds). Bucket b counts values v with v <= bounds[b]; the last
/// bucket (index bounds.size()) is the overflow bucket. Also tracks
/// count / sum / min / max. All aggregation is order-independent, so the
/// merged totals are a pure function of the recorded multiset.
class Histogram {
 public:
  void Record(std::uint64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    RecordImpl(value);
  }

  /// Merged snapshot (shards summed; min/max folded).
  struct Totals {
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  // 0 when count == 0
    std::uint64_t max = 0;
  };
  [[nodiscard]] Totals Snapshot() const;

  /// Whether the owning registry is currently recording (one load).
  [[nodiscard]] bool recording() const {
    return enabled_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Stability stability() const { return stability_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::span<const std::uint64_t> bounds,
            Stability stability, const std::atomic<bool>* enabled);
  void RecordImpl(std::uint64_t value);
  void Reset();

  [[nodiscard]] std::size_t BucketOf(std::uint64_t value) const;

  // Per-shard slot layout: [0, buckets) bucket counts, then count, sum,
  // min, max; stride_ rounds the slot count up to whole cache lines.
  std::string name_;
  Stability stability_;
  const std::atomic<bool>* enabled_;
  std::vector<std::uint64_t> bounds_;
  std::size_t buckets_ = 0;  // bounds_.size() + 1
  std::size_t stride_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
};

/// Exponential bucket bounds: {start, start*factor, ...} (count entries).
[[nodiscard]] std::vector<std::uint64_t> ExponentialBounds(
    std::uint64_t start, std::uint64_t factor, std::size_t count);

/// Process-wide metrics registry. Get* calls are mutex-guarded and return
/// references that stay valid for the registry's lifetime; re-requesting a
/// name returns the existing metric (the first registration's buckets and
/// stability win). Record calls on the returned handles are lock-free.
class MetricsRegistry {
 public:
  /// The process-wide registry every library call site records into.
  [[nodiscard]] static MetricsRegistry& Global();

  /// A private registry (unit tests).
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Enabled by default. While disabled, every record call returns after
  /// one branch; values already recorded are retained.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Counter& GetCounter(std::string_view name,
                                    Stability stability = Stability::kStable);
  [[nodiscard]] Gauge& GetGauge(std::string_view name,
                                Stability stability = Stability::kStable);
  [[nodiscard]] Histogram& GetHistogram(
      std::string_view name, std::span<const std::uint64_t> bounds,
      Stability stability = Stability::kStable);
  /// Histogram in nanoseconds with the default latency bounds; always
  /// kVolatile (wall-clock is never reproducible).
  [[nodiscard]] Histogram& GetTiming(std::string_view name);

  /// Zeroes every metric's value; registrations (and handles) survive.
  void Reset();

  /// JSON document (see tools/metrics_schema.json):
  ///   { "schema_version": 1,
  ///     "stable":   {"counters": {...}, "gauges": {...}, "histograms": {...}},
  ///     "volatile": {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///                  "timings": {...}} }
  /// Keys are sorted, all values are integers, and shard merging is
  /// order-independent, so the "stable" section is bitwise identical for
  /// any thread count; with include_volatile = false the volatile section
  /// is emitted empty and the whole document is bitwise reproducible.
  [[nodiscard]] std::string DumpJson(bool include_volatile = true) const;

  /// DumpJson straight to a file; returns false on I/O failure.
  bool WriteJsonFile(const std::string& path,
                     bool include_volatile = true) const;

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// One branch: is the global registry recording?
[[nodiscard]] inline bool Enabled() {
  return MetricsRegistry::Global().enabled();
}

/// RAII wall-clock timer recording elapsed nanoseconds into a timing
/// histogram on destruction. When the registry is disabled at construction
/// the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& timing)
      : timing_(timing.recording() ? &timing : nullptr),
        start_ns_(timing_ != nullptr ? detail::NowNs() : 0) {}
  ~ScopedTimer() {
    if (timing_ != nullptr) timing_->Record(detail::NowNs() - start_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* timing_;
  std::uint64_t start_ns_;
};

/// A named trace scope: the pair of timing histograms (`<name>.total_ns`,
/// `<name>.self_ns`) that TraceSpan records into. Resolve once per site.
class TraceScope {
 public:
  TraceScope(MetricsRegistry& registry, std::string_view name);

 private:
  friend class TraceSpan;
  Histogram& total_;
  Histogram& self_;
};

/// RAII span for nested per-stage tracing. Spans on one thread form a
/// stack; on destruction a span records its total duration and its self
/// time (total minus enclosed child spans) into the scope's histograms,
/// and credits its total to the parent span's child time. Buffers are
/// thread-local (the span object itself), and the recorded nanoseconds
/// merge deterministically at export like any histogram.
class TraceSpan {
 public:
  explicit TraceSpan(TraceScope& scope);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceScope* scope_;  // null when the registry was disabled at entry
  TraceSpan* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;

  static thread_local TraceSpan* current_;
};

}  // namespace riskroute::obs
