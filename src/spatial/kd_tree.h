// Exact nearest-neighbour search over geographic points.
//
// Points are embedded on the unit sphere (3-D) and indexed with a kd-tree;
// Euclidean chord distance is monotone in great-circle distance, so chord
// nearest-neighbour is exactly the great-circle nearest neighbour. This is
// the engine behind the paper's nearest-neighbour census-block-to-PoP
// assignment (Section 5.1), where 215,932 blocks are matched against each
// network's PoP set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "geo/geo_point.h"

namespace riskroute::spatial {

/// Result of a nearest-neighbour query: index into the input point set and
/// the great-circle distance to it.
struct Neighbor {
  std::size_t index = 0;
  double miles = 0.0;
};

/// Immutable kd-tree over a fixed point set. Indices returned by queries
/// refer to positions in the constructor's vector.
class KdTree {
 public:
  /// Builds the index; O(n log n). An empty point set is allowed (queries
  /// then return nullopt / empty).
  explicit KdTree(const std::vector<geo::GeoPoint>& points);

  /// Closest point to `query`, or nullopt if the tree is empty.
  [[nodiscard]] std::optional<Neighbor> Nearest(const geo::GeoPoint& query) const;

  /// The k closest points, ascending by distance (fewer if size() < k).
  [[nodiscard]] std::vector<Neighbor> KNearest(const geo::GeoPoint& query,
                                               std::size_t k) const;

  /// All points within `radius_miles` of `query`, ascending by distance.
  [[nodiscard]] std::vector<Neighbor> WithinRadius(const geo::GeoPoint& query,
                                                   double radius_miles) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  struct Vec3 {
    double x, y, z;
  };
  struct Node {
    std::size_t point = 0;   // index into points_/coords_
    int axis = 0;            // split axis (0=x, 1=y, 2=z)
    std::int32_t left = -1;  // child node indices, -1 = none
    std::int32_t right = -1;
  };

  // Max-heap entry used by KNearest.
  struct HeapItem {
    double chord2;
    std::size_t point;
    bool operator<(const HeapItem& other) const { return chord2 < other.chord2; }
  };

  std::int32_t Build(std::vector<std::size_t>& items, std::size_t begin,
                     std::size_t end, int depth);
  void NearestImpl(std::int32_t node, const Vec3& q, double& best_chord2,
                   std::size_t& best_point, bool& found) const;
  void KnnImpl(std::int32_t node, const Vec3& q, std::size_t k,
               std::priority_queue<HeapItem>& heap) const;
  void RadiusImpl(std::int32_t node, const Vec3& q, double max_chord2,
                  std::vector<Neighbor>& out) const;

  static Vec3 Embed(const geo::GeoPoint& p);
  static double Chord2(const Vec3& a, const Vec3& b);
  static double ChordToMiles(double chord);
  static double MilesToChord(double miles);

  std::vector<geo::GeoPoint> points_;
  std::vector<Vec3> coords_;
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace riskroute::spatial
