// Uniform latitude/longitude grid index.
//
// The Gaussian kernels in the hazard analysis are truncated at 5 sigma;
// evaluating the density at a query point then only needs the events inside
// a small window. Bucketing the (up to 143,847-event) catalogs into a
// uniform grid turns each KDE evaluation from O(N) into O(events nearby).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/geo_point.h"

namespace riskroute::spatial {

/// Grid of point buckets over a bounding box. Points outside the box are
/// clamped into the border cells, so no input is ever lost.
class GridIndex {
 public:
  /// `cell_miles` sets the approximate cell edge length. Throws
  /// InvalidArgument if non-positive.
  GridIndex(const std::vector<geo::GeoPoint>& points,
            const geo::BoundingBox& bounds, double cell_miles);

  /// Invokes `visit(index)` for every indexed point whose cell intersects
  /// the disc of `radius_miles` around `center`. Callers must still filter
  /// by exact distance; this is a superset (cell-granular) query.
  void VisitNear(const geo::GeoPoint& center, double radius_miles,
                 const std::function<void(std::size_t)>& visit) const;

  /// Exact-filtered version: indices of points within `radius_miles`.
  [[nodiscard]] std::vector<std::size_t> WithinRadius(
      const geo::GeoPoint& center, double radius_miles) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

 private:
  [[nodiscard]] std::size_t RowOf(double lat) const;
  [[nodiscard]] std::size_t ColOf(double lon) const;

  std::vector<geo::GeoPoint> points_;
  geo::BoundingBox bounds_;
  double lat_step_ = 1.0;
  double lon_step_ = 1.0;
  std::size_t rows_ = 1;
  std::size_t cols_ = 1;
  // cells_[row * cols_ + col] lists indices of points in that cell.
  std::vector<std::vector<std::size_t>> cells_;
};

}  // namespace riskroute::spatial
