// Uniform latitude/longitude grid index.
//
// The Gaussian kernels in the hazard analysis are truncated at 5 sigma;
// evaluating the density at a query point then only needs the events inside
// a small window. Bucketing the (up to 143,847-event) catalogs into a
// uniform grid turns each KDE evaluation from O(N) into O(events nearby).
//
// Points are stored in a compressed (CSR) layout: one flat array of point
// indices ordered cell-by-cell (row-major), plus per-cell offsets. Batch
// consumers (the KDE engine) mirror that ordering in their own
// structure-of-arrays so a cell's points are a contiguous range they can
// stream through without indirection.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/geo_point.h"

namespace riskroute::spatial {

/// Inclusive rectangle of grid cells, [r0, r1] x [c0, c1].
struct CellRect {
  std::size_t r0 = 0;
  std::size_t r1 = 0;
  std::size_t c0 = 0;
  std::size_t c1 = 0;
};

/// Grid of point buckets over a bounding box. Points outside the box are
/// clamped into the border cells, so no input is ever lost.
class GridIndex {
 public:
  /// `cell_miles` sets the approximate cell edge length. Throws
  /// InvalidArgument if non-positive.
  GridIndex(const std::vector<geo::GeoPoint>& points,
            const geo::BoundingBox& bounds, double cell_miles);

  /// Invokes `visit(index)` for every indexed point whose cell intersects
  /// the disc of `radius_miles` around `center`. Callers must still filter
  /// by exact distance; this is a superset (cell-granular) query.
  void VisitNear(const geo::GeoPoint& center, double radius_miles,
                 const std::function<void(std::size_t)>& visit) const;

  /// Exact-filtered version: indices of points within `radius_miles`.
  [[nodiscard]] std::vector<std::size_t> WithinRadius(
      const geo::GeoPoint& center, double radius_miles) const;

  /// Cells intersecting the disc of `radius_miles` around `center`
  /// (cell-granular superset, the rectangle VisitNear scans).
  [[nodiscard]] CellRect RectNear(const geo::GeoPoint& center,
                                  double radius_miles) const;

  /// Grid cell containing `p` (clamped into range), as a flat row-major id.
  [[nodiscard]] std::size_t CellIdOf(const geo::GeoPoint& p) const;

  /// Original point indices bucketed in cell (r, c), in input order.
  [[nodiscard]] std::span<const std::size_t> CellPoints(std::size_t r,
                                                        std::size_t c) const;

  /// Half-open range [first, last) of slots in `OrderedIndices()` holding
  /// cell (r, c)'s points. Batch consumers that replicate the CSR ordering
  /// use these slots directly as offsets into their own arrays.
  [[nodiscard]] std::pair<std::size_t, std::size_t> CellSlotRange(
      std::size_t r, std::size_t c) const;

  /// All point indices in CSR order (cell-by-cell, row-major; input order
  /// within a cell). Size equals size().
  [[nodiscard]] const std::vector<std::size_t>& OrderedIndices() const {
    return slots_;
  }

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t cell_count() const { return rows_ * cols_; }

 private:
  [[nodiscard]] std::size_t RowOf(double lat) const;
  [[nodiscard]] std::size_t ColOf(double lon) const;

  std::vector<geo::GeoPoint> points_;
  geo::BoundingBox bounds_;
  double lat_step_ = 1.0;
  double lon_step_ = 1.0;
  std::size_t rows_ = 1;
  std::size_t cols_ = 1;
  // CSR layout: slots_ lists point indices cell-by-cell (row-major);
  // cell (r, c) owns slots_[offsets_[r * cols_ + c] .. offsets_[.. + 1]).
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> slots_;
};

}  // namespace riskroute::spatial
