#include "spatial/kd_tree.h"

#include <algorithm>
#include <cmath>

#include "geo/distance.h"

namespace riskroute::spatial {
namespace {
double Component(const double* v, int axis) { return v[axis]; }
}  // namespace

KdTree::Vec3 KdTree::Embed(const geo::GeoPoint& p) {
  const double lat = geo::DegToRad(p.latitude());
  const double lon = geo::DegToRad(p.longitude());
  return Vec3{std::cos(lat) * std::cos(lon), std::cos(lat) * std::sin(lon),
              std::sin(lat)};
}

double KdTree::Chord2(const Vec3& a, const Vec3& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

double KdTree::ChordToMiles(double chord) {
  const double half = std::min(1.0, chord / 2.0);
  return geo::kEarthRadiusMiles * 2.0 * std::asin(half);
}

double KdTree::MilesToChord(double miles) {
  const double angle = miles / geo::kEarthRadiusMiles;
  return 2.0 * std::sin(std::min(angle, 3.14159265358979323846) / 2.0);
}

KdTree::KdTree(const std::vector<geo::GeoPoint>& points) : points_(points) {
  coords_.reserve(points_.size());
  for (const auto& p : points_) coords_.push_back(Embed(p));
  if (points_.empty()) return;
  nodes_.reserve(points_.size());
  std::vector<std::size_t> items(points_.size());
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = i;
  root_ = Build(items, 0, items.size(), 0);
}

std::int32_t KdTree::Build(std::vector<std::size_t>& items, std::size_t begin,
                           std::size_t end, int depth) {
  if (begin >= end) return -1;
  const int axis = depth % 3;
  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(items.begin() + static_cast<std::ptrdiff_t>(begin),
                   items.begin() + static_cast<std::ptrdiff_t>(mid),
                   items.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::size_t a, std::size_t b) {
                     return Component(&coords_[a].x, axis) <
                            Component(&coords_[b].x, axis);
                   });
  const std::int32_t node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{items[mid], axis, -1, -1});
  const std::int32_t left = Build(items, begin, mid, depth + 1);
  const std::int32_t right = Build(items, mid + 1, end, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

void KdTree::NearestImpl(std::int32_t node, const Vec3& q, double& best_chord2,
                         std::size_t& best_point, bool& found) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const double d2 = Chord2(coords_[n.point], q);
  if (!found || d2 < best_chord2) {
    best_chord2 = d2;
    best_point = n.point;
    found = true;
  }
  const double delta =
      Component(&q.x, n.axis) - Component(&coords_[n.point].x, n.axis);
  const std::int32_t near_child = delta < 0 ? n.left : n.right;
  const std::int32_t far_child = delta < 0 ? n.right : n.left;
  NearestImpl(near_child, q, best_chord2, best_point, found);
  if (delta * delta < best_chord2) {
    NearestImpl(far_child, q, best_chord2, best_point, found);
  }
}

std::optional<Neighbor> KdTree::Nearest(const geo::GeoPoint& query) const {
  if (points_.empty()) return std::nullopt;
  const Vec3 q = Embed(query);
  double best_chord2 = 0.0;
  std::size_t best_point = 0;
  bool found = false;
  NearestImpl(root_, q, best_chord2, best_point, found);
  return Neighbor{best_point, ChordToMiles(std::sqrt(best_chord2))};
}

void KdTree::KnnImpl(std::int32_t node, const Vec3& q, std::size_t k,
                     std::priority_queue<HeapItem>& heap) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const double d2 = Chord2(coords_[n.point], q);
  if (heap.size() < k) {
    heap.push(HeapItem{d2, n.point});
  } else if (d2 < heap.top().chord2) {
    heap.pop();
    heap.push(HeapItem{d2, n.point});
  }
  const double delta =
      Component(&q.x, n.axis) - Component(&coords_[n.point].x, n.axis);
  const std::int32_t near_child = delta < 0 ? n.left : n.right;
  const std::int32_t far_child = delta < 0 ? n.right : n.left;
  KnnImpl(near_child, q, k, heap);
  if (heap.size() < k || delta * delta < heap.top().chord2) {
    KnnImpl(far_child, q, k, heap);
  }
}

std::vector<Neighbor> KdTree::KNearest(const geo::GeoPoint& query,
                                       std::size_t k) const {
  std::vector<Neighbor> out;
  if (points_.empty() || k == 0) return out;
  const Vec3 q = Embed(query);
  std::priority_queue<HeapItem> heap;
  KnnImpl(root_, q, k, heap);
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(Neighbor{heap.top().point,
                           ChordToMiles(std::sqrt(heap.top().chord2))});
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void KdTree::RadiusImpl(std::int32_t node, const Vec3& q, double max_chord2,
                        std::vector<Neighbor>& out) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const double d2 = Chord2(coords_[n.point], q);
  if (d2 <= max_chord2) {
    out.push_back(Neighbor{n.point, ChordToMiles(std::sqrt(d2))});
  }
  const double delta =
      Component(&q.x, n.axis) - Component(&coords_[n.point].x, n.axis);
  const std::int32_t near_child = delta < 0 ? n.left : n.right;
  const std::int32_t far_child = delta < 0 ? n.right : n.left;
  RadiusImpl(near_child, q, max_chord2, out);
  if (delta * delta <= max_chord2) {
    RadiusImpl(far_child, q, max_chord2, out);
  }
}

std::vector<Neighbor> KdTree::WithinRadius(const geo::GeoPoint& query,
                                           double radius_miles) const {
  std::vector<Neighbor> out;
  if (points_.empty() || radius_miles < 0) return out;
  const Vec3 q = Embed(query);
  const double chord = MilesToChord(radius_miles);
  RadiusImpl(root_, q, chord * chord, out);
  std::sort(out.begin(), out.end(),
            [](const Neighbor& a, const Neighbor& b) { return a.miles < b.miles; });
  return out;
}

}  // namespace riskroute::spatial
