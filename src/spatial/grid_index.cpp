#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "geo/distance.h"
#include "util/error.h"

namespace riskroute::spatial {
namespace {
// Miles per degree of latitude (constant); longitude shrinks with cos(lat).
constexpr double kMilesPerLatDeg = 69.055;
}  // namespace

GridIndex::GridIndex(const std::vector<geo::GeoPoint>& points,
                     const geo::BoundingBox& bounds, double cell_miles)
    : points_(points), bounds_(bounds) {
  if (cell_miles <= 0.0) {
    throw InvalidArgument("GridIndex cell size must be positive");
  }
  const double lat_span = bounds_.max_lat() - bounds_.min_lat();
  const double lon_span = bounds_.max_lon() - bounds_.min_lon();
  const double mid_lat = geo::DegToRad((bounds_.min_lat() + bounds_.max_lat()) / 2.0);
  const double miles_per_lon_deg =
      kMilesPerLatDeg * std::max(0.2, std::cos(mid_lat));
  lat_step_ = cell_miles / kMilesPerLatDeg;
  lon_step_ = cell_miles / miles_per_lon_deg;
  rows_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(lat_span / lat_step_)));
  cols_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(lon_span / lon_step_)));

  // Counting sort into the CSR layout: one pass to size each cell, a
  // prefix sum for the offsets, one pass to place the indices. Input order
  // is preserved within a cell.
  std::vector<std::size_t> cell_of(points_.size());
  std::vector<std::size_t> counts(rows_ * cols_, 0);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::size_t cell = RowOf(points_[i].latitude()) * cols_ +
                             ColOf(points_[i].longitude());
    cell_of[i] = cell;
    ++counts[cell];
  }
  offsets_.assign(rows_ * cols_ + 1, 0);
  for (std::size_t cell = 0; cell < counts.size(); ++cell) {
    offsets_[cell + 1] = offsets_[cell] + counts[cell];
  }
  slots_.resize(points_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    slots_[cursor[cell_of[i]]++] = i;
  }
}

std::size_t GridIndex::RowOf(double lat) const {
  const double offset = (lat - bounds_.min_lat()) / lat_step_;
  const auto row = static_cast<long long>(std::floor(offset));
  return static_cast<std::size_t>(std::clamp<long long>(
      row, 0, static_cast<long long>(rows_) - 1));
}

std::size_t GridIndex::ColOf(double lon) const {
  const double offset = (lon - bounds_.min_lon()) / lon_step_;
  const auto col = static_cast<long long>(std::floor(offset));
  return static_cast<std::size_t>(std::clamp<long long>(
      col, 0, static_cast<long long>(cols_) - 1));
}

std::size_t GridIndex::CellIdOf(const geo::GeoPoint& p) const {
  return RowOf(p.latitude()) * cols_ + ColOf(p.longitude());
}

CellRect GridIndex::RectNear(const geo::GeoPoint& center,
                             double radius_miles) const {
  const double lat_radius = radius_miles / kMilesPerLatDeg;
  const double cos_lat =
      std::max(0.2, std::cos(geo::DegToRad(center.latitude())));
  const double lon_radius = radius_miles / (kMilesPerLatDeg * cos_lat);
  CellRect rect;
  rect.r0 = RowOf(center.latitude() - lat_radius);
  rect.r1 = RowOf(center.latitude() + lat_radius);
  rect.c0 = ColOf(center.longitude() - lon_radius);
  rect.c1 = ColOf(center.longitude() + lon_radius);
  return rect;
}

std::span<const std::size_t> GridIndex::CellPoints(std::size_t r,
                                                   std::size_t c) const {
  const auto [first, last] = CellSlotRange(r, c);
  return {slots_.data() + first, last - first};
}

std::pair<std::size_t, std::size_t> GridIndex::CellSlotRange(
    std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw InvalidArgument("GridIndex: cell out of range");
  }
  const std::size_t cell = r * cols_ + c;
  return {offsets_[cell], offsets_[cell + 1]};
}

void GridIndex::VisitNear(const geo::GeoPoint& center, double radius_miles,
                          const std::function<void(std::size_t)>& visit) const {
  if (radius_miles < 0.0) return;
  const CellRect rect = RectNear(center, radius_miles);
  for (std::size_t r = rect.r0; r <= rect.r1; ++r) {
    for (std::size_t c = rect.c0; c <= rect.c1; ++c) {
      const std::size_t cell = r * cols_ + c;
      for (std::size_t s = offsets_[cell]; s < offsets_[cell + 1]; ++s) {
        visit(slots_[s]);
      }
    }
  }
}

std::vector<std::size_t> GridIndex::WithinRadius(const geo::GeoPoint& center,
                                                 double radius_miles) const {
  std::vector<std::size_t> out;
  VisitNear(center, radius_miles, [&](std::size_t i) {
    if (geo::GreatCircleMiles(center, points_[i]) <= radius_miles) {
      out.push_back(i);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace riskroute::spatial
