// riskroute/api.h — the single public facade of the RiskRoute library.
//
// This header re-exports the supported surface: assembling a paper-scale
// study, freezing and querying the route engine, the Eq 5/6 ratio and
// Eq 4 aggregate evaluations, resilience extensions (backup paths,
// k-shortest, multi-objective, OSPF export), provisioning (greedy link
// augmentation and peering recommendation), forecast-driven risk, outage
// simulation, and the obs:: metrics registry. Applications, examples, and
// tools include this one header (installed as <riskroute/api.h>) instead
// of reaching into a dozen internal module headers; anything not exported
// here is library-internal and may change without notice.
//
// The stable spine of the API:
//
//   core::Study          — synthesized corpus + census + hazard fields
//   core::RouteEngine    — frozen CSR graph; every routing query
//   core::RiskRouter     — per-pair convenience router over a live graph
//   core::PathMetrics    — the shared {miles, bit_risk_miles} result base
//   provision::GreedyAugment / RecommendPeering
//   obs::MetricsRegistry — process-wide counters/histograms + DumpJson
#pragma once

// Core: graph substrate, frozen engine, routers, result types.
#include "core/backup_paths.h"
#include "core/disjoint_paths.h"
#include "core/edge_overlay.h"
#include "core/interdomain.h"
#include "core/k_shortest.h"
#include "core/multi_objective.h"
#include "core/ospf_export.h"
#include "core/path_metrics.h"
#include "core/risk_graph.h"
#include "core/risk_params.h"
#include "core/riskroute.h"
#include "core/route_engine.h"
#include "core/study.h"

// Hazard + forecast risk models feeding the engine.
#include "forecast/forecast_risk.h"
#include "forecast/tracks.h"
#include "hazard/risk_field.h"

// Provisioning: link augmentation and peering recommendation.
#include "provision/augmentation.h"
#include "provision/peering.h"

// Outage simulation + Monte Carlo ensemble.
#include "sim/ensemble.h"
#include "sim/outage_sim.h"
#include "sim/traffic.h"

// Observability: metrics registry, scoped timers, JSON export.
#include "obs/metrics.h"

// Shared utilities applications commonly need alongside the library.
#include "util/thread_pool.h"

namespace riskroute {

/// Serializes every metric recorded so far by the process-wide registry
/// (see obs::MetricsRegistry::DumpJson for the schema).
[[nodiscard]] inline std::string DumpMetricsJson(bool include_volatile = true) {
  return obs::MetricsRegistry::Global().DumpJson(include_volatile);
}

}  // namespace riskroute
