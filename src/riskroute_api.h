// riskroute_api.h — DEPRECATED umbrella location.
//
// The public facade moved to api/api.h (installed as <riskroute/api.h>),
// which adds the typed riskroute::api::Service request/response layer the
// CLI and riskroute_serverd share. This header remains as a thin
// re-export so existing includes keep compiling; new code should include
// "api/api.h" (in-tree) or <riskroute/api.h> (installed) and prefer
// api::Service over hand-rolled query plumbing. This shim will be removed
// once in-tree call sites have migrated.
#pragma once

#include "api/api.h"
