#!/usr/bin/env python3
"""CTest gate for the obs:: metrics export (the ``metrics_schema`` target).

Runs the riskroute CLI once per worker-thread count (1, 2, 8) with
``--metrics-out``, then checks the exports:

  1. every export validates against tools/metrics_schema.json
     (via the hand-rolled validator in tools/validate_metrics.py),
  2. the "stable" subtree — deterministic work counters, gauges, and
     histograms — is bitwise identical across all thread counts,
  3. the export is non-trivial: the route engine's sweep counters and the
     KDE batch counters actually recorded work.

Volatile metrics (wall-clock timings, queue depths, workspace reuse) are
allowed to differ; that split is the whole point of the layout.

    python3 tools/check_metrics_schema.py --binary build/tools/riskroute
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

import validate_metrics

THREAD_COUNTS = (1, 2, 8)

# Counters that must be nonzero after a `ratios` run — the instrumented hot
# paths all execute during study build + the all-pairs ratio sweep.
REQUIRED_NONZERO = (
    "core.route_engine.freezes",
    "core.route_engine.sweeps",
    "core.route_engine.relaxations",
    "stats.kde.batch_points",
)


def run_cli(binary: pathlib.Path, out: pathlib.Path, threads: int,
            blocks: int) -> None:
    cmd = [
        str(binary), "ratios", "--network", "Sprint",
        "--blocks", str(blocks),
        "--threads", str(threads),
        "--metrics-out", str(out),
    ]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                   stderr=subprocess.DEVNULL)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", type=pathlib.Path, required=True,
                        help="path to the riskroute CLI executable")
    parser.add_argument("--schema", type=pathlib.Path,
                        default=validate_metrics.default_schema_path())
    parser.add_argument("--blocks", type=int, default=4000,
                        help="census blocks for the reduced study")
    args = parser.parse_args()

    if not args.binary.exists():
        print(f"check_metrics_schema: no such binary: {args.binary}",
              file=sys.stderr)
        return 2
    schema = json.loads(args.schema.read_text())

    docs: dict[int, dict] = {}
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="riskroute_metrics_") as tmp:
        for threads in THREAD_COUNTS:
            out = pathlib.Path(tmp) / f"metrics_t{threads}.json"
            run_cli(args.binary, out, threads, args.blocks)
            doc = json.loads(out.read_text())
            docs[threads] = doc
            errors = validate_metrics.validate(doc, schema)
            failures += [f"threads={threads}: {e}" for e in errors]
            print(f"threads={threads}: "
                  f"{len(doc['stable']['counters'])} stable counters, "
                  f"{len(doc['stable']['histograms'])} stable histograms, "
                  f"{len(errors)} schema errors")

    reference = docs[THREAD_COUNTS[0]]
    # Canonical serialization makes "bitwise identical" well-defined even
    # though the subtree passed through a parse (all values are integers).
    ref_bytes = json.dumps(reference["stable"], sort_keys=True)
    for threads in THREAD_COUNTS[1:]:
        if json.dumps(docs[threads]["stable"], sort_keys=True) != ref_bytes:
            for section in ("counters", "gauges", "histograms"):
                a = reference["stable"][section]
                b = docs[threads]["stable"][section]
                for name in sorted(set(a) | set(b)):
                    if a.get(name) != b.get(name):
                        failures.append(
                            f"stable {section} '{name}' differs between "
                            f"threads=1 ({a.get(name)}) and "
                            f"threads={threads} ({b.get(name)})")

    for name in REQUIRED_NONZERO:
        if not reference["stable"]["counters"].get(name):
            failures.append(f"expected nonzero stable counter '{name}', "
                            f"got {reference['stable']['counters'].get(name)}")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if not failures:
        print(f"stable sections bitwise identical across threads="
              f"{'/'.join(map(str, THREAD_COUNTS))}; schema valid")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
