#!/usr/bin/env python3
"""Run the core performance benchmarks and gate on speedup regressions.

Runs each supplied bench binary with google-benchmark's JSON writer, pairs
every legacy-path benchmark with its optimized counterpart, and computes
the speedup ratio legacy/new. Ratios are compared within one run on one
host, so they are insensitive to absolute machine speed and background
load.

The tool then:
  1. writes a ``BENCH_perf.json`` report (raw times + speedups),
  2. fails if any speedup is below its pair's target floor scaled by
     ``--floor-scale`` (or the uniform ``--min-speedup`` override),
  3. if a baseline report exists (``--baseline``), fails if any speedup
     regressed by more than ``--regression-threshold`` relative to it,
  4. collects the obs:: metrics sidecar each bench harness drops (via
     ``RISKROUTE_METRICS_OUT``) next to the report as
     ``<output stem>_<binary stem>_metrics.json`` and fails — never
     silently skips — if one is missing or does not validate against
     ``tools/metrics_schema.json``,
  5. fails on orphaned sidecars: a ``<output stem>_*_metrics.json`` file
     next to the report whose bench binary was not part of this run is a
     stale leftover (a deleted pair, or a binary dropped from the ctest
     wiring) and would misrepresent the report's provenance.

Every pair is bound to the bench binary (by basename) that registers its
benchmarks; pass ``--binary`` once per binary. A pair whose binary was not
supplied, or whose binary is missing from disk, is a hard error — pairs
are the regression surface, so dropping one silently would hide exactly
the regressions this gate exists to catch.

Because the benchmarked binaries carry the obs:: instrumentation compiled
in, the speedup floors in step 2 double as the instrumentation-overhead
gate: if metric sites ever slow a hot loop enough to push a pair below its
floor, this tool fails.

Wired as the ``bench_compare`` CTest target; also usable standalone:

    python3 tools/bench_compare.py \\
        --binary build/bench/bench_perf_core \\
        --binary build/bench/bench_ensemble
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

import validate_metrics

# Pair key -> (bench binary basename, legacy benchmark, optimized
# benchmark, development-target speedup floor). Floors differ per pair:
# the KDE pairs replaced trig-heavy inner loops (3x), the all-pairs route
# sweep replaced an already-lean templated Dijkstra with the CSR engine
# (2x), the greedy scan replaced a full re-sweep per candidate with the
# incremental identity (3x), and the ensemble pair replaced per-pair
# allocating Dijkstras with hash-set failure checks by frozen-CSR overlay
# sweeps (3x), and the continental-scale pair replaced full per-source
# Dijkstra sweeps with per-pair landmark-guided A* on sparse target sets
# (3x). The ctest wiring scales every floor by --floor-scale to
# tolerate noisy shared hosts; run standalone for the strict targets.
PAIRS = {
    "evaluate": ("bench_perf_core",
                 "BM_KdeEvaluateLegacy", "BM_KdeEvaluateBatch", 3.0),
    "raster": ("bench_perf_core",
               "BM_KdeRasterLegacy", "BM_KdeRasterParallel", 3.0),
    "bandwidth_cv": ("bench_perf_core",
                     "BM_BandwidthCVLegacy", "BM_BandwidthCV", 3.0),
    "route_allpairs": ("bench_perf_core",
                       "BM_RouteAllPairsLegacy", "BM_RouteAllPairsEngine", 2.0),
    "greedy_scan": ("bench_perf_core",
                    "BM_GreedyScanLegacy", "BM_GreedyScanEngine", 3.0),
    "ensemble": ("bench_ensemble",
                 "BM_EnsembleLegacy", "BM_EnsembleBatched", 3.0),
    "scale_mtm": ("bench_scale",
                  "BM_ScaleManyToManyDijkstra", "BM_ScaleManyToManyAlt", 3.0),
    # Not a kernel rewrite but a boot amortization: the warm daemon pays
    # one wire round trip where the cold CLI re-parses the ALT-ready
    # engine snapshot per query (and the cold side is not even charged
    # for process spawn, so the real gap is wider).
    "server_route": ("bench_server",
                     "BM_ColdCliRoute", "BM_WarmServerRoute", 10.0),
    # Streaming re-route: one rolling StreamingReroute session ingesting
    # an advisory (footprint raster + overlay sweeps over affected pairs
    # only) against a full per-advisory rebuild (forecast plane + engine
    # refreeze + every-pair sweep). The answers are bitwise identical
    # (tests/streaming_test.cpp); only the work per advisory differs.
    "stream_reroute": ("bench_stream",
                       "BM_StreamFullRebuild", "BM_StreamIncremental", 5.0),
    # Surrogate-triaged ensemble: a full exact run over a 100k-scenario
    # universe against TriagedEnsemble's pilot-fit + flag/audit/importance
    # -sample run over the same universe (identical draws, identical
    # engine). The triaged side pays features for every scenario but
    # exact overlay sweeps only for the ~1% it keeps.
    "ensemble_triage": ("bench_ensemble",
                        "BM_EnsembleExactFull", "BM_EnsembleTriaged", 5.0),
}


def resolve_binaries(supplied: list[pathlib.Path]) -> dict[str, pathlib.Path]:
    """Maps each PAIRS binary basename to its supplied path, or dies."""
    by_stem = {path.name: path for path in supplied}
    missing = []
    for key, (stem, _, _, _) in PAIRS.items():
        if stem not in by_stem:
            missing.append(f"pair '{key}' needs --binary .../{stem}")
        elif not by_stem[stem].exists():
            missing.append(f"pair '{key}': no such binary: {by_stem[stem]}")
    if missing:
        raise SystemExit("bench_compare: " + "; ".join(missing))
    return {stem: by_stem[stem]
            for stem, _, _, _ in PAIRS.values()}


def run_benchmarks(binary: pathlib.Path, names: list[str], min_time: float,
                   metrics_out: pathlib.Path) -> dict:
    """Runs the benchmark binary, returns the parsed google-benchmark JSON.

    The bench harness writes its obs:: metrics sidecar to ``metrics_out``
    (pointed there via the RISKROUTE_METRICS_OUT environment variable).
    """
    # The bench harness prints a human banner to stdout, so the JSON must go
    # through --benchmark_out rather than --benchmark_format=json.
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = pathlib.Path(tmp.name)
    cmd = [
        str(binary),
        f"--benchmark_filter=^({'|'.join(sorted(names))})$",
        f"--benchmark_min_time={min_time}",
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
    ]
    env = dict(os.environ, RISKROUTE_METRICS_OUT=str(metrics_out))
    try:
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL, env=env)
        return json.loads(out_path.read_text())
    finally:
        out_path.unlink(missing_ok=True)


def check_metrics_sidecar(sidecar: pathlib.Path) -> list[str]:
    """Validates the bench metrics sidecar against the checked-in schema."""
    if not sidecar.exists():
        return [f"metrics sidecar {sidecar} was not written by the bench "
                f"harness (RISKROUTE_METRICS_OUT plumbing broken?)"]
    schema = json.loads(validate_metrics.default_schema_path().read_text())
    doc = json.loads(sidecar.read_text())
    errors = [f"metrics sidecar: {e}"
              for e in validate_metrics.validate(doc, schema)]
    if not doc.get("stable", {}).get("counters"):
        errors.append("metrics sidecar: stable counter section is empty — "
                      "the instrumented hot paths recorded nothing")
    return errors


def check_orphan_sidecars(output: pathlib.Path,
                          expected: list[pathlib.Path]) -> list[str]:
    """Hard-fails on sidecars this run did not produce.

    A ``<output stem>_*_metrics.json`` file beside the report whose bench
    binary is not part of the current PAIRS/--binary set means a pair was
    removed without cleaning up its artifacts; left in place it would read
    as fresh output of this run.
    """
    known = {sidecar.resolve() for sidecar in expected}
    return [f"orphaned metrics sidecar {found}: its bench binary is not "
            f"part of this run — delete the file or restore its PAIRS entry"
            for found in sorted(output.parent.glob(
                f"{output.stem}_*_metrics.json"))
            if found.resolve() not in known]


def real_times(report: dict) -> dict[str, float]:
    """Maps benchmark name -> real time in nanoseconds."""
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        times[bench["name"]] = float(bench["real_time"]) * scale
    return times


def build_report(times: dict[str, float]) -> dict:
    report = {"pairs": {}}
    for key, (stem, legacy, new, floor) in PAIRS.items():
        if legacy not in times or new not in times:
            raise SystemExit(
                f"bench_compare: missing benchmark(s) for pair '{key}': "
                f"{legacy}={times.get(legacy)}, {new}={times.get(new)}"
            )
        report["pairs"][key] = {
            "binary": stem,
            "legacy_benchmark": legacy,
            "new_benchmark": new,
            "legacy_ns": times[legacy],
            "new_ns": times[new],
            "speedup": times[legacy] / times[new],
            "target_speedup": floor,
        }
    return report


def check_floor(report: dict, floor_scale: float,
                min_speedup: float | None) -> list[str]:
    failures = []
    for key, pair in report["pairs"].items():
        floor = (min_speedup if min_speedup is not None
                 else PAIRS[key][3] * floor_scale)
        if pair["speedup"] < floor:
            failures.append(
                f"{key}: speedup {pair['speedup']:.2f}x is below the "
                f"required {floor:.2f}x floor"
            )
    return failures


def check_baseline(report: dict, baseline: dict, threshold: float) -> list[str]:
    failures = []
    for key, pair in report["pairs"].items():
        base = baseline.get("pairs", {}).get(key)
        if base is None:
            continue  # new pair, nothing to regress against
        floor = base["speedup"] * (1.0 - threshold)
        if pair["speedup"] < floor:
            failures.append(
                f"{key}: speedup {pair['speedup']:.2f}x regressed more than "
                f"{threshold:.0%} from baseline {base['speedup']:.2f}x"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", type=pathlib.Path, required=True,
                        action="append", dest="binaries", default=[],
                        help="path to a bench executable (repeatable; every "
                             "binary named in PAIRS must be supplied)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=pathlib.Path("BENCH_perf.json"),
                        help="where to write the speedup report")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="prior BENCH_perf.json to diff against "
                             "(skipped if the file does not exist)")
    parser.add_argument("--floor-scale", type=float, default=1.0,
                        help="multiplier applied to every pair's development-"
                             "target floor (ctest uses < 1 to tolerate noisy "
                             "shared hosts)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="uniform floor overriding the per-pair targets "
                             "(legacy option; prefer --floor-scale)")
    parser.add_argument("--regression-threshold", type=float, default=0.25,
                        help="allowed fractional speedup drop vs the baseline")
    parser.add_argument("--min-time", type=float, default=0.2,
                        help="--benchmark_min_time per benchmark, seconds")
    args = parser.parse_args()

    binaries = resolve_binaries(args.binaries)
    times: dict[str, float] = {}
    sidecars: list[pathlib.Path] = []
    for stem, binary in binaries.items():
        names = [name
                 for pair_stem, legacy, new, _ in PAIRS.values()
                 if pair_stem == stem
                 for name in (legacy, new)]
        sidecar = args.output.with_name(
            f"{args.output.stem}_{stem}_metrics.json")
        sidecars.append(sidecar)
        times.update(real_times(run_benchmarks(binary, names, args.min_time,
                                               sidecar)))

    report = build_report(times)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for key, pair in report["pairs"].items():
        print(f"{key:>14}: {pair['legacy_ns'] / 1e6:8.2f} ms -> "
              f"{pair['new_ns'] / 1e6:8.2f} ms  ({pair['speedup']:.2f}x)")
    print(f"report written to {args.output}")

    failures = check_floor(report, args.floor_scale, args.min_speedup)
    failures += check_orphan_sidecars(args.output, sidecars)
    for sidecar in sidecars:
        failures += check_metrics_sidecar(sidecar)
        if sidecar.exists():
            print(f"metrics sidecar written to {sidecar}")
    if args.baseline is not None and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        failures += check_baseline(report, baseline,
                                   args.regression_threshold)
    elif args.baseline is not None:
        print(f"baseline {args.baseline} not found; skipping regression diff")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
