#!/usr/bin/env python3
"""Unit tests for the validate_metrics.py JSON-Schema subset validator.

Exercises the importable ``validate(doc, schema)`` API against both the
shipped tools/metrics_schema.json and small synthetic schemas that probe
each supported keyword, plus the failure modes that protect the metrics
gate: unknown schema keywords and dangling $refs must raise instead of
silently passing. Wired as the ``validate_metrics_unit`` CTest target.
"""

from __future__ import annotations

import json
import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from validate_metrics import default_schema_path, validate


def _histogram(**overrides):
    doc = {"bounds": [100, 1000], "counts": [1, 2, 3], "count": 6,
           "sum": 4200, "min": 55, "max": 1800}
    doc.update(overrides)
    return doc


def _metrics_doc():
    return {
        "schema_version": 1,
        "stable": {
            "counters": {"sim.ensemble.scenarios": 48},
            "gauges": {"core.route_engine.nodes": 24},
            "histograms": {"sim.ensemble.failed_pops": _histogram()},
        },
        "volatile": {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timings": {"sim.ensemble.run_ns": _histogram()},
        },
    }


class MetricsSchemaTest(unittest.TestCase):
    """validate() against the real shipped schema."""

    @classmethod
    def setUpClass(cls):
        cls.schema = json.loads(default_schema_path().read_text())

    def test_well_formed_document_validates(self):
        self.assertEqual(validate(_metrics_doc(), self.schema), [])

    def test_missing_required_section_fails(self):
        doc = _metrics_doc()
        del doc["stable"]
        errors = validate(doc, self.schema)
        self.assertEqual(len(errors), 1)
        self.assertIn("missing required property 'stable'", errors[0])

    def test_unexpected_top_level_property_fails(self):
        doc = _metrics_doc()
        doc["extra"] = {}
        errors = validate(doc, self.schema)
        self.assertTrue(any("unexpected property 'extra'" in e
                            for e in errors))

    def test_wrong_schema_version_fails(self):
        doc = _metrics_doc()
        doc["schema_version"] = 2
        self.assertTrue(validate(doc, self.schema))

    def test_negative_counter_fails(self):
        doc = _metrics_doc()
        doc["stable"]["counters"]["sim.ensemble.scenarios"] = -1
        errors = validate(doc, self.schema)
        self.assertTrue(any("below minimum 0" in e for e in errors))

    def test_boolean_is_not_an_integer(self):
        # bool subclasses int in Python; the validator must not let JSON
        # true/false masquerade as counter values.
        doc = _metrics_doc()
        doc["stable"]["counters"]["sim.ensemble.scenarios"] = True
        self.assertTrue(validate(doc, self.schema))

    def test_histogram_shape_is_enforced(self):
        doc = _metrics_doc()
        histogram = doc["volatile"]["timings"]["sim.ensemble.run_ns"]
        del histogram["bounds"]
        histogram["counts"] = [1, "two"]
        errors = validate(doc, self.schema)
        self.assertTrue(any("missing required property 'bounds'" in e
                            for e in errors))
        self.assertTrue(any("counts[1]" in e for e in errors))

    def test_error_paths_locate_the_bad_node(self):
        doc = _metrics_doc()
        doc["stable"]["gauges"]["core.route_engine.nodes"] = "many"
        errors = validate(doc, self.schema)
        self.assertEqual(len(errors), 1)
        self.assertIn("stable.gauges.core.route_engine.nodes", errors[0])

    def test_server_and_api_namespaces_validate(self):
        doc = _metrics_doc()
        doc["stable"]["counters"]["api.requests.route"] = 3
        doc["volatile"]["counters"]["server.scheduler.rejected_full"] = 1
        doc["volatile"]["gauges"]["server.scheduler.queue_depth_peak"] = 4
        self.assertEqual(validate(doc, self.schema), [])

    def test_stream_namespace_validates(self):
        # PR-9 streaming re-route metrics: session + per-advisory counters
        # in the stable section (pure functions of engine + advisory
        # sequence), api-side session accounting next to them.
        doc = _metrics_doc()
        doc["stable"]["counters"]["stream.sessions"] = 2
        doc["stable"]["counters"]["stream.advisories"] = 191
        doc["stable"]["counters"]["stream.cache.hits"] = 1000
        doc["stable"]["counters"]["stream.pairs.recomputed"] = 77
        doc["stable"]["counters"]["api.stream.session_reuses"] = 5
        self.assertEqual(validate(doc, self.schema), [])
        # "streamliner.x" must not ride on the "stream." prefix.
        doc["stable"]["counters"]["streamliner.x"] = 1
        self.assertTrue(validate(doc, self.schema))

    def test_ensemble_triage_namespace_validates(self):
        # PR-10 triaged-ensemble metrics: lane counters in the stable
        # section (pure functions of engine + options + universe), the
        # wall-clock timing volatile.
        doc = _metrics_doc()
        doc["stable"]["counters"]["ensemble.triage.universe"] = 100000
        doc["stable"]["counters"]["ensemble.triage.pilot_exact"] = 96
        doc["stable"]["counters"]["ensemble.triage.audit_exact"] = 1524
        doc["stable"]["counters"]["ensemble.triage.flagged_exact"] = 9800
        doc["stable"]["counters"]["ensemble.triage.sampled_exact"] = 4100
        doc["stable"]["counters"]["ensemble.triage.skipped"] = 60000
        doc["stable"]["counters"]["ensemble.triage.exact_evaluations"] = 15520
        doc["volatile"]["timings"]["ensemble.triage.run_ns"] = {
            "bounds": [1000],
            "counts": [1, 0],
            "count": 1,
            "sum": 500,
            "min": 500,
            "max": 500,
        }
        self.assertEqual(validate(doc, self.schema), [])
        # "ensembles.x" must not ride on the "ensemble." prefix.
        doc["stable"]["counters"]["ensembles.x"] = 1
        self.assertTrue(validate(doc, self.schema))

    def test_unregistered_metric_namespace_fails(self):
        doc = _metrics_doc()
        doc["stable"]["counters"]["telemetry.unheard.of"] = 1
        errors = validate(doc, self.schema)
        self.assertTrue(any("'telemetry.unheard.of' is outside the "
                            "registered namespaces" in e for e in errors))

    def test_prefix_must_include_the_dot(self):
        # "serverless.x" must not ride on the "server." prefix.
        doc = _metrics_doc()
        doc["volatile"]["counters"]["serverless.x"] = 1
        self.assertTrue(validate(doc, self.schema))


class KeywordSubsetTest(unittest.TestCase):
    """Each supported keyword, probed with minimal synthetic schemas."""

    def test_type_list_accepts_any_listed_type(self):
        schema = {"type": ["integer", "null"]}
        self.assertEqual(validate(3, schema), [])
        self.assertEqual(validate(None, schema), [])
        self.assertTrue(validate("3", schema))

    def test_enum(self):
        schema = {"enum": [1, "a"]}
        self.assertEqual(validate("a", schema), [])
        self.assertTrue(validate("b", schema))

    def test_additional_properties_schema_applies_to_unlisted_keys(self):
        schema = {"type": "object", "properties": {"known": {}},
                  "additionalProperties": {"type": "integer"}}
        self.assertEqual(validate({"known": "any", "other": 1}, schema), [])
        self.assertTrue(validate({"other": "nope"}, schema))

    def test_ref_resolves_into_definitions(self):
        schema = {"definitions": {"pos": {"type": "integer", "minimum": 1}},
                  "$ref": "#/definitions/pos"}
        self.assertEqual(validate(5, schema), [])
        self.assertTrue(validate(0, schema))

    def test_unknown_keyword_raises(self):
        # An unsupported keyword silently ignored would validate nothing;
        # the gate requires a hard error.
        with self.assertRaises(ValueError):
            validate({}, {"patternProperties": {}})

    def test_dangling_ref_raises(self):
        with self.assertRaises(ValueError):
            validate(1, {"$ref": "#/definitions/nope"})

    def test_external_ref_raises(self):
        with self.assertRaises(ValueError):
            validate(1, {"$ref": "http://example.com/schema"})

    def test_name_prefixes_keyword(self):
        schema = {"type": "object", "namePrefixes": ["a.", "b."],
                  "additionalProperties": {"type": "integer"}}
        self.assertEqual(validate({"a.x": 1, "b.y": 2}, schema), [])
        errors = validate({"c.z": 3}, schema)
        self.assertTrue(any("outside the registered namespaces" in e
                            for e in errors))


if __name__ == "__main__":
    unittest.main()
