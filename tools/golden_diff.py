#!/usr/bin/env python3
"""Golden-replay gate for the riskroute CLI.

Replays a fixed set of CLI invocations against checked-in golden outputs
(``tests/golden/``) and fails loudly on any drift. Lines are compared
token by token: text tokens must match exactly, numeric tokens must agree
to a relative tolerance (default 1e-9) so the goldens survive harmless
cross-machine floating-point formatting while still catching real
behavioral drift. The ensemble JSON export carries a bitwise determinism
contract, so its case runs at two thread counts and the two outputs must
be byte-identical to each other before either is diffed against the
golden.

Regenerate after an intentional change:

    python3 tools/golden_diff.py --binary build/tools/riskroute --update

Wired as the ``golden_replay`` CTest target.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

# Case name -> CLI arguments. Every case pins the corpus seed/size and,
# where the subcommand samples, the sampling seed, so output is a pure
# function of the library. --blocks 4000 keeps the study build fast while
# exercising the full pipeline.
COMMON = ["--seed", "123", "--blocks", "4000"]
CASES = {
    "route_level3": ["route", "--network", "Level3",
                     "--from", "Houston, TX", "--to", "Boston, MA"] + COMMON,
    "route_sprint_params": ["route", "--network", "Sprint",
                            "--from", "Oakland, CA", "--to", "Atlanta, GA",
                            "--lambda-h", "2e5"] + COMMON,
    "ensemble_digex": ["ensemble", "--network", "Digex", "--scenarios", "48",
                       "--ensemble-seed", "2026", "--json"] + COMMON,
    "ensemble_sprint_season": ["ensemble", "--network", "Sprint",
                               "--scenarios", "32", "--ensemble-seed", "7",
                               "--month", "9", "--json"] + COMMON,
    # Surrogate-triaged run: pins the pilot fit, the flag/audit lanes,
    # and the Horvitz-Thompson reweighting end to end through the CLI.
    "ensemble_digex_triage": ["ensemble", "--network", "Digex",
                              "--scenarios", "4096", "--ensemble-seed",
                              "2026", "--triage", "--pilot", "64",
                              "--audit-stride", "128", "--base-rate",
                              "0.05", "--json"] + COMMON,
    # Rolling streaming session: every 4th Irene advisory through one
    # StreamAdvisory session. stdout is the concatenation of the served
    # response bodies, so this golden byte-pins the served wire bodies
    # too (body == stdout by construction).
    "stream_irene": ["stream", "--network", "Level3", "--storm", "IRENE",
                     "--step", "4"] + COMMON,
}

# Alias name -> (base case, extra CLI arguments). An alias replays its
# base case with the extra flags and is held to the *base case's* golden
# file — and, when the base ran in the same invocation, to its output
# byte-for-byte. This is how the ALT contract is gated end to end:
# preparing landmarks must not change a single output byte, only the
# wall clock. --update skips aliases (their goldens belong to the base).
ALIASES = {
    "route_level3_alt": ("route_level3", ["--alt-landmarks", "8"]),
    "ensemble_digex_alt": ("ensemble_digex", ["--alt-landmarks", "8"]),
}

# Cases whose output must also be byte-identical across worker counts
# (the ensemble determinism contract) -> list of extra thread counts.
# The ALT alias repeats the sweep so the thread-independence contract is
# exercised with goal-directed searches active.
BITWISE_THREAD_CASES = {
    "ensemble_digex": ["1", "2", "8"],
    "ensemble_digex_alt": ["1", "2", "8"],
    "ensemble_digex_triage": ["1", "2", "8"],
    # The streaming correctness contract is thread-count independence of
    # every incremental answer; the rendered diff stream inherits it.
    "stream_irene": ["1", "2", "8"],
}

NUMBER = re.compile(r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?")


def default_golden_dir() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent / "tests" / "golden"


def run_case(binary: pathlib.Path, args: list[str],
             threads: str | None = None) -> str:
    cmd = [str(binary)] + args + (["--threads", threads] if threads else [])
    result = subprocess.run(cmd, check=True, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, text=True)
    return result.stdout


def tokenize(line: str) -> list[str]:
    """Splits a line into text and number tokens (numbers kept whole)."""
    tokens = []
    pos = 0
    for match in NUMBER.finditer(line):
        if match.start() > pos:
            tokens.append(line[pos:match.start()])
        tokens.append(match.group())
        pos = match.end()
    if pos < len(line):
        tokens.append(line[pos:])
    return tokens


def diff_outputs(expected: str, actual: str, rel_tol: float) -> list[str]:
    """Token-level diff; returns human-readable mismatch descriptions."""
    errors = []
    exp_lines = expected.rstrip("\n").split("\n")
    act_lines = actual.rstrip("\n").split("\n")
    if len(exp_lines) != len(act_lines):
        errors.append(f"line count {len(act_lines)} != expected "
                      f"{len(exp_lines)}")
    for lineno, (exp, act) in enumerate(zip(exp_lines, act_lines), 1):
        exp_tokens = tokenize(exp.rstrip())
        act_tokens = tokenize(act.rstrip())
        if len(exp_tokens) != len(act_tokens):
            errors.append(f"line {lineno}: {act!r} != expected {exp!r}")
            continue
        for exp_tok, act_tok in zip(exp_tokens, act_tokens):
            if exp_tok == act_tok:
                continue
            if NUMBER.fullmatch(exp_tok) and NUMBER.fullmatch(act_tok):
                e, a = float(exp_tok), float(act_tok)
                if abs(a - e) <= rel_tol * max(abs(e), abs(a), 1e-300):
                    continue
                errors.append(f"line {lineno}: number {act_tok} != expected "
                              f"{exp_tok} (rel tol {rel_tol})")
            else:
                errors.append(f"line {lineno}: token {act_tok!r} != expected "
                              f"{exp_tok!r}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", type=pathlib.Path, required=True,
                        help="path to the riskroute CLI executable")
    parser.add_argument("--golden-dir", type=pathlib.Path,
                        default=default_golden_dir(),
                        help="directory of checked-in golden outputs")
    parser.add_argument("--rel-tol", type=float, default=1e-9,
                        help="relative tolerance for numeric tokens")
    parser.add_argument("--only", action="append", default=None,
                        help="run only the named case(s)")
    parser.add_argument("--update", action="store_true",
                        help="regenerate the golden files instead of diffing")
    args = parser.parse_args()

    if not args.binary.exists():
        print(f"golden_diff: no such binary: {args.binary}", file=sys.stderr)
        return 2

    names = args.only if args.only else sorted(CASES) + sorted(ALIASES)
    unknown = [n for n in names if n not in CASES and n not in ALIASES]
    if unknown:
        print(f"golden_diff: unknown case(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    failures = []
    outputs: dict[str, str] = {}
    for name in names:
        base = ALIASES[name][0] if name in ALIASES else name
        case_args = (CASES[base] + ALIASES[name][1] if name in ALIASES
                     else CASES[name])
        golden_path = args.golden_dir / f"{base}.golden"
        output = run_case(args.binary, case_args)
        outputs[name] = output

        for threads in BITWISE_THREAD_CASES.get(name, []):
            rerun = run_case(args.binary, case_args, threads=threads)
            if rerun != output:
                failures.append(f"{name}: output at --threads {threads} is "
                                f"not byte-identical to the default run")

        if name in ALIASES and base in outputs:
            if output != outputs[base]:
                failures.append(f"{name}: output is not byte-identical to "
                                f"its base case {base}")

        if args.update:
            if name in ALIASES:
                continue  # the base case owns the golden file
            golden_path.parent.mkdir(parents=True, exist_ok=True)
            golden_path.write_text(output)
            print(f"wrote {golden_path}")
            continue

        if not golden_path.exists():
            failures.append(f"{name}: golden file {golden_path} is missing "
                            f"(run with --update to create it)")
            continue
        errors = diff_outputs(golden_path.read_text(), output, args.rel_tol)
        if errors:
            failures.append(f"{name}: {len(errors)} mismatch(es): " +
                            "; ".join(errors[:5]))
        else:
            print(f"{name}: OK")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
