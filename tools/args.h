// Command-line option parsing for the riskroute CLI.
//
// Two entry points:
//
//  * Args::Parse(argc, argv, first, registry) — the hardened path. Every
//    flag must be declared in a FlagRegistry as either value-taking or
//    boolean; unknown options, value flags with no value ("--metrics-out
//    --json" used to record metrics-out=""), and boolean flags given an
//    inline value are structured ParseResult errors. Supports both
//    "--key value" and "--key=value".
//
//  * the legacy lenient constructor — kept for ad-hoc tooling and tests
//    that predate the registry. It guesses value-vs-boolean from the next
//    token (a token starting with "--" keeps the flag boolean) and
//    silently accepts unknown options. New code should declare flags.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/parse_result.h"
#include "util/strings.h"

namespace riskroute::cli {

/// The set of declared flags: each is value-taking (--key value or
/// --key=value) or boolean (--key). Undeclared flags are parse errors.
class FlagRegistry {
 public:
  /// Declares a flag that takes a value.
  FlagRegistry& Value(const std::string& name) {
    takes_value_[name] = true;
    return *this;
  }
  /// Declares a boolean flag.
  FlagRegistry& Bool(const std::string& name) {
    takes_value_[name] = false;
    return *this;
  }

  /// nullptr when undeclared; otherwise whether the flag takes a value.
  [[nodiscard]] const bool* Find(const std::string& name) const {
    const auto it = takes_value_.find(name);
    return it == takes_value_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, bool> takes_value_;
};

/// Parsed "--key value" / "--key=value" pairs plus positional arguments.
class Args {
 public:
  /// Hardened parse against a declared-flag registry. Error kinds:
  /// kUnknownOption (typo'd flag), kMissingValue (value flag at argv end
  /// or followed by another option), kBadValue (boolean flag given
  /// "=value"). Rejects are counted under `ingest.args.rejects.*`.
  [[nodiscard]] static util::ParseResult<Args> Parse(
      int argc, char** argv, int first, const FlagRegistry& flags) {
    Args args;
    for (int i = first; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        args.positional_.push_back(token);
        continue;
      }
      std::string key = token.substr(2);
      std::optional<std::string> inline_value;
      if (const auto eq = key.find('='); eq != std::string::npos) {
        inline_value = key.substr(eq + 1);
        key.resize(eq);
      }
      const bool* takes_value = flags.Find(key);
      if (takes_value == nullptr) {
        return Reject(util::ParseErrorKind::kUnknownOption,
                      "unknown option --" + key);
      }
      if (*takes_value) {
        if (inline_value) {
          args.options_[key] = std::move(*inline_value);
        } else if (i + 1 < argc &&
                   std::string_view(argv[i + 1]).substr(0, 2) != "--") {
          args.options_[key] = argv[++i];
        } else {
          return Reject(util::ParseErrorKind::kMissingValue,
                        "option --" + key + " requires a value" +
                            " (use --" + key + "=VALUE for values starting "
                            "with --)");
        }
      } else {
        if (inline_value) {
          return Reject(util::ParseErrorKind::kBadValue,
                        "flag --" + key + " does not take a value");
        }
        args.options_[key] = "";
      }
    }
    util::ingest::CountAccepted("args");
    return args;
  }

  /// Legacy lenient parse (see file comment). Also accepts --key=value.
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        std::string key = token.substr(2);
        if (const auto eq = key.find('='); eq != std::string::npos) {
          options_[key.substr(0, eq)] = key.substr(eq + 1);
          continue;
        }
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          options_[key] = argv[++i];
        } else {
          options_[key] = "";  // boolean flag
        }
      } else {
        positional_.push_back(token);
      }
    }
  }

  [[nodiscard]] std::optional<std::string> Get(const std::string& key) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string GetOr(const std::string& key,
                                  const std::string& fallback) const {
    return Get(key).value_or(fallback);
  }

  [[nodiscard]] double GetDouble(const std::string& key, double fallback) const {
    const auto value = Get(key);
    if (!value) return fallback;
    const auto parsed = util::ParseDouble(*value);
    if (!parsed) {
      throw InvalidArgument("--" + key + " expects a number, got: " + *value);
    }
    return *parsed;
  }

  [[nodiscard]] std::size_t GetSize(const std::string& key,
                                    std::size_t fallback) const {
    const auto value = Get(key);
    if (!value) return fallback;
    const auto parsed = util::ParseInt(*value);
    if (!parsed || *parsed < 0) {
      throw InvalidArgument("--" + key + " expects a non-negative integer");
    }
    return static_cast<std::size_t>(*parsed);
  }

  [[nodiscard]] bool Has(const std::string& key) const {
    return options_.contains(key);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  Args() = default;

  static util::ParseResult<Args> Reject(util::ParseErrorKind kind,
                                        std::string message) {
    util::ingest::CountRejected("args", kind);
    return util::ParseResult<Args>::Failure(kind, std::move(message));
  }

  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace riskroute::cli
