// Minimal command-line option parsing for the riskroute CLI.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace riskroute::cli {

/// Parses "--key value" pairs plus positional arguments.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        const std::string key = token.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          options_[key] = argv[++i];
        } else {
          options_[key] = "";  // boolean flag
        }
      } else {
        positional_.push_back(token);
      }
    }
  }

  [[nodiscard]] std::optional<std::string> Get(const std::string& key) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string GetOr(const std::string& key,
                                  const std::string& fallback) const {
    return Get(key).value_or(fallback);
  }

  [[nodiscard]] double GetDouble(const std::string& key, double fallback) const {
    const auto value = Get(key);
    if (!value) return fallback;
    const auto parsed = util::ParseDouble(*value);
    if (!parsed) {
      throw InvalidArgument("--" + key + " expects a number, got: " + *value);
    }
    return *parsed;
  }

  [[nodiscard]] std::size_t GetSize(const std::string& key,
                                    std::size_t fallback) const {
    const auto value = Get(key);
    if (!value) return fallback;
    const auto parsed = util::ParseInt(*value);
    if (!parsed || *parsed < 0) {
      throw InvalidArgument("--" + key + " expects a non-negative integer");
    }
    return static_cast<std::size_t>(*parsed);
  }

  [[nodiscard]] bool Has(const std::string& key) const {
    return options_.contains(key);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace riskroute::cli
