// riskroute — command-line front end to the RiskRoute library.
//
//   riskroute route    --network Level3 --from "Houston, TX" --to "Boston, MA"
//   riskroute ratios   [--network NAME] [--lambda-h 1e5] [--lambda-f 1e3]
//   riskroute augment  --network Sprint [--links 5]
//   riskroute peering  --network Digex [--any-peer]
//   riskroute storm    --network Level3 --storm SANDY [--project 24]
//   riskroute stream   --network Level3 --storm IRENE [--step 1] [--top 3]
//   riskroute simulate --network Tinet [--trials 2000]
//   riskroute export   [--network NAME] [--format geojson|rrt]
//   riskroute ospf     --network Deutsche
//   riskroute freeze   --network Level3 --out level3.rre [--alt-landmarks K]
//   riskroute serve    --socket /tmp/rr.sock [--engine-snapshot level3.rre]
//   riskroute table3   [--scale X] [--seed S]
//
// Every subcommand runs against the deterministic reference study
// (override the corpus seed with --seed; grow the corpus with --scale).
// `freeze` serializes a prepared RouteEngine to a snapshot file, and
// route/ratios/ensemble/augment/serve accept --engine-snapshot FILE to
// boot from one without rebuilding the study. `serve` keeps the booted
// engine warm behind riskroute_serverd; query it with riskroute_client.
// Output goes to stdout; GeoJSON and .rrt exports print the document so
// it can be piped to a file.
//
// route/ratios/ensemble/augment are thin adapters over riskroute::api —
// a served response body is byte-identical to the subcommand's stdout.
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "bgp/path_vector.h"
#include "bgp/relationships.h"
#include "bgp/risk_selection.h"
#include "forecast/projection.h"
#include "hazard/synthesis.h"
#include "riskroute_api.h"
#include "server/server.h"
#include "topology/generator.h"
#include "topology/geojson.h"
#include "topology/serialize.h"
#include "tools/args.h"
#include "util/strings.h"
#include "util/table.h"

namespace riskroute::cli {
namespace {

int Usage() {
  std::puts(
      "usage: riskroute <command> [options]\n"
      "\n"
      "commands:\n"
      "  route     --network N --from \"City, ST\" --to \"City, ST\"\n"
      "            [--lambda-h X] [--lambda-f X] [--latency-budget MS]\n"
      "            [--geojson] [--engine-snapshot FILE]\n"
      "  ratios    [--network N] [--lambda-h X] [--lambda-f X]\n"
      "            [--engine-snapshot FILE]\n"
      "  augment   --network N [--links K]\n"
      "  peering   --network N [--any-peer]\n"
      "  storm     --network N --storm IRENE|KATRINA|SANDY [--project H]\n"
      "  stream    --network N --storm IRENE|KATRINA|SANDY [--step K]\n"
      "            [--top L] [--engine-snapshot FILE]   (rolling re-route)\n"
      "  simulate  --network N [--trials T] [--lambda-h X]\n"
      "  ensemble  --network N [--scenarios K] [--ensemble-seed S]\n"
      "            [--month 1-12] [--top L] [--json] [--engine-snapshot FILE]\n"
      "            [--triage [--pilot P] [--audit-stride A] [--base-rate R]]\n"
      "            (--triage: surrogate-triaged importance sampling)\n"
      "  export    [--network N] [--format geojson|rrt]\n"
      "  ospf      --network N [--lambda-h X]\n"
      "  bgp       --dest N [--risk-aware]\n"
      "  freeze    --network N --out FILE [--alt-landmarks K] [--scale X]\n"
      "  serve     --socket PATH and/or --port P [--workers W] [--queue Q]\n"
      "            [--engine-snapshot FILE]   (riskroute_serverd daemon)\n"
      "  table3    [--scale X] [--seed S]   (corpus summary, Table 3 style)\n"
      "\n"
      "common options: --seed S (corpus seed), --blocks B (census blocks),\n"
      "                --scale X (corpus scale, 1 = paper corpus),\n"
      "                --threads T (worker pool size, 0 = hardware),\n"
      "                --alt-landmarks K (prepare K ALT landmarks, 0 = off),\n"
      "                --metrics-out FILE (dump obs:: metrics JSON on exit)");
  return 2;
}

/// Worker count for subcommands that parallelize (0 = hardware concurrency).
std::size_t PoolThreads(const Args& args) {
  return args.GetSize("threads", 0);
}

core::Study BuildStudy(const Args& args) {
  core::StudyOptions options;
  options.corpus_seed = args.GetSize("seed", 123);
  options.corpus_scale = args.GetDouble("scale", 1.0);
  options.census.block_count = args.GetSize("blocks", 215932);
  std::fprintf(stderr, "building study (seed %zu, %zu census blocks)...\n",
               static_cast<std::size_t>(options.corpus_seed),
               options.census.block_count);
  return core::Study::Build(options);
}

core::RiskParams ParamsFrom(const Args& args) {
  return core::RiskParams{args.GetDouble("lambda-h", 1e5),
                          args.GetDouble("lambda-f", 1e3)};
}

/// --alt-landmarks K: prepares (or, with K=0, clears) the engine's ALT
/// landmark tables. Absent flag = leave whatever the engine already has
/// (snapshots carry their landmarks).
void ApplyAltLandmarks(const Args& args, core::RouteEngine& engine) {
  if (!args.Has("alt-landmarks")) return;
  const std::size_t count = args.GetSize("alt-landmarks", 0);
  if (count == 0) {
    engine.ClearLandmarks();
  } else {
    engine.PrepareLandmarks(count);
  }
}

/// Boots a RouteEngine either from --engine-snapshot FILE or from the
/// study + --network graph. In snapshot mode `study`/`graph` stay empty
/// (no corpus is built) and the risk params come from the snapshot, not
/// the --lambda-* flags.
core::RouteEngine BootEngine(const Args& args,
                             std::optional<core::Study>& study,
                             std::optional<core::RiskGraph>& graph,
                             const char* default_network) {
  if (const auto snapshot = args.Get("engine-snapshot")) {
    std::fprintf(stderr, "booting engine from snapshot %s...\n",
                 snapshot->c_str());
    auto loaded = core::RouteEngine::LoadSnapshotFile(*snapshot);
    core::RouteEngine engine = std::move(loaded).ValueOrThrow();
    ApplyAltLandmarks(args, engine);
    return engine;
  }
  study.emplace(BuildStudy(args));
  graph.emplace(study->BuildGraphFor(args.GetOr("network", default_network)));
  core::RouteEngine engine(*graph, ParamsFrom(args));
  ApplyAltLandmarks(args, engine);
  return engine;
}

int CmdRoute(const Args& args) {
  std::optional<core::Study> study;
  std::optional<core::RiskGraph> graph;
  const api::Service service(BootEngine(args, study, graph, "Level3"));
  const core::RouteEngine& engine = service.engine();

  api::RouteRequest request;
  request.from = args.GetOr("from", "Houston, TX");
  request.to = args.GetOr("to", "Boston, MA");
  const api::RouteResponse response = service.Route(request);
  if (!response.connected) {
    std::fprintf(stderr, "PoPs are not connected\n");
    return 1;
  }
  std::fputs(response.body.c_str(), stdout);

  if (args.Has("latency-budget")) {
    // CLI-only extra: the SLA picker needs the live graph, so it stays
    // outside the api::Service body (snapshot boots cannot serve it).
    if (!graph) {
      throw InvalidArgument(
          "--latency-budget needs the live graph; drop --engine-snapshot");
    }
    const auto require_pop = [&](const std::string& name) {
      for (std::size_t i = 0; i < engine.node_count(); ++i) {
        if (engine.node_name(i) == name) return i;
      }
      throw InvalidArgument("no PoP named '" + name + "' in this network");
    };
    const double budget = args.GetDouble("latency-budget", 1e9);
    const core::MultiObjectiveRouter multi(*graph, ParamsFrom(args));
    const auto pick = multi.MinRiskWithinLatency(
        require_pop(request.from), require_pop(request.to), budget);
    if (pick) {
      std::printf("%s: %.0f mi, %.0f bit-risk mi\n  ", "sla-pick ",
                  pick->miles, pick->bit_risk_miles);
      for (std::size_t i = 0; i < pick->path.size(); ++i) {
        std::printf("%s%s", engine.node_name(pick->path[i]).c_str(),
                    i + 1 == pick->path.size() ? "\n" : " -> ");
      }
      std::printf("  latency %.2f ms within budget %.2f ms\n",
                  pick->latency_ms, budget);
    } else {
      std::printf("no route fits the %.2f ms latency budget\n", budget);
    }
  }
  if (args.Has("geojson")) {
    if (!study) {
      throw InvalidArgument(
          "--geojson needs the study corpus; drop --engine-snapshot");
    }
    const auto& net = study->corpus().network(
        study->NetworkIndex(args.GetOr("network", "Level3")));
    std::puts(topology::PathToGeoJson(net, response.riskroute_path, "riskroute")
                  .c_str());
  }
  return 0;
}

int CmdRatios(const Args& args) {
  util::ThreadPool pool(PoolThreads(args));
  api::ServiceOptions service_options;
  service_options.pool = &pool;

  // Snapshot boot: the frozen engine is one network already; the Service
  // runs the Eq 5/6 sweep over every frozen node (bitwise what the study
  // path computes for that network, ALT landmarks and all) and its body
  // is the rendered single-row table.
  if (args.Has("engine-snapshot")) {
    std::optional<core::Study> study;
    std::optional<core::RiskGraph> graph;
    const api::Service service(BootEngine(args, study, graph, "Level3"),
                               service_options);
    api::RatiosRequest request;
    request.label = args.GetOr("network", "snapshot");
    std::fputs(service.Ratios(request).body.c_str(), stdout);
    return 0;
  }

  const core::Study study = BuildStudy(args);
  const core::RiskParams params = ParamsFrom(args);
  std::vector<std::string> names;
  if (const auto one = args.Get("network")) {
    names.push_back(*one);
  } else {
    for (const auto& net : study.corpus().networks()) {
      if (net.kind() == topology::NetworkKind::kTier1) {
        names.push_back(net.name());
      }
    }
  }
  // Multi-network mode: one Service per frozen network; the combined
  // table is CLI presentation (column widths span all rows, so the
  // per-network bodies cannot simply concatenate).
  util::Table table({"Network", "# PoPs", "Risk Reduction", "Distance Increase"});
  const std::size_t landmarks = args.GetSize("alt-landmarks", 0);
  for (const std::string& name : names) {
    const core::RiskGraph graph = study.BuildGraphFor(name);
    core::RouteEngine engine(graph, params);
    if (landmarks > 0) {
      // ALT path: same Eq 5/6 fold, per-pair goal-directed searches.
      engine.PrepareLandmarks(landmarks);
    }
    const api::Service service(std::move(engine), service_options);
    api::RatiosRequest request;
    request.label = name;
    const api::RatiosResponse response = service.Ratios(request);
    table.Add(name, response.pops, response.report.risk_reduction_ratio,
              response.report.distance_increase_ratio);
  }
  table.Render(std::cout);
  return 0;
}

int CmdAugment(const Args& args) {
  std::optional<core::Study> study;
  std::optional<core::RiskGraph> graph;
  util::ThreadPool pool(PoolThreads(args));
  api::ServiceOptions service_options;
  service_options.pool = &pool;
  const api::Service service(BootEngine(args, study, graph, "Sprint"),
                             service_options);
  api::ProvisionRequest request;
  request.links = args.GetSize("links", 5);
  std::fputs(service.Provision(request).body.c_str(), stdout);
  return 0;
}

int CmdPeering(const Args& args) {
  const core::Study study = BuildStudy(args);
  const std::string network = args.GetOr("network", "Digex");
  util::ThreadPool pool(PoolThreads(args));
  core::MergedGraph merged = study.BuildMerged();
  const auto scope = args.Has("any-peer") ? provision::PeerScope::kAnyNetwork
                                          : provision::PeerScope::kTier1Only;
  const auto rec = provision::RecommendPeering(
      merged, study.corpus(), study.NetworkIndex(network), ParamsFrom(args),
      25.0, &pool, scope);
  if (rec.evaluations.empty()) {
    std::puts("no candidate peers (co-located, not already peered)");
    return 0;
  }
  for (const auto& eval : rec.evaluations) {
    std::printf("%-14s %2zu co-located PoPs -> %.2f%% bit-risk reduction\n",
                study.corpus().network(eval.peer.network).name().c_str(),
                eval.peer.pairs.size(),
                100 * (1 - eval.objective / rec.baseline_objective));
  }
  return 0;
}

int CmdStorm(const Args& args) {
  const core::Study study = BuildStudy(args);
  const std::string network = args.GetOr("network", "Level3");
  const std::string storm = util::ToUpper(args.GetOr("storm", "SANDY"));
  const forecast::StormTrack* track = &forecast::SandyTrack();
  if (storm == "IRENE") track = &forecast::IreneTrack();
  if (storm == "KATRINA") track = &forecast::KatrinaTrack();

  core::RiskGraph graph = study.BuildGraphFor(network);
  util::ThreadPool pool(PoolThreads(args));
  const core::RiskParams params = ParamsFrom(args);
  const double project_hours = args.GetDouble("project", 0.0);

  std::printf("%-30s %8s %10s\n", "advisory", "in-scope", "risk-ratio");
  const auto advisories = forecast::GenerateAdvisories(*track);
  for (std::size_t a = 0; a < advisories.size(); a += 4) {
    std::vector<double> risks(graph.node_count());
    std::size_t in_scope = 0;
    if (project_hours > 0) {
      const forecast::ConeRiskField cone(advisories[a],
                                         {0.0, project_hours / 2, project_hours});
      for (std::size_t i = 0; i < graph.node_count(); ++i) {
        risks[i] = cone.RiskAt(graph.node(i).location);
        if (risks[i] > 0) ++in_scope;
      }
    } else {
      const forecast::ForecastRiskField field(advisories[a]);
      for (std::size_t i = 0; i < graph.node_count(); ++i) {
        risks[i] = field.RiskAt(graph.node(i).location);
        if (risks[i] > 0) ++in_scope;
      }
    }
    graph.SetForecastRisks(risks);
    const auto report = core::ComputeIntradomainRatios(graph, params, &pool);
    std::printf("%-30s %8zu %10.3f\n",
                advisories[a].time.ToString().c_str(), in_scope,
                report.risk_reduction_ratio);
  }
  return 0;
}

/// Replays a storm's advisory bulletins through api::Service as one
/// rolling StreamAdvisory session. stdout is exactly the concatenation
/// of the served response bodies — the golden harness byte-pins it, so
/// boot/progress chatter stays on stderr.
int CmdStream(const Args& args) {
  const std::string storm = util::ToUpper(args.GetOr("storm", "SANDY"));
  const forecast::StormTrack* track = &forecast::SandyTrack();
  if (storm == "IRENE") track = &forecast::IreneTrack();
  if (storm == "KATRINA") track = &forecast::KatrinaTrack();

  std::optional<core::Study> study;
  std::optional<core::RiskGraph> graph;
  util::ThreadPool pool(PoolThreads(args));
  api::ServiceOptions service_options;
  service_options.pool = &pool;
  const api::Service service(BootEngine(args, study, graph, "Level3"),
                             service_options);

  const std::size_t step = args.GetSize("step", 1);
  if (step == 0) throw InvalidArgument("--step must be at least 1");
  const std::vector<std::string> texts =
      forecast::GenerateAdvisoryTexts(*track);
  std::fprintf(stderr, "streaming %s: %zu advisories, step %zu\n",
               storm.c_str(), texts.size(), step);
  for (std::size_t i = 0; i < texts.size(); i += step) {
    api::StreamAdvisoryRequest request;
    request.bulletin = texts[i];
    request.top = args.GetSize("top", 3);
    std::fputs(service.StreamAdvisory(request).body.c_str(), stdout);
  }
  return 0;
}

int CmdSimulate(const Args& args) {
  const core::Study study = BuildStudy(args);
  const std::string network = args.GetOr("network", "Tinet");
  const core::RiskGraph graph = study.BuildGraphFor(network);
  const sim::TrafficMatrix traffic = sim::TrafficMatrix::Gravity(graph);
  util::ThreadPool pool(PoolThreads(args));
  sim::OutageSimOptions options;
  options.trials = args.GetSize("trials", 2000);
  options.params = core::RiskParams{args.GetDouble("lambda-h", 1e5), 0.0};
  const auto report = sim::RunOutageSimulation(
      graph, hazard::SynthesizeAllCatalogs(), traffic, options, &pool);
  std::printf(
      "trials %zu | transit hit: shortest %.3f%%, riskroute %.3f%% "
      "(ratio %.2f) | endpoint loss %.3f%%\n",
      report.trials, 100 * report.shortest_path_affected,
      100 * report.riskroute_affected, report.AffectedRatio(),
      100 * report.endpoint_loss);
  return 0;
}

int CmdEnsemble(const Args& args) {
  std::optional<core::Study> study;
  std::optional<core::RiskGraph> graph;
  util::ThreadPool pool(PoolThreads(args));
  api::ServiceOptions service_options;
  service_options.pool = &pool;
  const api::Service service(BootEngine(args, study, graph, "Tinet"),
                             service_options);

  api::EnsembleRequest request;
  request.scenarios = args.GetSize("scenarios", 256);
  // --ensemble-seed keys the Philox draws; --seed stays the corpus seed.
  request.seed = args.GetSize("ensemble-seed", 2026);
  request.month = static_cast<int>(args.GetSize("month", 0));
  request.top = args.GetSize("top", 10);
  request.json = args.Has("json");
  request.triage = args.Has("triage");
  request.pilot = args.GetSize("pilot", 96);
  request.audit_stride = args.GetSize("audit-stride", 64);
  // Quantized to ppm exactly as the wire codec carries it, so a served
  // triage body is byte-identical to this stdout.
  request.base_rate_ppm = static_cast<std::uint32_t>(
      std::llround(args.GetDouble("base-rate", 0.05) * 1e6));
  std::fputs(service.Ensemble(request).body.c_str(), stdout);
  return 0;
}

int CmdExport(const Args& args) {
  const core::Study study = BuildStudy(args);
  const std::string format = args.GetOr("format", "geojson");
  if (const auto name = args.Get("network")) {
    const auto& net = study.corpus().network(study.NetworkIndex(*name));
    if (format == "geojson") {
      const auto& field = study.hazard_field();
      std::puts(topology::NetworkToGeoJson(net, [&](std::size_t i) {
                  return field.RiskAt(net.pop(i).location);
                }).c_str());
    } else {
      topology::Corpus single;
      single.AddNetwork(net);
      std::puts(topology::CorpusToString(single).c_str());
    }
    return 0;
  }
  if (format == "geojson") {
    std::puts(topology::CorpusToGeoJson(study.corpus()).c_str());
  } else {
    std::puts(topology::CorpusToString(study.corpus()).c_str());
  }
  return 0;
}

int CmdBgp(const Args& args) {
  const core::Study study = BuildStudy(args);
  const std::string dest_name = args.GetOr("dest", "Level3");
  const std::size_t dest = study.NetworkIndex(dest_name);
  const auto graph = bgp::RelationshipGraph::FromCorpus(study.corpus());
  bgp::RoutingState state = bgp::RoutingState::Compute(graph, dest, 3);
  if (args.Has("risk-aware")) {
    const auto as_risk =
        bgp::AsRiskScores(study.corpus(), study.hazard_field());
    const std::size_t changed = bgp::ApplyRiskAwareSelection(state, as_risk);
    std::printf("risk-aware selection changed %zu primaries\n", changed);
  }
  std::printf("routes toward %s (policy: customer > peer > provider):\n",
              dest_name.c_str());
  for (std::size_t as = 0; as < graph.as_count(); ++as) {
    if (as == dest) continue;
    const bgp::RibEntry& rib = state.rib(as);
    std::printf("  %-14s ", study.corpus().network(as).name().c_str());
    if (!rib.best) {
      std::puts("(unreachable under policy)");
      continue;
    }
    for (std::size_t i = 0; i < rib.best->as_path.size(); ++i) {
      std::printf("%s%s",
                  study.corpus().network(rib.best->as_path[i]).name().c_str(),
                  i + 1 == rib.best->as_path.size() ? "" : " > ");
    }
    std::printf("   (+%zu alternates)\n", rib.alternates.size() - 1);
  }
  return 0;
}

int CmdFreeze(const Args& args) {
  const core::Study study = BuildStudy(args);
  const std::string network = args.GetOr("network", "Level3");
  const core::RiskGraph graph = study.BuildGraphFor(network);
  core::RouteEngine engine(graph, ParamsFrom(args));
  const std::size_t landmarks = args.GetSize("alt-landmarks", 8);
  if (landmarks > 0) engine.PrepareLandmarks(landmarks);

  const std::string out = args.GetOr("out", network + ".rre");
  const std::string bytes = engine.SnapshotBytes();
  engine.SaveSnapshotFile(out);
  const std::size_t edges =
      engine.node_count() == 0 ? 0 : engine.EdgeEnd(engine.node_count() - 1);
  std::printf("froze %s: %zu PoPs, %zu directed edges, %zu landmarks, "
              "%zu bytes -> %s\n",
              network.c_str(), engine.node_count(), edges,
              engine.landmark_count(), bytes.size(), out.c_str());
  return 0;
}

/// SIGINT/SIGTERM flag for `riskroute serve`.
volatile std::sig_atomic_t g_serve_stop = 0;

void HandleServeSignal(int) { g_serve_stop = 1; }

int CmdServe(const Args& args) {
  const std::string socket_path = args.GetOr("socket", "");
  const bool has_port = args.Has("port");
  if (socket_path.empty() && !has_port) {
    throw InvalidArgument("serve needs --socket PATH and/or --port P");
  }

  std::optional<core::Study> study;
  std::optional<core::RiskGraph> graph;
  util::ThreadPool pool(PoolThreads(args));
  api::ServiceOptions service_options;
  service_options.pool = &pool;
  const api::Service service(BootEngine(args, study, graph, "Level3"),
                             service_options);
  // The study corpus is only needed to freeze the engine; release it
  // before serving (snapshot boots never build one at all).
  graph.reset();
  study.reset();

  server::ServerOptions options;
  options.unix_path = socket_path;
  if (has_port) options.tcp_port = static_cast<int>(args.GetSize("port", 0));
  options.scheduler.workers = args.GetSize("workers", 1);
  options.scheduler.queue_capacity = args.GetSize("queue", 64);

  server::Server daemon(service, options);
  daemon.Start();
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  std::fprintf(stderr, "serving %zu PoPs", service.engine().node_count());
  if (!socket_path.empty()) {
    std::fprintf(stderr, " | unix %s", socket_path.c_str());
  }
  if (has_port) std::fprintf(stderr, " | tcp 127.0.0.1:%d", daemon.tcp_port());
  std::fprintf(stderr, " | %zu workers, queue %zu\n",
               args.GetSize("workers", 1), args.GetSize("queue", 64));

  while (g_serve_stop == 0 &&
         !daemon.WaitFor(std::chrono::milliseconds(100))) {
  }
  daemon.Stop();
  std::fprintf(stderr, "served %zu requests\n", daemon.requests_served());
  return 0;
}

int CmdTable3(const Args& args) {
  const double scale = args.GetDouble("scale", 1.0);
  const std::uint64_t seed = args.GetSize("seed", 123);
  const topology::Corpus corpus =
      scale > 1.0 ? topology::GenerateScaledCorpus(scale, seed)
                  : topology::GeneratePaperCorpus(seed);
  util::Table table(
      {"Network", "Kind", "PoPs", "Links", "Avg Degree", "Footprint mi"});
  std::size_t pops = 0;
  std::size_t links = 0;
  for (const topology::Network& net : corpus.networks()) {
    pops += net.pop_count();
    links += net.link_count();
    table.Add(net.name(),
              net.kind() == topology::NetworkKind::kTier1 ? "tier1"
                                                          : "regional",
              net.pop_count(), net.link_count(), net.AverageDegree(),
              net.FootprintMiles());
  }
  table.Render(std::cout);
  std::printf("\n%zu networks | %zu PoPs | %zu links (scale %g, seed %zu)\n",
              corpus.network_count(), pops, links, scale,
              static_cast<std::size_t>(seed));
  return 0;
}

int CmdOspf(const Args& args) {
  const core::Study study = BuildStudy(args);
  const std::string network = args.GetOr("network", "Deutsche");
  const core::RiskGraph graph = study.BuildGraphFor(network);
  core::OspfExportOptions options;
  options.params = ParamsFrom(args);
  const auto costs = core::ComputeOspfCosts(graph, options);
  std::fputs(core::RenderOspfConfig(graph, costs).c_str(), stdout);
  return 0;
}

int Dispatch(const std::string& command, const Args& args) {
  if (command == "route") return CmdRoute(args);
  if (command == "ratios") return CmdRatios(args);
  if (command == "augment") return CmdAugment(args);
  if (command == "peering") return CmdPeering(args);
  if (command == "storm") return CmdStorm(args);
  if (command == "stream") return CmdStream(args);
  if (command == "simulate") return CmdSimulate(args);
  if (command == "ensemble") return CmdEnsemble(args);
  if (command == "export") return CmdExport(args);
  if (command == "ospf") return CmdOspf(args);
  if (command == "bgp") return CmdBgp(args);
  if (command == "freeze") return CmdFreeze(args);
  if (command == "serve") return CmdServe(args);
  if (command == "table3") return CmdTable3(args);
  if (command == "help" || command == "--help") return Usage();
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage();
}

/// Every flag any subcommand reads, declared as value-taking or boolean.
/// Args::Parse rejects typos ("--scenaros") and value flags with a
/// missing value ("--metrics-out --json") instead of guessing.
FlagRegistry CliFlags() {
  FlagRegistry flags;
  for (const char* value :
       {"network", "from", "to", "lambda-h", "lambda-f", "latency-budget",
        "links", "storm", "project", "trials", "scenarios", "ensemble-seed",
        "month", "top", "dest", "format", "seed", "blocks", "threads",
        "metrics-out", "scale", "alt-landmarks", "engine-snapshot", "out",
        "socket", "port", "workers", "queue", "step", "pilot", "audit-stride",
        "base-rate"}) {
    flags.Value(value);
  }
  for (const char* boolean :
       {"geojson", "any-peer", "risk-aware", "json", "triage"}) {
    flags.Bool(boolean);
  }
  return flags;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto parsed = Args::Parse(argc, argv, 2, CliFlags());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().Render().c_str());
    return Usage();
  }
  const Args args = std::move(parsed).ValueOrThrow();
  const int rc = Dispatch(command, args);
  // Dump after the command so the export covers its whole run. The stable
  // section is bitwise independent of --threads; see tools/metrics_schema.json.
  if (const auto path = args.Get("metrics-out")) {
    if (!obs::MetricsRegistry::Global().WriteJsonFile(*path)) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   path->c_str());
      return rc == 0 ? 1 : rc;
    }
    std::fprintf(stderr, "metrics written to %s\n", path->c_str());
  }
  return rc;
}

}  // namespace
}  // namespace riskroute::cli

int main(int argc, char** argv) {
  try {
    return riskroute::cli::Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
