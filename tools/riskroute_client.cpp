// riskroute_client — wire-protocol client for riskroute_serverd.
//
//   riskroute_client route     --socket /tmp/rr.sock --from "Houston, TX"
//                              --to "Boston, MA"
//   riskroute_client ratios    --socket /tmp/rr.sock [--network LABEL]
//   riskroute_client ensemble  --port 4913 [--scenarios K] [--json]
//   riskroute_client augment   --socket /tmp/rr.sock [--links K]
//   riskroute_client ping      --socket /tmp/rr.sock [--delay-ms D]
//   riskroute_client shutdown  --socket /tmp/rr.sock
//
// Connects over --socket PATH (unix) or --host/--port (TCP loopback),
// sends one typed request, and prints the response body to stdout — for
// kOk replies those bytes are identical to the equivalent `riskroute`
// subcommand's stdout against the same snapshot. Non-ok replies print
// the status to stderr and exit with the wire status code.
#include <cmath>
#include <cstdio>
#include <string>

#include "server/client.h"
#include "server/wire.h"
#include "tools/args.h"
#include "util/error.h"

namespace riskroute::cli {
namespace {

namespace wire = server::wire;

int Usage() {
  std::puts(
      "usage: riskroute_client <command> [options]\n"
      "\n"
      "commands: route | ratios | ensemble | augment | ping | shutdown\n"
      "\n"
      "transport: --socket PATH (unix) or --host H --port P (tcp; host\n"
      "           defaults to 127.0.0.1)\n"
      "request:   --deadline-ms D (0 = none; expired requests answer\n"
      "           deadline_exceeded without running)\n"
      "route:     --from \"City, ST\" --to \"City, ST\"\n"
      "ratios:    --network LABEL (the table's network column)\n"
      "ensemble:  --scenarios K --ensemble-seed S --month 1-12 --top L\n"
      "           [--json] [--triage [--pilot P] [--audit-stride A]\n"
      "           [--base-rate R]]  (kind 8: surrogate-triaged run)\n"
      "augment:   --links K\n"
      "ping:      --delay-ms D (worker sleeps D ms before answering)");
  return 2;
}

wire::Request BuildRequest(const std::string& command, const Args& args) {
  wire::Request request;
  request.deadline_ms =
      static_cast<std::uint32_t>(args.GetSize("deadline-ms", 0));
  if (command == "route") {
    request.kind = wire::FrameKind::kRouteRequest;
    request.route.from = args.GetOr("from", "Houston, TX");
    request.route.to = args.GetOr("to", "Boston, MA");
  } else if (command == "ratios") {
    request.kind = wire::FrameKind::kRatiosRequest;
    request.ratios.label = args.GetOr("network", "snapshot");
  } else if (command == "ensemble") {
    request.kind = args.Has("triage") ? wire::FrameKind::kEnsembleTriageRequest
                                      : wire::FrameKind::kEnsembleRequest;
    request.ensemble.scenarios = args.GetSize("scenarios", 256);
    request.ensemble.seed = args.GetSize("ensemble-seed", 2026);
    request.ensemble.month = static_cast<int>(args.GetSize("month", 0));
    request.ensemble.top = args.GetSize("top", 10);
    request.ensemble.json = args.Has("json");
    request.ensemble.triage = args.Has("triage");
    request.ensemble.pilot = args.GetSize("pilot", 96);
    request.ensemble.audit_stride = args.GetSize("audit-stride", 64);
    // Same ppm quantization as the riskroute CLI, so both ends of the
    // wire agree on the rate byte-for-byte.
    request.ensemble.base_rate_ppm = static_cast<std::uint32_t>(
        std::llround(args.GetDouble("base-rate", 0.05) * 1e6));
  } else if (command == "augment") {
    request.kind = wire::FrameKind::kProvisionRequest;
    request.provision.links = args.GetSize("links", 5);
  } else if (command == "ping") {
    request.kind = wire::FrameKind::kPingRequest;
    request.ping_delay_ms =
        static_cast<std::uint32_t>(args.GetSize("delay-ms", 0));
  } else if (command == "shutdown") {
    request.kind = wire::FrameKind::kShutdownRequest;
  } else {
    throw InvalidArgument("unknown command: " + command);
  }
  return request;
}

server::Client Connect(const Args& args) {
  if (const auto socket_path = args.Get("socket")) {
    return server::Client::ConnectUnix(*socket_path);
  }
  if (args.Has("port")) {
    return server::Client::ConnectTcp(
        args.GetOr("host", "127.0.0.1"),
        static_cast<int>(args.GetSize("port", 0)));
  }
  throw InvalidArgument("need --socket PATH or --port P");
}

FlagRegistry ClientFlags() {
  FlagRegistry flags;
  for (const char* value :
       {"socket", "host", "port", "deadline-ms", "from", "to", "network",
        "scenarios", "ensemble-seed", "month", "top", "links", "delay-ms",
        "pilot", "audit-stride", "base-rate"}) {
    flags.Value(value);
  }
  flags.Bool("json");
  flags.Bool("triage");
  return flags;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help") return Usage();
  auto parsed = Args::Parse(argc, argv, 2, ClientFlags());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error().Render().c_str());
    return Usage();
  }
  const Args args = std::move(parsed).ValueOrThrow();

  wire::Request request = BuildRequest(command, args);
  server::Client client = Connect(args);
  const server::Client::Result result = client.Call(request);
  if (result.status != wire::Status::kOk) {
    std::fprintf(stderr, "%s: %s", wire::ToString(result.status),
                 result.body.c_str());
    return static_cast<int>(result.status);
  }
  std::fputs(result.body.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace riskroute::cli

int main(int argc, char** argv) {
  try {
    return riskroute::cli::Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
