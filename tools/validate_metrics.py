#!/usr/bin/env python3
"""Validate an obs:: metrics JSON export against tools/metrics_schema.json.

The container ships no third-party jsonschema package, so this implements
the small JSON-Schema subset the schema actually uses: ``type`` (single name
or list), ``enum``, ``minimum``, ``required``, ``properties``,
``additionalProperties`` (boolean or schema), ``items``, ``namePrefixes``
(custom: every property key of an object must start with one of the listed
prefixes — the metric-namespace gate), and ``$ref`` into ``#/definitions``.
Unknown keywords are an error — the schema must stay inside the subset this
validator understands.

Usage:

    python3 tools/validate_metrics.py metrics.json [schema.json]

Exit status 0 if the document validates; 1 with one line per error
otherwise. Importable: ``validate(doc, schema) -> list[str]``.
"""

from __future__ import annotations

import json
import pathlib
import sys

_KNOWN_KEYWORDS = {
    "$ref", "type", "enum", "minimum", "required", "properties",
    "additionalProperties", "items", "namePrefixes",
    # Annotations carried for humans, ignored by validation.
    "description", "definitions",
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is a subclass of int in Python; JSON booleans are not integers.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref (only '#/...' pointers): {ref}")
    node = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise ValueError(f"dangling $ref: {ref}")
        node = node[part]
    return node


def _validate(value, schema: dict, root: dict, path: str,
              errors: list[str]) -> None:
    unknown = set(schema) - _KNOWN_KEYWORDS
    if unknown:
        raise ValueError(
            f"schema at {path or '$'} uses unsupported keywords: "
            f"{sorted(unknown)}")

    if "$ref" in schema:
        _validate(value, _resolve_ref(schema["$ref"], root), root, path,
                  errors)
        return

    where = path or "$"
    if "type" in schema:
        names = schema["type"]
        names = [names] if isinstance(names, str) else names
        if not any(_TYPE_CHECKS[n](value) for n in names):
            errors.append(f"{where}: expected {' or '.join(names)}, "
                          f"got {type(value).__name__}")
            return  # structural keywords below assume the type matched

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{where}: {value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{where}: {value} below minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{where}: missing required property '{key}'")
        prefixes = schema.get("namePrefixes")
        if prefixes is not None:
            for key in value:
                if not any(key.startswith(p) for p in prefixes):
                    errors.append(
                        f"{where}: metric name '{key}' is outside the "
                        f"registered namespaces {prefixes}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            child = f"{path}.{key}" if path else key
            if key in properties:
                _validate(item, properties[key], root, child, errors)
            elif additional is False:
                errors.append(f"{where}: unexpected property '{key}'")
            elif isinstance(additional, dict):
                _validate(item, additional, root, child, errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], root, f"{where}[{i}]", errors)


def validate(doc, schema: dict) -> list[str]:
    """Returns a list of human-readable validation errors (empty = valid)."""
    errors: list[str] = []
    _validate(doc, schema, schema, "", errors)
    return errors


def default_schema_path() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent / "metrics_schema.json"


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    doc = json.loads(pathlib.Path(argv[1]).read_text())
    schema_path = pathlib.Path(argv[2]) if len(argv) == 3 \
        else default_schema_path()
    schema = json.loads(schema_path.read_text())
    errors = validate(doc, schema)
    for error in errors:
        print(f"INVALID {error}", file=sys.stderr)
    if not errors:
        print(f"{argv[1]}: valid (schema_version "
              f"{doc.get('schema_version')})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
