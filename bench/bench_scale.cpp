// Continental-scale routing benchmarks: the ALT (A*, landmarks, triangle
// inequality) goal-directed path against the legacy full-Dijkstra sweeps,
// on a corpus an order of magnitude past the paper's 23 networks
// (topology::GenerateScaledCorpus). tools/bench_compare.py runs the
// BM_ScaleManyToMany* pair and gates the speedup (floor 3x) in
// BENCH_perf.json; the snapshot benches track the freeze/boot cost of
// RouteEngine::SaveSnapshot / LoadSnapshot at the same scale.
//
// The graph here is topology-only: every PoP of the scaled corpus in one
// flat RiskGraph (intra-network links at line-of-sight mileage, one
// gateway link per corpus peering), with Philox-keyed synthetic risks.
// The hazard/census stack is deliberately not built — these benches
// measure routing, not KDE evaluation.
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/risk_graph.h"
#include "core/route_engine.h"
#include "geo/distance.h"
#include "topology/generator.h"
#include "util/philox.h"

namespace {

using namespace riskroute;

constexpr double kScale = 7.0;
constexpr std::uint64_t kSeed = 123;
constexpr std::size_t kLandmarks = 16;
constexpr core::RiskParams kParams{1e5, 1e3};

core::RiskGraph BuildScaledGraph(const topology::Corpus& corpus) {
  core::RiskGraph graph;
  std::vector<std::size_t> base(corpus.network_count());
  util::PhiloxRng rng(kSeed, 0xA17);
  for (std::size_t n = 0; n < corpus.network_count(); ++n) {
    const topology::Network& net = corpus.network(n);
    base[n] = graph.node_count();
    for (const topology::Pop& pop : net.pops()) {
      core::RiskNode node;
      node.name = pop.name;
      node.location = pop.location;
      node.impact_fraction = 0.5 + 0.5 * rng.NextUniform();
      node.historical_risk = rng.NextUniform();
      graph.AddNode(std::move(node));
    }
  }
  std::vector<core::WeightedLink> links;
  for (std::size_t n = 0; n < corpus.network_count(); ++n) {
    const topology::Network& net = corpus.network(n);
    for (const topology::Link& link : net.links()) {
      links.push_back({base[n] + link.a, base[n] + link.b,
                       geo::GreatCircleMiles(net.pop(link.a).location,
                                             net.pop(link.b).location)});
    }
  }
  // One gateway link per AS peering so the merged graph is connected:
  // nearest PoP pair found with two linear scans.
  for (const topology::Peering& peering : corpus.peerings()) {
    const topology::Network& na = corpus.network(peering.a);
    const topology::Network& nb = corpus.network(peering.b);
    const std::size_t ib = nb.NearestPop(na.pop(0).location);
    const std::size_t ia = na.NearestPop(nb.pop(ib).location);
    links.push_back({base[peering.a] + ia, base[peering.b] + ib,
                     geo::GreatCircleMiles(na.pop(ia).location,
                                           nb.pop(ib).location)});
  }
  graph.AddEdgesUnchecked(links);
  return graph;
}

/// Built once per process: the scaled corpus, its flat graph, and two
/// frozen engines over it — one bare (full-Dijkstra sweeps), one with the
/// ALT landmark tables prepared.
struct ScaleFixture {
  topology::Corpus corpus;
  core::RiskGraph graph;
  core::RouteEngine dijkstra_engine;
  core::RouteEngine alt_engine;
  std::vector<std::size_t> sources;
  std::vector<std::size_t> targets;

  ScaleFixture()
      : corpus(topology::GenerateScaledCorpus(kScale, kSeed)),
        graph(BuildScaledGraph(corpus)),
        dijkstra_engine(graph, kParams),
        alt_engine(graph, kParams) {
    alt_engine.PrepareLandmarks(kLandmarks);
    const std::size_t n = graph.node_count();
    for (std::size_t i = 0; i < 16; ++i) sources.push_back(i * n / 16);
    for (std::size_t i = 0; i < 2; ++i) targets.push_back((8 * i + 5) * n / 16);
  }
};

const ScaleFixture& Fixture() {
  static const ScaleFixture fixture;
  return fixture;
}

// ---------------------------------------------------------------------------
// Targeted many-to-many distances: 16 sources x 2 targets — the sparse
// target sets ALT exists for. The legacy side runs one full Dijkstra per
// source; the ALT side runs one goal-directed search per pair. Identical
// PairMatrix bitwise (asserted in tests/scale_test.cpp); only the wall
// clock differs.

void BM_ScaleManyToManyDijkstra(benchmark::State& state) {
  const ScaleFixture& f = Fixture();
  util::ThreadPool* pool =
      bench::SharedPool().thread_count() > 1 ? &bench::SharedPool() : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.dijkstra_engine.ManyToMany(
        f.sources, f.targets, core::RouteMetric::kDistance, pool));
  }
}
BENCHMARK(BM_ScaleManyToManyDijkstra)->Unit(benchmark::kMillisecond);

void BM_ScaleManyToManyAlt(benchmark::State& state) {
  const ScaleFixture& f = Fixture();
  util::ThreadPool* pool =
      bench::SharedPool().thread_count() > 1 ? &bench::SharedPool() : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.alt_engine.ManyToMany(
        f.sources, f.targets, core::RouteMetric::kDistance, pool));
  }
}
BENCHMARK(BM_ScaleManyToManyAlt)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Snapshot freeze/boot cost at scale (not a gated pair; tracked for the
// EXPERIMENTS.md freeze -> boot recipe).

void BM_ScaleSnapshotSave(benchmark::State& state) {
  const ScaleFixture& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.alt_engine.SnapshotBytes());
  }
}
BENCHMARK(BM_ScaleSnapshotSave)->Unit(benchmark::kMillisecond);

void BM_ScaleSnapshotLoad(benchmark::State& state) {
  const ScaleFixture& f = Fixture();
  const std::string bytes = f.alt_engine.SnapshotBytes();
  const std::span<const std::uint8_t> span(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  for (auto _ : state) {
    auto engine = core::RouteEngine::LoadSnapshot(span);
    benchmark::DoNotOptimize(engine);
  }
}
BENCHMARK(BM_ScaleSnapshotLoad)->Unit(benchmark::kMillisecond);

void Reproduce() {
  const ScaleFixture& f = Fixture();
  std::size_t pops = 0;
  std::size_t links = 0;
  for (const topology::Network& net : f.corpus.networks()) {
    pops += net.pop_count();
    links += net.link_count();
  }
  std::printf("scaled corpus (scale %g, seed %zu): %zu networks, %zu PoPs, "
              "%zu links\n",
              kScale, static_cast<std::size_t>(kSeed),
              f.corpus.network_count(), pops, links);
  std::printf("flat graph: %zu nodes | engine landmarks: %zu | snapshot: "
              "%zu bytes\n",
              f.graph.node_count(), f.alt_engine.landmark_count(),
              f.alt_engine.SnapshotBytes().size());
  std::printf("many-to-many sweep: %zu sources x %zu targets\n",
              f.sources.size(), f.targets.size());
}

}  // namespace

RISKROUTE_BENCH_MAIN("Continental-scale ALT routing + snapshots", Reproduce)
