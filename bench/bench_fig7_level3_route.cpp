// Figure 7 — "RiskRoute applied to the Level3 Network topology between
// Houston, TX and Boston, MA PoPs".
//
// Prints the geographic shortest path and the RiskRoute path at
// lambda_h = 1e4 and 1e5. Reproduced shape: as lambda_h grows the route
// becomes more risk-averse and deviates further from the shortest path
// (longer bit-miles, lower bit-risk).
#include <iostream>

#include "bench/common.h"
#include "util/strings.h"
#include "core/riskroute.h"

namespace {

using namespace riskroute;

void PrintRoute(const core::RiskGraph& graph, const char* label,
                const core::RouteResult& route) {
  std::cout << label << util::Format(" (%zu hops, %.0f mi, %.0f bit-risk mi):\n",
                                     route.path.size() - 1, route.miles,
                                     route.bit_risk_miles);
  for (std::size_t i = 0; i < route.path.size(); ++i) {
    std::cout << "    " << graph.node(route.path[i]).name
              << util::Format("  [o_h=%.4f]\n",
                              graph.node(route.path[i]).historical_risk);
  }
}

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  const core::RiskGraph graph = study.BuildGraphFor("Level3");

  std::size_t houston = 0, boston = 0;
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    if (graph.node(i).name == "Houston, TX") houston = i;
    if (graph.node(i).name == "Boston, MA") boston = i;
  }

  const core::RiskRouter base(graph, core::RiskParams{0, 0});
  const auto shortest = base.ShortestRoute(houston, boston);
  PrintRoute(graph, "\nShortest path", *shortest);

  for (const double lambda : {1e4, 1e5}) {
    const core::RiskRouter router(graph, core::RiskParams{lambda, 1e3});
    const auto route = router.MinRiskRoute(houston, boston);
    PrintRoute(graph,
               util::Format("\nRiskRoute (lambda_h = %.0e)", lambda).c_str(),
               *route);
  }
  std::cout << "(paper Fig 7: the dotted RiskRoute path deviates from the "
               "shortest path, more strongly at lambda_h = 1e5 than 1e4)\n";
}

void BM_HoustonBostonRiskRoute(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  std::size_t houston = 0, boston = 0;
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    if (graph.node(i).name == "Houston, TX") houston = i;
    if (graph.node(i).name == "Boston, MA") boston = i;
  }
  const core::RiskRouter router(graph, core::RiskParams{1e5, 1e3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.MinRiskRoute(houston, boston));
  }
}
BENCHMARK(BM_HoustonBostonRiskRoute)->Unit(benchmark::kMicrosecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Figure 7: Level3 Houston->Boston routes vs lambda_h",
    Reproduce)
