// Figure 12 — "Tier-1 network case study" for Hurricanes Irene, Katrina
// and Sandy: the intradomain risk-reduction ratio of every Tier-1 network
// at each advisory tick (lambda_h = 1e5, lambda_f = 1e3).
//
// Per advisory, the forecast risk field (rho_t = 50 inside
// tropical-storm-force winds, rho_h = 100 inside hurricane-force winds) is
// applied to each network's PoPs and the Eq 5 ratio recomputed. Reproduced
// shape: Katrina's ratios stay small (little tier-1 infrastructure in its
// scope); Irene and especially Sandy lift every network's ratio, and the
// network with the largest share of PoPs in the storm improves most.
#include <iostream>

#include "bench/common.h"
#include "util/strings.h"
#include "core/riskroute.h"
#include "forecast/forecast_risk.h"
#include "forecast/tracks.h"

namespace {

using namespace riskroute;

const char* kTier1Names[] = {"Level3", "ATT",   "Deutsche",   "NTT",
                             "Sprint", "Tinet", "Teliasonera"};
// Every 5th advisory keeps the series readable (the paper's x-axis also
// labels a subset of ticks).
constexpr std::size_t kAdvisoryStride = 5;

void RunStorm(const forecast::StormTrack& track) {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  const core::RiskParams params{1e5, 1e3};
  const auto advisories = forecast::GenerateAdvisories(track);

  std::cout << "\n--- " << track.name << " (" << advisories.size()
            << " advisories) ---\n";
  std::vector<std::string> headers = {"Advisory Time"};
  for (const char* name : kTier1Names) headers.emplace_back(name);
  util::Table table(headers);

  // Build the graphs once; set forecast risk per tick.
  std::vector<core::RiskGraph> graphs;
  for (const char* name : kTier1Names) {
    graphs.push_back(study.BuildGraphFor(name));
  }

  for (std::size_t a = 0; a < advisories.size(); a += kAdvisoryStride) {
    const forecast::ForecastRiskField field(advisories[a]);
    std::vector<std::string> row = {advisories[a].time.ToString()};
    for (core::RiskGraph& graph : graphs) {
      std::vector<double> risks(graph.node_count());
      for (std::size_t i = 0; i < graph.node_count(); ++i) {
        risks[i] = field.RiskAt(graph.node(i).location);
      }
      graph.SetForecastRisks(risks);
      const core::RatioReport report =
          core::ComputeIntradomainRatios(graph, params, &pool);
      row.push_back(util::Format("%.3f", report.risk_reduction_ratio));
    }
    table.AddRow(std::move(row));
  }
  table.Render(std::cout);
}

void Reproduce() {
  RunStorm(forecast::IreneTrack());
  RunStorm(forecast::KatrinaTrack());
  RunStorm(forecast::SandyTrack());
  std::cout << "\n(paper Fig 12: risk ratios rise as each storm approaches; "
               "Katrina's stay low, Sandy lifts every tier-1, and the "
               "network with the largest PoP share in scope gains most)\n";
}

void BM_AdvisoryTickRatio(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static core::RiskGraph graph = study.BuildGraphFor("Deutsche");
  const auto advisories = forecast::GenerateAdvisories(forecast::SandyTrack());
  const forecast::ForecastRiskField field(advisories[advisories.size() / 2]);
  std::vector<double> risks(graph.node_count());
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    risks[i] = field.RiskAt(graph.node(i).location);
  }
  graph.SetForecastRisks(risks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeIntradomainRatios(
        graph, core::RiskParams{1e5, 1e3}, nullptr));
  }
}
BENCHMARK(BM_AdvisoryTickRatio)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Figure 12: Tier-1 risk-ratio time series during Irene/Katrina/Sandy",
    Reproduce)
