// Figure 10 — "Estimated risk reduction with added links": fraction of
// the original aggregate bit-risk miles as 1..8 greedy links are added,
// for all seven Tier-1 networks.
//
// Reproduced shape: densely connected Level3 improves least per added
// link; sparser networks (Sprint, Teliasonera in the paper) improve
// markedly within a few links.
#include <iostream>

#include "bench/common.h"
#include "util/strings.h"
#include "provision/augmentation.h"

namespace {

using namespace riskroute;

const char* kTier1Names[] = {"Level3", "ATT",   "Deutsche",   "NTT",
                             "Sprint", "Tinet", "Teliasonera"};

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  const core::RiskParams params{1e5, 1e3};
  constexpr std::size_t kLinks = 8;

  std::vector<std::string> headers = {"Links Added"};
  for (const char* name : kTier1Names) headers.emplace_back(name);
  util::Table table(headers);

  std::vector<std::vector<double>> fractions(kTier1Names[0] != nullptr ? 7 : 7);
  for (std::size_t n = 0; n < 7; ++n) {
    const core::RiskGraph graph = study.BuildGraphFor(kTier1Names[n]);
    provision::AugmentationOptions options;
    options.links_to_add = kLinks;
    options.candidates.max_candidates = graph.node_count() > 100 ? 50 : 250;
    const provision::AugmentationResult result =
        provision::GreedyAugment(graph, params, options, &pool);
    fractions[n].assign(kLinks, 1.0);
    for (std::size_t s = 0; s < result.steps.size() && s < kLinks; ++s) {
      fractions[n][s] = result.steps[s].fraction_of_original;
    }
    // If greedy stopped early, carry the last fraction forward.
    for (std::size_t s = 1; s < kLinks; ++s) {
      fractions[n][s] = std::min(fractions[n][s], fractions[n][s - 1]);
    }
  }
  for (std::size_t s = 0; s < kLinks; ++s) {
    std::vector<std::string> row = {std::to_string(s + 1)};
    for (std::size_t n = 0; n < 7; ++n) {
      row.push_back(util::Format("%.4f", fractions[n][s]));
    }
    table.AddRow(std::move(row));
  }
  table.Render(std::cout);
  std::cout << "(paper Fig 10: Level3, with its high existing connectivity, "
               "improves least; sparser tier-1s drop markedly within a few "
               "added links)\n";
}

void BM_GreedySingleStepNTT(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("NTT");
  provision::AugmentationOptions options;
  options.links_to_add = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        provision::GreedyAugment(graph, core::RiskParams{1e5, 1e3}, options));
  }
}
BENCHMARK(BM_GreedySingleStepNTT)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Figure 10: aggregate bit-risk decay vs number of added links",
    Reproduce)
