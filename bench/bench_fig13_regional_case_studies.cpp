// Figure 13 — "Regional network case study" for Hurricanes Irene, Katrina
// and Sandy: the interdomain risk-reduction ratio per advisory tick for
// every regional network with more than 20% of its PoPs inside the storm's
// scope (the paper's inclusion rule).
//
// Reproduced shape: gulf-coast regionals (Costreet, Iris, Telepak,
// USANetwork) appear under Katrina; east-coast regionals (ANS, Bandcon,
// Digex, Globalcenter, Gridnet, Hibernia, Goodnet) under Irene/Sandy, and
// networks with most of their infrastructure *outside* the storm improve
// most (the paper contrasts Digex, 22% in scope, with Globalcenter, 87%).
#include <iostream>

#include "bench/common.h"
#include "util/strings.h"
#include "core/interdomain.h"
#include "core/riskroute.h"
#include "forecast/forecast_risk.h"
#include "forecast/tracks.h"

namespace {

using namespace riskroute;

constexpr std::size_t kAdvisoryStride = 6;
constexpr double kScopeThreshold = 0.20;  // paper: >20% of PoPs in scope

void RunStorm(const forecast::StormTrack& track) {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  const core::RiskParams params{1e5, 1e3};
  const auto advisories = forecast::GenerateAdvisories(track);
  const forecast::StormScope scope(advisories);

  // Paper inclusion rule: regionals with >20% of PoPs in the storm scope
  // (we use the tropical-storm-force scope).
  std::vector<std::size_t> included;
  for (const std::size_t n :
       study.corpus().NetworksOfKind(topology::NetworkKind::kRegional)) {
    const double fraction = scope.FractionPopsInZone(
        study.corpus().network(n), forecast::WindZone::kTropical);
    if (fraction > kScopeThreshold) included.push_back(n);
  }

  std::cout << "\n--- " << track.name << ": " << included.size()
            << " regional networks with >20% of PoPs in scope ---\n";
  if (included.empty()) return;

  std::vector<std::string> headers = {"Advisory Time"};
  for (const std::size_t n : included) {
    const auto& network = study.corpus().network(n);
    headers.push_back(util::Format(
        "%s (%.0f%%)", network.name().c_str(),
        100.0 * scope.FractionPopsInZone(network,
                                         forecast::WindZone::kTropical)));
  }
  util::Table table(headers);

  core::MergedGraph merged = study.BuildMerged();
  for (std::size_t a = 0; a < advisories.size(); a += kAdvisoryStride) {
    const forecast::ForecastRiskField field(advisories[a]);
    std::vector<double> risks(merged.graph.node_count());
    for (std::size_t i = 0; i < merged.graph.node_count(); ++i) {
      risks[i] = field.RiskAt(merged.graph.node(i).location);
    }
    merged.graph.SetForecastRisks(risks);
    std::vector<std::string> row = {advisories[a].time.ToString()};
    for (const std::size_t n : included) {
      const core::RatioReport report =
          core::InterdomainRatios(merged, study.corpus(), n, params, &pool);
      row.push_back(util::Format("%.3f", report.risk_reduction_ratio));
    }
    table.AddRow(std::move(row));
  }
  table.Render(std::cout);
}

void Reproduce() {
  RunStorm(forecast::IreneTrack());
  RunStorm(forecast::KatrinaTrack());
  RunStorm(forecast::SandyTrack());
  std::cout << "\n(paper Fig 13: Katrina shows gulf regionals, Irene/Sandy "
               "the east-coast set; improvements up to ~40% and largest for "
               "networks with most infrastructure outside the storm)\n";
}

void BM_MergedForecastUpdate(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static core::MergedGraph merged = study.BuildMerged();
  const auto advisories = forecast::GenerateAdvisories(forecast::IreneTrack());
  const forecast::ForecastRiskField field(advisories[advisories.size() / 2]);
  std::vector<double> risks(merged.graph.node_count());
  for (auto _ : state) {
    for (std::size_t i = 0; i < merged.graph.node_count(); ++i) {
      risks[i] = field.RiskAt(merged.graph.node(i).location);
    }
    merged.graph.SetForecastRisks(risks);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MergedForecastUpdate)->Unit(benchmark::kMicrosecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "Figure 13: regional-network interdomain risk ratios during the storms",
    Reproduce)
