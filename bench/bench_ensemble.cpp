// Monte Carlo ensemble evaluation: sim::EnsembleEngine's batched overlay
// sweeps vs the pre-engine outage-evaluation path, preserved in the style
// of bench_perf_core's legacy pairs: adjacency-list iteration, a freshly
// allocated std::priority_queue per pair, per-edge Eq 1 recomputation
// through graph.node() lookups, and hash-set failure checks inside the
// relaxation loop (what scoring a failure set meant before EdgeOverlay).
// Both sides score the identical pre-drawn scenario set against the same
// baseline, so the wall-clock ratio is the speedup bench_compare.py
// records for the "ensemble" pair (floor 3x).
#include <cstdio>
#include <limits>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "bench/common.h"
#include "hazard/synthesis.h"
#include "sim/ensemble.h"
#include "sim/triage.h"

namespace {

using namespace riskroute;

constexpr core::RiskParams kEnsembleBenchParams{1e5, 1e3};
constexpr std::size_t kBenchScenarios = 6;

sim::EnsembleOptions BenchEnsembleOptions() {
  sim::EnsembleOptions options;
  options.seed = 2026;
  // Widen the footprints so the sampled events actually intersect the
  // bench topology: every kept scenario must do real overlay work.
  options.damage_radius_scale = 3.0;
  return options;
}

/// Shared fixture: the Digex graph, its frozen engine, the ensemble
/// engine (baseline triangle precomputed at construction, untimed), and
/// the first kBenchScenarios draws with a non-empty failure set.
struct EnsembleBenchFixture {
  core::RiskGraph graph;
  core::RouteEngine engine;
  std::vector<hazard::Catalog> catalogs;
  sim::EnsembleEngine ensemble;
  std::vector<sim::Scenario> scenarios;
  std::vector<double> baseline;  // flat upper triangle, +inf unreachable

  EnsembleBenchFixture()
      : graph(bench::SharedStudy().BuildGraphFor("Digex")),
        engine(graph, kEnsembleBenchParams),
        catalogs(hazard::SynthesizeAllCatalogs()),
        ensemble(engine, catalogs, BenchEnsembleOptions()) {
    for (std::uint64_t k = 0; scenarios.size() < kBenchScenarios; ++k) {
      sim::Scenario scenario = ensemble.Draw(k);
      if (scenario.failed_nodes.empty() && scenario.severed_edges.empty()) {
        continue;
      }
      scenarios.push_back(std::move(scenario));
    }
    const std::size_t n = graph.node_count();
    baseline.assign(n * (n - 1) / 2, std::numeric_limits<double>::infinity());
    core::DijkstraWorkspace ws;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        engine.Run(ws, i, engine.Alpha(i, j), j);
        if (ws.Reached(j)) {
          baseline[i * (2 * n - i - 1) / 2 + (j - i - 1)] = ws.DistanceTo(j);
        }
      }
    }
  }
};

const EnsembleBenchFixture& SharedEnsembleFixture() {
  static const EnsembleBenchFixture fixture;
  return fixture;
}

// ---------------------------------------------------------------------------
// Pre-engine scenario scoring.

class LegacyOutageDijkstra {
 public:
  template <typename WeightFn>
  void Run(const core::RiskGraph& graph, std::size_t source,
           const std::vector<bool>& dead,
           const std::unordered_set<std::uint64_t>& severed, WeightFn&& weight,
           std::size_t target) {
    const std::size_t n = graph.node_count();
    dist_.assign(n, std::numeric_limits<double>::infinity());
    settled_.assign(n, false);
    dist_[source] = 0.0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    queue.push(Entry{0.0, source});
    while (!queue.empty()) {
      const Entry top = queue.top();
      queue.pop();
      if (settled_[top.node]) continue;
      settled_[top.node] = true;
      if (top.node == target) return;
      for (const core::RiskEdge& edge : graph.OutEdges(top.node)) {
        if (settled_[edge.to] || dead[edge.to]) continue;
        if (severed.count(EdgeKey(top.node, edge.to)) != 0) continue;
        const double candidate = dist_[top.node] + weight(top.node, edge);
        if (candidate < dist_[edge.to]) {
          dist_[edge.to] = candidate;
          queue.push(Entry{candidate, edge.to});
        }
      }
    }
  }

  [[nodiscard]] double DistanceTo(std::size_t node) const {
    return dist_[node];
  }
  [[nodiscard]] bool Reached(std::size_t node) const {
    return dist_[node] < std::numeric_limits<double>::infinity();
  }

  static std::uint64_t EdgeKey(std::size_t u, std::size_t v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

 private:
  struct Entry {
    double dist;
    std::size_t node;
    bool operator>(const Entry& other) const { return dist > other.dist; }
  };

  std::vector<double> dist_;
  std::vector<bool> settled_;
};

struct LegacyEnsembleWeight {
  const core::RiskGraph* graph;
  double alpha;

  double operator()(std::size_t, const core::RiskEdge& edge) const {
    const core::RiskNode& to = graph->node(edge.to);
    return edge.miles +
           alpha * (kEnsembleBenchParams.lambda_historical *
                        to.historical_risk +
                    kEnsembleBenchParams.lambda_forecast * to.forecast_risk);
  }
};

double LegacyScenarioDelta(const EnsembleBenchFixture& fixture,
                           const sim::Scenario& scenario,
                           LegacyOutageDijkstra& workspace) {
  const core::RiskGraph& graph = fixture.graph;
  const std::size_t n = graph.node_count();
  std::vector<bool> dead(n, false);
  for (const std::size_t v : scenario.failed_nodes) dead[v] = true;
  std::unordered_set<std::uint64_t> severed;
  for (const std::uint32_t id : scenario.severed_edges) {
    const auto& edge = fixture.ensemble.edge(id);
    severed.insert(LegacyOutageDijkstra::EdgeKey(edge.a, edge.b));
  }
  double delta = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double base = fixture.baseline[i * (2 * n - i - 1) / 2 + (j - i - 1)];
      if (base == std::numeric_limits<double>::infinity()) continue;
      if (dead[i] || dead[j]) continue;
      const double alpha =
          graph.node(i).impact_fraction + graph.node(j).impact_fraction;
      workspace.Run(graph, i, dead, severed,
                    LegacyEnsembleWeight{&graph, alpha}, j);
      if (workspace.Reached(j)) delta += workspace.DistanceTo(j) - base;
    }
  }
  return delta;
}

double BatchedScenarioDelta(const EnsembleBenchFixture& fixture,
                            const sim::Scenario& scenario) {
  return fixture.ensemble.Evaluate(scenario).delta_bit_risk_miles;
}

// ---------------------------------------------------------------------------
// Triaged vs exact-only full runs (the "ensemble_triage" bench_compare
// pair, scenarios/sec at N = 100k, floor 5x). Both sides reduce the same
// 100k-scenario universe over the same engine, serial, so the ratio is
// pure triage leverage: the exact side evaluates every scenario, the
// triaged side pays features for all but exact engine work only for the
// pilot/audit/flagged/sampled lanes. Footprints are widened
// (damage_radius_scale 6) so most non-empty draws sever real spans and
// the exact side pays an overlay sweep per scenario — the regime a
// million-scenario ensemble actually runs in.

constexpr std::size_t kTriageBenchScenarios = 100'000;

sim::TriageOptions TriageBenchOptions() {
  sim::TriageOptions options;
  options.pilot = 96;
  options.audit_stride = 1024;
  options.base_rate = 0.01;
  options.min_rate = 0.0025;
  options.impact_quantile = 0.98;
  options.uncertainty_margin = 0.5;
  return options;
}

/// The 100k-universe ensemble engine over the shared Digex fixture's
/// graph and catalogs (baseline sweep untimed, at construction).
struct TriageBenchFixture {
  sim::EnsembleEngine ensemble;

  TriageBenchFixture()
      : ensemble(SharedEnsembleFixture().engine,
                 SharedEnsembleFixture().catalogs,
                 [] {
                   sim::EnsembleOptions options = BenchEnsembleOptions();
                   options.scenarios = kTriageBenchScenarios;
                   options.damage_radius_scale = 6.0;
                   return options;
                 }()) {}
};

const TriageBenchFixture& SharedTriageFixture() {
  static const TriageBenchFixture fixture;
  return fixture;
}

void Reproduce() {
  const EnsembleBenchFixture& fixture = SharedEnsembleFixture();
  std::printf("ensemble bench fixture: Digex, %zu scenarios, "
              "%zu baseline pairs\n",
              fixture.scenarios.size(), fixture.ensemble.baseline_pairs());
  // The pair is only meaningful if both sides score scenarios identically.
  LegacyOutageDijkstra workspace;
  for (const sim::Scenario& scenario : fixture.scenarios) {
    const double legacy = LegacyScenarioDelta(fixture, scenario, workspace);
    const double batched = BatchedScenarioDelta(fixture, scenario);
    if (legacy != batched) {
      std::printf("MISMATCH scenario %zu: legacy delta %.17g != "
                  "batched delta %.17g\n",
                  static_cast<std::size_t>(scenario.index), legacy, batched);
    }
  }
  // Triaged-vs-exact context for the ensemble_triage pair: same universe,
  // same draws; the triaged mean is an HT estimate of the exact one.
  const TriageBenchFixture& triage = SharedTriageFixture();
  const sim::EnsembleReport exact = triage.ensemble.Run();
  const sim::TriagedReport triaged =
      sim::TriagedEnsemble(triage.ensemble, TriageBenchOptions()).Run();
  std::printf("triage fixture: %zu scenarios, exact mean %.6g, triaged "
              "mean %.6g (%zu exact evals, %.2f%% of universe)\n",
              kTriageBenchScenarios, exact.delta_mean,
              triaged.estimate.delta_mean, triaged.exact_evaluations,
              100.0 * triaged.exact_fraction);
}

void BM_EnsembleLegacy(benchmark::State& state) {
  const EnsembleBenchFixture& fixture = SharedEnsembleFixture();
  LegacyOutageDijkstra workspace;
  for (auto _ : state) {
    double sink = 0.0;
    for (const sim::Scenario& scenario : fixture.scenarios) {
      sink += LegacyScenarioDelta(fixture, scenario, workspace);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.scenarios.size()));
}
BENCHMARK(BM_EnsembleLegacy)->Unit(benchmark::kMillisecond);

void BM_EnsembleBatched(benchmark::State& state) {
  const EnsembleBenchFixture& fixture = SharedEnsembleFixture();
  for (auto _ : state) {
    double sink = 0.0;
    for (const sim::Scenario& scenario : fixture.scenarios) {
      sink += BatchedScenarioDelta(fixture, scenario);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.scenarios.size()));
}
BENCHMARK(BM_EnsembleBatched)->Unit(benchmark::kMillisecond);

void BM_EnsembleExactFull(benchmark::State& state) {
  const TriageBenchFixture& fixture = SharedTriageFixture();
  for (auto _ : state) {
    const sim::EnsembleReport report = fixture.ensemble.Run();
    benchmark::DoNotOptimize(report.delta_mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTriageBenchScenarios));
}
BENCHMARK(BM_EnsembleExactFull)->Unit(benchmark::kMillisecond);

void BM_EnsembleTriaged(benchmark::State& state) {
  const TriageBenchFixture& fixture = SharedTriageFixture();
  const sim::TriagedEnsemble triaged(fixture.ensemble, TriageBenchOptions());
  for (auto _ : state) {
    const sim::TriagedReport report = triaged.Run();
    benchmark::DoNotOptimize(report.estimate.delta_mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTriageBenchScenarios));
}
BENCHMARK(BM_EnsembleTriaged)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN("Ensemble evaluation benchmarks", Reproduce)
