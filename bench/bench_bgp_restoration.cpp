// Interdomain fast restoration under the three case-study storms
// (extension of paper Section 3.1: RiskRoute + BGP add-paths "as the
// basis for inter-domain fast path restoration").
//
// Each storm's hurricane-force scope disables the ASes whose PoPs it
// covers beyond a threshold; Gao-Rexford routing is then assessed pairwise:
// how many AS pairs keep their primary route, how many are rescued by
// pre-installed add-paths alternates (sub-second switchover), how many
// need full reconvergence, and how many are lost.
#include <iostream>

#include "bench/common.h"
#include "bgp/restoration.h"
#include "bgp/risk_selection.h"
#include "forecast/tracks.h"
#include "util/strings.h"

namespace {

using namespace riskroute;

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  const auto graph = bgp::RelationshipGraph::FromCorpus(study.corpus());

  util::Table table({"Storm", "Failure thresh", "ASes down",
                     "Primary survival", "Add-paths rescue rate",
                     "Final reachability", "Pairs"});
  for (const forecast::StormTrack* track : forecast::AllTracks()) {
    const forecast::StormScope scope(forecast::GenerateAdvisories(*track));
    for (const double threshold : {0.5, 0.25}) {
      const std::vector<bool> failed =
          bgp::FailedAsesFromStorm(study.corpus(), scope, threshold);
      std::size_t down = 0;
      for (const bool f : failed) down += f ? 1 : 0;
      const bgp::RestorationSummary summary =
          bgp::AssessFailover(graph, failed, /*max_alternates=*/3);
      table.Add(track->name, threshold, down, summary.PrimarySurvival(),
                summary.AddPathsRescueRate(), summary.FinalReachability(),
                summary.pairs);
    }
  }
  table.Render(std::cout);
  std::cout << "(storm-downed ASes are stub regionals, so transit between "
               "survivors is unaffected; Katrina downs the fewest ASes, "
               "Sandy the most — mirroring the storms' scopes)\n";

  // --- The stress case the paper's threat catalog motivates (EMP, 9/11):
  // an entire Tier-1 goes dark. Here transit IS affected, and add-paths
  // earns its keep.
  std::cout << "\nSingle Tier-1 failure analysis:\n";
  util::Table tier1_table({"Failed Tier-1", "Primary survival",
                           "Add-paths rescue rate", "Final reachability",
                           "Lost pairs"});
  for (const std::size_t t :
       study.corpus().NetworksOfKind(topology::NetworkKind::kTier1)) {
    std::vector<bool> failed(study.corpus().network_count(), false);
    failed[t] = true;
    const bgp::RestorationSummary summary =
        bgp::AssessFailover(graph, failed, /*max_alternates=*/3);
    tier1_table.Add(study.corpus().network(t).name(),
                    summary.PrimarySurvival(), summary.AddPathsRescueRate(),
                    summary.FinalReachability(), summary.lost);
  }
  tier1_table.Render(std::cout);
  std::cout << "(losing a heavily-chosen transit like Level3 hits many "
               "primaries; pre-installed alternates restore most of them "
               "instantly, and pairs lost outright are the failed "
               "carrier's single-homed customers)\n";

  // --- Risk-aware primary selection (paper Section 3.1: use the
  // RiskRoute metric to choose among policy-equal BGP paths). For every
  // destination, re-rank each AS's alternates by traversed-AS disaster
  // risk, then count how many best routes changed and how the mean risk
  // of chosen primaries moves.
  std::cout << "\nRisk-aware primary selection across all destinations:\n";
  const std::vector<double> as_risk =
      bgp::AsRiskScores(study.corpus(), study.hazard_field());
  std::size_t changed_total = 0, ribs_total = 0;
  double risk_before = 0.0, risk_after = 0.0;
  for (std::size_t dst = 0; dst < graph.as_count(); ++dst) {
    bgp::RoutingState state = bgp::RoutingState::Compute(graph, dst, 3);
    for (std::size_t as = 0; as < graph.as_count(); ++as) {
      if (as == dst || !state.rib(as).best) continue;
      ++ribs_total;
      risk_before += bgp::RouteRisk(*state.rib(as).best, as_risk);
    }
    changed_total += bgp::ApplyRiskAwareSelection(state, as_risk);
    for (std::size_t as = 0; as < graph.as_count(); ++as) {
      if (as == dst || !state.rib(as).best) continue;
      risk_after += bgp::RouteRisk(*state.rib(as).best, as_risk);
    }
  }
  std::printf("  %zu of %zu RIB entries switched primaries; mean traversed "
              "AS-risk %.4f -> %.4f (-%.1f%%)\n",
              changed_total, ribs_total, risk_before / ribs_total,
              risk_after / ribs_total,
              100.0 * (1.0 - risk_after / risk_before));
}

void BM_RoutingStateCompute(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const auto graph =
      bgp::RelationshipGraph::FromCorpus(study.corpus());
  std::size_t dst = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bgp::RoutingState::Compute(graph, dst % graph.as_count(), 3));
    ++dst;
  }
}
BENCHMARK(BM_RoutingStateCompute)->Unit(benchmark::kMicrosecond);

void BM_AssessFailover(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const auto graph =
      bgp::RelationshipGraph::FromCorpus(study.corpus());
  std::vector<bool> failed(graph.as_count(), false);
  failed[2] = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::AssessFailover(graph, failed, 3));
  }
}
BENCHMARK(BM_AssessFailover)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN(
    "BGP add-paths restoration under Irene/Katrina/Sandy AS failures",
    Reproduce)
