// Ablations of the reproduction's design choices (DESIGN.md §1/§4):
//
//  A. Calibration target — the paper's Eq 2 density scale is
//     under-determined; we pin the mean PoP risk to 0.15. How sensitive
//     are the Table 2 ratios to that choice?
//  B. Corpus seed — the synthetic topology is one draw from the generator;
//     does the Table 2 shape (ratios grow with lambda, Level3 smallest)
//     hold across seeds?
//  C. Peering co-location radius — interdomain results depend on which
//     PoPs can realize a peering; sweep the radius.
#include <iostream>

#include "bench/common.h"
#include "core/interdomain.h"
#include "core/riskroute.h"
#include "core/study.h"

namespace {

using namespace riskroute;

void AblateCalibration() {
  std::cout << "\nA. Calibration target vs Deutsche/Level3 ratios "
               "(lambda_h = 1e5):\n";
  util::Table table({"Mean PoP risk target", "Level3 RR", "Level3 DIR",
                     "Deutsche RR", "Deutsche DIR"});
  util::ThreadPool& pool = bench::SharedPool();
  for (const double target : {0.05, 0.15, 0.45}) {
    core::StudyOptions options;
    options.calibration_target = target;
    const core::Study study = core::Study::Build(options);
    const core::RatioReport level3 = core::ComputeIntradomainRatios(
        study.BuildGraphFor("Level3"), core::RiskParams{1e5, 1e3}, &pool);
    const core::RatioReport dt = core::ComputeIntradomainRatios(
        study.BuildGraphFor("Deutsche"), core::RiskParams{1e5, 1e3}, &pool);
    table.Add(target, level3.risk_reduction_ratio,
              level3.distance_increase_ratio, dt.risk_reduction_ratio,
              dt.distance_increase_ratio);
  }
  table.Render(std::cout);
}

void AblateCorpusSeed() {
  std::cout << "\nB. Corpus seed vs Table 2 shape (lambda_h = 1e5):\n";
  util::Table table({"Seed", "Level3 RR", "Mean other tier-1 RR",
                     "Level3 is smallest?"});
  util::ThreadPool& pool = bench::SharedPool();
  for (const std::uint64_t seed : {123ULL, 7ULL, 99ULL}) {
    core::StudyOptions options;
    options.corpus_seed = seed;
    const core::Study study = core::Study::Build(options);
    const double level3 =
        core::ComputeIntradomainRatios(study.BuildGraphFor("Level3"),
                                       core::RiskParams{1e5, 1e3}, &pool)
            .risk_reduction_ratio;
    double sum = 0.0;
    double min_other = 1.0;
    const char* others[] = {"ATT", "Deutsche", "NTT", "Sprint", "Tinet",
                            "Teliasonera"};
    for (const char* name : others) {
      const double rr =
          core::ComputeIntradomainRatios(study.BuildGraphFor(name),
                                         core::RiskParams{1e5, 1e3}, &pool)
              .risk_reduction_ratio;
      sum += rr;
      min_other = std::min(min_other, rr);
    }
    table.Add(static_cast<long long>(seed), level3, sum / 6.0,
              level3 <= min_other + 0.03 ? "yes (within 0.03)" : "no");
  }
  table.Render(std::cout);
}

void AblateColocationRadius() {
  std::cout << "\nC. Peering co-location radius vs Digex interdomain "
               "ratios (lambda_h = 1e5):\n";
  util::Table table({"Radius (mi)", "Peering edges", "Digex RR",
                     "Digex DIR", "Pairs"});
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();
  for (const double radius : {5.0, 25.0, 75.0}) {
    core::MergeOptions options;
    options.colocation_radius_miles = radius;
    const core::MergedGraph merged = study.BuildMerged(options);
    const core::RatioReport report = core::InterdomainRatios(
        merged, study.corpus(), study.NetworkIndex("Digex"),
        core::RiskParams{1e5, 1e3}, &pool);
    table.Add(radius, merged.peering_edges.size(),
              report.risk_reduction_ratio, report.distance_increase_ratio,
              report.pair_count);
  }
  table.Render(std::cout);
}

void Reproduce() {
  AblateCalibration();
  AblateCorpusSeed();
  AblateColocationRadius();
}

void BM_StudyBuildReducedCensus(benchmark::State& state) {
  for (auto _ : state) {
    core::StudyOptions options;
    options.census.block_count = 5000;
    benchmark::DoNotOptimize(core::Study::Build(options));
  }
}
BENCHMARK(BM_StudyBuildReducedCensus)->Unit(benchmark::kMillisecond);

}  // namespace

RISKROUTE_BENCH_MAIN("Design ablations: calibration, corpus seed, "
                     "co-location radius",
                     Reproduce)
