// Shared scaffolding for the reproduction benches.
//
// Every bench binary (a) prints the rows/series of the paper table or
// figure it regenerates — these are the numbers EXPERIMENTS.md records —
// and (b) registers google-benchmark timings for the computational kernel
// behind that experiment. The full-scale Study (215,932 census blocks,
// 176k hazard events, 23 networks) is built once per process and shared.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/study.h"
#include "obs/metrics.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace riskroute::bench {

/// The reference study (full paper-scale substrates). Built on first use.
inline const core::Study& SharedStudy() {
  static const core::Study study = core::Study::Build();
  return study;
}

/// Process-wide worker pool for the parallel sweeps.
inline util::ThreadPool& SharedPool() {
  static util::ThreadPool pool;
  return pool;
}

/// Prints a banner separating the reproduction output from benchmark noise.
inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Writes the obs:: metrics accumulated over the whole bench run to a JSON
/// sidecar: $RISKROUTE_METRICS_OUT if set (bench_compare.py points it next
/// to BENCH_perf.json), else "<binary>_metrics.json" beside the binary.
inline void WriteMetricsSidecar(const char* argv0) {
  const char* env = std::getenv("RISKROUTE_METRICS_OUT");
  const std::string path = (env != nullptr && *env != '\0')
                               ? std::string(env)
                               : std::string(argv0) + "_metrics.json";
  if (!obs::MetricsRegistry::Global().WriteJsonFile(path)) {
    std::fprintf(stderr, "warning: cannot write metrics sidecar %s\n",
                 path.c_str());
  }
}

/// Standard main: print the reproduction first, then run registered
/// google-benchmark timings, then drop the metrics sidecar.
#define RISKROUTE_BENCH_MAIN(title, reproduce_fn)              \
  int main(int argc, char** argv) {                            \
    ::riskroute::bench::PrintHeader(title);                    \
    reproduce_fn();                                            \
    ::benchmark::Initialize(&argc, argv);                      \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))  \
      return 1;                                                \
    ::benchmark::RunSpecifiedBenchmarks();                     \
    ::benchmark::Shutdown();                                   \
    ::riskroute::bench::WriteMetricsSidecar(argv[0]);          \
    return 0;                                                  \
  }

}  // namespace riskroute::bench
