// Performance microbenchmarks for the library's computational kernels:
// great-circle math, kd-tree queries, KDE evaluation, Dijkstra, Eq 1
// metric evaluation and the parallel ratio sweep. Not tied to a paper
// table; used to track regressions in the hot paths.
#include <iostream>

#include "bench/common.h"
#include "core/riskroute.h"
#include "forecast/parser.h"
#include "forecast/tracks.h"
#include "forecast/writer.h"
#include "geo/distance.h"
#include "spatial/kd_tree.h"
#include "util/rng.h"

namespace {

using namespace riskroute;

void Reproduce() {
  std::cout << "Microbenchmarks of the RiskRoute hot paths follow.\n";
}

void BM_GreatCircleMiles(benchmark::State& state) {
  const geo::GeoPoint a(29.76, -95.37), b(42.36, -71.06);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::GreatCircleMiles(a, b));
  }
}
BENCHMARK(BM_GreatCircleMiles);

void BM_ApproxMiles(benchmark::State& state) {
  const geo::GeoPoint a(29.76, -95.37), b(42.36, -71.06);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::ApproxMiles(a, b));
  }
}
BENCHMARK(BM_ApproxMiles);

void BM_KdTreeNearest(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<geo::GeoPoint> points;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    points.emplace_back(rng.Uniform(25, 49), rng.Uniform(-124, -67));
  }
  const spatial::KdTree tree(points);
  std::size_t q = 0;
  for (auto _ : state) {
    const geo::GeoPoint probe(25.0 + static_cast<double>(q % 24),
                              -124.0 + static_cast<double>(q % 57));
    benchmark::DoNotOptimize(tree.Nearest(probe));
    ++q;
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(1000)->Arg(100000);

void BM_DijkstraLevel3AllTargets(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  core::DijkstraWorkspace workspace;
  std::size_t source = 0;
  for (auto _ : state) {
    workspace.Run(graph, source % graph.node_count(), core::DistanceWeight);
    benchmark::DoNotOptimize(workspace.DistanceTo(graph.node_count() - 1));
    ++source;
  }
}
BENCHMARK(BM_DijkstraLevel3AllTargets)->Unit(benchmark::kMicrosecond);

void BM_PathBitRiskEvaluation(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  const core::RiskRouter router(graph, core::RiskParams{1e5, 1e3});
  const auto route = router.ShortestRoute(0, graph.node_count() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.PathBitRiskMiles(route->path));
  }
}
BENCHMARK(BM_PathBitRiskEvaluation);

void BM_IntradomainRatiosParallel(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Tinet");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeIntradomainRatios(
        graph, core::RiskParams{1e5, 1e3}, &bench::SharedPool()));
  }
}
BENCHMARK(BM_IntradomainRatiosParallel)->Unit(benchmark::kMillisecond);

void BM_AdvisoryRoundTrip(benchmark::State& state) {
  const auto advisories = forecast::GenerateAdvisories(forecast::IreneTrack());
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string text =
        forecast::RenderAdvisory(advisories[i % advisories.size()]);
    benchmark::DoNotOptimize(forecast::ParseAdvisory(text));
    ++i;
  }
}
BENCHMARK(BM_AdvisoryRoundTrip);

}  // namespace

RISKROUTE_BENCH_MAIN("Core kernel microbenchmarks", Reproduce)
