// Performance microbenchmarks for the library's computational kernels:
// great-circle math, kd-tree queries, KDE evaluation (batched engine vs
// the pre-batching scalar path), Dijkstra (frozen RouteEngine vs the
// pre-engine adjacency-list path), Eq 1 metric evaluation, bandwidth
// cross-validation and the parallel sweeps. Not tied to a paper table;
// used to track regressions in the hot paths. tools/bench_compare.py runs
// the legacy/new pairs (BM_Kde*, BM_BandwidthCV*, BM_RouteAllPairs*,
// BM_GreedyScan*), derives the speedups and records them in
// BENCH_perf.json.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <numeric>
#include <optional>
#include <queue>

#include "bench/common.h"
#include "core/edge_overlay.h"
#include "core/riskroute.h"
#include "core/route_engine.h"
#include "provision/augmentation.h"
#include "provision/candidate_links.h"
#include "forecast/parser.h"
#include "forecast/tracks.h"
#include "forecast/writer.h"
#include "geo/bounding_box.h"
#include "geo/distance.h"
#include "spatial/grid_index.h"
#include "spatial/kd_tree.h"
#include "stats/bandwidth_cv.h"
#include "stats/kernel_density.h"
#include "util/rng.h"

namespace {

using namespace riskroute;

// ---------------------------------------------------------------------------
// Pre-change KDE path, preserved verbatim as the speedup baseline: grid
// bucketing, a std::function visitor per event and spherical trig
// (geo::ApproxMiles: three deg->rad conversions, one cos, one sqrt) inside
// the inner loop. The batched engine must stay >= 3x faster than this.
class LegacyKde {
 public:
  LegacyKde(std::vector<geo::GeoPoint> events, double bandwidth_miles)
      : events_(std::move(events)),
        bandwidth_(bandwidth_miles),
        trunc_(5.0 * bandwidth_miles),
        norm_(1.0 / (static_cast<double>(events_.size()) *
                     2.0 * M_PI * bandwidth_ * bandwidth_)),
        index_(events_, geo::BoundingBox::Around(events_).Padded(0.5),
               std::max(2.0, trunc_ / 2.0)) {}

  [[nodiscard]] double Evaluate(const geo::GeoPoint& y) const {
    const double inv_two_sigma2 = 1.0 / (2.0 * bandwidth_ * bandwidth_);
    double sum = 0.0;
    index_.VisitNear(y, trunc_, [&](std::size_t i) {
      const double d = geo::ApproxMiles(y, events_[i]);
      if (d <= trunc_) {
        sum += std::exp(-d * d * inv_two_sigma2);
      }
    });
    return norm_ * sum;
  }

  [[nodiscard]] std::vector<double> Raster(const geo::BoundingBox& bounds,
                                           std::size_t rows,
                                           std::size_t cols) const {
    std::vector<double> grid(rows * cols, 0.0);
    const double lat_step =
        (bounds.max_lat() - bounds.min_lat()) / static_cast<double>(rows);
    const double lon_step =
        (bounds.max_lon() - bounds.min_lon()) / static_cast<double>(cols);
    for (std::size_t r = 0; r < rows; ++r) {
      const double lat =
          bounds.min_lat() + (static_cast<double>(r) + 0.5) * lat_step;
      for (std::size_t c = 0; c < cols; ++c) {
        const double lon =
            bounds.min_lon() + (static_cast<double>(c) + 0.5) * lon_step;
        grid[r * cols + c] = Evaluate(geo::GeoPoint(lat, lon));
      }
    }
    return grid;
  }

 private:
  std::vector<geo::GeoPoint> events_;
  double bandwidth_;
  double trunc_;
  double norm_;
  spatial::GridIndex index_;
};

/// Clustered synthetic event catalog shared by the KDE benches.
const std::vector<geo::GeoPoint>& KdeBenchEvents() {
  static const std::vector<geo::GeoPoint> events = [] {
    util::Rng rng(42);
    std::vector<geo::GeoPoint> out;
    out.reserve(20000);
    for (int c = 0; c < 50; ++c) {
      const geo::GeoPoint center(rng.Uniform(27, 47), rng.Uniform(-122, -70));
      for (int i = 0; i < 400; ++i) {
        const geo::GeoPoint p = geo::Destination(
            center, rng.Uniform(0, 360), std::fabs(rng.Gaussian(0, 80.0)));
        out.push_back(p);
      }
    }
    return out;
  }();
  return events;
}

/// Query points spread over the events' extent.
std::vector<geo::GeoPoint> KdeBenchQueries(std::size_t count) {
  util::Rng rng(7);
  std::vector<geo::GeoPoint> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(rng.Uniform(26, 48), rng.Uniform(-123, -69));
  }
  return out;
}

constexpr double kKdeBenchBandwidth = 60.0;

void Reproduce() {
  std::cout << "Microbenchmarks of the RiskRoute hot paths follow.\n";
}

void BM_GreatCircleMiles(benchmark::State& state) {
  const geo::GeoPoint a(29.76, -95.37), b(42.36, -71.06);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::GreatCircleMiles(a, b));
  }
}
BENCHMARK(BM_GreatCircleMiles);

void BM_ApproxMiles(benchmark::State& state) {
  const geo::GeoPoint a(29.76, -95.37), b(42.36, -71.06);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::ApproxMiles(a, b));
  }
}
BENCHMARK(BM_ApproxMiles);

void BM_KdTreeNearest(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<geo::GeoPoint> points;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    points.emplace_back(rng.Uniform(25, 49), rng.Uniform(-124, -67));
  }
  const spatial::KdTree tree(points);
  std::size_t q = 0;
  for (auto _ : state) {
    const geo::GeoPoint probe(25.0 + static_cast<double>(q % 24),
                              -124.0 + static_cast<double>(q % 57));
    benchmark::DoNotOptimize(tree.Nearest(probe));
    ++q;
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(1000)->Arg(100000);

// ---------------------------------------------------------------------------
// KDE engine: batched/trig-free path vs the pre-change scalar baseline.
// Workloads are identical across the pairs so wall-clock ratios are the
// speedups bench_compare.py records.

void BM_KdeEvaluateLegacy(benchmark::State& state) {
  static const LegacyKde kde(KdeBenchEvents(), kKdeBenchBandwidth);
  const auto queries = KdeBenchQueries(512);
  double sink = 0.0;
  for (auto _ : state) {
    for (const auto& q : queries) sink += kde.Evaluate(q);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_KdeEvaluateLegacy)->Unit(benchmark::kMillisecond);

void BM_KdeEvaluateScalar(benchmark::State& state) {
  static const stats::KernelDensity2D kde(KdeBenchEvents(),
                                          kKdeBenchBandwidth);
  const auto queries = KdeBenchQueries(512);
  double sink = 0.0;
  for (auto _ : state) {
    for (const auto& q : queries) sink += kde.Evaluate(q);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_KdeEvaluateScalar)->Unit(benchmark::kMillisecond);

void BM_KdeEvaluateBatch(benchmark::State& state) {
  static const stats::KernelDensity2D kde(KdeBenchEvents(),
                                          kKdeBenchBandwidth);
  const auto queries = KdeBenchQueries(512);
  std::vector<double> out(queries.size());
  for (auto _ : state) {
    kde.EvaluateBatch(queries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_KdeEvaluateBatch)->Unit(benchmark::kMillisecond);

void BM_KdeRasterLegacy(benchmark::State& state) {
  static const LegacyKde kde(KdeBenchEvents(), kKdeBenchBandwidth);
  static const geo::BoundingBox bounds =
      geo::BoundingBox::Around(KdeBenchEvents()).Padded(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde.Raster(bounds, 48, 96));
  }
}
BENCHMARK(BM_KdeRasterLegacy)->Unit(benchmark::kMillisecond);

void BM_KdeRasterSerial(benchmark::State& state) {
  static const stats::KernelDensity2D kde(KdeBenchEvents(),
                                          kKdeBenchBandwidth);
  static const geo::BoundingBox bounds =
      geo::BoundingBox::Around(KdeBenchEvents()).Padded(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde.Raster(bounds, 48, 96));
  }
}
BENCHMARK(BM_KdeRasterSerial)->Unit(benchmark::kMillisecond);

void BM_KdeRasterParallel(benchmark::State& state) {
  static const stats::KernelDensity2D kde(KdeBenchEvents(),
                                          kKdeBenchBandwidth);
  static const geo::BoundingBox bounds =
      geo::BoundingBox::Around(KdeBenchEvents()).Padded(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kde.Raster(bounds, 48, 96, &bench::SharedPool()));
  }
}
BENCHMARK(BM_KdeRasterParallel)->Unit(benchmark::kMillisecond);

/// Seed-implementation bandwidth CV: same fold splits and scoring as
/// stats::SelectBandwidth, but scored through the legacy per-point path.
double LegacyBandwidthCv(const std::vector<geo::GeoPoint>& events,
                         const std::vector<double>& candidates,
                         std::size_t folds, std::uint64_t seed) {
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<std::vector<geo::GeoPoint>> train(folds), eval(folds);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t fold = rank % folds;
    for (std::size_t f = 0; f < folds; ++f) {
      (f == fold ? eval[f] : train[f]).push_back(events[order[rank]]);
    }
  }
  double best_bandwidth = 0.0;
  double best_score = std::numeric_limits<double>::infinity();
  for (const double bandwidth : candidates) {
    double fold_sum = 0.0;
    for (std::size_t f = 0; f < folds; ++f) {
      const LegacyKde model(train[f], bandwidth);
      double nll = 0.0;
      for (const auto& y : eval[f]) {
        nll -= std::log(std::max(1e-12, model.Evaluate(y)));
      }
      fold_sum += nll / static_cast<double>(eval[f].size());
    }
    const double score = fold_sum / static_cast<double>(folds);
    if (score < best_score) {
      best_score = score;
      best_bandwidth = bandwidth;
    }
  }
  return best_bandwidth;
}

/// Shared CV workload: 2,000 clustered events, 4 log-spaced candidates.
std::vector<geo::GeoPoint> CvBenchEvents() {
  const auto& all = KdeBenchEvents();
  return {all.begin(), all.begin() + 2000};
}

void BM_BandwidthCVLegacy(benchmark::State& state) {
  const auto events = CvBenchEvents();
  const auto candidates = stats::LogSpacedBandwidths(15.0, 120.0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LegacyBandwidthCv(events, candidates, 5, 0x5eed0001));
  }
}
BENCHMARK(BM_BandwidthCVLegacy)->Unit(benchmark::kMillisecond);

void BM_BandwidthCV(benchmark::State& state) {
  const auto events = CvBenchEvents();
  const auto candidates = stats::LogSpacedBandwidths(15.0, 120.0, 4);
  stats::CrossValidationOptions options;
  options.pool = &bench::SharedPool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::SelectBandwidth(events, candidates, options));
  }
}
BENCHMARK(BM_BandwidthCV)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Routing engine: frozen-CSR RouteEngine sweeps vs the pre-engine path,
// preserved verbatim as the speedup baseline: adjacency-list iteration,
// per-edge Eq 1 recomputation through graph.node() lookups, and a freshly
// allocated std::priority_queue per Dijkstra call.

class LegacyDijkstra {
 public:
  template <typename WeightFn>
  void Run(const core::RiskGraph& graph, std::size_t source, WeightFn&& weight,
           std::optional<std::size_t> target = std::nullopt) {
    const std::size_t n = graph.node_count();
    dist_.assign(n, std::numeric_limits<double>::infinity());
    parent_.assign(n, n);
    settled_.assign(n, false);
    dist_[source] = 0.0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    queue.push(Entry{0.0, source});
    while (!queue.empty()) {
      const Entry top = queue.top();
      queue.pop();
      if (settled_[top.node]) continue;
      settled_[top.node] = true;
      if (target && top.node == *target) return;
      for (const core::RiskEdge& edge : graph.OutEdges(top.node)) {
        if (settled_[edge.to]) continue;
        const double candidate = dist_[top.node] + weight(top.node, edge);
        if (candidate < dist_[edge.to]) {
          dist_[edge.to] = candidate;
          parent_[edge.to] = top.node;
          queue.push(Entry{candidate, edge.to});
        }
      }
    }
  }

  [[nodiscard]] double DistanceTo(std::size_t node) const {
    return dist_[node];
  }
  [[nodiscard]] bool Reached(std::size_t node) const {
    return dist_[node] < std::numeric_limits<double>::infinity();
  }

 private:
  struct Entry {
    double dist;
    std::size_t node;
    bool operator>(const Entry& other) const { return dist > other.dist; }
  };

  std::vector<double> dist_;
  std::vector<std::size_t> parent_;
  std::vector<bool> settled_;
};

/// The pre-engine per-edge Eq 1 weight: two node() lookups' worth of risk
/// recomputation per relaxation.
struct LegacyBitRiskWeight {
  const core::RiskGraph* graph;
  core::RiskParams params;
  double alpha;

  double operator()(std::size_t, const core::RiskEdge& edge) const {
    const core::RiskNode& to = graph->node(edge.to);
    return edge.miles + alpha * (params.lambda_historical * to.historical_risk +
                                 params.lambda_forecast * to.forecast_risk);
  }
};

/// Pre-engine Eq 4: one targeted legacy Dijkstra per unordered pair.
double LegacyAggregateMinBitRisk(const core::RiskGraph& graph,
                                 const core::RiskParams& params,
                                 LegacyDijkstra& workspace) {
  const std::size_t n = graph.node_count();
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double alpha =
          graph.node(i).impact_fraction + graph.node(j).impact_fraction;
      workspace.Run(graph, i, LegacyBitRiskWeight{&graph, params, alpha}, j);
      if (workspace.Reached(j)) total += workspace.DistanceTo(j);
    }
  }
  return total;
}

constexpr core::RiskParams kRouteBenchParams{1e5, 1e3};

void BM_RouteAllPairsLegacy(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  LegacyDijkstra workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LegacyAggregateMinBitRisk(graph, kRouteBenchParams, workspace));
  }
}
BENCHMARK(BM_RouteAllPairsLegacy)->Unit(benchmark::kMillisecond);

void BM_RouteAllPairsEngine(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  static const core::RouteEngine engine(graph, kRouteBenchParams);
  // On a single-core host the pool adds dispatch overhead without
  // parallelism; run serial there so the pair measures the engine's
  // algorithmic gain rather than scheduler noise.
  util::ThreadPool* pool =
      bench::SharedPool().thread_count() > 1 ? &bench::SharedPool() : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.AggregateMinBitRisk(pool));
  }
}
BENCHMARK(BM_RouteAllPairsEngine)->Unit(benchmark::kMillisecond);

/// Shared greedy-augment scan fixture: the Sprint graph and its capped
/// candidate set, identical for both sides of the pair.
struct GreedyScanFixture {
  core::RiskGraph graph;
  core::RouteEngine engine;
  std::vector<provision::CandidateLink> candidates;

  GreedyScanFixture()
      : graph(bench::SharedStudy().BuildGraphFor("Sprint")),
        engine(graph, kRouteBenchParams) {
    provision::CandidateOptions options;
    options.max_candidates = 6;
    candidates = provision::EnumerateCandidateLinks(engine, options);
  }
};

const GreedyScanFixture& SharedGreedyScanFixture() {
  static const GreedyScanFixture fixture;
  return fixture;
}

void BM_GreedyScanLegacy(benchmark::State& state) {
  const GreedyScanFixture& fixture = SharedGreedyScanFixture();
  // The pre-engine candidate scan: mutate the working graph, re-run the
  // full Eq 4 sweep, restore — once per candidate.
  core::RiskGraph working = fixture.graph;
  LegacyDijkstra workspace;
  for (auto _ : state) {
    double sink = 0.0;
    for (const provision::CandidateLink& link : fixture.candidates) {
      working.AddEdge(link.a, link.b, link.direct_miles);
      sink += LegacyAggregateMinBitRisk(working, kRouteBenchParams, workspace);
      working.RemoveEdge(link.a, link.b);
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_GreedyScanLegacy)->Unit(benchmark::kMillisecond);

void BM_GreedyScanEngine(benchmark::State& state) {
  const GreedyScanFixture& fixture = SharedGreedyScanFixture();
  const core::EdgeOverlay none;
  util::ThreadPool* pool =
      bench::SharedPool().thread_count() > 1 ? &bench::SharedPool() : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provision::ScanCandidateObjectives(
        fixture.engine, none, fixture.candidates, pool));
  }
}
BENCHMARK(BM_GreedyScanEngine)->Unit(benchmark::kMillisecond);

void BM_DijkstraLevel3AllTargets(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  core::DijkstraWorkspace workspace;
  std::size_t source = 0;
  for (auto _ : state) {
    workspace.Run(graph, source % graph.node_count(), core::DistanceWeight);
    benchmark::DoNotOptimize(workspace.DistanceTo(graph.node_count() - 1));
    ++source;
  }
}
BENCHMARK(BM_DijkstraLevel3AllTargets)->Unit(benchmark::kMicrosecond);

void BM_PathBitRiskEvaluation(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  const core::RiskRouter router(graph, core::RiskParams{1e5, 1e3});
  const auto route = router.ShortestRoute(0, graph.node_count() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.PathBitRiskMiles(route->path));
  }
}
BENCHMARK(BM_PathBitRiskEvaluation);

void BM_IntradomainRatiosParallel(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Tinet");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeIntradomainRatios(
        graph, core::RiskParams{1e5, 1e3}, &bench::SharedPool()));
  }
}
BENCHMARK(BM_IntradomainRatiosParallel)->Unit(benchmark::kMillisecond);

void BM_AdvisoryRoundTrip(benchmark::State& state) {
  const auto advisories = forecast::GenerateAdvisories(forecast::IreneTrack());
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string text =
        forecast::RenderAdvisory(advisories[i % advisories.size()]);
    benchmark::DoNotOptimize(forecast::ParseAdvisory(text));
    ++i;
  }
}
BENCHMARK(BM_AdvisoryRoundTrip);

}  // namespace

RISKROUTE_BENCH_MAIN("Core kernel microbenchmarks", Reproduce)
