// Performance microbenchmarks for the library's computational kernels:
// great-circle math, kd-tree queries, KDE evaluation (batched engine vs
// the pre-batching scalar path), Dijkstra, Eq 1 metric evaluation,
// bandwidth cross-validation and the parallel sweeps. Not tied to a paper
// table; used to track regressions in the hot paths. tools/bench_compare.py
// runs the BM_Kde* / BM_BandwidthCV* subset, derives the batch-vs-legacy
// speedups and records them in BENCH_perf.json.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <numeric>

#include "bench/common.h"
#include "core/riskroute.h"
#include "forecast/parser.h"
#include "forecast/tracks.h"
#include "forecast/writer.h"
#include "geo/bounding_box.h"
#include "geo/distance.h"
#include "spatial/grid_index.h"
#include "spatial/kd_tree.h"
#include "stats/bandwidth_cv.h"
#include "stats/kernel_density.h"
#include "util/rng.h"

namespace {

using namespace riskroute;

// ---------------------------------------------------------------------------
// Pre-change KDE path, preserved verbatim as the speedup baseline: grid
// bucketing, a std::function visitor per event and spherical trig
// (geo::ApproxMiles: three deg->rad conversions, one cos, one sqrt) inside
// the inner loop. The batched engine must stay >= 3x faster than this.
class LegacyKde {
 public:
  LegacyKde(std::vector<geo::GeoPoint> events, double bandwidth_miles)
      : events_(std::move(events)),
        bandwidth_(bandwidth_miles),
        trunc_(5.0 * bandwidth_miles),
        norm_(1.0 / (static_cast<double>(events_.size()) *
                     2.0 * M_PI * bandwidth_ * bandwidth_)),
        index_(events_, geo::BoundingBox::Around(events_).Padded(0.5),
               std::max(2.0, trunc_ / 2.0)) {}

  [[nodiscard]] double Evaluate(const geo::GeoPoint& y) const {
    const double inv_two_sigma2 = 1.0 / (2.0 * bandwidth_ * bandwidth_);
    double sum = 0.0;
    index_.VisitNear(y, trunc_, [&](std::size_t i) {
      const double d = geo::ApproxMiles(y, events_[i]);
      if (d <= trunc_) {
        sum += std::exp(-d * d * inv_two_sigma2);
      }
    });
    return norm_ * sum;
  }

  [[nodiscard]] std::vector<double> Raster(const geo::BoundingBox& bounds,
                                           std::size_t rows,
                                           std::size_t cols) const {
    std::vector<double> grid(rows * cols, 0.0);
    const double lat_step =
        (bounds.max_lat() - bounds.min_lat()) / static_cast<double>(rows);
    const double lon_step =
        (bounds.max_lon() - bounds.min_lon()) / static_cast<double>(cols);
    for (std::size_t r = 0; r < rows; ++r) {
      const double lat =
          bounds.min_lat() + (static_cast<double>(r) + 0.5) * lat_step;
      for (std::size_t c = 0; c < cols; ++c) {
        const double lon =
            bounds.min_lon() + (static_cast<double>(c) + 0.5) * lon_step;
        grid[r * cols + c] = Evaluate(geo::GeoPoint(lat, lon));
      }
    }
    return grid;
  }

 private:
  std::vector<geo::GeoPoint> events_;
  double bandwidth_;
  double trunc_;
  double norm_;
  spatial::GridIndex index_;
};

/// Clustered synthetic event catalog shared by the KDE benches.
const std::vector<geo::GeoPoint>& KdeBenchEvents() {
  static const std::vector<geo::GeoPoint> events = [] {
    util::Rng rng(42);
    std::vector<geo::GeoPoint> out;
    out.reserve(20000);
    for (int c = 0; c < 50; ++c) {
      const geo::GeoPoint center(rng.Uniform(27, 47), rng.Uniform(-122, -70));
      for (int i = 0; i < 400; ++i) {
        const geo::GeoPoint p = geo::Destination(
            center, rng.Uniform(0, 360), std::fabs(rng.Gaussian(0, 80.0)));
        out.push_back(p);
      }
    }
    return out;
  }();
  return events;
}

/// Query points spread over the events' extent.
std::vector<geo::GeoPoint> KdeBenchQueries(std::size_t count) {
  util::Rng rng(7);
  std::vector<geo::GeoPoint> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(rng.Uniform(26, 48), rng.Uniform(-123, -69));
  }
  return out;
}

constexpr double kKdeBenchBandwidth = 60.0;

void Reproduce() {
  std::cout << "Microbenchmarks of the RiskRoute hot paths follow.\n";
}

void BM_GreatCircleMiles(benchmark::State& state) {
  const geo::GeoPoint a(29.76, -95.37), b(42.36, -71.06);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::GreatCircleMiles(a, b));
  }
}
BENCHMARK(BM_GreatCircleMiles);

void BM_ApproxMiles(benchmark::State& state) {
  const geo::GeoPoint a(29.76, -95.37), b(42.36, -71.06);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::ApproxMiles(a, b));
  }
}
BENCHMARK(BM_ApproxMiles);

void BM_KdTreeNearest(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<geo::GeoPoint> points;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    points.emplace_back(rng.Uniform(25, 49), rng.Uniform(-124, -67));
  }
  const spatial::KdTree tree(points);
  std::size_t q = 0;
  for (auto _ : state) {
    const geo::GeoPoint probe(25.0 + static_cast<double>(q % 24),
                              -124.0 + static_cast<double>(q % 57));
    benchmark::DoNotOptimize(tree.Nearest(probe));
    ++q;
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(1000)->Arg(100000);

// ---------------------------------------------------------------------------
// KDE engine: batched/trig-free path vs the pre-change scalar baseline.
// Workloads are identical across the pairs so wall-clock ratios are the
// speedups bench_compare.py records.

void BM_KdeEvaluateLegacy(benchmark::State& state) {
  static const LegacyKde kde(KdeBenchEvents(), kKdeBenchBandwidth);
  const auto queries = KdeBenchQueries(512);
  double sink = 0.0;
  for (auto _ : state) {
    for (const auto& q : queries) sink += kde.Evaluate(q);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_KdeEvaluateLegacy)->Unit(benchmark::kMillisecond);

void BM_KdeEvaluateScalar(benchmark::State& state) {
  static const stats::KernelDensity2D kde(KdeBenchEvents(),
                                          kKdeBenchBandwidth);
  const auto queries = KdeBenchQueries(512);
  double sink = 0.0;
  for (auto _ : state) {
    for (const auto& q : queries) sink += kde.Evaluate(q);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_KdeEvaluateScalar)->Unit(benchmark::kMillisecond);

void BM_KdeEvaluateBatch(benchmark::State& state) {
  static const stats::KernelDensity2D kde(KdeBenchEvents(),
                                          kKdeBenchBandwidth);
  const auto queries = KdeBenchQueries(512);
  std::vector<double> out(queries.size());
  for (auto _ : state) {
    kde.EvaluateBatch(queries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_KdeEvaluateBatch)->Unit(benchmark::kMillisecond);

void BM_KdeRasterLegacy(benchmark::State& state) {
  static const LegacyKde kde(KdeBenchEvents(), kKdeBenchBandwidth);
  static const geo::BoundingBox bounds =
      geo::BoundingBox::Around(KdeBenchEvents()).Padded(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde.Raster(bounds, 48, 96));
  }
}
BENCHMARK(BM_KdeRasterLegacy)->Unit(benchmark::kMillisecond);

void BM_KdeRasterSerial(benchmark::State& state) {
  static const stats::KernelDensity2D kde(KdeBenchEvents(),
                                          kKdeBenchBandwidth);
  static const geo::BoundingBox bounds =
      geo::BoundingBox::Around(KdeBenchEvents()).Padded(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde.Raster(bounds, 48, 96));
  }
}
BENCHMARK(BM_KdeRasterSerial)->Unit(benchmark::kMillisecond);

void BM_KdeRasterParallel(benchmark::State& state) {
  static const stats::KernelDensity2D kde(KdeBenchEvents(),
                                          kKdeBenchBandwidth);
  static const geo::BoundingBox bounds =
      geo::BoundingBox::Around(KdeBenchEvents()).Padded(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kde.Raster(bounds, 48, 96, &bench::SharedPool()));
  }
}
BENCHMARK(BM_KdeRasterParallel)->Unit(benchmark::kMillisecond);

/// Seed-implementation bandwidth CV: same fold splits and scoring as
/// stats::SelectBandwidth, but scored through the legacy per-point path.
double LegacyBandwidthCv(const std::vector<geo::GeoPoint>& events,
                         const std::vector<double>& candidates,
                         std::size_t folds, std::uint64_t seed) {
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<std::vector<geo::GeoPoint>> train(folds), eval(folds);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t fold = rank % folds;
    for (std::size_t f = 0; f < folds; ++f) {
      (f == fold ? eval[f] : train[f]).push_back(events[order[rank]]);
    }
  }
  double best_bandwidth = 0.0;
  double best_score = std::numeric_limits<double>::infinity();
  for (const double bandwidth : candidates) {
    double fold_sum = 0.0;
    for (std::size_t f = 0; f < folds; ++f) {
      const LegacyKde model(train[f], bandwidth);
      double nll = 0.0;
      for (const auto& y : eval[f]) {
        nll -= std::log(std::max(1e-12, model.Evaluate(y)));
      }
      fold_sum += nll / static_cast<double>(eval[f].size());
    }
    const double score = fold_sum / static_cast<double>(folds);
    if (score < best_score) {
      best_score = score;
      best_bandwidth = bandwidth;
    }
  }
  return best_bandwidth;
}

/// Shared CV workload: 2,000 clustered events, 4 log-spaced candidates.
std::vector<geo::GeoPoint> CvBenchEvents() {
  const auto& all = KdeBenchEvents();
  return {all.begin(), all.begin() + 2000};
}

void BM_BandwidthCVLegacy(benchmark::State& state) {
  const auto events = CvBenchEvents();
  const auto candidates = stats::LogSpacedBandwidths(15.0, 120.0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LegacyBandwidthCv(events, candidates, 5, 0x5eed0001));
  }
}
BENCHMARK(BM_BandwidthCVLegacy)->Unit(benchmark::kMillisecond);

void BM_BandwidthCV(benchmark::State& state) {
  const auto events = CvBenchEvents();
  const auto candidates = stats::LogSpacedBandwidths(15.0, 120.0, 4);
  stats::CrossValidationOptions options;
  options.pool = &bench::SharedPool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::SelectBandwidth(events, candidates, options));
  }
}
BENCHMARK(BM_BandwidthCV)->Unit(benchmark::kMillisecond);

void BM_DijkstraLevel3AllTargets(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  core::DijkstraWorkspace workspace;
  std::size_t source = 0;
  for (auto _ : state) {
    workspace.Run(graph, source % graph.node_count(), core::DistanceWeight);
    benchmark::DoNotOptimize(workspace.DistanceTo(graph.node_count() - 1));
    ++source;
  }
}
BENCHMARK(BM_DijkstraLevel3AllTargets)->Unit(benchmark::kMicrosecond);

void BM_PathBitRiskEvaluation(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Level3");
  const core::RiskRouter router(graph, core::RiskParams{1e5, 1e3});
  const auto route = router.ShortestRoute(0, graph.node_count() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.PathBitRiskMiles(route->path));
  }
}
BENCHMARK(BM_PathBitRiskEvaluation);

void BM_IntradomainRatiosParallel(benchmark::State& state) {
  const core::Study& study = bench::SharedStudy();
  static const core::RiskGraph graph = study.BuildGraphFor("Tinet");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeIntradomainRatios(
        graph, core::RiskParams{1e5, 1e3}, &bench::SharedPool()));
  }
}
BENCHMARK(BM_IntradomainRatiosParallel)->Unit(benchmark::kMillisecond);

void BM_AdvisoryRoundTrip(benchmark::State& state) {
  const auto advisories = forecast::GenerateAdvisories(forecast::IreneTrack());
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string text =
        forecast::RenderAdvisory(advisories[i % advisories.size()]);
    benchmark::DoNotOptimize(forecast::ParseAdvisory(text));
    ++i;
  }
}
BENCHMARK(BM_AdvisoryRoundTrip);

}  // namespace

RISKROUTE_BENCH_MAIN("Core kernel microbenchmarks", Reproduce)
