// Seasonal risk (extension of paper Section 5.2, which averages seasons
// away "for simplicity"): per-season amplification of the hazard field
// over regional anchor points, and the effect on routing — a Gulf-coast
// regional's risk-reduction ratio in hurricane season vs mid-winter.
#include <iostream>

#include "bench/common.h"
#include "core/riskroute.h"
#include "hazard/seasonal.h"
#include "hazard/synthesis.h"

namespace {

using namespace riskroute;

void Reproduce() {
  const core::Study& study = bench::SharedStudy();
  util::ThreadPool& pool = bench::SharedPool();

  const auto catalogs = hazard::SynthesizeAllCatalogs();
  hazard::SeasonalRiskField seasonal(catalogs, hazard::PaperBandwidths());
  seasonal.CalibrateTo(study.AllPopLocations());

  // --- Amplification per season over two contrasting regions. ---
  const std::vector<geo::GeoPoint> gulf = {
      geo::GeoPoint(29.95, -90.07), geo::GeoPoint(30.4, -88.9),
      geo::GeoPoint(27.9, -82.6), geo::GeoPoint(29.8, -95.4)};
  const std::vector<geo::GeoPoint> west = {
      geo::GeoPoint(34.05, -118.24), geo::GeoPoint(37.77, -122.42),
      geo::GeoPoint(47.61, -122.33), geo::GeoPoint(40.76, -111.89)};
  util::Table amp({"Season", "Gulf amplification", "West amplification"});
  for (const hazard::Season season : hazard::AllSeasons()) {
    amp.Add(std::string(hazard::ToString(season)),
            seasonal.SeasonalAmplification(gulf, season),
            seasonal.SeasonalAmplification(west, season));
  }
  amp.Render(std::cout);

  // --- Routing effect: Telepak (Mississippi) by season. ---
  std::cout << "\nTelepak intradomain ratios by season (lambda_h = 1e5):\n";
  util::Table ratios({"Season", "Risk Reduction", "Distance Increase"});
  const std::size_t telepak = study.NetworkIndex("Telepak");
  const topology::Network& network = study.corpus().network(telepak);
  core::RiskGraph graph = study.BuildGraph(telepak);
  for (const hazard::Season season : hazard::AllSeasons()) {
    // Swap in the season's o_h values.
    const std::vector<double> risks = seasonal.PopRisks(network, season);
    core::RiskGraph seasonal_graph;
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      core::RiskNode node = graph.node(i);
      node.historical_risk = risks[i];
      seasonal_graph.AddNode(std::move(node));
    }
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      for (const core::RiskEdge& e : graph.OutEdges(i)) {
        if (e.to > i) seasonal_graph.AddEdge(i, e.to, e.miles);
      }
    }
    const core::RatioReport report = core::ComputeIntradomainRatios(
        seasonal_graph, core::RiskParams{1e5, 1e3}, &pool);
    ratios.Add(std::string(hazard::ToString(season)),
               report.risk_reduction_ratio, report.distance_increase_ratio);
  }
  ratios.Render(std::cout);
  std::cout << "(gulf risk concentrates in summer/fall — hurricane season — "
               "and risk-averse routing matters most then; the paper "
               "acknowledges but averages away this seasonality)\n";
}

void BM_SeasonalRiskAt(benchmark::State& state) {
  static const hazard::SeasonalRiskField field = [] {
    return hazard::SeasonalRiskField(hazard::SynthesizeAllCatalogs(),
                                     hazard::PaperBandwidths());
  }();
  const geo::GeoPoint p(29.95, -90.07);
  int month = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.RiskAt(p, (month % 12) + 1));
    ++month;
  }
}
BENCHMARK(BM_SeasonalRiskAt);

}  // namespace

RISKROUTE_BENCH_MAIN("Seasonal hazard risk and its routing impact",
                     Reproduce)
